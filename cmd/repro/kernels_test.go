package main

import (
	"errors"
	"flag"
	"strings"
	"testing"
)

func TestCmdKernelsList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"kernels"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"quickSort", "histogram/counting", "lang", "minic", "go"} {
		if !strings.Contains(out, want) {
			t.Errorf("kernels listing missing %q:\n%s", want, out)
		}
	}
}

func TestCmdKernelsDump(t *testing.T) {
	out, err := capture(t, func() error { return cmdKernels([]string{"-dump", "quicksort", "-n", "8"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"unsigned long a[8];", // lowered at the requested size
		"unsigned long main(void)",
		"fork main", // fork-mode assembly is the default
		"lang=go",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	out, err = capture(t, func() error { return cmdKernels([]string{"-dump", "1", "-n", "8", "-mode", "call"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "call main") || !strings.Contains(out, "lang=minic") {
		t.Errorf("call-mode dump of a hand-written kernel:\n%s", out)
	}
}

func TestCmdKernelsVetSmoke(t *testing.T) {
	out, err := capture(t, func() error { return cmdKernels([]string{"-vet", "-n", "8", "-cores", "2"}) })
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "FAIL") || !strings.Contains(out, "histogram/counting") {
		t.Errorf("vet output:\n%s", out)
	}
}

func TestCmdKernelsUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"bad-flag", []string{"-bogus"}},
		{"unknown-selector", []string{"-dump", "nosuchkernel"}},
		{"ambiguous-selector", []string{"-dump", "deterministicHash"}},
		{"bad-mode", []string{"-dump", "2", "-mode", "jit"}},
		{"dump-and-vet", []string{"-dump", "2", "-vet"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := captureStderr(t, func() error { return cmdKernels(c.args) })
			if !errors.Is(err, errUsage) {
				t.Errorf("cmdKernels(%v) = %v, want errUsage", c.args, err)
			}
		})
	}
}

func TestCmdKernelsHelpFlag(t *testing.T) {
	_, err := captureStderr(t, func() error { return run([]string{"kernels", "-h"}) })
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("run(kernels -h) = %v, want flag.ErrHelp", err)
	}
}

func TestUsageMentionsKernels(t *testing.T) {
	out, err := captureStderr(t, func() error { return run([]string{"help"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "kernels") {
		t.Errorf("usage text does not mention the kernels command:\n%s", out)
	}
}
