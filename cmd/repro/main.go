// Command repro exercises the whole reproduction stack from the command
// line:
//
//	repro bench    — run every PBBS kernel on the emulator, validating
//	                 checksums against the pure-Go references
//	repro ilp      — regenerate the paper's Fig. 7: trace-dataflow ILP of
//	                 the ten kernels under the sequential and parallel
//	                 dependence models (batch-measured with a worker pool)
//	repro machine  — cross-validate kernels on the cycle-level many-core
//	                 simulator against the emulator and report cycles/IPC
//	repro analytic — print the Section 5 closed-form scaling table for the
//	                 sum reduction
//	repro sweep    — the scaling laboratory: run the machine across the
//	                 cross-product of kernel × size × cores × NoC topology ×
//	                 shortcut × placement cap, with a content-keyed result
//	                 cache, streaming JSONL output and baseline diffing
//	repro bench-sim — time the simulator itself: dense vs idle-skip
//	                 scheduler over a kernel × cores grid, cross-checked for
//	                 identical results, written to BENCH_machine.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/analytic"
	"repro/internal/backend"
	"repro/internal/pbbs"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: repro <command> [flags]

commands:
  bench      run every kernel on the emulator and validate checksums
  ilp        print the Fig. 7 table (sequential vs parallel trace ILP)
  machine    cross-validate kernels on the many-core simulator
  analytic   print the Section 5 scaling table
  sweep      scaling laboratory: sweep cores × topology × shortcut × cap
  bench-sim  benchmark the simulator: dense vs idle-skip scheduler

run "repro <command> -h" for the flags of each command.
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "bench":
		err = cmdBench(os.Args[2:])
	case "ilp":
		err = cmdILP(os.Args[2:])
	case "machine":
		err = cmdMachine(os.Args[2:])
	case "analytic":
		err = cmdAnalytic(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "bench-sim":
		err = cmdBenchSim(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "repro: unknown command %q\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}
}

// selectKernels resolves the -kernel flag: 0 means all.
func selectKernels(id int) ([]*pbbs.Kernel, error) {
	if id == 0 {
		return pbbs.Kernels(), nil
	}
	k, err := pbbs.ByID(id)
	if err != nil {
		return nil, err
	}
	return []*pbbs.Kernel{k}, nil
}

// parseSizes parses a comma-separated size list.
func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	n := fs.Int("n", 64, "dataset size")
	seed := fs.Uint64("seed", 1, "workload seed")
	kid := fs.Int("kernel", 0, "benchmark number (0 = all)")
	fs.Parse(args)
	ks, err := selectKernels(*kid)
	if err != nil {
		return err
	}
	fmt.Printf("%-3s %-40s %8s %10s %20s %s\n", "#", "benchmark", "n", "instr", "checksum", "status")
	for _, k := range ks {
		res, err := k.Run(*n, *seed, false)
		if err != nil {
			fmt.Printf("%-3d %-40s %8d %10s %20s FAIL: %v\n", k.ID, k.Name, k.ClampN(*n), "-", "-", err)
			continue
		}
		fmt.Printf("%-3d %-40s %8d %10d %20d ok\n", k.ID, k.Name, res.N, res.Steps, res.Checksum)
	}
	return nil
}

func cmdILP(args []string) error {
	fs := flag.NewFlagSet("ilp", flag.ExitOnError)
	sizes := fs.String("sizes", "32,64,128", "comma-separated dataset sizes")
	seed := fs.Uint64("seed", 1, "workload seed")
	workers := fs.Int("workers", 0, "measurement workers (0 = GOMAXPROCS)")
	kid := fs.Int("kernel", 0, "benchmark number (0 = all)")
	fs.Parse(args)
	ns, err := parseSizes(*sizes)
	if err != nil {
		return err
	}
	ks, err := selectKernels(*kid)
	if err != nil {
		return err
	}
	points, err := pbbs.MeasureAll(ks, ns, *seed, *workers)
	if len(points) > 0 {
		fmt.Println("Fig. 7 — trace-dataflow ILP, sequential vs parallel dependence model")
		fmt.Print(pbbs.Fig7Table(points))
	}
	return err
}

func cmdMachine(args []string) error {
	fs := flag.NewFlagSet("machine", flag.ExitOnError)
	n := fs.Int("n", 12, "dataset size (kept small: cycle-level simulation)")
	seed := fs.Uint64("seed", 1, "workload seed")
	cores := fs.Int("cores", 8, "simulated cores")
	kid := fs.Int("kernel", 0, "benchmark number (0 = all)")
	dense := fs.Bool("dense", false, "use the reference dense scheduler instead of idle-skip")
	fs.Parse(args)
	ks, err := selectKernels(*kid)
	if err != nil {
		return err
	}
	fmt.Printf("%-3s %-40s %8s %10s %10s %9s %9s %s\n",
		"#", "benchmark", "n", "instr", "cycles", "IPC", "sections", "status")
	failed := false
	for _, k := range ks {
		kn := k.ClampN(*n)
		mb := backend.NewMachine(*cores)
		mb.Cfg.Dense = *dense
		rm, err := k.CrossValidateOn(mb, *n, *seed)
		if err != nil {
			fmt.Printf("%-3d %-40s %8d %10s %10s %9s %9s FAIL: %v\n",
				k.ID, k.Name, kn, "-", "-", "-", "-", err)
			failed = true
			continue
		}
		ipc := float64(rm.Instructions) / float64(rm.Cycles)
		fmt.Printf("%-3d %-40s %8d %10d %10d %9.2f %9d ok (rax and memory match emulator)\n",
			k.ID, k.Name, kn, rm.Instructions, rm.Cycles, ipc, len(rm.Machine.Sections))
	}
	if failed {
		return fmt.Errorf("machine/emulator divergence")
	}
	return nil
}

func cmdAnalytic(args []string) error {
	fs := flag.NewFlagSet("analytic", flag.ExitOnError)
	maxN := fs.Int("maxn", 8, "largest doubling step")
	fs.Parse(args)
	fmt.Println("Section 5 — closed-form scaling of the fork sum over 5·2ⁿ elements")
	fmt.Printf("%3s %10s %14s %11s %12s %10s %11s %10s\n",
		"n", "elements", "instructions", "fetch(cyc)", "retire(cyc)", "fetchIPC", "retireIPC", "sections")
	for _, r := range analytic.Table(*maxN) {
		fmt.Printf("%3d %10d %14d %11d %12d %10.1f %11.1f %10d\n",
			r.N, r.Elements, r.Instructions, r.FetchTime, r.RetireTime, r.FetchIPC, r.RetireIPC, r.Sections)
	}
	return nil
}
