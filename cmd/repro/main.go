// Command repro exercises the whole reproduction stack from the command
// line:
//
//	repro bench    — run every PBBS kernel on the emulator, validating
//	                 checksums against the pure-Go references
//	repro ilp      — regenerate the paper's Fig. 7: trace-dataflow ILP of
//	                 the ten kernels under the sequential and parallel
//	                 dependence models (batch-measured with a worker pool)
//	repro machine  — cross-validate kernels on the cycle-level many-core
//	                 simulator against the emulator and report cycles/IPC
//	repro analytic — print the Section 5 closed-form scaling table for the
//	                 sum reduction
//	repro sweep    — the scaling laboratory: run the machine across the
//	                 cross-product of kernel × size × cores × NoC topology ×
//	                 shortcut × placement cap, with a content-keyed result
//	                 cache, streaming JSONL output and baseline diffing
//	repro bench-sim — time the simulator itself: dense vs idle-skip
//	                 scheduler over a kernel × cores grid, cross-checked for
//	                 identical results, written to BENCH_machine.json
//	repro serve    — simulation as a service: a long-running HTTP job server
//	                 over the sweep engine and cache (submit sweeps and runs,
//	                 poll status, stream JSONL results, browse catalogs); also
//	                 the fabric coordinator — sweeps shard across registered
//	                 workers, falling back to local execution with none
//	repro worker   — fabric worker: register with a coordinator, lease grid
//	                 points, measure them locally and report the records back
//	repro fuzz     — differential fuzzing: generate seeded random mini-C
//	                 programs and check the four execution substrates agree
//	                 bit for bit, minimizing any failure to a reproducer
//	repro kernels  — the kernel front end: list the catalog (with source
//	                 language), dump a kernel's generated mini-C + assembly,
//	                 or -vet the whole suite (every kernel re-derived and
//	                 cross-checked on emulator + machine)
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/analytic"
	"repro/internal/backend"
	"repro/internal/pbbs"
)

// errUsage marks a bad invocation (unknown command, malformed flags): usage
// has already been printed and the process should exit 2. It is a sentinel
// so that every exit flows through main's single exit path — subcommands and
// usage never call os.Exit themselves, which would skip deferred cleanup
// (flushing output files, graceful server shutdown) and be untestable.
var errUsage = errors.New("usage error")

func usage() {
	fmt.Fprintf(os.Stderr, `usage: repro <command> [flags]

commands:
  bench      run every kernel on the emulator and validate checksums
  ilp        print the Fig. 7 table (sequential vs parallel trace ILP)
  machine    cross-validate kernels on the many-core simulator
  analytic   print the Section 5 scaling table
  sweep      scaling laboratory: sweep cores × topology × shortcut × cap
  bench-sim  benchmark the simulator: dense vs idle-skip scheduler
  serve      HTTP job server over the sweep engine and result cache;
             doubles as the sweep-fabric coordinator
  worker     fabric worker: lease sweep points from a coordinator
  fuzz       differential fuzzing of emulator vs machine schedulers
  kernels    list the kernel catalog, dump generated mini-C, vet the suite

run "repro <command> -h" for the flags of each command.
`)
}

// parseFlags folds flag.FlagSet outcomes into the shared exit paths: nil on
// success, flag.ErrHelp after -h/-help (exit 0; flag printed the defaults),
// errUsage on a malformed flag (exit 2; flag printed the problem). Flag sets
// must be created with flag.ContinueOnError so that this function, not the
// flag package, decides how the process exits.
func parseFlags(fs *flag.FlagSet, args []string) error {
	switch err := fs.Parse(args); {
	case err == nil:
		return nil
	case errors.Is(err, flag.ErrHelp):
		return flag.ErrHelp
	default:
		return errUsage
	}
}

// exitCode maps run's error to the process exit status: 0 on success and
// after help, 2 for usage errors, 1 for runtime failures (which it prints).
func exitCode(err error) int {
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp):
		return 0
	case errors.Is(err, errUsage):
		return 2
	default:
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		return 1
	}
}

func main() {
	os.Exit(exitCode(run(os.Args[1:])))
}

// run dispatches the subcommand and returns rather than exits, so the whole
// CLI surface — including the unknown-command path — is testable and
// deferred cleanup always runs.
func run(args []string) error {
	if len(args) < 1 {
		usage()
		return errUsage
	}
	switch cmd := args[0]; cmd {
	case "bench":
		return cmdBench(args[1:])
	case "ilp":
		return cmdILP(args[1:])
	case "machine":
		return cmdMachine(args[1:])
	case "analytic":
		return cmdAnalytic(args[1:])
	case "sweep":
		return cmdSweep(args[1:])
	case "bench-sim":
		return cmdBenchSim(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "worker":
		return cmdWorker(args[1:])
	case "fuzz":
		return cmdFuzz(args[1:])
	case "kernels":
		return cmdKernels(args[1:])
	case "-h", "--help", "help":
		usage()
		return nil
	default:
		fmt.Fprintf(os.Stderr, "repro: unknown command %q\n", cmd)
		usage()
		return errUsage
	}
}

// selectKernels resolves the -kernel flag: 0 means all.
func selectKernels(id int) ([]*pbbs.Kernel, error) {
	if id == 0 {
		return pbbs.Kernels(), nil
	}
	k, err := pbbs.ByID(id)
	if err != nil {
		return nil, err
	}
	return []*pbbs.Kernel{k}, nil
}

// usageErrf reports a bad invocation on stderr and returns errUsage, so the
// process exits 2 like any other malformed command line — exitCode prints
// nothing for errUsage, hence the message here.
func usageErrf(format string, args ...any) error {
	fmt.Fprintf(os.Stderr, "repro: "+format+"\n", args...)
	return errUsage
}

// parseSimWorkers resolves the -sim-workers flag shared by machine, sweep,
// bench-sim and serve: a positive worker count for the machine's parallel
// phase scheduler, or "auto" for GOMAXPROCS. 1 is the bit-exact sequential
// idle-skip path; every value produces bit-identical simulation results (the
// scheduler oracle pins this), so the flag is purely a wall-clock knob.
// Garbage — zero, negatives, non-"auto" words — is a usage error (exit 2),
// not a runtime failure: the simulation never started.
func parseSimWorkers(s string) (int, error) {
	t := strings.TrimSpace(s)
	if strings.EqualFold(t, "auto") {
		return runtime.GOMAXPROCS(0), nil
	}
	n, err := strconv.Atoi(t)
	if err != nil || n < 1 {
		return 0, usageErrf("bad -sim-workers value %q (want a positive count or \"auto\")", s)
	}
	return n, nil
}

// parseSizes parses a comma-separated size list.
func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	n := fs.Int("n", 64, "dataset size")
	seed := fs.Uint64("seed", 1, "workload seed")
	kid := fs.Int("kernel", 0, "benchmark number (0 = all)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	ks, err := selectKernels(*kid)
	if err != nil {
		return err
	}
	fmt.Printf("%-3s %-40s %8s %10s %20s %s\n", "#", "benchmark", "n", "instr", "checksum", "status")
	for _, k := range ks {
		res, err := k.Run(*n, *seed, false)
		if err != nil {
			fmt.Printf("%-3d %-40s %8d %10s %20s FAIL: %v\n", k.ID, k.Name, k.ClampN(*n), "-", "-", err)
			continue
		}
		fmt.Printf("%-3d %-40s %8d %10d %20d ok\n", k.ID, k.Name, res.N, res.Steps, res.Checksum)
	}
	return nil
}

func cmdILP(args []string) error {
	fs := flag.NewFlagSet("ilp", flag.ContinueOnError)
	sizes := fs.String("sizes", "32,64,128", "comma-separated dataset sizes")
	seed := fs.Uint64("seed", 1, "workload seed")
	workers := fs.Int("workers", 0, "measurement workers (0 = GOMAXPROCS)")
	kid := fs.Int("kernel", 0, "benchmark number (0 = all)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	ns, err := parseSizes(*sizes)
	if err != nil {
		return err
	}
	ks, err := selectKernels(*kid)
	if err != nil {
		return err
	}
	points, err := pbbs.MeasureAll(ks, ns, *seed, *workers)
	if len(points) > 0 {
		fmt.Println("Fig. 7 — trace-dataflow ILP, sequential vs parallel dependence model")
		fmt.Print(pbbs.Fig7Table(points))
	}
	return err
}

func cmdMachine(args []string) error {
	fs := flag.NewFlagSet("machine", flag.ContinueOnError)
	n := fs.Int("n", 12, "dataset size (kept small: cycle-level simulation)")
	seed := fs.Uint64("seed", 1, "workload seed")
	cores := fs.Int("cores", 8, "simulated cores")
	kid := fs.Int("kernel", 0, "benchmark number (0 = all)")
	dense := fs.Bool("dense", false, "use the reference dense scheduler instead of idle-skip")
	simWorkers := fs.String("sim-workers", "1", "parallel-scheduler goroutines per simulation (\"auto\" = GOMAXPROCS; results are bit-identical for every value)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	sw, err := parseSimWorkers(*simWorkers)
	if err != nil {
		return err
	}
	ks, err := selectKernels(*kid)
	if err != nil {
		return err
	}
	fmt.Printf("%-3s %-40s %8s %10s %10s %9s %9s %s\n",
		"#", "benchmark", "n", "instr", "cycles", "IPC", "sections", "status")
	failed := false
	for _, k := range ks {
		kn := k.ClampN(*n)
		mb := backend.NewMachine(*cores)
		mb.Cfg.Dense = *dense
		mb.Cfg.SimWorkers = sw
		rm, err := k.CrossValidateOn(mb, *n, *seed)
		if err != nil {
			fmt.Printf("%-3d %-40s %8d %10s %10s %9s %9s FAIL: %v\n",
				k.ID, k.Name, kn, "-", "-", "-", "-", err)
			failed = true
			continue
		}
		ipc := float64(rm.Instructions) / float64(rm.Cycles)
		fmt.Printf("%-3d %-40s %8d %10d %10d %9.2f %9d ok (rax and memory match emulator)\n",
			k.ID, k.Name, kn, rm.Instructions, rm.Cycles, ipc, len(rm.Machine.Sections))
	}
	if failed {
		return fmt.Errorf("machine/emulator divergence")
	}
	return nil
}

func cmdAnalytic(args []string) error {
	fs := flag.NewFlagSet("analytic", flag.ContinueOnError)
	maxN := fs.Int("maxn", 8, "largest doubling step")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	fmt.Println("Section 5 — closed-form scaling of the fork sum over 5·2ⁿ elements")
	fmt.Printf("%3s %10s %14s %11s %12s %10s %11s %10s\n",
		"n", "elements", "instructions", "fetch(cyc)", "retire(cyc)", "fetchIPC", "retireIPC", "sections")
	for _, r := range analytic.Table(*maxN) {
		fmt.Printf("%3d %10d %14d %11d %12d %10.1f %11.1f %10d\n",
			r.N, r.Elements, r.Instructions, r.FetchTime, r.RetireTime, r.FetchIPC, r.RetireIPC, r.Sections)
	}
	return nil
}
