package main

import (
	"flag"
	"fmt"

	"repro/internal/backend"
	"repro/internal/minic"
	"repro/internal/pbbs"
)

// cmdKernels is the front-end inspection surface: list the registered
// kernel catalog, dump one kernel's generated mini-C (and assembly) at a
// concrete size, or vet the whole suite by re-deriving every kernel and
// cross-checking it on both execution substrates.
func cmdKernels(args []string) error {
	fs := flag.NewFlagSet("kernels", flag.ContinueOnError)
	dump := fs.String("dump", "", "kernel selector: print its generated mini-C and assembly, then exit")
	vet := fs.Bool("vet", false, "re-derive and cross-check every kernel on emulator + machine")
	n := fs.Int("n", 64, "dataset size for -dump and -vet")
	seed := fs.Uint64("seed", 1, "workload seed for -vet")
	cores := fs.Int("cores", 4, "simulated cores for -vet's machine leg")
	mode := fs.String("mode", "fork", `calling convention for -dump assembly: "call" (emulator) or "fork" (machine)`)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *dump != "" && *vet {
		return usageErrf("kernels: -dump and -vet are mutually exclusive")
	}
	switch {
	case *dump != "":
		return kernelsDump(*dump, *n, *mode)
	case *vet:
		return kernelsVet(*n, *seed, *cores)
	}
	return kernelsList()
}

// kernelsList prints the catalog: one row per registered kernel with its
// source language, mirroring what the server exposes at /v1/kernels.
func kernelsList() error {
	fmt.Printf("%-3s %-40s %-6s %5s\n", "#", "benchmark", "lang", "minN")
	for _, k := range pbbs.Kernels() {
		fmt.Printf("%-3d %-40s %-6s %5d\n", k.ID, k.Name, k.Lang, k.MinN)
	}
	return nil
}

// kernelsDump prints one kernel's generated mini-C at a concrete size, then
// the assembly the backend compiles it to. For annotated-Go kernels the
// mini-C is the gofront lowering — exactly the canonical text the golden
// tests pin.
func kernelsDump(sel string, n int, mode string) error {
	k, err := pbbs.Find(sel)
	if err != nil {
		return usageErrf("kernels: %v", err)
	}
	var m minic.Mode
	switch mode {
	case "call":
		m = minic.ModeCall
	case "fork":
		m = minic.ModeFork
	default:
		return usageErrf("kernels: bad -mode %q (want call or fork)", mode)
	}
	n = k.ClampN(n)
	src, err := k.Source(n)
	if err != nil {
		return err
	}
	prog, err := minic.Parse(src)
	if err != nil {
		return fmt.Errorf("kernels: %s: %w", k.Name, err)
	}
	if err := minic.Check(prog); err != nil {
		return fmt.Errorf("kernels: %s: %w", k.Name, err)
	}
	asm, err := minic.Generate(prog, m)
	if err != nil {
		return fmt.Errorf("kernels: %s: %w", k.Name, err)
	}
	fmt.Printf("// %s (#%d, lang=%s) at n=%d — generated mini-C\n%s\n", k.Name, k.ID, k.Lang, n, src)
	fmt.Printf("// %s at n=%d — %s-mode assembly\n%s", k.Name, n, mode, asm)
	return nil
}

// kernelsVet re-derives every registered kernel at its minimum size and at
// -n and cross-checks each derivation end to end: the source must be
// canonical (Format∘Parse fixpoint), the emulator run must match the
// reference checksum, and the many-core machine must agree with the
// emulator on rax and the full data segment. This is the CI gate that keeps
// Source, Gen and Ref honest for hand-written and lowered kernels alike.
func kernelsVet(n int, seed uint64, cores int) error {
	fmt.Printf("%-3s %-40s %6s %-6s %s\n", "#", "benchmark", "n", "lang", "status")
	failures := 0
	for _, k := range pbbs.Kernels() {
		sizes := []int{k.MinN}
		if cn := k.ClampN(n); cn != k.MinN {
			sizes = append(sizes, cn)
		}
		for _, size := range sizes {
			if err := vetKernelAt(k, size, seed, cores); err != nil {
				fmt.Printf("%-3d %-40s %6d %-6s FAIL: %v\n", k.ID, k.Name, size, k.Lang, err)
				failures++
				continue
			}
			fmt.Printf("%-3d %-40s %6d %-6s ok\n", k.ID, k.Name, size, k.Lang)
		}
	}
	if failures > 0 {
		return fmt.Errorf("kernels: vet failed for %d kernel/size pairs", failures)
	}
	return nil
}

// vetKernelAt is one vet probe: canonical-form check, emulator run against
// the reference, machine cross-validation against the emulator.
func vetKernelAt(k *pbbs.Kernel, n int, seed uint64, cores int) error {
	src, err := k.Source(n)
	if err != nil {
		return err
	}
	prog, err := minic.Parse(src)
	if err != nil {
		return fmt.Errorf("source does not parse: %w", err)
	}
	if canon := minic.Format(prog); k.Lang == pbbs.LangGo && canon != src {
		return fmt.Errorf("lowered source is not Format-canonical")
	}
	if _, err := k.RunOn(backend.NewEmulator(), n, seed, false); err != nil {
		return err
	}
	if _, err := k.CrossValidate(n, seed, cores); err != nil {
		return err
	}
	return nil
}
