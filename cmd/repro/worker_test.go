package main

// Flag validation for the fabric entry points: a malformed coordinator URL
// or nonsense lease tuning is a usage error (exit 2) raised before anything
// registers, listens or simulates.

import (
	"errors"
	"strings"
	"testing"
)

func TestWorkerRejectsBadCoordinatorURL(t *testing.T) {
	for _, bad := range []string{"not a url", "127.0.0.1:8321", "http://"} {
		out, err := captureStderr(t, func() error {
			return cmdWorker([]string{"-coordinator", bad})
		})
		if !errors.Is(err, errUsage) {
			t.Errorf("worker -coordinator %q = %v, want errUsage", bad, err)
		}
		if !strings.Contains(out, "-coordinator") {
			t.Errorf("worker -coordinator %q: stderr does not name the flag:\n%s", bad, out)
		}
	}
}

func TestServeRejectsBadFabricTuning(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-lease", "0s"}, "-lease"},
		{[]string{"-lease", "-5s"}, "-lease"},
		{[]string{"-batch", "0"}, "-batch"},
		{[]string{"-batch", "-2"}, "-batch"},
	}
	for _, c := range cases {
		out, err := captureStderr(t, func() error {
			return cmdServe(c.args)
		})
		if !errors.Is(err, errUsage) {
			t.Errorf("serve %v = %v, want errUsage", c.args, err)
		}
		if !strings.Contains(out, c.want) {
			t.Errorf("serve %v: stderr does not name %s:\n%s", c.args, c.want, out)
		}
	}
}
