package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/url"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/fabric"
	"repro/internal/machine"
	"repro/internal/sweep"
)

// cmdWorker joins a sweep fabric: it registers with a coordinator (a
// `repro serve` process), leases batches of grid points, measures them on a
// local engine — with the same pool/singleflight/cache machinery as a local
// sweep — and reports the records back. It serves until SIGINT/SIGTERM.
// Point -cache at a store shared by the fleet to get fleet-wide
// at-most-once simulation; a private directory still dedupes this worker's
// own repeats.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	coord := fs.String("coordinator", "http://127.0.0.1:8321", "coordinator base URL (a running 'repro serve')")
	cacheDir := fs.String("cache", ".sweep-cache", "result cache directory (empty disables caching)")
	name := fs.String("name", "", "worker label in coordinator logs (default host:pid)")
	workers := fs.Int("workers", 0, "concurrent measurements per leased batch (0 = GOMAXPROCS)")
	dense := fs.Bool("dense", false, "use the reference dense scheduler instead of idle-skip")
	simWorkers := fs.String("sim-workers", "1", "parallel-scheduler goroutines per simulation (\"auto\" = GOMAXPROCS; results are bit-identical for every value)")
	pool := fs.Bool("machine-pool", true, "reuse warmed machines across points that differ only in inputs")
	poll := fs.Duration("poll", 0, "idle poll interval (0 = coordinator-suggested)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	sw, err := parseSimWorkers(*simWorkers)
	if err != nil {
		return err
	}
	u, err := url.Parse(*coord)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return usageErrf("bad -coordinator URL %q (want scheme://host:port)", *coord)
	}

	eng := &sweep.Engine{Workers: *workers, Dense: *dense, SimWorkers: sw}
	if *pool {
		eng.Pool = machine.NewPool()
	}
	if *cacheDir != "" {
		if eng.Cache, err = sweep.NewCache(*cacheDir); err != nil {
			return err
		}
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	w := &fabric.Worker{
		Coordinator: u.String(), Eng: eng, Name: *name, Log: log, Poll: *poll,
	}
	log.Info("worker starting", "coordinator", w.Coordinator, "name", *name,
		"cache", *cacheDir, "simWorkers", sw, "machinePool", *pool)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		return fmt.Errorf("worker: %w", err)
	}
	st := eng.Stats()
	log.Info("worker stopped", "measured", st.Points, "simulated", st.Simulated,
		"cached", st.Hits, "coalesced", st.Coalesced, "failed", st.Failures)
	return nil
}
