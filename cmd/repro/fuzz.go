package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fuzzgen"
)

// cmdFuzz runs a differential fuzzing campaign: seeded random mini-C
// programs through the four-substrate oracle (emulator, dense, idle-skip,
// parallel machine, plus warm-Reset/pool re-runs), in parallel across
// workers, stopping at the first divergence. The failure is minimized to a
// small reproducer and both the original and minimized programs are written
// to disk. Exit status: 0 when every program agreed, 1 on a divergence.
func cmdFuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "base seed; program i checks Generate(seed+i)")
	count := fs.Int("count", 256, "programs to check (0 = unbounded, until -duration)")
	duration := fs.Duration("duration", 0, "stop after this long (0 = no time limit)")
	workers := fs.Int("workers", 0, "parallel oracle workers (0 = GOMAXPROCS)")
	minimize := fs.Bool("minimize", true, "shrink the first failure to a minimal reproducer")
	outDir := fs.String("o", ".", "directory for reproducer files")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *count < 0 {
		return usageErrf("fuzz: -count must be >= 0")
	}
	if *count == 0 && *duration <= 0 {
		return usageErrf("fuzz: -count 0 (unbounded) requires -duration")
	}
	nw := *workers
	if nw < 0 {
		return usageErrf("fuzz: -workers must be >= 0")
	}
	if nw == 0 {
		nw = runtime.GOMAXPROCS(0)
	}

	var deadline time.Time
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}

	var (
		next     atomic.Uint64 // next program index to claim
		checked  atomic.Uint64
		stop     atomic.Bool
		firstMu  sync.Mutex
		first    *fuzzgen.Failure
		firstIdx uint64
	)
	report := func(idx uint64, f *fuzzgen.Failure) {
		stop.Store(true)
		firstMu.Lock()
		defer firstMu.Unlock()
		// Keep the lowest-index failure for a deterministic -count run.
		if first == nil || idx < firstIdx {
			first, firstIdx = f, idx
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			o := &fuzzgen.Oracle{}
			for !stop.Load() {
				idx := next.Add(1) - 1
				if *count > 0 && idx >= uint64(*count) {
					return
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					return
				}
				p := fuzzgen.Generate(*seed + idx)
				if f := o.CheckProgram(p); f != nil {
					report(idx, f)
					return
				}
				checked.Add(1)
			}
		}()
	}
	wg.Wait()

	if first == nil {
		fmt.Printf("fuzz: %d programs agree across all substrates (seeds %d..%d, %d workers)\n",
			checked.Load(), *seed, *seed+next.Load()-1, nw)
		return nil
	}

	fmt.Fprintf(os.Stderr, "fuzz: divergence at seed %d after %d clean programs\n",
		first.Seed, checked.Load())
	path, err := writeRepro(*outDir, fmt.Sprintf("fuzz-%d.c", first.Seed), first)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fuzz: reproducer written to %s\n", path)

	if *minimize {
		min := minimizeFailure(first)
		mpath, err := writeRepro(*outDir, fmt.Sprintf("fuzz-%d.min.c", first.Seed), min)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fuzz: minimized %d -> %d bytes, written to %s\n",
			len(first.Source), len(min.Source), mpath)
	}
	return first
}

// minimizeFailure shrinks a failing program, preserving the failure stage:
// a mismatch must still mismatch, a machine fault must still fault. The
// returned Failure carries the minimized source and its (re-checked) detail.
func minimizeFailure(f *fuzzgen.Failure) *fuzzgen.Failure {
	o := &fuzzgen.Oracle{}
	src := fuzzgen.Minimize(f.Source, func(s string) bool {
		g := o.Check(s, f.Cores)
		return g != nil && g.Stage == f.Stage
	})
	min := o.Check(src, f.Cores)
	if min == nil {
		return f // cannot happen: keep held at every step
	}
	min.Seed = f.Seed
	return min
}

// writeRepro writes a failure as a compilable .c file: the mini-C source
// prefixed with //-comment metadata (seed, cores, stage, detail).
func writeRepro(dir, name string, f *fuzzgen.Failure) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	body := fmt.Sprintf("// repro fuzz reproducer\n// seed: %d\n// cores: %d\n// stage: %s\n// detail: %s\n\n%s",
		f.Seed, f.Cores, f.Stage, f.Detail, f.Source)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
