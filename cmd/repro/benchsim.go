package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bench"
)

// cmdBenchSim benchmarks the simulator itself: it times the dense, idle-skip
// and parallel phase schedulers over a kernel × core-count grid — plus
// paper-scale big-N points that skip the slow dense leg — cross-checking on
// every point that all schedulers produce identical simulation results, and
// writes the report to BENCH_machine.json — the performance trajectory future
// changes to the hot loop are diffed against. With -against it additionally compares
// the fresh measurement to a baseline report and exits non-zero on a
// regression; -cpuprofile/-memprofile capture pprof profiles of the
// measurement so the next optimisation round starts from evidence.
func cmdBenchSim(args []string) error {
	fs := flag.NewFlagSet("bench-sim", flag.ContinueOnError)
	kernels := fs.String("kernels", "", "kernel selectors (default: the standard trajectory trio)")
	n := fs.Int("n", 0, "dataset size (0 = grid default)")
	cores := fs.String("cores", "", "comma-separated core counts (default: grid default)")
	seed := fs.Uint64("seed", 1, "workload seed")
	runs := fs.Int("runs", 0, "timing repetitions per point and scheduler, best wins (0 = grid default)")
	simWorkers := fs.String("sim-workers", "", "goroutines for the parallel timing leg (\"auto\" = GOMAXPROCS, \"1\" skips the leg; empty = grid default)")
	bigns := fs.String("bigns", "", "comma-separated paper-scale sizes for the big-N points (\"none\" disables them; empty = grid default)")
	out := fs.String("o", "BENCH_machine.json", "report output path (empty: print table only)")
	quick := fs.Bool("quick", false, "seconds-scale grid for CI smoke runs")
	verify := fs.String("verify", "", "load and print an existing report instead of measuring")
	against := fs.String("against", "", "baseline report to diff the fresh measurement against (benchstat-style; non-zero exit on regression)")
	tolerance := fs.Float64("tolerance", bench.DefaultTolerance, "relative idle-skip ns/cycle growth tolerated by -against before it fails (0 = any growth fails; negative = default)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the measurement to this file")
	memprofile := fs.String("memprofile", "", "write a pprof allocation profile taken after the measurement to this file")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *against != "" {
		// A compare run must not clobber the baseline it is judged against:
		// with -against, the report is only written where -o says explicitly.
		explicitOut := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "o" {
				explicitOut = true
			}
		})
		if !explicitOut {
			*out = ""
		}
	}

	if *verify != "" {
		rep, err := bench.Load(*verify)
		if err != nil {
			return err
		}
		fmt.Printf("%s: schema %s\n", *verify, rep.Schema)
		fmt.Print(rep.Table())
		return nil
	}

	g := bench.DefaultGrid()
	if *quick {
		g = bench.QuickGrid()
	}
	if *kernels != "" {
		g.Kernels = strings.Split(*kernels, ",")
	}
	if *n > 0 {
		g.N = *n
	}
	if *cores != "" {
		cs, err := parseSizes(*cores)
		if err != nil {
			return err
		}
		g.Cores = cs
	}
	if *runs > 0 {
		g.Runs = *runs
	}
	g.Seed = *seed
	if *simWorkers != "" {
		sw, err := parseSimWorkers(*simWorkers)
		if err != nil {
			return err
		}
		g.SimWorkers = sw
	}
	if *bigns != "" {
		if strings.EqualFold(*bigns, "none") {
			g.BigNs = nil
		} else {
			bns, err := parseSizes(*bigns)
			if err != nil {
				return err
			}
			g.BigNs = bns
		}
	}

	var baseline *bench.Report
	if *against != "" {
		// Load before measuring, so a bad baseline path fails fast.
		b, err := bench.Load(*against)
		if err != nil {
			return err
		}
		baseline = b
	}

	var cpuFile *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		cpuFile = f
	}

	rep, err := bench.Measure(g)
	if cpuFile != nil {
		pprof.StopCPUProfile()
		if cerr := cpuFile.Close(); cerr != nil && err == nil {
			err = cerr // a truncated profile must not exit 0
		}
	}
	if err != nil {
		return err
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		runtime.GC() // flush the final allocation statistics
		werr := pprof.Lookup("allocs").WriteTo(f, 0)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}

	fmt.Print(rep.Table())
	if baseline != nil {
		cmp := bench.Compare(baseline, rep, *tolerance)
		fmt.Printf("\nvs %s:\n%s", *against, cmp.Table())
		if err := cmp.Err(); err != nil {
			// A regressing run must not write its report: with
			// -against X -o X that would replace the baseline with the
			// regressed numbers, and the next run would pass vacuously.
			return err
		}
	}
	if *out != "" {
		if err := rep.Write(*out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench-sim: report written to %s\n", *out)
	}
	return nil
}
