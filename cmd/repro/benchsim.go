package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

// cmdBenchSim benchmarks the simulator itself: it times the dense and
// idle-skip schedulers over a kernel × core-count grid, cross-checking on
// every point that both produce identical simulation results, and writes the
// report to BENCH_machine.json — the performance trajectory future changes
// to the hot loop are diffed against.
func cmdBenchSim(args []string) error {
	fs := flag.NewFlagSet("bench-sim", flag.ContinueOnError)
	kernels := fs.String("kernels", "", "kernel selectors (default: the standard trajectory trio)")
	n := fs.Int("n", 0, "dataset size (0 = grid default)")
	cores := fs.String("cores", "", "comma-separated core counts (default: grid default)")
	seed := fs.Uint64("seed", 1, "workload seed")
	runs := fs.Int("runs", 0, "timing repetitions per point and scheduler, best wins (0 = grid default)")
	out := fs.String("o", "BENCH_machine.json", "report output path (empty: print table only)")
	quick := fs.Bool("quick", false, "seconds-scale grid for CI smoke runs")
	verify := fs.String("verify", "", "load and print an existing report instead of measuring")
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	if *verify != "" {
		rep, err := bench.Load(*verify)
		if err != nil {
			return err
		}
		fmt.Printf("%s: schema %s\n", *verify, rep.Schema)
		fmt.Print(rep.Table())
		return nil
	}

	g := bench.DefaultGrid()
	if *quick {
		g = bench.QuickGrid()
	}
	if *kernels != "" {
		g.Kernels = strings.Split(*kernels, ",")
	}
	if *n > 0 {
		g.N = *n
	}
	if *cores != "" {
		cs, err := parseSizes(*cores)
		if err != nil {
			return err
		}
		g.Cores = cs
	}
	if *runs > 0 {
		g.Runs = *runs
	}
	g.Seed = *seed

	rep, err := bench.Measure(g)
	if err != nil {
		return err
	}
	fmt.Print(rep.Table())
	if *out != "" {
		if err := rep.Write(*out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bench-sim: report written to %s\n", *out)
	}
	return nil
}
