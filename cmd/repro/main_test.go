package main

import (
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/pbbs"
)

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("1, 4,16")
	if err != nil || !reflect.DeepEqual(got, []int{1, 4, 16}) {
		t.Errorf("parseSizes = %v, %v", got, err)
	}
	for _, bad := range []string{"", "x", "0", "-3", "4,,8"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}

func TestParseShortcutAxis(t *testing.T) {
	got, err := parseShortcutAxis("on,off")
	if err != nil || !reflect.DeepEqual(got, []bool{true, false}) {
		t.Errorf("parseShortcutAxis = %v, %v", got, err)
	}
	got, err = parseShortcutAxis("both")
	if err != nil || !reflect.DeepEqual(got, []bool{true, false}) {
		t.Errorf("parseShortcutAxis(both) = %v, %v", got, err)
	}
	if _, err := parseShortcutAxis("maybe"); err == nil {
		t.Error("parseShortcutAxis accepted garbage")
	}
}

func TestParseCaps(t *testing.T) {
	got, err := parseCaps("0,2")
	if err != nil || !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("parseCaps = %v, %v", got, err)
	}
	if _, err := parseCaps("-1"); err == nil {
		t.Error("parseCaps accepted a negative cap")
	}
}

func TestSelectKernels(t *testing.T) {
	all, err := selectKernels(0)
	if err != nil || len(all) != len(pbbs.Kernels()) {
		t.Errorf("selectKernels(0) = %d kernels, %v", len(all), err)
	}
	one, err := selectKernels(2)
	if err != nil || len(one) != 1 || one[0].ID != 2 {
		t.Errorf("selectKernels(2) = %v, %v", one, err)
	}
	if _, err := selectKernels(99); err == nil {
		t.Error("selectKernels accepted an unknown benchmark number")
	}
}

func TestParseSimWorkers(t *testing.T) {
	good := []struct {
		in   string
		want int
	}{
		{"1", 1}, {"4", 4}, {" 4 ", 4},
		{"auto", runtime.GOMAXPROCS(0)}, {"AUTO", runtime.GOMAXPROCS(0)},
	}
	for _, c := range good {
		if got, err := parseSimWorkers(c.in); err != nil || got != c.want {
			t.Errorf("parseSimWorkers(%q) = %d, %v, want %d", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "0", "-1", "-2", "banana", "1.5", "auto2", "0x4"} {
		_, err := captureStderr(t, func() error {
			_, perr := parseSimWorkers(bad)
			if !errors.Is(perr, errUsage) {
				t.Errorf("parseSimWorkers(%q) = %v, want errUsage", bad, perr)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSimWorkersRejectedEverywhere pins the -sim-workers contract on every
// subcommand that takes it: garbage is a usage error (exit 2) raised before
// any simulation or service starts, with the bad value named on stderr.
func TestSimWorkersRejectedEverywhere(t *testing.T) {
	cmds := []struct {
		name string
		run  func([]string) error
	}{
		{"machine", cmdMachine},
		{"sweep", cmdSweep},
		{"bench-sim", cmdBenchSim},
		{"serve", cmdServe},
		{"worker", cmdWorker},
	}
	for _, cmd := range cmds {
		for _, bad := range []string{"0", "-3", "banana"} {
			out, err := captureStderr(t, func() error {
				return cmd.run([]string{"-sim-workers", bad})
			})
			if !errors.Is(err, errUsage) {
				t.Errorf("%s -sim-workers %s = %v, want errUsage", cmd.name, bad, err)
			}
			if !strings.Contains(out, bad) {
				t.Errorf("%s -sim-workers %s: stderr does not name the value:\n%s", cmd.name, bad, out)
			}
		}
	}
}

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		r.Close()
		done <- string(data)
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

// captureStderr runs f with stderr redirected and returns what it printed.
func captureStderr(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		r.Close()
		done <- string(data)
	}()
	ferr := f()
	w.Close()
	os.Stderr = old
	return <-done, ferr
}

// The exit-path tests pin the shared error return: no subcommand or usage
// path calls os.Exit itself, so run() is testable end to end and deferred
// cleanup always executes.

func TestRunUnknownCommand(t *testing.T) {
	out, err := captureStderr(t, func() error { return run([]string{"frobnicate"}) })
	if !errors.Is(err, errUsage) {
		t.Fatalf("run(frobnicate) = %v, want errUsage", err)
	}
	if !strings.Contains(out, `unknown command "frobnicate"`) || !strings.Contains(out, "usage: repro") {
		t.Errorf("unknown-command stderr:\n%s", out)
	}
}

func TestRunNoArgs(t *testing.T) {
	out, err := captureStderr(t, func() error { return run(nil) })
	if !errors.Is(err, errUsage) {
		t.Fatalf("run() = %v, want errUsage", err)
	}
	if !strings.Contains(out, "usage: repro") {
		t.Errorf("no-args stderr:\n%s", out)
	}
}

func TestRunHelp(t *testing.T) {
	for _, arg := range []string{"help", "-h", "--help"} {
		out, err := captureStderr(t, func() error { return run([]string{arg}) })
		if err != nil {
			t.Errorf("run(%s) = %v, want nil", arg, err)
		}
		if !strings.Contains(out, "usage: repro") {
			t.Errorf("%s stderr:\n%s", arg, out)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	_, err := captureStderr(t, func() error { return run([]string{"analytic", "-bogus"}) })
	if !errors.Is(err, errUsage) {
		t.Fatalf("run(analytic -bogus) = %v, want errUsage", err)
	}
}

func TestRunHelpFlag(t *testing.T) {
	_, err := captureStderr(t, func() error { return run([]string{"analytic", "-h"}) })
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("run(analytic -h) = %v, want flag.ErrHelp", err)
	}
}

func TestRunDispatches(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"analytic", "-maxn", "2"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Section 5") {
		t.Errorf("run(analytic) output:\n%s", out)
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{flag.ErrHelp, 0},
		{errUsage, 2},
		{errors.New("boom"), 1},
	}
	for _, c := range cases {
		code := 0
		out, _ := captureStderr(t, func() error { code = exitCode(c.err); return nil })
		if code != c.want {
			t.Errorf("exitCode(%v) = %d, want %d", c.err, code, c.want)
		}
		if c.want == 1 && !strings.Contains(out, "repro: boom") {
			t.Errorf("runtime failure not reported on stderr: %q", out)
		}
	}
}

func TestCmdServeBadAddr(t *testing.T) {
	if err := cmdServe([]string{"-addr", "256.256.256.256:0", "-cache", ""}); err == nil {
		t.Error("serve accepted an unusable listen address")
	}
}

// The subcommand smoke tests exercise flag parsing and dispatch end to end
// on tiny datasets; output correctness is covered by the package tests.

func TestCmdBenchSmoke(t *testing.T) {
	out, err := capture(t, func() error { return cmdBench([]string{"-kernel", "2", "-n", "8"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "quickSort") || !strings.Contains(out, "ok") {
		t.Errorf("bench output:\n%s", out)
	}
}

func TestCmdILPSmoke(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdILP([]string{"-kernel", "10", "-sizes", "8", "-workers", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Fig. 7") {
		t.Errorf("ilp output:\n%s", out)
	}
}

func TestCmdMachineSmoke(t *testing.T) {
	for _, args := range [][]string{
		{"-kernel", "10", "-n", "8", "-cores", "2"},
		{"-kernel", "10", "-n", "8", "-cores", "2", "-dense"},
	} {
		out, err := capture(t, func() error { return cmdMachine(args) })
		if err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if !strings.Contains(out, "rax and memory match emulator") {
			t.Errorf("machine output for %v:\n%s", args, out)
		}
	}
}

func TestCmdAnalyticSmoke(t *testing.T) {
	out, err := capture(t, func() error { return cmdAnalytic([]string{"-maxn", "3"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Section 5") {
		t.Errorf("analytic output:\n%s", out)
	}
}

func TestCmdSweepSmoke(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "s.jsonl")
	args := []string{"-kernels", "10", "-sizes", "8", "-cores", "1,2",
		"-cache", filepath.Join(dir, "cache"), "-o", jsonl}
	out, err := capture(t, func() error { return cmdSweep(args) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "benchmark") {
		t.Errorf("sweep output:\n%s", out)
	}
	if fi, err := os.Stat(jsonl); err != nil || fi.Size() == 0 {
		t.Errorf("sweep JSONL missing or empty: %v", err)
	}
	// Diff mode over the file we just produced: all speedups 1.00.
	out, err = capture(t, func() error {
		return cmdSweep([]string{"-baseline", jsonl, "-against", jsonl})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sweep diff") {
		t.Errorf("sweep diff output:\n%s", out)
	}
}

func TestCmdFuzzSmoke(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return cmdFuzz([]string{"-count", "6", "-workers", "2", "-o", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "programs agree across all substrates") {
		t.Errorf("fuzz output:\n%s", out)
	}
	if ents, err := os.ReadDir(dir); err != nil || len(ents) != 0 {
		t.Errorf("clean campaign wrote reproducers: %v, %v", ents, err)
	}
}

func TestCmdFuzzUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-count", "-1"},
		{"-count", "0"}, // unbounded needs -duration
		{"-workers", "-2"},
	} {
		_, err := captureStderr(t, func() error { return cmdFuzz(args) })
		if !errors.Is(err, errUsage) {
			t.Errorf("fuzz %v = %v, want errUsage", args, err)
		}
	}
}

func TestCmdBenchSimSmoke(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_machine.json")
	out, err := capture(t, func() error {
		return cmdBenchSim([]string{"-quick", "-o", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "speedup") {
		t.Errorf("bench-sim output:\n%s", out)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("bench-sim report missing or empty: %v", err)
	}
	out, err = capture(t, func() error { return cmdBenchSim([]string{"-verify", path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bench-machine-v2") {
		t.Errorf("bench-sim -verify output:\n%s", out)
	}
	if err := cmdBenchSim([]string{"-verify", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("bench-sim -verify accepted a missing file")
	}
}
