package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fabric"
	"repro/internal/machine"
	"repro/internal/server"
	"repro/internal/sweep"
)

// cmdServe runs the long-lived job server: sweeps and machine runs submitted
// over HTTP execute on the shared engine and content-keyed cache, so the
// service and the one-shot CLI produce identical results from the same
// cache directory. It serves until SIGINT/SIGTERM, then shuts down
// gracefully: the listener stops, in-flight requests and running jobs get
// the -grace budget to finish.
//
// The server is also the sweep-fabric coordinator: `repro worker` processes
// register under /fabric/v1/ and submitted sweeps shard across them in
// leased batches, every accepted result merging into the server's cache so
// streamed JSONL stays byte-identical to the single-process path. With no
// workers registered sweeps run on the local engine exactly as before, so
// mounting the fabric costs nothing.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8321", "listen address")
	cacheDir := fs.String("cache", ".sweep-cache", "result cache directory shared with 'repro sweep' (empty disables caching)")
	workers := fs.Int("workers", 0, "measurement workers per job (0 = GOMAXPROCS)")
	jobs := fs.Int("jobs", 2, "jobs executing concurrently; further submissions queue")
	history := fs.Int("history", 256, "finished jobs kept before the oldest are evicted")
	grace := fs.Duration("grace", 10*time.Second, "graceful-shutdown budget for in-flight requests and jobs")
	dense := fs.Bool("dense", false, "use the reference dense scheduler instead of idle-skip")
	simWorkers := fs.String("sim-workers", "1", "parallel-scheduler goroutines per simulation (\"auto\" = GOMAXPROCS; results are bit-identical for every value)")
	pool := fs.Bool("machine-pool", true, "reuse warmed machines across submissions that differ only in inputs")
	lease := fs.Duration("lease", 5*time.Second, "fabric lease TTL: a worker batch unreported past this re-queues")
	batch := fs.Int("batch", 8, "fabric points per worker lease")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	sw, err := parseSimWorkers(*simWorkers)
	if err != nil {
		return err
	}
	if *lease <= 0 {
		return usageErrf("bad -lease %v (want a positive duration)", *lease)
	}
	if *batch < 1 {
		return usageErrf("bad -batch %d (want at least 1)", *batch)
	}

	// The engine is the server's simulation configuration: every submitted
	// job measures through it, so the scheduler choice, the parallel worker
	// count and the warm-machine pool are service-wide settings.
	eng := &sweep.Engine{Workers: *workers, Dense: *dense, SimWorkers: sw}
	if *pool {
		eng.Pool = machine.NewPool()
	}
	if *cacheDir != "" {
		if eng.Cache, err = sweep.NewCache(*cacheDir); err != nil {
			return err
		}
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	coord := &fabric.Coordinator{
		Eng: eng, Cache: eng.Cache, LeaseTTL: *lease, Batch: *batch, Log: log,
	}
	srv := server.New(server.Config{
		Engine: eng, Runner: coord, Log: log,
		MaxHistory: *history, MaxConcurrentJobs: *jobs,
	})
	// The fabric protocol mounts beside the API on the same listener; its
	// high-frequency worker polls skip the request-logging middleware.
	mux := http.NewServeMux()
	mux.Handle("/fabric/v1/", coord.Handler())
	mux.Handle("/", srv.Handler())
	hs := &http.Server{Handler: mux}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	log.Info("serving", "addr", ln.Addr().String(), "cache", *cacheDir, "jobs", *jobs, "history", *history, "simWorkers", sw, "machinePool", *pool, "lease", *lease, "batch", *batch)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	log.Info("shutting down", "grace", *grace)
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	if err := srv.Drain(sctx); err != nil {
		return fmt.Errorf("serve: jobs still running after %s", *grace)
	}
	log.Info("stopped")
	return nil
}
