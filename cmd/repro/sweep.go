package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/machine"
	"repro/internal/pbbs"
	"repro/internal/sweep"
)

// parseShortcutAxis resolves the -shortcut flag into the sweep axis.
func parseShortcutAxis(s string) ([]bool, error) {
	var out []bool
	for _, f := range strings.Split(s, ",") {
		switch strings.TrimSpace(f) {
		case "on", "true", "1":
			out = append(out, true)
		case "off", "false", "0":
			out = append(out, false)
		case "both":
			out = append(out, true, false)
		default:
			return nil, fmt.Errorf("bad -shortcut value %q (want on|off|both)", f)
		}
	}
	return out, nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	kernels := fs.String("kernels", "all", "kernel selectors: IDs or name substrings, comma-separated")
	sizes := fs.String("sizes", "64", "comma-separated dataset sizes")
	cores := fs.String("cores", "1,4,16", "comma-separated core counts")
	topos := fs.String("topos", "crossbar", "comma-separated NoC topologies (crossbar,ring,mesh)")
	shortcut := fs.String("shortcut", "on", "call-level shortcut axis: on, off or both")
	maxsec := fs.String("maxsec", "0", "comma-separated MaxSectionsPerCore caps (0 = spread)")
	seed := fs.Uint64("seed", 1, "workload seed")
	workers := fs.Int("workers", 0, "measurement workers (0 = GOMAXPROCS)")
	out := fs.String("o", "", "write results incrementally to this JSONL file")
	cacheDir := fs.String("cache", ".sweep-cache", "result cache directory (empty disables caching)")
	baseline := fs.String("baseline", "", "baseline sweep JSONL to diff against")
	against := fs.String("against", "", "diff -baseline against this sweep file instead of running")
	dense := fs.Bool("dense", false, "use the reference dense scheduler instead of idle-skip")
	simWorkers := fs.String("sim-workers", "1", "parallel-scheduler goroutines per simulation (\"auto\" = GOMAXPROCS; results are bit-identical for every value)")
	pool := fs.Bool("machine-pool", true, "reuse warmed machines across points that differ only in inputs")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	sw, err := parseSimWorkers(*simWorkers)
	if err != nil {
		return err
	}

	// Pure diff mode: two existing files, no simulation.
	if *against != "" {
		if *baseline == "" {
			return fmt.Errorf("-against needs -baseline")
		}
		base, err := sweep.ReadFile(*baseline)
		if err != nil {
			return err
		}
		cur, err := sweep.ReadFile(*against)
		if err != nil {
			return err
		}
		fmt.Printf("sweep diff — baseline %s vs %s\n", *baseline, *against)
		fmt.Print(sweep.DiffTable(sweep.Diff(base, cur)))
		return nil
	}

	ks, err := pbbs.FindAll(*kernels)
	if err != nil {
		return err
	}
	spec := &sweep.Spec{Seed: *seed}
	for _, k := range ks {
		spec.Kernels = append(spec.Kernels, k.ID)
	}
	if spec.Sizes, err = parseSizes(*sizes); err != nil {
		return err
	}
	if spec.Cores, err = parseSizes(*cores); err != nil {
		return err
	}
	for _, t := range strings.Split(*topos, ",") {
		spec.Topologies = append(spec.Topologies, strings.TrimSpace(t))
	}
	if spec.Shortcut, err = parseShortcutAxis(*shortcut); err != nil {
		return err
	}
	if spec.MaxSections, err = parseCaps(*maxsec); err != nil {
		return err
	}

	eng := &sweep.Engine{Workers: *workers, Dense: *dense, SimWorkers: sw}
	if *pool {
		eng.Pool = machine.NewPool()
	}
	if *cacheDir != "" {
		if eng.Cache, err = sweep.NewCache(*cacheDir); err != nil {
			return err
		}
	}

	var jw *sweep.JSONLWriter
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		jw = sweep.NewJSONLWriter(f)
	}
	var emitErr error
	recs, runErr := eng.Run(spec, func(r sweep.Record) {
		if jw != nil && emitErr == nil {
			emitErr = jw.Write(r)
		}
	})
	if recs == nil && runErr != nil {
		return runErr // bad grid spec: nothing ran
	}
	if emitErr != nil {
		return emitErr
	}
	fmt.Print(sweep.Table(recs))
	fmt.Fprintf(os.Stderr, "sweep: %s\n", eng.Stats())

	if *baseline != "" {
		base, err := sweep.ReadFile(*baseline)
		if err != nil {
			return err
		}
		fmt.Printf("\nsweep diff — baseline %s vs this run\n", *baseline)
		fmt.Print(sweep.DiffTable(sweep.Diff(base, recs)))
	}
	return runErr
}

// parseCaps parses the -maxsec axis: non-negative comma-separated ints.
func parseCaps(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err != nil || n < 0 {
			return nil, fmt.Errorf("bad -maxsec value %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}
