package gofront

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"

	"repro/internal/minic"
)

// lowerer translates the checked Go subset of one kernel file into a minic
// AST for a fixed dataset size n. Compile-time constants (N, //repro:const
// names) become integer literals, and expressions built purely from them
// fold, so one Go definition specialises into the per-n program text the
// hand-written kernels used to spell out.
type lowerer struct {
	k      *Kernel
	consts map[string]uint64
	prog   *minic.Program
	sigs   map[string]*minic.Function
	scopes []map[string]*minic.LocalVar
	arrays map[string]*minic.GlobalVar
	scals  map[string]*minic.GlobalVar
}

// val is a lowered expression plus the facts the lowerer tracks itself: the
// inferred mini-C type (mirrors minic's checker, drives := inference) and
// whether the subtree is a foldable compile-time constant.
type val struct {
	e *minic.Expr
	t *minic.Type
	// num: e is a bare integer literal; repro: the subtree mentions at
	// least one annotation constant. Folding requires both — literals the
	// author wrote (s*31, &255) stay literal in the output.
	num   bool
	repro bool
}

func (k *Kernel) lowerProgram(n int) (*minic.Program, error) {
	consts, err := k.constsFor(n)
	if err != nil {
		return nil, err
	}
	lo := &lowerer{
		k:      k,
		consts: consts,
		prog:   minic.NewProgram(),
		sigs:   make(map[string]*minic.Function),
		arrays: make(map[string]*minic.GlobalVar),
		scals:  make(map[string]*minic.GlobalVar),
	}
	// Globals first: arrays get their per-n concrete lengths.
	byName := make(map[string]Array, len(k.Arrays))
	for _, a := range k.Arrays {
		byName[a.Name] = a
	}
	for _, decl := range k.decls {
		d, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range d.Specs {
			vs := spec.(*ast.ValueSpec)
			name := vs.Names[0].Name
			if a, isArr := byName[name]; isArr {
				ln, err := a.Len.Eval(n)
				if err != nil {
					return nil, k.errAt(vs.Pos(), "array %q length: %v", name, err)
				}
				if ln < 1 {
					return nil, k.errAt(vs.Pos(), "array %q length %d is not positive", name, ln)
				}
				elem := lo.scalarType(vs.Type.(*ast.ArrayType).Elt.(*ast.Ident).Name)
				g := &minic.GlobalVar{Name: name, Type: minic.ArrayType(elem, ln)}
				if err := lo.prog.AddGlobal(g); err != nil {
					return nil, k.errAt(vs.Pos(), "%v", err)
				}
				lo.arrays[name] = g
			} else {
				g := &minic.GlobalVar{Name: name, Type: lo.scalarType(vs.Type.(*ast.Ident).Name)}
				if err := lo.prog.AddGlobal(g); err != nil {
					return nil, k.errAt(vs.Pos(), "%v", err)
				}
				lo.scals[name] = g
			}
		}
	}
	// Signature pre-pass so calls can appear before definitions.
	for _, decl := range k.decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		f, err := lo.signature(fd)
		if err != nil {
			return nil, err
		}
		lo.sigs[fd.Name.Name] = f
	}
	// Bodies, in file order.
	for _, decl := range k.decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		f := lo.sigs[fd.Name.Name]
		body, err := lo.funcBody(fd, f)
		if err != nil {
			return nil, err
		}
		f.Body = body
		if err := lo.prog.AddFunction(f); err != nil {
			return nil, k.errAt(fd.Pos(), "%v", err)
		}
	}
	return lo.prog, nil
}

func (lo *lowerer) scalarType(goName string) *minic.Type {
	if goName == "int64" {
		return minic.LongType()
	}
	return minic.ULongType()
}

// signature lowers a function header. The //repro:kernel entry is renamed
// main — minic's required entry point — and must return uint64, the checksum
// the machine reports.
func (lo *lowerer) signature(fd *ast.FuncDecl) (*minic.Function, error) {
	k := lo.k
	name := fd.Name.Name
	isEntry := fd == k.entry
	if isEntry {
		name = "main"
	} else if name == "main" {
		return nil, k.errAt(fd.Pos(), "helper named main collides with the lowered entry point")
	}
	f := &minic.Function{Name: name, Ret: minic.VoidType()}
	ft := fd.Type
	if ft.TypeParams != nil {
		return nil, k.errAt(fd.Pos(), "type parameters are not supported")
	}
	for _, field := range ft.Params.List {
		id, ok := field.Type.(*ast.Ident)
		if !ok || (id.Name != "uint64" && id.Name != "int64") {
			return nil, k.errAt(field.Pos(), "parameter type must be uint64 or int64")
		}
		if len(field.Names) == 0 {
			return nil, k.errAt(field.Pos(), "parameters must be named")
		}
		for _, pn := range field.Names {
			f.Params = append(f.Params, &minic.LocalVar{
				Name:  pn.Name,
				Type:  lo.scalarType(id.Name),
				Param: len(f.Params),
			})
		}
	}
	if ft.Results != nil {
		if len(ft.Results.List) != 1 || len(ft.Results.List[0].Names) != 0 {
			return nil, k.errAt(ft.Results.Pos(), "at most one unnamed result is supported")
		}
		id, ok := ft.Results.List[0].Type.(*ast.Ident)
		if !ok || (id.Name != "uint64" && id.Name != "int64") {
			return nil, k.errAt(ft.Results.Pos(), "result type must be uint64 or int64")
		}
		f.Ret = lo.scalarType(id.Name)
	}
	if isEntry && f.Ret != minic.ULongType() {
		return nil, k.errAt(fd.Pos(), "the kernel entry function must return uint64 (the checksum)")
	}
	if isEntry && len(f.Params) != 0 {
		return nil, k.errAt(fd.Pos(), "the kernel entry function takes no parameters")
	}
	return f, nil
}

// ---- statements ----

func (lo *lowerer) push() { lo.scopes = append(lo.scopes, make(map[string]*minic.LocalVar)) }
func (lo *lowerer) pop()  { lo.scopes = lo.scopes[:len(lo.scopes)-1] }

func (lo *lowerer) lookup(name string) *minic.LocalVar {
	for i := len(lo.scopes) - 1; i >= 0; i-- {
		if v := lo.scopes[i][name]; v != nil {
			return v
		}
	}
	return nil
}

// funcBody lowers a function body. Parameters share the body's outermost
// scope — the rule in Go and in minic's checker alike — so the scope is set
// up here rather than through block.
func (lo *lowerer) funcBody(fd *ast.FuncDecl, f *minic.Function) ([]*minic.Stmt, error) {
	scope := make(map[string]*minic.LocalVar, len(f.Params))
	for _, p := range f.Params {
		scope[p.Name] = p
	}
	lo.scopes = []map[string]*minic.LocalVar{scope}
	defer func() { lo.scopes = nil }()
	out := make([]*minic.Stmt, 0, len(fd.Body.List))
	for _, s := range fd.Body.List {
		ms, err := lo.stmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ms)
	}
	return out, nil
}

// block lowers a Go block into a statement list, opening a fresh scope.
// Bodies attach to if/for/function nodes as plain lists: minic.Format
// renders them identically to parser-built blocks, which is what keeps the
// lowered text byte-identical to the hand-written kernels.
func (lo *lowerer) block(b *ast.BlockStmt) ([]*minic.Stmt, error) {
	lo.push()
	defer lo.pop()
	out := make([]*minic.Stmt, 0, len(b.List))
	for _, s := range b.List {
		ms, err := lo.stmt(s)
		if err != nil {
			return nil, err
		}
		out = append(out, ms)
	}
	return out, nil
}

func (lo *lowerer) stmt(s ast.Stmt) (*minic.Stmt, error) {
	k := lo.k
	switch st := s.(type) {
	case *ast.AssignStmt:
		return lo.assign(st)
	case *ast.IncDecStmt:
		// i++ lowers to the assignment i = (i + 1) — the idiom the
		// hand-written kernels' for-loops used. The operand lowers twice
		// so the two sides are independent trees.
		op := "+"
		if st.Tok == token.DEC {
			op = "-"
		}
		l, err := lo.lvalue(st.X)
		if err != nil {
			return nil, err
		}
		l2, err := lo.lvalue(st.X)
		if err != nil {
			return nil, err
		}
		one := &minic.Expr{Kind: minic.ExprNum, Num: 1}
		rhs := &minic.Expr{Kind: minic.ExprBinary, Op: op, L: l2.e, R: one}
		return &minic.Stmt{Kind: minic.StmtExpr, E: &minic.Expr{Kind: minic.ExprAssign, L: l.e, R: rhs}}, nil
	case *ast.IfStmt:
		if st.Init != nil {
			return nil, k.errAt(st.Pos(), "if statements with init clauses are not supported")
		}
		cond, err := lo.expr(st.Cond)
		if err != nil {
			return nil, err
		}
		body, err := lo.block(st.Body)
		if err != nil {
			return nil, err
		}
		ms := &minic.Stmt{Kind: minic.StmtIf, E: cond.e, Body: body}
		switch el := st.Else.(type) {
		case nil:
		case *ast.BlockStmt:
			ms.Else, err = lo.block(el)
			if err != nil {
				return nil, err
			}
		case *ast.IfStmt:
			chained, err := lo.stmt(el)
			if err != nil {
				return nil, err
			}
			ms.Else = []*minic.Stmt{chained}
		default:
			return nil, k.errAt(st.Else.Pos(), "unsupported else clause")
		}
		return ms, nil
	case *ast.ForStmt:
		if st.Cond == nil {
			return nil, k.errAt(st.Pos(), "for loops need a condition")
		}
		if st.Init == nil && st.Post == nil {
			// Cond-only Go for is mini-C's while.
			cond, err := lo.expr(st.Cond)
			if err != nil {
				return nil, err
			}
			body, err := lo.block(st.Body)
			if err != nil {
				return nil, err
			}
			return &minic.Stmt{Kind: minic.StmtWhile, E: cond.e, Body: body}, nil
		}
		if st.Init == nil || st.Post == nil {
			return nil, k.errAt(st.Pos(), "for loops are either cond-only or have both init and post")
		}
		// The init clause scopes over cond/post/body, as in both languages.
		lo.push()
		defer lo.pop()
		init, err := lo.stmt(st.Init)
		if err != nil {
			return nil, err
		}
		cond, err := lo.expr(st.Cond)
		if err != nil {
			return nil, err
		}
		post, err := lo.stmt(st.Post)
		if err != nil {
			return nil, err
		}
		body, err := lo.block(st.Body)
		if err != nil {
			return nil, err
		}
		return &minic.Stmt{Kind: minic.StmtFor, Init: init, E: cond.e, Post: post, Body: body}, nil
	case *ast.ReturnStmt:
		ms := &minic.Stmt{Kind: minic.StmtReturn}
		switch len(st.Results) {
		case 0:
		case 1:
			v, err := lo.expr(st.Results[0])
			if err != nil {
				return nil, err
			}
			ms.E = v.e
		default:
			return nil, k.errAt(st.Pos(), "multiple return values are not supported")
		}
		return ms, nil
	case *ast.BranchStmt:
		if st.Label != nil {
			return nil, k.errAt(st.Pos(), "labeled branches are not supported")
		}
		switch st.Tok {
		case token.BREAK:
			return &minic.Stmt{Kind: minic.StmtBreak}, nil
		case token.CONTINUE:
			return &minic.Stmt{Kind: minic.StmtContinue}, nil
		}
		return nil, k.errAt(st.Pos(), "unsupported branch %s", st.Tok)
	case *ast.BlockStmt:
		body, err := lo.block(st)
		if err != nil {
			return nil, err
		}
		return &minic.Stmt{Kind: minic.StmtBlock, Body: body}, nil
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if !ok {
			return nil, k.errAt(st.Pos(), "only call expressions can stand alone")
		}
		v, err := lo.expr(call)
		if err != nil {
			return nil, err
		}
		if v.e.Kind != minic.ExprCall {
			return nil, k.errAt(st.Pos(), "only helper calls can stand alone")
		}
		return &minic.Stmt{Kind: minic.StmtExpr, E: v.e}, nil
	}
	return nil, k.errAt(s.Pos(), "unsupported statement")
}

// assign lowers :=, =, and the compound assignment operators.
func (lo *lowerer) assign(st *ast.AssignStmt) (*minic.Stmt, error) {
	k := lo.k
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return nil, k.errAt(st.Pos(), "multi-assignment is not supported")
	}
	if st.Tok == token.DEFINE {
		id, ok := st.Lhs[0].(*ast.Ident)
		if !ok {
			return nil, k.errAt(st.Lhs[0].Pos(), ":= needs a plain identifier")
		}
		v, err := lo.expr(st.Rhs[0])
		if err != nil {
			return nil, err
		}
		if !v.t.IsInteger() {
			return nil, k.errAt(st.Pos(), "cannot declare %q from a %s value", id.Name, v.t)
		}
		cur := lo.scopes[len(lo.scopes)-1]
		if cur[id.Name] != nil {
			return nil, k.errAt(st.Pos(), "%q redeclared in this scope", id.Name)
		}
		if lo.lookupGlobal(id.Name) != nil && lo.lookup(id.Name) == nil {
			// Shadowing locals is fine (both languages scope the same way);
			// shadowing a file-scope var is almost certainly a typo'd =.
			return nil, k.errAt(st.Pos(), "%q shadows a file-scope var; use = to assign it", id.Name)
		}
		decl := &minic.LocalVar{Name: id.Name, Type: v.t, Param: -1}
		cur[id.Name] = decl
		return &minic.Stmt{Kind: minic.StmtDecl, Decl: decl, DeclInit: v.e}, nil
	}
	var op string
	switch st.Tok {
	case token.ASSIGN:
	case token.ADD_ASSIGN:
		op = "+"
	case token.SUB_ASSIGN:
		op = "-"
	case token.MUL_ASSIGN:
		op = "*"
	case token.QUO_ASSIGN:
		op = "/"
	case token.REM_ASSIGN:
		op = "%"
	case token.AND_ASSIGN:
		op = "&"
	case token.OR_ASSIGN:
		op = "|"
	case token.XOR_ASSIGN:
		op = "^"
	case token.SHL_ASSIGN:
		op = "<<"
	case token.SHR_ASSIGN:
		op = ">>"
	default:
		return nil, k.errAt(st.Pos(), "unsupported assignment %s", st.Tok)
	}
	l, err := lo.lvalue(st.Lhs[0])
	if err != nil {
		return nil, err
	}
	r, err := lo.expr(st.Rhs[0])
	if err != nil {
		return nil, err
	}
	e := &minic.Expr{Kind: minic.ExprAssign, Op: op, L: l.e, R: r.e}
	return &minic.Stmt{Kind: minic.StmtExpr, E: e}, nil
}

// lvalue lowers an assignable expression: a scalar variable or an indexed
// global array element.
func (lo *lowerer) lvalue(x ast.Expr) (val, error) {
	v, err := lo.expr(x)
	if err != nil {
		return val{}, err
	}
	switch v.e.Kind {
	case minic.ExprVar:
		if v.num {
			return val{}, lo.k.errAt(x.Pos(), "cannot assign to a constant")
		}
		if v.t.Kind == minic.TypeArray {
			return val{}, lo.k.errAt(x.Pos(), "cannot assign a whole array")
		}
		return v, nil
	case minic.ExprIndex:
		return v, nil
	}
	return val{}, lo.k.errAt(x.Pos(), "not assignable")
}

func (lo *lowerer) lookupGlobal(name string) *minic.GlobalVar {
	if g := lo.arrays[name]; g != nil {
		return g
	}
	return lo.scals[name]
}

// ---- expressions ----

// litType is minic's literal typing rule: a literal is long unless it does
// not fit in int64.
func litType(v uint64) *minic.Type {
	if int64(v) >= 0 {
		return minic.LongType()
	}
	return minic.ULongType()
}

func num(v uint64) *minic.Expr { return &minic.Expr{Kind: minic.ExprNum, Num: v} }

func (lo *lowerer) expr(x ast.Expr) (val, error) {
	k := lo.k
	switch e := x.(type) {
	case *ast.BasicLit:
		if e.Kind != token.INT {
			return val{}, k.errAt(e.Pos(), "only integer literals are supported")
		}
		v, err := strconv.ParseUint(e.Value, 0, 64)
		if err != nil {
			return val{}, k.errAt(e.Pos(), "bad literal %s", e.Value)
		}
		return val{e: num(v), t: litType(v), num: true}, nil
	case *ast.Ident:
		if v := lo.lookup(e.Name); v != nil {
			return val{e: &minic.Expr{Kind: minic.ExprVar, Name: e.Name}, t: v.Type}, nil
		}
		if c, ok := lo.consts[e.Name]; ok {
			// Annotation constants lower to literals; repro marks the
			// subtree as foldable.
			return val{e: num(c), t: litType(c), num: true, repro: true}, nil
		}
		if g := lo.lookupGlobal(e.Name); g != nil {
			return val{e: &minic.Expr{Kind: minic.ExprVar, Name: e.Name}, t: g.Type}, nil
		}
		return val{}, k.errAt(e.Pos(), "undeclared identifier %q", e.Name)
	case *ast.ParenExpr:
		// Parenthesisation is erased: minic.Format fully re-parenthesises
		// from AST structure, so source parens carry no information.
		return lo.expr(e.X)
	case *ast.UnaryExpr:
		var op string
		switch e.Op {
		case token.SUB:
			op = "-"
		case token.XOR:
			op = "~"
		case token.NOT:
			op = "!"
		default:
			return val{}, k.errAt(e.Pos(), "unsupported unary operator %s", e.Op)
		}
		v, err := lo.expr(e.X)
		if err != nil {
			return val{}, err
		}
		if !v.t.IsInteger() {
			return val{}, k.errAt(e.Pos(), "unary %s on %s", op, v.t)
		}
		t := v.t
		if op == "!" {
			t = minic.LongType()
		}
		return val{e: &minic.Expr{Kind: minic.ExprUnary, Op: op, L: v.e}, t: t}, nil
	case *ast.BinaryExpr:
		return lo.binary(e)
	case *ast.CallExpr:
		return lo.call(e)
	case *ast.IndexExpr:
		base, err := lo.expr(e.X)
		if err != nil {
			return val{}, err
		}
		if base.t.Kind != minic.TypeArray {
			return val{}, k.errAt(e.X.Pos(), "indexing a non-array %s", base.t)
		}
		idx, err := lo.expr(e.Index)
		if err != nil {
			return val{}, err
		}
		if !idx.t.IsInteger() {
			return val{}, k.errAt(e.Index.Pos(), "array index must be an integer")
		}
		ie := &minic.Expr{Kind: minic.ExprIndex, L: base.e, R: idx.e}
		return val{e: ie, t: base.t.Elem}, nil
	}
	return val{}, k.errAt(x.Pos(), "unsupported expression")
}

var binOps = map[token.Token]string{
	token.ADD: "+", token.SUB: "-", token.MUL: "*", token.QUO: "/", token.REM: "%",
	token.AND: "&", token.OR: "|", token.XOR: "^", token.SHL: "<<", token.SHR: ">>",
	token.LSS: "<", token.LEQ: "<=", token.GTR: ">", token.GEQ: ">=",
	token.EQL: "==", token.NEQ: "!=", token.LAND: "&&", token.LOR: "||",
}

func (lo *lowerer) binary(e *ast.BinaryExpr) (val, error) {
	k := lo.k
	op, ok := binOps[e.Op]
	if !ok {
		return val{}, k.errAt(e.Pos(), "unsupported binary operator %s", e.Op)
	}
	l, err := lo.expr(e.X)
	if err != nil {
		return val{}, err
	}
	r, err := lo.expr(e.Y)
	if err != nil {
		return val{}, err
	}
	// Constant folding: both sides literal, at least one rooted in an
	// annotation constant. Arithmetic happens in Go's int64, matching what
	// the hand-written templates computed at sprintf time (e.g. N-1 -> 63).
	if l.num && r.num && (l.repro || r.repro) {
		if folded, ok, err := foldBin(op, l.e.Num, r.e.Num); err != nil {
			return val{}, k.errAt(e.Pos(), "constant expression: %v", err)
		} else if ok {
			return val{e: num(folded), t: litType(folded), num: true, repro: true}, nil
		}
	}
	if !l.t.IsInteger() || !r.t.IsInteger() {
		return val{}, k.errAt(e.Pos(), "invalid operands to %s: %s and %s", op, l.t, r.t)
	}
	var t *minic.Type
	switch op {
	case "<<", ">>":
		t = l.t
	case "<", "<=", ">", ">=", "==", "!=", "&&", "||":
		t = minic.LongType()
	default:
		if l.t == minic.ULongType() || r.t == minic.ULongType() {
			t = minic.ULongType()
		} else {
			t = minic.LongType()
		}
	}
	return val{e: &minic.Expr{Kind: minic.ExprBinary, Op: op, L: l.e, R: r.e}, t: t}, nil
}

// foldBin folds an arithmetic operator over two literals in int64, the
// arithmetic the legacy fmt.Sprintf templates used. Comparisons do not fold
// (ok=false): they stay in the output.
func foldBin(op string, a, b uint64) (uint64, bool, error) {
	x, y := int64(a), int64(b)
	var v int64
	switch op {
	case "+":
		v = x + y
	case "-":
		v = x - y
	case "*":
		v = x * y
	case "/":
		if y == 0 {
			return 0, false, fmt.Errorf("division by zero")
		}
		v = x / y
	case "%":
		if y == 0 {
			return 0, false, fmt.Errorf("modulo by zero")
		}
		v = x % y
	case "&":
		v = x & y
	case "|":
		v = x | y
	case "^":
		v = x ^ y
	case "<<":
		if y < 0 || y > 63 {
			return 0, false, fmt.Errorf("shift count %d out of range", y)
		}
		v = x << y
	case ">>":
		if y < 0 || y > 63 {
			return 0, false, fmt.Errorf("shift count %d out of range", y)
		}
		v = x >> y
	default:
		return 0, false, nil
	}
	return uint64(v), true, nil
}

// call lowers uint64(x)/int64(x) conversions (erased, but they force the
// inferred type — the only way to make a := declaration unsigned) and helper
// function calls.
func (lo *lowerer) call(e *ast.CallExpr) (val, error) {
	k := lo.k
	id, ok := e.Fun.(*ast.Ident)
	if !ok {
		return val{}, k.errAt(e.Fun.Pos(), "unsupported call target")
	}
	switch id.Name {
	case "uint64", "int64":
		if len(e.Args) != 1 {
			return val{}, k.errAt(e.Pos(), "%s conversion takes one argument", id.Name)
		}
		v, err := lo.expr(e.Args[0])
		if err != nil {
			return val{}, err
		}
		if !v.t.IsInteger() {
			return val{}, k.errAt(e.Pos(), "cannot convert %s to %s", v.t, id.Name)
		}
		v.t = lo.scalarType(id.Name)
		return v, nil
	}
	if fd := lo.sigs[id.Name]; fd != nil && fd.Name != "main" {
		if len(e.Args) != len(fd.Params) {
			return val{}, k.errAt(e.Pos(), "%s takes %d arguments, got %d", id.Name, len(fd.Params), len(e.Args))
		}
		args := make([]*minic.Expr, len(e.Args))
		for i, a := range e.Args {
			v, err := lo.expr(a)
			if err != nil {
				return val{}, err
			}
			if !v.t.IsInteger() {
				return val{}, k.errAt(a.Pos(), "argument %d of %s is %s, want an integer", i+1, id.Name, v.t)
			}
			args[i] = v.e
		}
		ce := &minic.Expr{Kind: minic.ExprCall, Name: fd.Name, Args: args}
		return val{e: ce, t: fd.Ret}, nil
	}
	if id.Name == k.entry.Name.Name {
		return val{}, k.errAt(e.Pos(), "the entry function cannot be called from helpers")
	}
	return val{}, k.errAt(e.Pos(), "call of undefined function %q", id.Name)
}
