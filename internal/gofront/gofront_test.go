package gofront

import (
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/isa"
	"repro/internal/minic"
)

// emulate runs a compiled program on the sequential emulator.
func emulate(t *testing.T, prog *isa.Program, in map[string][]uint64) uint64 {
	t.Helper()
	res, err := backend.NewEmulator().Run(prog, in, false)
	if err != nil {
		t.Fatalf("emulator: %v", err)
	}
	return res.RAX
}

// scan is the test harness: scan a kernel file, failing the test on error.
func scan(t *testing.T, src string) *Kernel {
	t.Helper()
	k, err := Scan("test.go", []byte(src))
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return k
}

// sumKernel is a minimal end-to-end kernel: one generated array, one const,
// helpers, signed and unsigned locals.
const sumKernel = `package kernels

//repro:array len=n gen=u32
var a []uint64

func add(x uint64, y uint64) uint64 {
	return x + y
}

//repro:kernel id=7 name=test/sum minn=2
//repro:const Half = n / 2
func sum() uint64 {
	s := uint64(0)
	for i := 0; i < N; i++ {
		s = add(s, a[i])
	}
	if N > 1 {
		s = s + Half
	}
	return s
}
`

func TestScanMetadata(t *testing.T) {
	k := scan(t, sumKernel)
	if k.ID != 7 || k.Name != "test/sum" || k.MinN != 2 {
		t.Errorf("metadata = %d %q %d", k.ID, k.Name, k.MinN)
	}
	if len(k.Arrays) != 1 || k.Arrays[0].Name != "a" || k.Arrays[0].Gen != GenU32 {
		t.Errorf("arrays = %+v", k.Arrays)
	}
	if len(k.Consts) != 1 || k.Consts[0].Name != "Half" {
		t.Errorf("consts = %+v", k.Consts)
	}
	if v, err := k.Consts[0].Expr.Eval(10); err != nil || v != 5 {
		t.Errorf("Half(10) = %d, %v", v, err)
	}
}

func TestSourceIsCanonicalAndFolded(t *testing.T) {
	k := scan(t, sumKernel)
	src, err := k.Source(8)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical-form fixpoint: the lowering must emit exactly what
	// minic.Format produces, because golden pins and cache-key stability
	// both ride on that surface.
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("lowered source does not parse: %v\n%s", err, src)
	}
	if canon := minic.Format(prog); canon != src {
		t.Errorf("lowered source is not Format-canonical:\n--- lowered\n%s\n--- canonical\n%s", src, canon)
	}
	for _, want := range []string{
		"unsigned long a[8];",      // len=n evaluated
		"unsigned long s = 0;",     // uint64(0) cast erased, type kept
		"for (long i = 0; i < 8",   // N folded to a literal
		"s = (s + 4);",             // Half folded (8/2)
		"s = add(s, a[i]);",        // helper call survives
		"unsigned long main(void)", // entry renamed
	} {
		if !strings.Contains(src, want) {
			t.Errorf("lowered source missing %q:\n%s", want, src)
		}
	}
	if strings.Contains(src, "Half") || strings.Contains(src, "N") {
		t.Errorf("annotation constants leaked into the lowering:\n%s", src)
	}
}

func TestAuthorLiteralsDoNotFold(t *testing.T) {
	k := scan(t, `package kernels

//repro:array len=n gen=u32
var a []uint64

//repro:kernel id=1 name=test/mix minn=2
func mix() uint64 {
	s := uint64(0)
	for i := 0; i < N; i++ {
		s = s*31 + a[i]
	}
	return s
}
`)
	src, err := k.Source(4)
	if err != nil {
		t.Fatal(err)
	}
	// 31 is an author literal with no annotation constant in the subtree:
	// it must stay symbolic even though both operands of N-ary folds would
	// be literal at this point.
	if !strings.Contains(src, "s = ((s * 31) + a[i]);") {
		t.Errorf("mix body changed:\n%s", src)
	}
}

func TestRefInterpretsLoweredAST(t *testing.T) {
	k := scan(t, sumKernel)
	in := map[string][]uint64{"a": {10, 20, 30, 40}}
	got, err := k.Ref(4, in)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(10 + 20 + 30 + 40 + 2); got != want {
		t.Errorf("Ref = %d, want %d", got, want)
	}
}

func TestRefMatchesEmulatedProgram(t *testing.T) {
	// The central invariant: interpreting the AST and emulating the
	// compiled program must agree, because they are the same tree.
	k := scan(t, `package kernels

//repro:array len=n gen=u32
var a []uint64

//repro:kernel id=1 name=test/semantics minn=4
func semantics() uint64 {
	s := uint64(0)
	neg := int64(0) - 3
	for i := 0; i < N; i++ {
		v := a[i] ^ uint64(neg>>1)
		if v%3 != 0 && v > 7 {
			s = s + (v << 65)
		} else {
			s = s*13 + v
		}
	}
	return s
}
`)
	src, err := k.Source(6)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := minic.Compile(src, minic.ModeCall)
	if err != nil {
		t.Fatal(err)
	}
	in := map[string][]uint64{"a": {3, 9, 250, 8, 21, 5}}
	want, err := k.Ref(6, in)
	if err != nil {
		t.Fatal(err)
	}
	res := emulate(t, prog, in)
	if res != want {
		t.Errorf("emulator %d, interpreter %d", res, want)
	}
}

func TestInterpSemantics(t *testing.T) {
	cases := []struct {
		name string
		body string
		want uint64
	}{
		// Shift counts mask to 6 bits, exactly like the hardware.
		{"shift-mask", "return uint64(1) << 65", 2},
		// Signed right shift is arithmetic; unsigned is logical.
		{"sar", "x := int64(0) - 8\nreturn uint64(x >> 2)", 0xfffffffffffffffe},
		{"shr", "x := uint64(0) - 8\nreturn (x >> 2)", 0x3ffffffffffffffe},
		// Signed vs unsigned comparison follows the operand types.
		{"signed-cmp", "x := int64(0) - 1\nif x < 1 {\n\treturn 1\n}\nreturn 0", 1},
		{"unsigned-cmp", "x := uint64(0) - 1\nif x < 1 {\n\treturn 1\n}\nreturn 0", 0},
		// Short-circuit: the divide on the right must not execute.
		{"short-circuit", "z := uint64(0)\nif z != 0 && 10/z > 0 {\n\treturn 9\n}\nreturn 1", 1},
		// Compound assignment and while-lowered loops.
		{"compound", "s := uint64(1)\nfor s < 100 {\n\ts *= 3\n}\nreturn s", 243},
		{"break-continue", "s := uint64(0)\nfor i := 0; i < 100; i++ {\n\tif i == 5 {\n\t\tbreak\n\t}\n\tif i == 2 {\n\t\tcontinue\n\t}\n\ts = s + uint64(i)\n}\nreturn s", 0 + 1 + 3 + 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			k := scan(t, "package kernels\n\n//repro:kernel id=1 name=test/"+c.name+" minn=2\nfunc f() uint64 {\n\t"+
				strings.ReplaceAll(c.body, "\n", "\n\t")+"\n}\n")
			got, err := k.Ref(2, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("got %d, want %d", got, c.want)
			}
		})
	}
}

func TestInterpFaults(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"div-zero", "z := uint64(0)\nreturn 10 / z", "division by zero"},
		{"oob", "a[N] = 1\nreturn 0", "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			k := scan(t, "package kernels\n\n//repro:array len=n\nvar a []uint64\n\n//repro:kernel id=1 name=test/"+c.name+" minn=2\nfunc f() uint64 {\n\t"+
				strings.ReplaceAll(c.body, "\n", "\n\t")+"\n}\n")
			_, err := k.Ref(4, nil)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("err = %v, want %q", err, c.wantErr)
			}
		})
	}
}

func TestScanErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"no-kernel", "package kernels\n\nfunc f() uint64 {\n\treturn 0\n}\n", "no //repro:kernel"},
		{"two-kernels", "package kernels\n\n//repro:kernel id=1 name=a/b minn=2\nfunc f() uint64 {\n\treturn 0\n}\n\n//repro:kernel id=2 name=c/d minn=2\nfunc g() uint64 {\n\treturn 0\n}\n", "second //repro:kernel"},
		{"missing-id", "package kernels\n\n//repro:kernel name=a/b\nfunc f() uint64 {\n\treturn 0\n}\n", "needs id="},
		{"array-no-len", "package kernels\n\n//repro:array gen=u32\nvar a []uint64\n\n//repro:kernel id=1 name=a/b minn=2\nfunc f() uint64 {\n\treturn 0\n}\n", "needs len="},
		{"bad-gen", "package kernels\n\n//repro:array len=n gen=zipf\nvar a []uint64\n\n//repro:kernel id=1 name=a/b minn=2\nfunc f() uint64 {\n\treturn 0\n}\n", "unknown gen"},
		{"unannotated-array", "package kernels\n\nvar a []uint64\n\n//repro:kernel id=1 name=a/b minn=2\nfunc f() uint64 {\n\treturn 0\n}\n", "//repro:array annotation"},
		{"bad-const", "package kernels\n\n//repro:kernel id=1 name=a/b minn=2\n//repro:const X = log2(3)\nfunc f() uint64 {\n\treturn X\n}\n", "not a power of two"},
		{"entry-returns-void", "package kernels\n\n//repro:kernel id=1 name=a/b minn=2\nfunc f() {\n}\n", "must return uint64"},
		{"entry-returns-int64", "package kernels\n\n//repro:kernel id=1 name=a/b minn=2\nfunc f() int64 {\n\treturn 0\n}\n", "must return uint64"},
		{"float", "package kernels\n\n//repro:kernel id=1 name=a/b minn=2\nfunc f() uint64 {\n\tx := 1.5\n\t_ = x\n\treturn 0\n}\n", "only integer literals"},
		{"shadow-global", "package kernels\n\n//repro:array len=n\nvar a []uint64\n\n//repro:kernel id=1 name=a/b minn=2\nfunc f() uint64 {\n\ta := uint64(0)\n\treturn a\n}\n", "shadows a file-scope var"},
		{"undeclared", "package kernels\n\n//repro:kernel id=1 name=a/b minn=2\nfunc f() uint64 {\n\treturn y\n}\n", "undeclared identifier"},
		{"goroutine", "package kernels\n\nfunc g() {\n}\n\n//repro:kernel id=1 name=a/b minn=2\nfunc f() uint64 {\n\tgo g()\n\treturn 0\n}\n", "unsupported statement"},
		{"range-loop", "package kernels\n\n//repro:array len=n\nvar a []uint64\n\n//repro:kernel id=1 name=a/b minn=2\nfunc f() uint64 {\n\tfor range a {\n\t}\n\treturn 0\n}\n", "unsupported statement"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Scan("test.go", []byte(c.src))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("Scan err = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestExprEval(t *testing.T) {
	cases := []struct {
		expr string
		n    int
		want int64
	}{
		{"n", 7, 7},
		{"4*n", 3, 12},
		{"pow2(4*n)", 2, 8},
		{"pow2(5)", 0, 8},
		{"pow2(1)", 0, 2}, // minimum table size is 2
		{"64 - log2(pow2(4*n))", 8, 59},
		{"(n + 1) / 2", 9, 5},
		{"256", 100, 256},
	}
	for _, c := range cases {
		e, err := parseExpr(c.expr)
		if err != nil {
			t.Fatalf("%s: %v", c.expr, err)
		}
		got, err := e.Eval(c.n)
		if err != nil {
			t.Fatalf("%s: %v", c.expr, err)
		}
		if got != c.want {
			t.Errorf("%s at n=%d = %d, want %d", c.expr, c.n, got, c.want)
		}
	}
	for _, bad := range []string{"m", "n / 0", "foo(n)", "n * 1.5"} {
		e, err := parseExpr(bad)
		if err != nil {
			continue // rejected at parse time is fine too
		}
		if _, err := e.Eval(4); err == nil {
			t.Errorf("%s: evaluated without error", bad)
		}
	}
}

func TestLoweringIsCachedPerN(t *testing.T) {
	k := scan(t, sumKernel)
	a, err := k.Source(16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Source(16)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same n lowered differently twice")
	}
	c, err := k.Source(32)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different n produced identical sources")
	}
}

// TestScanErrorPositions pins the *position* part of scan errors: every
// diagnostic must point at the offending declaration or statement as
// file:line:col, hand-computed here against the literal sources. (The
// message substrings are covered by TestScanErrors; this table would catch a
// regression that anchors errors at the wrong node or drops the position.)
func TestScanErrorPositions(t *testing.T) {
	cases := []struct {
		name, src, wantPrefix string
	}{
		{
			// The annotation rides the doc comment, but the error anchors at
			// the annotated func declaration (line 4, the `func` keyword).
			name:       "bad-annotation-field",
			src:        "package kernels\n\n//repro:kernel id=1 name=a/b bogus\nfunc f() uint64 {\n\treturn 0\n}\n",
			wantPrefix: `gofront: test.go:4:1: bad //repro:kernel field "bogus"`,
		},
		{
			// The go statement itself: line 8, column 2 (after the tab).
			name:       "unsupported-statement",
			src:        "package kernels\n\nfunc g() {\n}\n\n//repro:kernel id=1 name=a/b minn=2\nfunc f() uint64 {\n\tgo g()\n\treturn 0\n}\n",
			wantPrefix: "gofront: test.go:8:2: unsupported statement",
		},
		{
			// A call of a function that exists nowhere in the file anchors at
			// the callee identifier: line 5, column 9 (`h` after "\treturn ").
			name:       "undefined-call",
			src:        "package kernels\n\n//repro:kernel id=1 name=a/b minn=2\nfunc f() uint64 {\n\treturn h(1)\n}\n",
			wantPrefix: `gofront: test.go:5:9: call of undefined function "h"`,
		},
		{
			// A malformed len= expression anchors at the var spec's name:
			// line 4, column 5 (`a` after "var ").
			name:       "bad-len-expression",
			src:        "package kernels\n\n//repro:array len=n+\nvar a []uint64\n\n//repro:kernel id=1 name=a/b minn=2\nfunc f() uint64 {\n\treturn 0\n}\n",
			wantPrefix: `gofront: test.go:4:5: array "a": bad expression "n+"`,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Scan("test.go", []byte(c.src))
			if err == nil {
				t.Fatalf("Scan succeeded, want error at %q", c.wantPrefix)
			}
			if !strings.HasPrefix(err.Error(), c.wantPrefix) {
				t.Errorf("Scan err = %q, want prefix %q", err, c.wantPrefix)
			}
		})
	}
}
