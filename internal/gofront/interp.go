package gofront

import (
	"fmt"
	"math"

	"repro/internal/minic"
)

// This file is the reference-semantics half of the front end: a pure-Go
// interpreter over the *checked* minic AST. Ref runs the exact tree that
// minic.Compile turns into machine code, so the reference checksum and the
// compiled program cannot drift — the property the hand-written kernels had
// to re-establish at runtime by cross-validation.
//
// The semantics deliberately mirror the code generator and emulator:
// shift counts are masked to 6 bits, division by zero is an error (the
// machine faults), / % and the relational operators take their signedness
// from the operand types exactly as codegen emits them, a simple assignment
// evaluates its right side before resolving the destination while a compound
// assignment resolves the destination first, and && || short-circuit to 0/1.
// One place the interpreter is stricter than the hardware: an out-of-range
// array index is an error here, where the machine would silently touch a
// neighbouring data-segment word.

// interpMaxSteps bounds interpretation so a buggy kernel cannot hang a vet
// or sweep; at millions of statements per second this is minutes, far past
// any real kernel at paper-scale n.
const interpMaxSteps = 4_000_000_000

// Interp runs a checked minic program's main function over the given inputs
// (data-segment symbol -> words, the same shape the machine loader takes)
// and returns its value. The program must have been checked (names resolved,
// types assigned); Kernel.Ref arranges that.
func Interp(prog *minic.Program, in map[string][]uint64) (uint64, error) {
	ip := &interp{
		prog:    prog,
		globals: make(map[*minic.GlobalVar][]uint64, len(prog.Globals)),
	}
	byName := make(map[string]*minic.GlobalVar, len(prog.Globals))
	for _, g := range prog.Globals {
		n := int64(1)
		if g.Type.Kind == minic.TypeArray {
			n = g.Type.Len
		}
		words := make([]uint64, n)
		if g.Type.Kind != minic.TypeArray {
			words[0] = g.Init
		}
		ip.globals[g] = words
		byName[g.Name] = g
	}
	for sym, words := range in {
		g := byName[sym]
		if g == nil {
			return 0, fmt.Errorf("interp: input for unknown symbol %q", sym)
		}
		dst := ip.globals[g]
		if len(words) > len(dst) {
			return 0, fmt.Errorf("interp: %d input words overflow %q (%d words)", len(words), sym, len(dst))
		}
		copy(dst, words)
	}
	var main *minic.Function
	for _, f := range prog.Functions {
		if f.Name == "main" {
			main = f
		}
	}
	if main == nil {
		return 0, fmt.Errorf("interp: no main function")
	}
	ctl, v, err := ip.call(main, nil)
	if err != nil {
		return 0, err
	}
	if ctl != ctlReturn {
		return 0, fmt.Errorf("interp: main fell off the end without returning")
	}
	return v, nil
}

type interp struct {
	prog    *minic.Program
	globals map[*minic.GlobalVar][]uint64
	steps   int64
}

// frame is one activation record: locals and parameters resolve to cells by
// the checker's *LocalVar identity.
type frame map[*minic.LocalVar]*uint64

type control uint8

const (
	ctlNone control = iota
	ctlReturn
	ctlBreak
	ctlContinue
)

func (ip *interp) tick() error {
	ip.steps++
	if ip.steps > interpMaxSteps {
		return fmt.Errorf("interp: step budget exhausted (possible non-termination)")
	}
	return nil
}

func (ip *interp) call(f *minic.Function, args []uint64) (control, uint64, error) {
	fr := make(frame, len(f.Locals)+len(f.Params))
	for i, p := range f.Params {
		cell := args[i]
		fr[p] = &cell
	}
	return ip.stmts(fr, f.Body)
}

func (ip *interp) stmts(fr frame, ss []*minic.Stmt) (control, uint64, error) {
	for _, s := range ss {
		ctl, v, err := ip.stmt(fr, s)
		if err != nil || ctl != ctlNone {
			return ctl, v, err
		}
	}
	return ctlNone, 0, nil
}

func (ip *interp) stmt(fr frame, s *minic.Stmt) (control, uint64, error) {
	if err := ip.tick(); err != nil {
		return ctlNone, 0, err
	}
	switch s.Kind {
	case minic.StmtExpr:
		_, err := ip.eval(fr, s.E)
		return ctlNone, 0, err
	case minic.StmtDecl:
		var cell uint64
		if s.DeclInit != nil {
			v, err := ip.eval(fr, s.DeclInit)
			if err != nil {
				return ctlNone, 0, err
			}
			cell = v
		}
		fr[s.Decl] = &cell
		return ctlNone, 0, nil
	case minic.StmtIf:
		c, err := ip.eval(fr, s.E)
		if err != nil {
			return ctlNone, 0, err
		}
		if c != 0 {
			return ip.stmts(fr, s.Body)
		}
		return ip.stmts(fr, s.Else)
	case minic.StmtWhile:
		for {
			c, err := ip.eval(fr, s.E)
			if err != nil {
				return ctlNone, 0, err
			}
			if c == 0 {
				return ctlNone, 0, nil
			}
			ctl, v, err := ip.stmts(fr, s.Body)
			if err != nil {
				return ctlNone, 0, err
			}
			switch ctl {
			case ctlReturn:
				return ctl, v, nil
			case ctlBreak:
				return ctlNone, 0, nil
			}
			if err := ip.tick(); err != nil {
				return ctlNone, 0, err
			}
		}
	case minic.StmtFor:
		if s.Init != nil {
			if ctl, v, err := ip.stmt(fr, s.Init); err != nil || ctl != ctlNone {
				return ctl, v, err
			}
		}
		for {
			if s.E != nil {
				c, err := ip.eval(fr, s.E)
				if err != nil {
					return ctlNone, 0, err
				}
				if c == 0 {
					return ctlNone, 0, nil
				}
			}
			ctl, v, err := ip.stmts(fr, s.Body)
			if err != nil {
				return ctlNone, 0, err
			}
			switch ctl {
			case ctlReturn:
				return ctl, v, nil
			case ctlBreak:
				return ctlNone, 0, nil
			}
			if s.Post != nil {
				if ctl, v, err := ip.stmt(fr, s.Post); err != nil || ctl != ctlNone {
					return ctl, v, err
				}
			}
			if err := ip.tick(); err != nil {
				return ctlNone, 0, err
			}
		}
	case minic.StmtReturn:
		if s.E == nil {
			return ctlReturn, 0, nil
		}
		v, err := ip.eval(fr, s.E)
		return ctlReturn, v, err
	case minic.StmtBlock:
		return ip.stmts(fr, s.Body)
	case minic.StmtBreak:
		return ctlBreak, 0, nil
	case minic.StmtContinue:
		return ctlContinue, 0, nil
	}
	return ctlNone, 0, fmt.Errorf("interp: unknown statement kind %d", s.Kind)
}

// cell resolves an lvalue to its storage cell. For indexed stores/loads the
// base must be a global array — the only aggregate the front end lowers.
func (ip *interp) cell(fr frame, e *minic.Expr) (*uint64, error) {
	switch e.Kind {
	case minic.ExprVar:
		if e.Local != nil {
			c := fr[e.Local]
			if c == nil {
				return nil, fmt.Errorf("interp: read of undeclared local %q", e.Name)
			}
			return c, nil
		}
		if e.Global != nil {
			if e.Global.Type.Kind == minic.TypeArray {
				return nil, fmt.Errorf("interp: array %q used as a scalar", e.Name)
			}
			return &ip.globals[e.Global][0], nil
		}
		return nil, fmt.Errorf("interp: unresolved identifier %q", e.Name)
	case minic.ExprIndex:
		if e.L.Kind != minic.ExprVar || e.L.Global == nil || e.L.Global.Type.Kind != minic.TypeArray {
			return nil, fmt.Errorf("interp: index base must be a global array")
		}
		idx, err := ip.eval(fr, e.R)
		if err != nil {
			return nil, err
		}
		words := ip.globals[e.L.Global]
		if idx >= uint64(len(words)) {
			return nil, fmt.Errorf("interp: index %d out of range for %q (%d words)", idx, e.L.Name, len(words))
		}
		return &words[idx], nil
	}
	return nil, fmt.Errorf("interp: not an lvalue")
}

func (ip *interp) eval(fr frame, e *minic.Expr) (uint64, error) {
	switch e.Kind {
	case minic.ExprNum:
		return e.Num, nil
	case minic.ExprVar:
		c, err := ip.cell(fr, e)
		if err != nil {
			return 0, err
		}
		return *c, nil
	case minic.ExprIndex:
		c, err := ip.cell(fr, e)
		if err != nil {
			return 0, err
		}
		return *c, nil
	case minic.ExprUnary:
		v, err := ip.eval(fr, e.L)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case "-":
			return -v, nil
		case "~":
			return ^v, nil
		case "!":
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("interp: unsupported unary %q", e.Op)
	case minic.ExprBinary:
		// Short-circuit first: the right side must not evaluate when the
		// left decides, exactly as the generated branches behave.
		if e.Op == "&&" || e.Op == "||" {
			l, err := ip.eval(fr, e.L)
			if err != nil {
				return 0, err
			}
			if e.Op == "&&" && l == 0 {
				return 0, nil
			}
			if e.Op == "||" && l != 0 {
				return 1, nil
			}
			r, err := ip.eval(fr, e.R)
			if err != nil {
				return 0, err
			}
			if r != 0 {
				return 1, nil
			}
			return 0, nil
		}
		l, err := ip.eval(fr, e.L)
		if err != nil {
			return 0, err
		}
		r, err := ip.eval(fr, e.R)
		if err != nil {
			return 0, err
		}
		return binop(e.Op, l, r, e.L.Type, e.R.Type)
	case minic.ExprAssign:
		if e.Op == "" {
			// Simple assignment: right side first, then the destination —
			// codegen's evaluation order.
			v, err := ip.eval(fr, e.R)
			if err != nil {
				return 0, err
			}
			c, err := ip.cell(fr, e.L)
			if err != nil {
				return 0, err
			}
			*c = v
			return v, nil
		}
		// Compound assignment: destination resolves once, first.
		c, err := ip.cell(fr, e.L)
		if err != nil {
			return 0, err
		}
		r, err := ip.eval(fr, e.R)
		if err != nil {
			return 0, err
		}
		v, err := binop(e.Op, *c, r, e.L.Type, e.R.Type)
		if err != nil {
			return 0, err
		}
		*c = v
		return v, nil
	case minic.ExprCall:
		if e.Callee == nil {
			return 0, fmt.Errorf("interp: unresolved call %q", e.Name)
		}
		args := make([]uint64, len(e.Args))
		for i, a := range e.Args {
			v, err := ip.eval(fr, a)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		_, v, err := ip.call(e.Callee, args)
		return v, err
	case minic.ExprCond:
		c, err := ip.eval(fr, e.C)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return ip.eval(fr, e.L)
		}
		return ip.eval(fr, e.R)
	}
	return 0, fmt.Errorf("interp: unknown expression kind %d", e.Kind)
}

// binop applies a (non-short-circuit) binary operator with the machine's
// semantics: 6-bit shift counts, signedness from the checked operand types,
// division faults mirrored as errors.
func binop(op string, l, r uint64, lt, rt *minic.Type) (uint64, error) {
	if lt.Kind == minic.TypePtr || lt.Kind == minic.TypeArray ||
		rt.Kind == minic.TypePtr || rt.Kind == minic.TypeArray {
		return 0, fmt.Errorf("interp: pointer arithmetic is outside the lowered subset")
	}
	unsigned := lt.IsUnsigned() || rt.IsUnsigned()
	switch op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "&":
		return l & r, nil
	case "|":
		return l | r, nil
	case "^":
		return l ^ r, nil
	case "<<":
		return l << (r & 63), nil
	case ">>":
		if lt.IsUnsigned() {
			return l >> (r & 63), nil
		}
		return uint64(int64(l) >> (r & 63)), nil
	case "/", "%":
		if r == 0 {
			return 0, fmt.Errorf("interp: division by zero")
		}
		if unsigned {
			if op == "/" {
				return l / r, nil
			}
			return l % r, nil
		}
		if int64(l) == math.MinInt64 && int64(r) == -1 {
			return 0, fmt.Errorf("interp: signed division overflow")
		}
		if op == "/" {
			return uint64(int64(l) / int64(r)), nil
		}
		return uint64(int64(l) % int64(r)), nil
	case "<", "<=", ">", ">=":
		var t bool
		if unsigned {
			switch op {
			case "<":
				t = l < r
			case "<=":
				t = l <= r
			case ">":
				t = l > r
			case ">=":
				t = l >= r
			}
		} else {
			a, b := int64(l), int64(r)
			switch op {
			case "<":
				t = a < b
			case "<=":
				t = a <= b
			case ">":
				t = a > b
			case ">=":
				t = a >= b
			}
		}
		if t {
			return 1, nil
		}
		return 0, nil
	case "==":
		if l == r {
			return 1, nil
		}
		return 0, nil
	case "!=":
		if l != r {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("interp: unsupported operator %q", op)
}
