// Package gofront is the compile-from-Go front end of the kernel suite: it
// scans Go source files for //repro:kernel annotations, lowers the annotated
// entry function and its helpers from a checked Go subset into the
// internal/minic AST, and derives the reference checksum by interpreting that
// same AST in pure Go.
//
// The point is single-definition kernels. A hand-written kernel needs three
// artifacts that nothing forces to agree — a mini-C source template, an input
// generator, and a pure-Go reference checksum; with gofront all three derive
// from one annotated Go file:
//
//   - the machine program is minic.Compile of the lowered source
//     (minic.Format of the lowered AST is the canonical surface, so the
//     lowering is inspectable and pinnable byte for byte), and
//   - the reference checksum is Interp over the very same AST, so the
//     program and its reference cannot drift apart, and
//   - the input arrays come from //repro:array annotations (distribution +
//     length expression), not from hand-kept generator code.
//
// Annotation grammar (one kernel per file):
//
//	//repro:kernel id=2 name=comparisonSort/quickSort minn=2
//	//repro:const Shift = 64 - log2(pow2(4*n))
//	func entry() uint64 { ... }        // doc comment carries the annotations
//
//	//repro:array len=n gen=u32
//	var a []uint64                     // one annotated var per array
//
// Annotation expressions (array lengths, //repro:const values) are evaluated
// over the dataset size n with + - * / % and the helpers pow2(x) (smallest
// power of two >= x, minimum 2) and log2(x) (exact, x must be a power of
// two). Inside the kernel body the identifier N and every //repro:const name
// lower to integer literals; expressions built only from those constants and
// literals are folded, which is how one Go definition specialises to the
// per-n mini-C programs the rest of the stack expects.
package gofront

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"strings"
	"sync"

	"repro/internal/minic"
)

// GenKind selects the input distribution of an annotated array.
type GenKind string

// Input distributions. The zero value means "work array": zero-initialised
// storage with no generated input words.
const (
	GenNone GenKind = ""     // no inputs: scratch/output storage
	GenU32  GenKind = "u32"  // uniform random words in [0, 2^32)
	GenModN GenKind = "modn" // uniform random words in [0, n)
)

// Array is one annotated global array of a kernel.
type Array struct {
	// Name is the mini-C (and Go) identifier.
	Name string
	// Len is the length expression over the dataset size n.
	Len Expr
	// Gen is the input distribution (GenNone for work arrays).
	Gen GenKind
}

// Const is one named //repro:const compile-time constant.
type Const struct {
	Name string
	Expr Expr
}

// Kernel is one scanned annotated-Go kernel: the parsed file plus its
// annotations, ready to lower per dataset size.
type Kernel struct {
	// ID is the benchmark number (the paper's Table 1 numbering).
	ID int
	// Name is the "suite/implementation" label.
	Name string
	// MinN is the smallest dataset size the kernel supports.
	MinN int
	// File is the scanned file name, for diagnostics and catalogs.
	File string
	// Arrays are the annotated global arrays, in declaration order.
	Arrays []Array
	// Consts are the //repro:const definitions, in annotation order.
	Consts []Const

	fset    *token.FileSet
	decls   []ast.Decl    // globals and functions, file order
	entry   *ast.FuncDecl // the //repro:kernel function (lowered as main)
	scalars map[string]bool

	mu    sync.Mutex
	cache map[int]*lowered
}

// lowered is one per-n lowering: the canonical source text and the checked
// AST the interpreter runs.
type lowered struct {
	src  string
	prog *minic.Program
}

// Expr is an annotation expression over the dataset size n.
type Expr struct {
	src  string
	node ast.Expr
}

// String returns the annotation text of the expression.
func (e Expr) String() string { return e.src }

// parseExpr parses an annotation expression.
func parseExpr(src string) (Expr, error) {
	node, err := parser.ParseExpr(src)
	if err != nil {
		return Expr{}, fmt.Errorf("bad expression %q: %v", src, err)
	}
	return Expr{src: strings.TrimSpace(src), node: node}, nil
}

// Eval evaluates the expression for a dataset size n.
func (e Expr) Eval(n int) (int64, error) {
	v, err := evalNode(e.node, int64(n))
	if err != nil {
		return 0, fmt.Errorf("%s: %v", e.src, err)
	}
	return v, nil
}

func evalNode(node ast.Expr, n int64) (int64, error) {
	switch x := node.(type) {
	case *ast.BasicLit:
		if x.Kind != token.INT {
			return 0, fmt.Errorf("non-integer literal %s", x.Value)
		}
		v, err := strconv.ParseInt(x.Value, 0, 64)
		if err != nil {
			return 0, fmt.Errorf("bad literal %s", x.Value)
		}
		return v, nil
	case *ast.Ident:
		if x.Name == "n" {
			return n, nil
		}
		return 0, fmt.Errorf("unknown identifier %q (only n and pow2/log2 are defined)", x.Name)
	case *ast.ParenExpr:
		return evalNode(x.X, n)
	case *ast.BinaryExpr:
		l, err := evalNode(x.X, n)
		if err != nil {
			return 0, err
		}
		r, err := evalNode(x.Y, n)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case token.ADD:
			return l + r, nil
		case token.SUB:
			return l - r, nil
		case token.MUL:
			return l * r, nil
		case token.QUO:
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return l / r, nil
		case token.REM:
			if r == 0 {
				return 0, fmt.Errorf("modulo by zero")
			}
			return l % r, nil
		}
		return 0, fmt.Errorf("unsupported operator %s", x.Op)
	case *ast.CallExpr:
		id, ok := x.Fun.(*ast.Ident)
		if !ok || len(x.Args) != 1 {
			return 0, fmt.Errorf("only pow2(x) and log2(x) calls are supported")
		}
		v, err := evalNode(x.Args[0], n)
		if err != nil {
			return 0, err
		}
		switch id.Name {
		case "pow2":
			p := int64(2)
			for p < v {
				if p > 1<<62 {
					return 0, fmt.Errorf("pow2(%d) overflows", v)
				}
				p *= 2
			}
			return p, nil
		case "log2":
			if v < 1 || v&(v-1) != 0 {
				return 0, fmt.Errorf("log2(%d): not a power of two", v)
			}
			k := int64(0)
			for 1<<k < v {
				k++
			}
			return k, nil
		}
		return 0, fmt.Errorf("unknown function %q", id.Name)
	}
	return 0, fmt.Errorf("unsupported syntax")
}

// Scan parses one annotated Go kernel file. Exactly one function must carry
// a //repro:kernel annotation; every global array var must carry a
// //repro:array annotation. The kernel is lowered once (at MinN) before
// returning, so a file that cannot lower fails at scan time, not first use.
func Scan(filename string, src []byte) (*Kernel, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("gofront: %v", err)
	}
	k := &Kernel{
		File:    filename,
		fset:    fset,
		scalars: make(map[string]bool),
		cache:   make(map[int]*lowered),
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			if d.Tok != token.VAR {
				return nil, k.errAt(d.Pos(), "only var declarations are supported at file scope")
			}
			if err := k.scanVar(d); err != nil {
				return nil, err
			}
			k.decls = append(k.decls, d)
		case *ast.FuncDecl:
			if err := k.scanFunc(d); err != nil {
				return nil, err
			}
			k.decls = append(k.decls, d)
		default:
			return nil, k.errAt(decl.Pos(), "unsupported declaration")
		}
	}
	if k.entry == nil {
		return nil, fmt.Errorf("gofront: %s: no //repro:kernel annotation", filename)
	}
	if _, err := k.lower(k.MinN); err != nil {
		return nil, err
	}
	return k, nil
}

// errAt formats an error anchored at a source position.
func (k *Kernel) errAt(pos token.Pos, format string, args ...any) error {
	return fmt.Errorf("gofront: %s: %s", k.fset.Position(pos), fmt.Sprintf(format, args...))
}

// scanVar records a file-scope var: an annotated array or a plain scalar.
func (k *Kernel) scanVar(d *ast.GenDecl) error {
	for _, spec := range d.Specs {
		vs := spec.(*ast.ValueSpec)
		if len(vs.Names) != 1 || len(vs.Values) != 0 {
			return k.errAt(vs.Pos(), "file-scope vars must declare one name and no initialiser")
		}
		name := vs.Names[0].Name
		ann := annotationLine(d.Doc, "//repro:array")
		if ann == "" {
			ann = annotationLine(vs.Comment, "//repro:array")
		}
		switch t := vs.Type.(type) {
		case *ast.ArrayType:
			if t.Len != nil {
				return k.errAt(vs.Pos(), "use a slice type; the length comes from the //repro:array annotation")
			}
			elem, ok := t.Elt.(*ast.Ident)
			if !ok || (elem.Name != "uint64" && elem.Name != "int64") {
				return k.errAt(vs.Pos(), "array element type must be uint64 or int64")
			}
			if ann == "" {
				return k.errAt(vs.Pos(), "array %q needs a //repro:array annotation with a len= expression", name)
			}
			arr := Array{Name: name}
			for _, kv := range strings.Fields(ann) {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return k.errAt(vs.Pos(), "bad //repro:array field %q (want key=value)", kv)
				}
				switch key {
				case "len":
					e, err := parseExpr(val)
					if err != nil {
						return k.errAt(vs.Pos(), "array %q: %v", name, err)
					}
					arr.Len = e
				case "gen":
					switch g := GenKind(val); g {
					case GenU32, GenModN:
						arr.Gen = g
					default:
						return k.errAt(vs.Pos(), "array %q: unknown gen %q (want u32 or modn)", name, val)
					}
				default:
					return k.errAt(vs.Pos(), "array %q: unknown //repro:array field %q", name, key)
				}
			}
			if arr.Len.node == nil {
				return k.errAt(vs.Pos(), "array %q: //repro:array needs len=", name)
			}
			k.Arrays = append(k.Arrays, arr)
		case *ast.Ident:
			if t.Name != "uint64" && t.Name != "int64" {
				return k.errAt(vs.Pos(), "scalar type must be uint64 or int64")
			}
			if ann != "" {
				return k.errAt(vs.Pos(), "//repro:array on a scalar var %q", name)
			}
			k.scalars[name] = true
		default:
			return k.errAt(vs.Pos(), "unsupported var type")
		}
	}
	return nil
}

// scanFunc records a function; the one with //repro:kernel becomes the entry.
func (k *Kernel) scanFunc(d *ast.FuncDecl) error {
	if d.Recv != nil {
		return k.errAt(d.Pos(), "methods are not supported")
	}
	line := annotationLine(d.Doc, "//repro:kernel")
	if line == "" {
		return nil
	}
	if k.entry != nil {
		return k.errAt(d.Pos(), "second //repro:kernel in one file")
	}
	k.entry = d
	k.MinN = 2
	for _, kv := range strings.Fields(line) {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return k.errAt(d.Pos(), "bad //repro:kernel field %q (want key=value)", kv)
		}
		switch key {
		case "id":
			id, err := strconv.Atoi(val)
			if err != nil || id <= 0 {
				return k.errAt(d.Pos(), "bad kernel id %q", val)
			}
			k.ID = id
		case "name":
			k.Name = val
		case "minn":
			mn, err := strconv.Atoi(val)
			if err != nil || mn < 1 {
				return k.errAt(d.Pos(), "bad minn %q", val)
			}
			k.MinN = mn
		default:
			return k.errAt(d.Pos(), "unknown //repro:kernel field %q", key)
		}
	}
	if k.ID == 0 || k.Name == "" {
		return k.errAt(d.Pos(), "//repro:kernel needs id= and name=")
	}
	// //repro:const NAME = expr lines ride on the entry's doc comment.
	for _, c := range commentLines(d.Doc, "//repro:const") {
		name, expr, ok := strings.Cut(c, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" || strings.ContainsAny(name, " \t") {
			return k.errAt(d.Pos(), "bad //repro:const %q (want NAME = expr)", c)
		}
		e, err := parseExpr(expr)
		if err != nil {
			return k.errAt(d.Pos(), "const %s: %v", name, err)
		}
		k.Consts = append(k.Consts, Const{Name: name, Expr: e})
	}
	return nil
}

// annotationLine returns the remainder of the first comment line starting
// with the given marker, or "".
func annotationLine(g *ast.CommentGroup, marker string) string {
	ls := commentLines(g, marker)
	if len(ls) == 0 {
		return ""
	}
	return ls[0]
}

// commentLines returns the remainders of every comment line starting with
// the given marker.
func commentLines(g *ast.CommentGroup, marker string) []string {
	if g == nil {
		return nil
	}
	var out []string
	for _, c := range g.List {
		if rest, ok := strings.CutPrefix(c.Text, marker); ok {
			out = append(out, strings.TrimSpace(rest))
		}
	}
	return out
}

// constsFor evaluates N plus every //repro:const for a dataset size.
func (k *Kernel) constsFor(n int) (map[string]uint64, error) {
	consts := map[string]uint64{"N": uint64(n)}
	for _, c := range k.Consts {
		v, err := c.Expr.Eval(n)
		if err != nil {
			return nil, fmt.Errorf("gofront: %s: const %s: %v", k.File, c.Name, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("gofront: %s: const %s = %d is negative", k.File, c.Name, v)
		}
		if _, dup := consts[c.Name]; dup {
			return nil, fmt.Errorf("gofront: %s: duplicate const %s", k.File, c.Name)
		}
		consts[c.Name] = uint64(v)
	}
	return consts, nil
}

// lower produces (and caches) the per-n lowering: canonical source text plus
// the checked AST the interpreter runs.
func (k *Kernel) lower(n int) (*lowered, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if l, ok := k.cache[n]; ok {
		return l, nil
	}
	prog, err := k.lowerProgram(n)
	if err != nil {
		return nil, err
	}
	src := minic.Format(prog)
	if err := minic.Check(prog); err != nil {
		return nil, fmt.Errorf("gofront: %s: lowered program does not check: %v", k.File, err)
	}
	l := &lowered{src: src, prog: prog}
	k.cache[n] = l
	return l, nil
}

// Source returns the canonical mini-C (minic.Format) lowering of the kernel
// for a dataset size. This text is what minic.Compile consumes — the
// unchanged backend of the hand-written kernels.
func (k *Kernel) Source(n int) (string, error) {
	l, err := k.lower(n)
	if err != nil {
		return "", err
	}
	return l.src, nil
}

// Ref derives the reference checksum for a dataset size by interpreting the
// lowered AST over the given inputs (data-segment symbol -> words).
func (k *Kernel) Ref(n int, in map[string][]uint64) (uint64, error) {
	l, err := k.lower(n)
	if err != nil {
		return 0, err
	}
	return Interp(l.prog, in)
}
