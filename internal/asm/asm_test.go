package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestAssembleSumFigure2(t *testing.T) {
	// The paper's Fig. 2 must assemble verbatim.
	src := `
sum:    cmpq $2, %rsi
        ja .L2
        movq (%rdi), %rax
        jne .L1
        addq 8(%rdi), %rax
.L1:    ret
.L2:    pushq %rbx
        pushq %rdi
        pushq %rsi
        shrq %rsi
        call sum
        popq %rbx
        pushq %rbx
        subq $8, %rsp
        movq %rax, 0(%rsp)
        leaq (%rdi,%rsi,8), %rdi
        subq %rsi, %rbx
        movq %rbx, %rsi
        call sum
        addq 0(%rsp), %rax
        addq $8, %rsp
        popq %rsi
        popq %rdi
        popq %rbx
        ret
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 25 {
		t.Fatalf("got %d instructions, want 25", len(p.Text))
	}
	if p.Labels["sum"] != 0 {
		t.Errorf("sum label at %d, want 0", p.Labels["sum"])
	}
	if p.Labels[".L1"] != 5 {
		t.Errorf(".L1 label at %d, want 5", p.Labels[".L1"])
	}
	if p.Labels[".L2"] != 6 {
		t.Errorf(".L2 label at %d, want 6", p.Labels[".L2"])
	}
	// ja .L2 resolves to instruction 6.
	if in := p.Text[1]; in.Op != isa.Jcc || in.Cond != isa.CondA || in.Target != 6 {
		t.Errorf("instruction 1 = %+v, want ja -> 6", in)
	}
	// shrq %rsi assembles as the shift-by-one form.
	if in := p.Text[9]; in.Op != isa.SHR || in.Src.Kind != isa.KindImm || in.Src.Imm != 1 || in.Dst.Reg != isa.RSI {
		t.Errorf("instruction 9 = %+v, want shrq $1, %%rsi", in)
	}
	// call sum resolves to 0.
	if in := p.Text[10]; in.Op != isa.CALL || in.Target != 0 {
		t.Errorf("instruction 10 = %+v, want call -> 0", in)
	}
	// leaq (%rdi,%rsi,8), %rdi.
	if in := p.Text[15]; in.Op != isa.LEA || in.Src.Base != isa.RDI || in.Src.Index != isa.RSI || in.Src.Scale != 8 {
		t.Errorf("instruction 15 = %+v", in)
	}
}

func TestAssembleForkEndfork(t *testing.T) {
	p, err := Assemble(`
f:      fork f
        endfork
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[0].Op != isa.FORK || p.Text[0].Target != 0 {
		t.Errorf("fork = %+v", p.Text[0])
	}
	if p.Text[1].Op != isa.ENDFORK {
		t.Errorf("endfork = %+v", p.Text[1])
	}
}

func TestAssembleDataSection(t *testing.T) {
	p, err := Assemble(`
_start: movq $t, %rdi
        movq n, %rsi
        movq t+8, %rax
        movq t(,%rcx,8), %rbx
        hlt
.data
t:      .quad 10, 20, 30
n:      .quad 3
buf:    .space 64
end:    .quad 0
`)
	if err != nil {
		t.Fatal(err)
	}
	tAddr, ok := p.DataAddr("t")
	if !ok || tAddr != isa.DataBase {
		t.Fatalf("t at %#x, want %#x", tAddr, isa.DataBase)
	}
	if n, _ := p.DataAddr("n"); n != isa.DataBase+24 {
		t.Errorf("n at %#x, want %#x", n, isa.DataBase+24)
	}
	if b, _ := p.DataAddr("buf"); b != isa.DataBase+32 {
		t.Errorf("buf at %#x, want %#x", b, isa.DataBase+32)
	}
	if e, _ := p.DataAddr("end"); e != isa.DataBase+96 {
		t.Errorf("end at %#x, want %#x", e, isa.DataBase+96)
	}
	if len(p.Data) != 104 {
		t.Errorf("data length %d, want 104", len(p.Data))
	}
	// $t resolves to the address of t.
	if in := p.Text[0]; in.Src.Kind != isa.KindImm || uint64(in.Src.Imm) != tAddr {
		t.Errorf("movq $t = %+v", in)
	}
	// n as a bare memory operand resolves to an absolute address.
	if in := p.Text[1]; in.Src.Kind != isa.KindMem || uint64(in.Src.Imm) != isa.DataBase+24 || in.Src.Base != isa.NoReg {
		t.Errorf("movq n = %+v", in)
	}
	// t+8 applies the displacement.
	if in := p.Text[2]; uint64(in.Src.Imm) != tAddr+8 {
		t.Errorf("movq t+8 = %+v", in)
	}
	// t(,%rcx,8) has index but no base.
	if in := p.Text[3]; in.Src.Base != isa.NoReg || in.Src.Index != isa.RCX || in.Src.Scale != 8 || uint64(in.Src.Imm) != tAddr {
		t.Errorf("movq t(,%%rcx,8) = %+v", in)
	}
	// Initial data content.
	if got := p.Data[0]; got != 10 {
		t.Errorf("t[0] low byte = %d, want 10", got)
	}
	// Entry resolves to _start.
	if p.Entry != 0 {
		t.Errorf("entry = %d, want 0", p.Entry)
	}
}

func TestAssembleComments(t *testing.T) {
	p, err := Assemble(`
# full-line comment
main:   movq $1, %rax   # trailing comment
        hlt             // C++-style comment

`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 2 {
		t.Fatalf("got %d instructions, want 2", len(p.Text))
	}
}

func TestAssembleNegativeAndHex(t *testing.T) {
	p, err := Assemble(`
main:   movq $-8, %rax
        movq $0x10, %rbx
        movq -16(%rbp), %rcx
        hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[0].Src.Imm != -8 {
		t.Errorf("imm = %d, want -8", p.Text[0].Src.Imm)
	}
	if p.Text[1].Src.Imm != 16 {
		t.Errorf("imm = %d, want 16", p.Text[1].Src.Imm)
	}
	if p.Text[2].Src.Imm != -16 || p.Text[2].Src.Base != isa.RBP {
		t.Errorf("mem = %+v", p.Text[2].Src)
	}
}

func TestAssembleSetcc(t *testing.T) {
	p, err := Assemble(`
main:   cmpq %rbx, %rax
        sete %rcx
        setle %rdx
        hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	if in := p.Text[1]; in.Op != isa.SETcc || in.Cond != isa.CondE || in.Dst.Reg != isa.RCX {
		t.Errorf("sete = %+v", in)
	}
	if in := p.Text[2]; in.Cond != isa.CondLE {
		t.Errorf("setle = %+v", in)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"main: frobq %rax", "unknown mnemonic"},
		{"main: jmp", "needs a label target"},
		{"main: jmp 42abc", "needs a label target"},
		{"main: movq %rax", "needs two operands"},
		{"main: movq (%rax), (%rbx)", "cannot be memory"},
		{"main: movq %rax, $5", "cannot be an immediate"},
		{"main: call nowhere", "undefined label"},
		{"main: movq $nosym, %rax", "undefined symbol"},
		{"main: movq %xmm0, %rax", "unknown register"},
		{"main: ret\nmain: ret", "duplicate label"},
		{".quad 5", ".quad outside data section"},
		{".data\nx: .quad zz", "bad .quad value"},
		{".bogus", "unknown directive"},
		{"main: movq 5(%rax,%rbx,3), %rcx", "bad scale"},
		{".data\nx: .quad 1\n.text\nmain: hlt\n.data\nx: .quad 2", "duplicate data symbol"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) error = %q, want containing %q", c.src, err, c.want)
		}
	}
}

func TestAssembleMultipleLabelsSameLine(t *testing.T) {
	p, err := Assemble(`
a: b: c: hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []string{"a", "b", "c"} {
		if p.Labels[l] != 0 {
			t.Errorf("label %q at %d, want 0", l, p.Labels[l])
		}
	}
}

func TestEntrySelection(t *testing.T) {
	p, err := Assemble("foo: nop\nmain: hlt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 1 {
		t.Errorf("entry = %d, want 1 (main)", p.Entry)
	}
	p, err = Assemble("main: nop\n_start: hlt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 1 {
		t.Errorf("entry = %d, want 1 (_start preferred)", p.Entry)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	// Disassembled output of the Fig. 2 listing re-assembles to the same
	// instruction stream (labels become numeric targets, so compare ops).
	src := `
sum:    cmpq $2, %rsi
        ja .L2
        movq (%rdi), %rax
        jne .L1
        addq 8(%rdi), %rax
.L1:    ret
.L2:    pushq %rbx
        shrq %rsi
        call sum
        ret
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	dis := p.Disassemble()
	for _, want := range []string{"sum:", ".L1:", ".L2:", "cmpq $2, %rsi", "ja .L2", "pushq %rbx", "call sum"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}
