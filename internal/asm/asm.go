// Package asm implements a two-pass assembler for the gas-style (AT&T)
// assembly syntax used by the paper's listings (the Fig. 2 call version and
// the Fig. 5 fork version of the sum reduction), producing an isa.Program.
// Its role is to let internal/progs carry those listings verbatim, so the
// machine simulator is calibrated against exactly the code the paper
// counts.
//
// Supported syntax (one statement per line; '#' and '//' start comments):
//
//	label:                 code label (may share a line with an instruction)
//	    movq (%rdi), %rax
//	    leaq (%rdi,%rsi,8), %rdi
//	    cmpq $2, %rsi
//	    ja .L2
//	    call sum
//	    fork sum
//	    endfork
//	.data                  switch to the data segment
//	t:  .quad 1, 2, 3      64-bit initialised words
//	buf: .space 1024       zeroed bytes
//	.text                  switch back to code
//	.global sum            accepted and ignored
//
// Data symbols may be used as immediates ($t = address of t) or as absolute
// or indexed memory operands (t, t(%rsi), t(,%rsi,8)).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type fixup struct {
	instr int    // index into program text
	sym   string // unresolved symbol
	where int    // 0 = Target, 1 = Src, 2 = Dst
	line  int
}

type assembler struct {
	prog    *Program
	section string // "text" or "data"
	fixups  []fixup
	dataOff uint64
}

// Program aliases isa.Program for callers that only import asm.
type Program = isa.Program

// Assemble assembles the given source. The entry point is the label "_start"
// if present, else "main" if present, else instruction 0.
func Assemble(src string) (*Program, error) {
	a := &assembler{prog: isa.NewProgram(), section: "text"}
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		if err := a.line(i+1, raw); err != nil {
			return nil, err
		}
	}
	if err := a.resolve(); err != nil {
		return nil, err
	}
	if e, ok := a.prog.Labels["_start"]; ok {
		a.prog.Entry = e
	} else if e, ok := a.prog.Labels["main"]; ok {
		a.prog.Entry = e
	}
	return a.prog, nil
}

// MustAssemble assembles src and panics on error. For tests and examples
// embedding known-good listings.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(s string) string {
	if i := strings.IndexByte(s, '#'); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

func (a *assembler) line(n int, raw string) error {
	s := stripComment(raw)
	if s == "" {
		return nil
	}
	// Peel off leading labels ("name:").
	for {
		i := strings.IndexByte(s, ':')
		if i < 0 {
			break
		}
		name := strings.TrimSpace(s[:i])
		if !isIdent(name) {
			break
		}
		if err := a.defineLabel(n, name); err != nil {
			return err
		}
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(n, s)
	}
	if a.section != "text" {
		return &Error{n, fmt.Sprintf("instruction %q in data section", s)}
	}
	return a.instruction(n, s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.', c == '$':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) defineLabel(n int, name string) error {
	if a.section == "text" {
		if _, dup := a.prog.Labels[name]; dup {
			return &Error{n, fmt.Sprintf("duplicate label %q", name)}
		}
		a.prog.Labels[name] = int64(len(a.prog.Text))
		return nil
	}
	if _, dup := a.prog.DataSyms[name]; dup {
		return &Error{n, fmt.Sprintf("duplicate data symbol %q", name)}
	}
	a.prog.DataSyms[name] = isa.DataBase + a.dataOff
	return nil
}

func (a *assembler) directive(n int, s string) error {
	fields := strings.Fields(s)
	switch fields[0] {
	case ".text":
		a.section = "text"
	case ".data":
		a.section = "data"
	case ".global", ".globl", ".align", ".type", ".size", ".file", ".section":
		// Accepted for source compatibility; no effect.
	case ".quad":
		if a.section != "data" {
			return &Error{n, ".quad outside data section"}
		}
		args := strings.Split(strings.TrimSpace(s[len(".quad"):]), ",")
		for _, arg := range args {
			arg = strings.TrimSpace(arg)
			if arg == "" {
				continue
			}
			v, err := parseInt(arg)
			if err != nil {
				return &Error{n, fmt.Sprintf("bad .quad value %q: %v", arg, err)}
			}
			var w [8]byte
			putU64(w[:], uint64(v))
			a.prog.Data = append(a.prog.Data, w[:]...)
			a.dataOff += 8
		}
	case ".space", ".zero", ".skip":
		if a.section != "data" {
			return &Error{n, fields[0] + " outside data section"}
		}
		if len(fields) < 2 {
			return &Error{n, fields[0] + " needs a size"}
		}
		v, err := parseInt(strings.TrimSuffix(fields[1], ","))
		if err != nil || v < 0 {
			return &Error{n, fmt.Sprintf("bad size %q", fields[1])}
		}
		a.prog.Data = append(a.prog.Data, make([]byte, v)...)
		a.dataOff += uint64(v)
	default:
		return &Error{n, fmt.Sprintf("unknown directive %q", fields[0])}
	}
	return nil
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	} else if strings.HasPrefix(s, "+") {
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// splitOperands splits on commas that are not inside parentheses.
func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	if len(out) == 1 && out[0] == "" {
		return nil
	}
	return out
}

var zeroOperand = map[string]isa.Op{
	"nop": isa.NOP, "cqto": isa.CQTO, "ret": isa.RET,
	"endfork": isa.ENDFORK, "hlt": isa.HLT,
}

var twoOperand = map[string]isa.Op{
	"movq": isa.MOV, "leaq": isa.LEA,
	"addq": isa.ADD, "subq": isa.SUB, "andq": isa.AND, "orq": isa.OR,
	"xorq": isa.XOR, "imulq": isa.IMUL,
	"shlq": isa.SHL, "shrq": isa.SHR, "sarq": isa.SAR,
	"cmpq": isa.CMP, "testq": isa.TEST,
}

var oneOperand = map[string]isa.Op{
	"negq": isa.NEG, "notq": isa.NOT, "incq": isa.INC, "decq": isa.DEC,
	"divq": isa.DIV, "idivq": isa.IDIV,
	"pushq": isa.PUSH, "popq": isa.POP,
}

var branchOps = map[string]isa.Op{
	"jmp": isa.JMP, "call": isa.CALL, "fork": isa.FORK,
}

func (a *assembler) instruction(n int, s string) error {
	mn := s
	rest := ""
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mn, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	in := isa.Instruction{}
	emit := func() {
		a.prog.Text = append(a.prog.Text, in)
	}

	if op, ok := zeroOperand[mn]; ok {
		if rest != "" {
			return &Error{n, fmt.Sprintf("%s takes no operands", mn)}
		}
		in.Op = op
		emit()
		return nil
	}
	if op, ok := branchOps[mn]; ok {
		in.Op = op
		if !isIdent(rest) {
			return &Error{n, fmt.Sprintf("%s needs a label target, got %q", mn, rest)}
		}
		in.Label = rest
		a.fixups = append(a.fixups, fixup{len(a.prog.Text), rest, 0, n})
		emit()
		return nil
	}
	if strings.HasPrefix(mn, "j") && mn != "jmp" {
		cc, ok := isa.ParseCond(mn[1:])
		if !ok {
			return &Error{n, fmt.Sprintf("unknown mnemonic %q", mn)}
		}
		in.Op = isa.Jcc
		in.Cond = cc
		if !isIdent(rest) {
			return &Error{n, fmt.Sprintf("%s needs a label target, got %q", mn, rest)}
		}
		in.Label = rest
		a.fixups = append(a.fixups, fixup{len(a.prog.Text), rest, 0, n})
		emit()
		return nil
	}
	if strings.HasPrefix(mn, "set") {
		cc, ok := isa.ParseCond(mn[3:])
		if !ok {
			return &Error{n, fmt.Sprintf("unknown mnemonic %q", mn)}
		}
		in.Op = isa.SETcc
		in.Cond = cc
		ops := splitOperands(rest)
		if len(ops) != 1 {
			return &Error{n, mn + " needs one operand"}
		}
		o, sym, err := a.operand(ops[0])
		if err != nil {
			return &Error{n, err.Error()}
		}
		in.Dst = o
		if sym != "" {
			a.fixups = append(a.fixups, fixup{len(a.prog.Text), sym, 2, n})
		}
		emit()
		return nil
	}
	if op, ok := oneOperand[mn]; ok {
		in.Op = op
		ops := splitOperands(rest)
		if len(ops) != 1 {
			return &Error{n, mn + " needs one operand"}
		}
		o, sym, err := a.operand(ops[0])
		if err != nil {
			return &Error{n, err.Error()}
		}
		where := 2
		if op == isa.PUSH {
			in.Src = o
			where = 1
		} else {
			in.Dst = o
		}
		if sym != "" {
			a.fixups = append(a.fixups, fixup{len(a.prog.Text), sym, where, n})
		}
		emit()
		return nil
	}
	if op, ok := twoOperand[mn]; ok {
		in.Op = op
		ops := splitOperands(rest)
		if len(ops) == 1 && (op == isa.SHL || op == isa.SHR || op == isa.SAR) {
			// Single-operand shift-by-one form, as in the paper's
			// "shrq %rsi" (Fig. 2 line 11).
			ops = []string{"$1", ops[0]}
		}
		if len(ops) != 2 {
			return &Error{n, mn + " needs two operands"}
		}
		src, ssym, err := a.operand(ops[0])
		if err != nil {
			return &Error{n, err.Error()}
		}
		dst, dsym, err := a.operand(ops[1])
		if err != nil {
			return &Error{n, err.Error()}
		}
		if src.Kind == isa.KindMem && dst.Kind == isa.KindMem {
			return &Error{n, mn + ": both operands cannot be memory"}
		}
		if dst.Kind == isa.KindImm {
			return &Error{n, mn + ": destination cannot be an immediate"}
		}
		in.Src, in.Dst = src, dst
		if ssym != "" {
			a.fixups = append(a.fixups, fixup{len(a.prog.Text), ssym, 1, n})
		}
		if dsym != "" {
			a.fixups = append(a.fixups, fixup{len(a.prog.Text), dsym, 2, n})
		}
		emit()
		return nil
	}
	return &Error{n, fmt.Sprintf("unknown mnemonic %q", mn)}
}

// operand parses one operand. If it references a data symbol whose address is
// not yet known, it returns the symbol name for later fix-up.
func (a *assembler) operand(s string) (isa.Operand, string, error) {
	switch {
	case s == "":
		return isa.Operand{}, "", fmt.Errorf("empty operand")
	case s[0] == '%':
		r, ok := isa.ParseReg(s[1:])
		if !ok {
			return isa.Operand{}, "", fmt.Errorf("unknown register %q", s)
		}
		return isa.RegOp(r), "", nil
	case s[0] == '$':
		body := s[1:]
		if v, err := parseInt(body); err == nil {
			return isa.ImmOp(v), "", nil
		}
		if isIdent(body) {
			o := isa.ImmOp(0)
			o.Sym = body
			return o, body, nil
		}
		return isa.Operand{}, "", fmt.Errorf("bad immediate %q", s)
	}
	// Memory operand: [sym|disp] [ '(' base [',' index [',' scale]] ')' ]
	dispStr := s
	regsPart := ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return isa.Operand{}, "", fmt.Errorf("bad memory operand %q", s)
		}
		dispStr = strings.TrimSpace(s[:i])
		regsPart = s[i+1 : len(s)-1]
	}
	var disp int64
	sym := ""
	if dispStr != "" {
		if v, err := parseInt(dispStr); err == nil {
			disp = v
		} else if isIdent(dispStr) {
			sym = dispStr
		} else if i := strings.LastIndexAny(dispStr, "+-"); i > 0 && isIdent(dispStr[:i]) {
			// sym+const or sym-const
			v, err := parseInt(dispStr[i:])
			if err != nil {
				return isa.Operand{}, "", fmt.Errorf("bad displacement %q", dispStr)
			}
			sym = dispStr[:i]
			disp = v
		} else {
			return isa.Operand{}, "", fmt.Errorf("bad displacement %q", dispStr)
		}
	}
	base, index := isa.NoReg, isa.NoReg
	scale := uint8(1)
	if regsPart != "" {
		parts := strings.Split(regsPart, ",")
		if len(parts) > 3 {
			return isa.Operand{}, "", fmt.Errorf("bad memory operand %q", s)
		}
		p0 := strings.TrimSpace(parts[0])
		if p0 != "" {
			if p0[0] != '%' {
				return isa.Operand{}, "", fmt.Errorf("bad base register %q", p0)
			}
			r, ok := isa.ParseReg(p0[1:])
			if !ok {
				return isa.Operand{}, "", fmt.Errorf("unknown register %q", p0)
			}
			base = r
		}
		if len(parts) >= 2 {
			p1 := strings.TrimSpace(parts[1])
			if p1 != "" {
				if p1[0] != '%' {
					return isa.Operand{}, "", fmt.Errorf("bad index register %q", p1)
				}
				r, ok := isa.ParseReg(p1[1:])
				if !ok {
					return isa.Operand{}, "", fmt.Errorf("unknown register %q", p1)
				}
				index = r
			}
		}
		if len(parts) == 3 {
			v, err := parseInt(strings.TrimSpace(parts[2]))
			if err != nil || (v != 1 && v != 2 && v != 4 && v != 8) {
				return isa.Operand{}, "", fmt.Errorf("bad scale %q", parts[2])
			}
			scale = uint8(v)
		}
	} else if sym == "" && dispStr == "" {
		return isa.Operand{}, "", fmt.Errorf("bad operand %q", s)
	}
	o := isa.MemOp(disp, base, index, scale)
	o.Sym = sym
	return o, sym, nil
}

func (a *assembler) resolve() error {
	for _, f := range a.fixups {
		in := &a.prog.Text[f.instr]
		switch f.where {
		case 0: // control-flow target: code label
			t, ok := a.prog.Labels[f.sym]
			if !ok {
				return &Error{f.line, fmt.Sprintf("undefined label %q", f.sym)}
			}
			in.Target = t
		case 1, 2:
			o := &in.Src
			if f.where == 2 {
				o = &in.Dst
			}
			if addr, ok := a.prog.DataSyms[f.sym]; ok {
				o.Imm += int64(addr)
				continue
			}
			if t, ok := a.prog.Labels[f.sym]; ok && o.Kind == isa.KindImm {
				// Address-of a code label (e.g. function pointers).
				o.Imm += t
				continue
			}
			return &Error{f.line, fmt.Sprintf("undefined symbol %q", f.sym)}
		}
	}
	return nil
}
