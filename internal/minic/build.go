package minic

import (
	"repro/internal/asm"
	"repro/internal/isa"
)

// This file is the programmatic construction surface of the package: the
// fuzz generator (internal/fuzzgen) builds mini-C ASTs directly — no source
// text in the loop — and compiles or renders them with the helpers below.
// The node types themselves (Expr, Stmt, Function, GlobalVar, LocalVar) are
// already exported with exported fields; what clients cannot reach are the
// type singletons and the Program's name indices, which these helpers manage.

// VoidType returns the void type.
func VoidType() *Type { return tyVoid }

// LongType returns the signed 64-bit integer type.
func LongType() *Type { return tyLong }

// ULongType returns the unsigned 64-bit integer type.
func ULongType() *Type { return tyULong }

// PtrType returns the type "pointer to elem".
func PtrType(elem *Type) *Type { return ptrTo(elem) }

// ArrayType returns the type "array of n elem".
func ArrayType(elem *Type, n int64) *Type { return arrayOf(elem, n) }

// NewProgram returns an empty Program ready for programmatic construction
// with AddGlobal and AddFunction.
func NewProgram() *Program {
	return &Program{
		funcByName: make(map[string]*Function),
		globByName: make(map[string]*GlobalVar),
	}
}

// AddGlobal appends a module-level variable, maintaining the name index the
// checker resolves against.
func (p *Program) AddGlobal(g *GlobalVar) error {
	if _, dup := p.globByName[g.Name]; dup {
		return errf(0, "duplicate global %q", g.Name)
	}
	if p.funcByName[g.Name] != nil {
		return errf(0, "name %q is both a function and a global", g.Name)
	}
	p.Globals = append(p.Globals, g)
	p.globByName[g.Name] = g
	return nil
}

// AddFunction appends a function definition, maintaining the name index.
func (p *Program) AddFunction(f *Function) error {
	if _, dup := p.funcByName[f.Name]; dup {
		return errf(f.Line, "duplicate function %q", f.Name)
	}
	if p.globByName[f.Name] != nil {
		return errf(f.Line, "name %q is both a function and a global", f.Name)
	}
	p.Functions = append(p.Functions, f)
	p.funcByName[f.Name] = f
	return nil
}

// CompileAST checks, generates and assembles an in-memory AST — Compile
// without the front end, for programs built programmatically rather than
// parsed. Check annotates the AST in place (types, frame offsets); the input
// must be a freshly built or freshly parsed program.
func CompileAST(prog *Program, mode Mode) (*isa.Program, error) {
	if err := Check(prog); err != nil {
		return nil, err
	}
	text, err := Generate(prog, mode)
	if err != nil {
		return nil, err
	}
	p, err := asm.Assemble(text)
	if err != nil {
		return nil, errf(0, "internal error assembling generated code: %v", err)
	}
	return p, nil
}
