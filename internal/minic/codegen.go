package minic

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Mode selects the calling convention of the generated code (the paper's §2).
type Mode int

// Code generation modes.
const (
	// ModeCall emits conventional call/ret code (the paper's Fig. 2 style).
	ModeCall Mode = iota
	// ModeFork emits fork/endfork code (the paper's Fig. 5 style): a call
	// site forks the callee — the forking flow continues into the callee
	// while the created section runs the continuation; ret becomes endfork.
	// The generated code is otherwise identical: all values crossing the
	// fork flow through fork-copied non-volatile registers (rbp, rsp) or
	// through renamed stack memory, which is exactly what the paper's
	// machine provides.
	ModeFork
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeFork {
		return "fork"
	}
	return "call"
}

var argRegs = []string{"%rdi", "%rsi", "%rdx", "%rcx", "%r8", "%r9"}

// gen is the code generator state.
type gen struct {
	prog   *Program
	mode   Mode
	b      strings.Builder
	fn     *Function
	nlabel int
	brk    []string // break targets
	cont   []string // continue targets
}

// Generate emits gas-style assembly for a checked program.
func Generate(prog *Program, mode Mode) (string, error) {
	g := &gen{prog: prog, mode: mode}
	for _, gv := range prog.Globals {
		if prog.funcByName[gv.Name] != nil {
			return "", errf(0, "name %q is both a function and a global", gv.Name)
		}
	}
	// Driver: run main and halt. In fork mode the final hlt is the
	// continuation section of the whole program.
	g.emit("_start:")
	if mode == ModeFork {
		g.emit("\tfork main")
	} else {
		g.emit("\tcall main")
	}
	g.emit("\thlt")
	for _, f := range prog.Functions {
		if err := g.function(f); err != nil {
			return "", err
		}
	}
	if len(prog.Globals) > 0 {
		g.emit(".data")
		for _, gv := range prog.Globals {
			if gv.Type.Kind == TypeArray {
				g.emit(fmt.Sprintf("%s:\t.space %d", gv.Name, gv.Type.Size()))
			} else {
				g.emit(fmt.Sprintf("%s:\t.quad %d", gv.Name, int64(gv.Init)))
			}
		}
	}
	return g.b.String(), nil
}

// Compile parses, checks, generates and assembles src in one step.
func Compile(src string, mode Mode) (*isa.Program, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	text, err := Generate(prog, mode)
	if err != nil {
		return nil, err
	}
	p, err := asm.Assemble(text)
	if err != nil {
		return nil, fmt.Errorf("minic: internal error assembling generated code: %w", err)
	}
	return p, nil
}

func (g *gen) emit(s string) {
	g.b.WriteString(s)
	g.b.WriteByte('\n')
}

func (g *gen) op(format string, args ...any) {
	g.b.WriteByte('\t')
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *gen) label() string {
	g.nlabel++
	return fmt.Sprintf(".L%s_%d", g.fn.Name, g.nlabel)
}

func (g *gen) function(f *Function) error {
	g.fn = f
	g.emit(fmt.Sprintf("%s:\t# %s %s(%d params), frame %d bytes [%s mode]",
		f.Name, f.Ret, f.Name, len(f.Params), f.FrameSize, g.mode))
	g.op("pushq %%rbp")
	g.op("movq %%rsp, %%rbp")
	if f.FrameSize > 0 {
		g.op("subq $%d, %%rsp", f.FrameSize)
	}
	for i, p := range f.Params {
		g.op("movq %s, %d(%%rbp)", argRegs[i], p.Offset)
	}
	if err := g.stmts(f.Body); err != nil {
		return err
	}
	// Fall-through return (void functions, or main without return).
	g.epilogue()
	return nil
}

func (g *gen) epilogue() {
	g.op("movq %%rbp, %%rsp")
	g.op("popq %%rbp")
	if g.mode == ModeFork {
		g.op("endfork")
	} else {
		g.op("ret")
	}
}

func (g *gen) stmts(ss []*Stmt) error {
	for _, s := range ss {
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) stmt(s *Stmt) error {
	switch s.Kind {
	case StmtExpr:
		return g.expr(s.E)
	case StmtDecl:
		if s.DeclInit != nil {
			if err := g.expr(s.DeclInit); err != nil {
				return err
			}
			g.op("movq %%rax, %d(%%rbp)", s.Decl.Offset)
		}
		return nil
	case StmtBlock:
		return g.stmts(s.Body)
	case StmtIf:
		els := g.label()
		end := els
		if len(s.Else) > 0 {
			end = g.label()
		}
		if err := g.condJump(s.E, els); err != nil {
			return err
		}
		if err := g.stmts(s.Body); err != nil {
			return err
		}
		if len(s.Else) > 0 {
			g.op("jmp %s", end)
			g.emit(els + ":")
			if err := g.stmts(s.Else); err != nil {
				return err
			}
		}
		g.emit(end + ":")
		return nil
	case StmtWhile:
		top := g.label()
		end := g.label()
		g.emit(top + ":")
		if err := g.condJump(s.E, end); err != nil {
			return err
		}
		g.brk = append(g.brk, end)
		g.cont = append(g.cont, top)
		err := g.stmts(s.Body)
		g.brk = g.brk[:len(g.brk)-1]
		g.cont = g.cont[:len(g.cont)-1]
		if err != nil {
			return err
		}
		g.op("jmp %s", top)
		g.emit(end + ":")
		return nil
	case StmtFor:
		if s.Init != nil {
			if err := g.stmt(s.Init); err != nil {
				return err
			}
		}
		top := g.label()
		post := g.label()
		end := g.label()
		g.emit(top + ":")
		if s.E != nil {
			if err := g.condJump(s.E, end); err != nil {
				return err
			}
		}
		g.brk = append(g.brk, end)
		g.cont = append(g.cont, post)
		err := g.stmts(s.Body)
		g.brk = g.brk[:len(g.brk)-1]
		g.cont = g.cont[:len(g.cont)-1]
		if err != nil {
			return err
		}
		g.emit(post + ":")
		if s.Post != nil {
			if err := g.stmt(s.Post); err != nil {
				return err
			}
		}
		g.op("jmp %s", top)
		g.emit(end + ":")
		return nil
	case StmtReturn:
		if s.E != nil {
			if err := g.expr(s.E); err != nil {
				return err
			}
		}
		g.epilogue()
		return nil
	case StmtBreak:
		g.op("jmp %s", g.brk[len(g.brk)-1])
		return nil
	case StmtContinue:
		g.op("jmp %s", g.cont[len(g.cont)-1])
		return nil
	}
	return errf(s.Line, "unknown statement in codegen")
}

// condJump evaluates e and jumps to target when it is false. Comparisons at
// the top level fuse into cmp + jcc; everything else tests against zero.
func (g *gen) condJump(e *Expr, target string) error {
	if e.Kind == ExprBinary {
		if cc, signed := compareCond(e.Op); cc != "" {
			unsigned := decay(e.L.Type).IsUnsigned() || decay(e.R.Type).IsUnsigned()
			if err := g.expr(e.L); err != nil {
				return err
			}
			g.op("pushq %%rax")
			if err := g.expr(e.R); err != nil {
				return err
			}
			g.op("movq %%rax, %%rcx")
			g.op("popq %%rax")
			g.op("cmpq %%rcx, %%rax")
			g.op("j%s %s", negate(cc, signed && !unsigned), target)
			return nil
		}
	}
	if err := g.expr(e); err != nil {
		return err
	}
	g.op("cmpq $0, %%rax")
	g.op("je %s", target)
	return nil
}

// compareCond maps a comparison operator to its condition suffix for the
// signed form and reports whether it is a relational (signedness-sensitive).
func compareCond(op string) (string, bool) {
	switch op {
	case "==":
		return "e", false
	case "!=":
		return "ne", false
	case "<":
		return "l", true
	case "<=":
		return "le", true
	case ">":
		return "g", true
	case ">=":
		return "ge", true
	}
	return "", false
}

// negate returns the condition for the false branch; signed selects
// l/le/g/ge, otherwise b/be/a/ae.
func negate(cc string, signed bool) string {
	inv := map[string]string{"e": "ne", "ne": "e", "l": "ge", "le": "g", "g": "le", "ge": "l"}
	cc = inv[cc]
	if signed {
		return cc
	}
	uns := map[string]string{"l": "b", "le": "be", "g": "a", "ge": "ae", "e": "e", "ne": "ne"}
	return uns[cc]
}

// setCond returns the setcc suffix for op with the given signedness.
func setCond(op string, unsigned bool) string {
	var s string
	switch op {
	case "==":
		return "e"
	case "!=":
		return "ne"
	case "<":
		s = "l"
	case "<=":
		s = "le"
	case ">":
		s = "g"
	case ">=":
		s = "ge"
	}
	if unsigned {
		return map[string]string{"l": "b", "le": "be", "g": "a", "ge": "ae"}[s]
	}
	return s
}

// expr evaluates e into %rax. Temporaries are kept on the stack, so nested
// calls (and forks) are safe: the continuation reloads them through renamed
// stack memory.
func (g *gen) expr(e *Expr) error {
	switch e.Kind {
	case ExprNum:
		g.op("movq $%d, %%rax", int64(e.Num))
		return nil
	case ExprVar:
		if e.Type.Kind == TypeArray {
			return g.lvalueAddr(e) // arrays decay to their address
		}
		if e.Local != nil {
			g.op("movq %d(%%rbp), %%rax", e.Local.Offset)
		} else {
			g.op("movq %s, %%rax", e.Global.Name)
		}
		return nil
	case ExprUnary:
		switch e.Op {
		case "-":
			if err := g.expr(e.L); err != nil {
				return err
			}
			g.op("negq %%rax")
		case "~":
			if err := g.expr(e.L); err != nil {
				return err
			}
			g.op("notq %%rax")
		case "!":
			if err := g.expr(e.L); err != nil {
				return err
			}
			g.op("cmpq $0, %%rax")
			g.op("sete %%rax")
		case "*":
			if err := g.expr(e.L); err != nil {
				return err
			}
			if e.Type.Kind != TypeArray {
				g.op("movq (%%rax), %%rax")
			}
		case "&":
			return g.lvalueAddr(e.L)
		}
		return nil
	case ExprBinary:
		return g.binary(e)
	case ExprAssign:
		return g.assign(e)
	case ExprIndex:
		if err := g.lvalueAddr(e); err != nil {
			return err
		}
		if e.Type.Kind != TypeArray {
			g.op("movq (%%rax), %%rax")
		}
		return nil
	case ExprCall:
		return g.call(e)
	case ExprCond:
		els := g.label()
		end := g.label()
		if err := g.condJump(e.C, els); err != nil {
			return err
		}
		if err := g.expr(e.L); err != nil {
			return err
		}
		g.op("jmp %s", end)
		g.emit(els + ":")
		if err := g.expr(e.R); err != nil {
			return err
		}
		g.emit(end + ":")
		return nil
	}
	return errf(e.Line, "unknown expression in codegen")
}

// lvalueAddr evaluates the address of an lvalue (or array) into %rax.
func (g *gen) lvalueAddr(e *Expr) error {
	switch e.Kind {
	case ExprVar:
		if e.Local != nil {
			g.op("leaq %d(%%rbp), %%rax", e.Local.Offset)
		} else {
			g.op("movq $%s, %%rax", e.Global.Name)
		}
		return nil
	case ExprIndex:
		// Base address/value, then scaled index.
		base := e.L
		if decay(base.Type).Kind != TypePtr {
			return errf(e.Line, "bad index base")
		}
		if err := g.expr(base); err != nil { // arrays yield their address
			return err
		}
		g.op("pushq %%rax")
		if err := g.expr(e.R); err != nil {
			return err
		}
		g.op("popq %%rcx")
		g.op("leaq (%%rcx,%%rax,8), %%rax")
		return nil
	case ExprUnary:
		if e.Op == "*" {
			return g.expr(e.L)
		}
	}
	return errf(e.Line, "not an lvalue in codegen")
}

func (g *gen) binary(e *Expr) error {
	switch e.Op {
	case "&&":
		fail := g.label()
		end := g.label()
		if err := g.expr(e.L); err != nil {
			return err
		}
		g.op("cmpq $0, %%rax")
		g.op("je %s", fail)
		if err := g.expr(e.R); err != nil {
			return err
		}
		g.op("cmpq $0, %%rax")
		g.op("je %s", fail)
		g.op("movq $1, %%rax")
		g.op("jmp %s", end)
		g.emit(fail + ":")
		g.op("movq $0, %%rax")
		g.emit(end + ":")
		return nil
	case "||":
		ok := g.label()
		end := g.label()
		if err := g.expr(e.L); err != nil {
			return err
		}
		g.op("cmpq $0, %%rax")
		g.op("jne %s", ok)
		if err := g.expr(e.R); err != nil {
			return err
		}
		g.op("cmpq $0, %%rax")
		g.op("jne %s", ok)
		g.op("movq $0, %%rax")
		g.op("jmp %s", end)
		g.emit(ok + ":")
		g.op("movq $1, %%rax")
		g.emit(end + ":")
		return nil
	}

	lt, rt := decay(e.L.Type), decay(e.R.Type)
	if err := g.expr(e.L); err != nil {
		return err
	}
	g.op("pushq %%rax")
	if err := g.expr(e.R); err != nil {
		return err
	}
	g.op("movq %%rax, %%rcx")
	g.op("popq %%rax")
	// rax = L, rcx = R.
	g.binopRegs(e, lt, rt)
	return nil
}

// binopRegs emits the operator with L in rax and R in rcx, result in rax.
func (g *gen) binopRegs(e *Expr, lt, rt *Type) {
	switch e.Op {
	case "+":
		switch {
		case lt.Kind == TypePtr && rt.IsInteger():
			g.op("shlq $3, %%rcx")
		case rt.Kind == TypePtr && lt.IsInteger():
			g.op("shlq $3, %%rax")
		}
		g.op("addq %%rcx, %%rax")
	case "-":
		switch {
		case lt.Kind == TypePtr && rt.IsInteger():
			g.op("shlq $3, %%rcx")
			g.op("subq %%rcx, %%rax")
		case lt.Kind == TypePtr && rt.Kind == TypePtr:
			g.op("subq %%rcx, %%rax")
			g.op("sarq $3, %%rax")
		default:
			g.op("subq %%rcx, %%rax")
		}
	case "*":
		g.op("imulq %%rcx, %%rax")
	case "/", "%":
		if arith(lt, rt).IsUnsigned() {
			g.op("movq $0, %%rdx")
			g.op("divq %%rcx")
		} else {
			g.op("cqto")
			g.op("idivq %%rcx")
		}
		if e.Op == "%" {
			g.op("movq %%rdx, %%rax")
		}
	case "&":
		g.op("andq %%rcx, %%rax")
	case "|":
		g.op("orq %%rcx, %%rax")
	case "^":
		g.op("xorq %%rcx, %%rax")
	case "<<":
		g.op("shlq %%rcx, %%rax")
	case ">>":
		if lt.IsUnsigned() {
			g.op("shrq %%rcx, %%rax")
		} else {
			g.op("sarq %%rcx, %%rax")
		}
	case "==", "!=", "<", "<=", ">", ">=":
		unsigned := lt.IsUnsigned() || rt.IsUnsigned()
		g.op("cmpq %%rcx, %%rax")
		g.op("set%s %%rax", setCond(e.Op, unsigned))
	}
}

func (g *gen) assign(e *Expr) error {
	if e.Op == "" {
		// Simple assignment: value first, then address.
		if err := g.expr(e.R); err != nil {
			return err
		}
		// Fast path: direct store to a scalar variable.
		if e.L.Kind == ExprVar && e.L.Type.Kind != TypeArray {
			if e.L.Local != nil {
				g.op("movq %%rax, %d(%%rbp)", e.L.Local.Offset)
			} else {
				g.op("movq %%rax, %s", e.L.Global.Name)
			}
			return nil
		}
		g.op("pushq %%rax")
		if err := g.lvalueAddr(e.L); err != nil {
			return err
		}
		g.op("popq %%rcx")
		g.op("movq %%rcx, (%%rax)")
		g.op("movq %%rcx, %%rax")
		return nil
	}
	// Compound assignment: evaluate the address once.
	if err := g.lvalueAddr(e.L); err != nil {
		return err
	}
	g.op("pushq %%rax")
	if err := g.expr(e.R); err != nil {
		return err
	}
	g.op("movq %%rax, %%rcx")
	g.op("movq (%%rsp), %%rax") // the address
	g.op("movq (%%rax), %%rax") // current value
	fake := &Expr{Kind: ExprBinary, Op: e.Op, Line: e.Line, L: e.L, R: e.R}
	g.binopRegs(fake, decay(e.L.Type), decay(e.R.Type))
	g.op("popq %%rdx")
	g.op("movq %%rax, (%%rdx)")
	return nil
}

func (g *gen) call(e *Expr) error {
	// Evaluate arguments left to right onto the stack, then pop them into
	// the argument registers in reverse.
	for _, a := range e.Args {
		if err := g.expr(a); err != nil {
			return err
		}
		g.op("pushq %%rax")
	}
	for i := len(e.Args) - 1; i >= 0; i-- {
		g.op("popq %s", argRegs[i])
	}
	if g.mode == ModeFork {
		g.op("fork %s", e.Name)
	} else {
		g.op("call %s", e.Name)
	}
	return nil
}
