package minic

import (
	"fmt"
	"strings"
)

// Format renders an AST back to mini-C source. The output re-parses to the
// same program: Format(Parse(Format(p))) is a fixpoint, which is what the
// fuzz minimizer relies on — it mutates a freshly parsed AST, renders it,
// and re-enters the full front end, so a minimized reproducer on disk is an
// ordinary compilable mini-C file. Only syntactic fields are read; checker
// annotations (types, offsets, resolutions) are ignored, so both checked and
// unchecked programs format identically.
//
// Expressions are rendered fully parenthesized (except at statement level),
// trading prettiness for an unambiguous round trip.
func Format(p *Program) string {
	var f formatter
	for i, g := range p.Globals {
		if i > 0 && g.Type.Kind != p.Globals[i-1].Type.Kind {
			f.b.WriteByte('\n')
		}
		f.global(g)
	}
	for i, fn := range p.Functions {
		if len(p.Globals) > 0 || i > 0 {
			f.b.WriteByte('\n')
		}
		f.function(fn)
	}
	return f.b.String()
}

type formatter struct {
	b      strings.Builder
	indent int
}

func (f *formatter) line(format string, args ...any) {
	for i := 0; i < f.indent; i++ {
		f.b.WriteString("    ")
	}
	fmt.Fprintf(&f.b, format, args...)
	f.b.WriteByte('\n')
}

// declString renders "base *...*name" or "base *...*name[len]".
func declString(t *Type, name string) string {
	arr := ""
	if t.Kind == TypeArray {
		arr = fmt.Sprintf("[%d]", t.Len)
		t = t.Elem
	}
	stars := ""
	for t.Kind == TypePtr {
		stars += "*"
		t = t.Elem
	}
	return t.String() + " " + stars + name + arr
}

func (f *formatter) global(g *GlobalVar) {
	if g.Type.Kind != TypeArray && g.Init != 0 {
		f.line("%s = %d;", declString(g.Type, g.Name), int64(g.Init))
		return
	}
	f.line("%s;", declString(g.Type, g.Name))
}

func (f *formatter) function(fn *Function) {
	params := "void"
	if len(fn.Params) > 0 {
		var ps []string
		for _, p := range fn.Params {
			ps = append(ps, declString(p.Type, p.Name))
		}
		params = strings.Join(ps, ", ")
	}
	f.line("%s %s(%s) {", fn.Ret, fn.Name, params)
	f.indent++
	f.stmts(fn.Body)
	f.indent--
	f.line("}")
}

func (f *formatter) stmts(ss []*Stmt) {
	for _, s := range ss {
		f.stmt(s)
	}
}

// body renders a brace-enclosed statement body. A body that is exactly one
// block statement is unwrapped: the parser represents "{ s1; s2; }" as a
// single StmtBlock, so unwrapping keeps Format∘Parse a fixpoint.
func (f *formatter) body(ss []*Stmt) {
	if len(ss) == 1 && ss[0].Kind == StmtBlock {
		ss = ss[0].Body
	}
	f.indent++
	f.stmts(ss)
	f.indent--
}

func (f *formatter) stmt(s *Stmt) {
	switch s.Kind {
	case StmtExpr:
		f.line("%s;", fmtExpr(s.E, true))
	case StmtDecl:
		if s.DeclInit != nil {
			f.line("%s = %s;", declString(s.Decl.Type, s.Decl.Name), fmtExpr(s.DeclInit, true))
		} else {
			f.line("%s;", declString(s.Decl.Type, s.Decl.Name))
		}
	case StmtIf:
		f.line("if (%s) {", fmtExpr(s.E, true))
		f.body(s.Body)
		if len(s.Else) > 0 {
			f.line("} else {")
			f.body(s.Else)
		}
		f.line("}")
	case StmtWhile:
		f.line("while (%s) {", fmtExpr(s.E, true))
		f.body(s.Body)
		f.line("}")
	case StmtFor:
		f.line("for (%s; %s; %s) {", fmtForClause(s.Init), fmtOptExpr(s.E), fmtForClause(s.Post))
		f.body(s.Body)
		f.line("}")
	case StmtReturn:
		if s.E != nil {
			f.line("return %s;", fmtExpr(s.E, true))
		} else {
			f.line("return;")
		}
	case StmtBlock:
		if len(s.Body) == 0 {
			f.line(";")
			return
		}
		f.line("{")
		f.indent++
		f.stmts(s.Body)
		f.indent--
		f.line("}")
	case StmtBreak:
		f.line("break;")
	case StmtContinue:
		f.line("continue;")
	}
}

// fmtForClause renders a for-loop init or post clause (no trailing ';').
func fmtForClause(s *Stmt) string {
	switch {
	case s == nil:
		return ""
	case s.Kind == StmtDecl && s.DeclInit != nil:
		return fmt.Sprintf("%s = %s", declString(s.Decl.Type, s.Decl.Name), fmtExpr(s.DeclInit, true))
	case s.Kind == StmtDecl:
		return declString(s.Decl.Type, s.Decl.Name)
	default:
		return fmtExpr(s.E, true)
	}
}

func fmtOptExpr(e *Expr) string {
	if e == nil {
		return ""
	}
	return fmtExpr(e, true)
}

// fmtExpr renders e. Compound expressions are parenthesized unless top is
// set (statement, condition, argument and index positions, where the grammar
// accepts a full expression).
func fmtExpr(e *Expr, top bool) string {
	wrap := func(s string) string {
		if top {
			return s
		}
		return "(" + s + ")"
	}
	switch e.Kind {
	case ExprNum:
		return fmt.Sprintf("%d", e.Num)
	case ExprVar:
		return e.Name
	case ExprBinary:
		return wrap(fmtExpr(e.L, false) + " " + e.Op + " " + fmtExpr(e.R, false))
	case ExprUnary:
		return wrap(e.Op + fmtExpr(e.L, false))
	case ExprAssign:
		op := "="
		if e.Op != "" {
			op = e.Op + "="
		}
		return wrap(fmtExpr(e.L, false) + " " + op + " " + fmtExpr(e.R, false))
	case ExprIndex:
		base := fmtExpr(e.L, false)
		if e.L.Kind == ExprVar {
			base = e.L.Name
		}
		return base + "[" + fmtExpr(e.R, true) + "]"
	case ExprCall:
		var args []string
		for _, a := range e.Args {
			args = append(args, fmtExpr(a, true))
		}
		return e.Name + "(" + strings.Join(args, ", ") + ")"
	case ExprCond:
		return wrap(fmtExpr(e.C, false) + " ? " + fmtExpr(e.L, false) + " : " + fmtExpr(e.R, false))
	}
	return "/*?*/"
}
