package minic

// checker resolves names, assigns types and lays out stack frames.
type checker struct {
	prog   *Program
	fn     *Function
	scopes []map[string]*LocalVar
	loops  int
	frame  int64
}

// Check resolves and type-checks a parsed program in place.
func Check(prog *Program) error {
	c := &checker{prog: prog}
	for _, f := range prog.Functions {
		if err := c.function(f); err != nil {
			return err
		}
	}
	if _, ok := prog.funcByName["main"]; !ok {
		return errf(0, "no main function")
	}
	return nil
}

func (c *checker) function(f *Function) error {
	c.fn = f
	c.frame = 0
	c.loops = 0
	c.scopes = []map[string]*LocalVar{make(map[string]*LocalVar)}
	for _, p := range f.Params {
		if c.scopes[0][p.Name] != nil {
			return errf(f.Line, "duplicate parameter %q", p.Name)
		}
		c.alloc(p)
		c.scopes[0][p.Name] = p
	}
	if err := c.stmts(f.Body); err != nil {
		return err
	}
	// Align the frame to 16 for tidiness.
	f.FrameSize = (c.frame + 15) &^ 15
	return nil
}

func (c *checker) alloc(v *LocalVar) {
	c.frame += v.Type.Size()
	v.Offset = -c.frame
}

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]*LocalVar)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) *LocalVar {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v := c.scopes[i][name]; v != nil {
			return v
		}
	}
	return nil
}

func (c *checker) stmts(ss []*Stmt) error {
	for _, s := range ss {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s *Stmt) error {
	switch s.Kind {
	case StmtExpr:
		return c.expr(s.E)
	case StmtDecl:
		cur := c.scopes[len(c.scopes)-1]
		if cur[s.Decl.Name] != nil {
			return errf(s.Line, "duplicate variable %q", s.Decl.Name)
		}
		c.alloc(s.Decl)
		c.fn.Locals = append(c.fn.Locals, s.Decl)
		cur[s.Decl.Name] = s.Decl
		if s.DeclInit != nil {
			if s.Decl.Type.Kind == TypeArray {
				return errf(s.Line, "array initialisers are not supported")
			}
			if err := c.expr(s.DeclInit); err != nil {
				return err
			}
			if err := c.assignable(s.Line, s.Decl.Type, s.DeclInit); err != nil {
				return err
			}
		}
		return nil
	case StmtIf:
		if err := c.cond(s.E); err != nil {
			return err
		}
		c.push()
		if err := c.stmts(s.Body); err != nil {
			return err
		}
		c.pop()
		c.push()
		defer c.pop()
		return c.stmts(s.Else)
	case StmtWhile:
		if err := c.cond(s.E); err != nil {
			return err
		}
		c.loops++
		c.push()
		err := c.stmts(s.Body)
		c.pop()
		c.loops--
		return err
	case StmtFor:
		c.push()
		defer c.pop()
		if s.Init != nil {
			if err := c.stmt(s.Init); err != nil {
				return err
			}
		}
		if s.E != nil {
			if err := c.cond(s.E); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.stmt(s.Post); err != nil {
				return err
			}
		}
		c.loops++
		c.push()
		err := c.stmts(s.Body)
		c.pop()
		c.loops--
		return err
	case StmtReturn:
		if s.E == nil {
			if c.fn.Ret.Kind != TypeVoid {
				return errf(s.Line, "missing return value in %q", c.fn.Name)
			}
			return nil
		}
		if c.fn.Ret.Kind == TypeVoid {
			return errf(s.Line, "return with a value in void function %q", c.fn.Name)
		}
		if err := c.expr(s.E); err != nil {
			return err
		}
		return c.assignable(s.Line, c.fn.Ret, s.E)
	case StmtBlock:
		c.push()
		defer c.pop()
		return c.stmts(s.Body)
	case StmtBreak, StmtContinue:
		if c.loops == 0 {
			return errf(s.Line, "break/continue outside a loop")
		}
		return nil
	}
	return errf(s.Line, "unknown statement")
}

func (c *checker) cond(e *Expr) error {
	if err := c.expr(e); err != nil {
		return err
	}
	if e.Type.Kind == TypeVoid {
		return errf(e.Line, "void value used as condition")
	}
	return nil
}

// assignable checks that e can be assigned to type dst (a zero literal
// converts to any pointer; integers interconvert; pointer kinds must match).
func (c *checker) assignable(line int, dst *Type, e *Expr) error {
	src := e.Type
	if src.Kind == TypeArray {
		src = ptrTo(src.Elem) // decay
	}
	switch {
	case dst.IsInteger() && src.IsInteger():
		return nil
	case dst.Kind == TypePtr && src.Kind == TypePtr:
		return nil // permissive pointer conversion, as pre-ANSI C
	case dst.Kind == TypePtr && e.Kind == ExprNum && e.Num == 0:
		return nil
	case dst.Kind == TypePtr && src.IsInteger():
		return nil // permissive: addresses are exchanged with integers
	case dst.IsInteger() && src.Kind == TypePtr:
		return nil
	}
	return errf(line, "cannot assign %s to %s", e.Type, dst)
}

func (c *checker) expr(e *Expr) error {
	switch e.Kind {
	case ExprNum:
		e.Type = tyULong
		if int64(e.Num) >= 0 {
			e.Type = tyLong
		}
		return nil
	case ExprVar:
		if v := c.lookup(e.Name); v != nil {
			e.Local = v
			e.Type = v.Type
			return nil
		}
		if g := c.prog.globByName[e.Name]; g != nil {
			e.Global = g
			e.Type = g.Type
			return nil
		}
		return errf(e.Line, "undeclared identifier %q", e.Name)
	case ExprUnary:
		if err := c.expr(e.L); err != nil {
			return err
		}
		switch e.Op {
		case "-", "~":
			if !e.L.Type.IsInteger() {
				return errf(e.Line, "unary %s on %s", e.Op, e.L.Type)
			}
			e.Type = e.L.Type
		case "!":
			e.Type = tyLong
		case "*":
			t := e.L.Type
			if t.Kind == TypeArray {
				t = ptrTo(t.Elem)
			}
			if t.Kind != TypePtr {
				return errf(e.Line, "dereference of non-pointer %s", e.L.Type)
			}
			if t.Elem.Kind == TypeVoid {
				return errf(e.Line, "dereference of void pointer")
			}
			e.Type = t.Elem
		case "&":
			if !c.isLvalue(e.L) {
				return errf(e.Line, "cannot take the address of this expression")
			}
			t := e.L.Type
			if t.Kind == TypeArray {
				t = t.Elem
			}
			e.Type = ptrTo(t)
		}
		return nil
	case ExprBinary:
		if err := c.expr(e.L); err != nil {
			return err
		}
		if err := c.expr(e.R); err != nil {
			return err
		}
		lt, rt := decay(e.L.Type), decay(e.R.Type)
		switch e.Op {
		case "+":
			switch {
			case lt.Kind == TypePtr && rt.IsInteger():
				e.Type = lt
			case rt.Kind == TypePtr && lt.IsInteger():
				e.Type = rt
			case lt.IsInteger() && rt.IsInteger():
				e.Type = arith(lt, rt)
			default:
				return errf(e.Line, "invalid operands to +: %s and %s", lt, rt)
			}
		case "-":
			switch {
			case lt.Kind == TypePtr && rt.IsInteger():
				e.Type = lt
			case lt.Kind == TypePtr && rt.Kind == TypePtr:
				e.Type = tyLong // element difference
			case lt.IsInteger() && rt.IsInteger():
				e.Type = arith(lt, rt)
			default:
				return errf(e.Line, "invalid operands to -: %s and %s", lt, rt)
			}
		case "*", "/", "%", "&", "|", "^", "<<", ">>":
			if !lt.IsInteger() || !rt.IsInteger() {
				return errf(e.Line, "invalid operands to %s: %s and %s", e.Op, lt, rt)
			}
			if e.Op == "<<" || e.Op == ">>" {
				e.Type = lt
			} else {
				e.Type = arith(lt, rt)
			}
		case "<", "<=", ">", ">=", "==", "!=":
			okInts := lt.IsInteger() && rt.IsInteger()
			okPtrs := lt.Kind == TypePtr && rt.Kind == TypePtr
			okPtrZero := (lt.Kind == TypePtr && e.R.Kind == ExprNum) || (rt.Kind == TypePtr && e.L.Kind == ExprNum)
			if !okInts && !okPtrs && !okPtrZero {
				return errf(e.Line, "invalid comparison: %s and %s", lt, rt)
			}
			e.Type = tyLong
		case "&&", "||":
			e.Type = tyLong
		default:
			return errf(e.Line, "unknown operator %q", e.Op)
		}
		return nil
	case ExprAssign:
		if err := c.expr(e.L); err != nil {
			return err
		}
		if !c.isLvalue(e.L) || e.L.Type.Kind == TypeArray {
			return errf(e.Line, "assignment to non-lvalue")
		}
		if err := c.expr(e.R); err != nil {
			return err
		}
		if e.Op != "" {
			// Compound assignment: type-check as L = L op R.
			bin := &Expr{Kind: ExprBinary, Op: e.Op, Line: e.Line, L: e.L, R: e.R}
			if err := c.expr(bin); err != nil {
				return err
			}
		}
		if err := c.assignable(e.Line, e.L.Type, e.R); err != nil {
			return err
		}
		e.Type = e.L.Type
		return nil
	case ExprIndex:
		if err := c.expr(e.L); err != nil {
			return err
		}
		if err := c.expr(e.R); err != nil {
			return err
		}
		bt := decay(e.L.Type)
		if bt.Kind != TypePtr {
			return errf(e.Line, "indexing a non-array %s", e.L.Type)
		}
		if !e.R.Type.IsInteger() {
			return errf(e.Line, "array index must be an integer")
		}
		if bt.Elem.Kind == TypeVoid {
			return errf(e.Line, "indexing a void pointer")
		}
		e.Type = bt.Elem
		return nil
	case ExprCall:
		f := c.prog.funcByName[e.Name]
		if f == nil {
			return errf(e.Line, "call of undefined function %q", e.Name)
		}
		e.Callee = f
		if len(e.Args) != len(f.Params) {
			return errf(e.Line, "%q takes %d arguments, got %d", e.Name, len(f.Params), len(e.Args))
		}
		for i, a := range e.Args {
			if err := c.expr(a); err != nil {
				return err
			}
			if err := c.assignable(a.Line, f.Params[i].Type, a); err != nil {
				return err
			}
		}
		e.Type = f.Ret
		return nil
	case ExprCond:
		if err := c.cond(e.C); err != nil {
			return err
		}
		if err := c.expr(e.L); err != nil {
			return err
		}
		if err := c.expr(e.R); err != nil {
			return err
		}
		e.Type = decay(e.L.Type)
		return nil
	}
	return errf(e.Line, "unknown expression")
}

func decay(t *Type) *Type {
	if t.Kind == TypeArray {
		return ptrTo(t.Elem)
	}
	return t
}

// arith returns the usual arithmetic conversion of two integer types:
// unsigned wins.
func arith(a, b *Type) *Type {
	if a.Kind == TypeULong || b.Kind == TypeULong {
		return tyULong
	}
	return tyLong
}

func (c *checker) isLvalue(e *Expr) bool {
	switch e.Kind {
	case ExprVar:
		return true
	case ExprIndex:
		return true
	case ExprUnary:
		return e.Op == "*"
	}
	return false
}
