// Package minic implements a compiler for mini-C — the C subset the
// reproduction uses to express the paper's workloads (the sum reduction of
// Fig. 1a and the ten PBBS-style kernels of Fig. 7) — targeting the
// reproduction's x86-flavoured ISA through the internal/asm assembler.
//
// The language: `long` / `unsigned long` scalars (both 64-bit), pointers and
// fixed-size arrays of those, functions with up to six parameters, `if` /
// `else` / `while` / `for` / `break` / `continue` / `return`, and the usual
// C expression operators with C semantics (short-circuit && and ||,
// signedness-aware comparison, division and right shift). Every scalar,
// pointer and array element is 8 bytes.
//
// Two code generation modes reproduce the paper's §2:
//
//   - call mode (default): functions use call/ret and a conventional
//     rbp-framed stack, like the paper's Fig. 2;
//   - fork mode: call is replaced by fork and ret by endfork, like the
//     paper's Fig. 5 — the generated code runs in parallel sections on the
//     machine simulator with no other change, because all cross-call values
//     flow through fork-copied registers or renamed stack memory.
package minic

import "fmt"

// tokKind enumerates token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct   // operators and delimiters
	tokKeyword // long, unsigned, void, if, else, while, for, return, break, continue
)

var keywords = map[string]bool{
	"long": true, "unsigned": true, "void": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true,
}

// token is one lexical token.
type token struct {
	kind tokKind
	text string
	num  uint64 // for tokNumber
	line int
	col  int // 1-based column of the token's first byte
}

// Error is a compile error with a source position. Line is always set (0 only
// for whole-program errors like a missing main); Col is the 1-based column
// when the failing construct is known down to a token — parser and lexer
// errors carry it, checker and codegen errors are line-only. Every error the
// package returns is (or wraps) an *Error, so callers — the fuzz minimizer
// writing reproducers, editors jumping to positions — can unwrap it with
// errors.As and get at the structured position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	if e.Col > 0 {
		return fmt.Sprintf("minic: line %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("minic: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// errTok is errf anchored at a token: the error carries the token's line and
// column.
func errTok(t token, format string, args ...any) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenises src.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	lineStart := 0 // byte offset of the current line's first column
	i := 0
	n := len(src)
	col := func() int { return i - lineStart + 1 }
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
			lineStart = i
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			startLine, startCol := line, col()
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
					lineStart = i + 1
				}
				i++
			}
			if i+1 >= n {
				return nil, &Error{Line: startLine, Col: startCol, Msg: "unterminated comment"}
			}
			i += 2
		case isIdentStart(c):
			j := i
			for j < n && isIdentPart(src[j]) {
				j++
			}
			word := src[i:j]
			k := tokIdent
			if keywords[word] {
				k = tokKeyword
			}
			toks = append(toks, token{kind: k, text: word, line: line, col: col()})
			i = j
		case c >= '0' && c <= '9':
			startCol := col()
			j := i
			base := uint64(10)
			if c == '0' && i+1 < n && (src[i+1] == 'x' || src[i+1] == 'X') {
				base = 16
				j = i + 2
				for j < n && isHex(src[j]) {
					j++
				}
				if j == i+2 {
					return nil, &Error{Line: line, Col: startCol, Msg: "bad hex literal"}
				}
			} else {
				for j < n && src[j] >= '0' && src[j] <= '9' {
					j++
				}
			}
			var v uint64
			var digits string
			if base == 16 {
				digits = src[i+2 : j]
			} else {
				digits = src[i:j]
			}
			for _, d := range []byte(digits) {
				var dv uint64
				switch {
				case d >= '0' && d <= '9':
					dv = uint64(d - '0')
				case d >= 'a' && d <= 'f':
					dv = uint64(d-'a') + 10
				case d >= 'A' && d <= 'F':
					dv = uint64(d-'A') + 10
				}
				v = v*base + dv
			}
			// Accept UL/U/L suffixes.
			for j < n && (src[j] == 'u' || src[j] == 'U' || src[j] == 'l' || src[j] == 'L') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, num: v, text: src[i:j], line: line, col: startCol})
			i = j
		default:
			// Multi-character operators first.
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "++", "--":
				toks = append(toks, token{kind: tokPunct, text: two, line: line, col: col()})
				i += 2
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>', '=',
				'(', ')', '{', '}', '[', ']', ';', ',', '?', ':':
				toks = append(toks, token{kind: tokPunct, text: string(c), line: line, col: col()})
				i++
			default:
				return nil, &Error{Line: line, Col: col(), Msg: fmt.Sprintf("unexpected character %q", string(c))}
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col()})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isHex(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
