package minic

// Type represents a mini-C type. Every scalar and pointer occupies 8 bytes.
type Type struct {
	Kind TypeKind
	Elem *Type // for pointers and arrays
	Len  int64 // for arrays
}

// TypeKind enumerates type kinds.
type TypeKind uint8

// Type kinds.
const (
	TypeVoid TypeKind = iota
	TypeLong
	TypeULong
	TypePtr
	TypeArray
)

var (
	tyVoid  = &Type{Kind: TypeVoid}
	tyLong  = &Type{Kind: TypeLong}
	tyULong = &Type{Kind: TypeULong}
)

func ptrTo(t *Type) *Type            { return &Type{Kind: TypePtr, Elem: t} }
func arrayOf(t *Type, n int64) *Type { return &Type{Kind: TypeArray, Elem: t, Len: n} }

// IsInteger reports whether t is long or unsigned long.
func (t *Type) IsInteger() bool { return t.Kind == TypeLong || t.Kind == TypeULong }

// IsUnsigned reports whether comparisons/division on t are unsigned.
// Pointers compare unsigned.
func (t *Type) IsUnsigned() bool { return t.Kind == TypeULong || t.Kind == TypePtr }

// IsPtrLike reports whether t is a pointer or an array (decays to pointer).
func (t *Type) IsPtrLike() bool { return t.Kind == TypePtr || t.Kind == TypeArray }

// Size returns the size in bytes (arrays: whole extent).
func (t *Type) Size() int64 {
	if t.Kind == TypeArray {
		return 8 * t.Len
	}
	return 8
}

// String renders the type.
func (t *Type) String() string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeLong:
		return "long"
	case TypeULong:
		return "unsigned long"
	case TypePtr:
		return t.Elem.String() + "*"
	case TypeArray:
		return t.Elem.String() + "[]"
	}
	return "?"
}

// sameType reports structural type equality (array length ignored).
func sameType(a, b *Type) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == TypePtr || a.Kind == TypeArray {
		return sameType(a.Elem, b.Elem)
	}
	return true
}

// ExprKind enumerates expression node kinds.
type ExprKind uint8

// Expression kinds.
const (
	ExprNum    ExprKind = iota // integer literal
	ExprVar                    // identifier reference
	ExprBinary                 // Op: + - * / % & | ^ << >> < <= > >= == != && ||
	ExprUnary                  // Op: - ! ~ * &
	ExprAssign                 // L = R (also compound: Op holds "+" for +=, etc.)
	ExprCall                   // F(Args...)
	ExprIndex                  // Base[Idx]
	ExprCond                   // C ? A : B
)

// Expr is an expression node. Type is filled by the checker.
type Expr struct {
	Kind ExprKind
	Line int
	Type *Type

	Num  uint64 // ExprNum
	Name string // ExprVar, ExprCall (callee)
	Op   string // ExprBinary, ExprUnary, ExprAssign (compound op or "")

	L, R *Expr   // binary/assign/index (L=base, R=index) / cond (L, R = arms)
	C    *Expr   // ExprCond condition
	Args []*Expr // ExprCall

	// Resolution results (checker).
	Local  *LocalVar  // ExprVar: local / parameter
	Global *GlobalVar // ExprVar: global
	Callee *Function  // ExprCall
}

// StmtKind enumerates statement node kinds.
type StmtKind uint8

// Statement kinds.
const (
	StmtExpr StmtKind = iota
	StmtDecl
	StmtIf
	StmtWhile
	StmtFor
	StmtReturn
	StmtBlock
	StmtBreak
	StmtContinue
)

// Stmt is a statement node.
type Stmt struct {
	Kind StmtKind
	Line int

	E          *Expr // expr stmt, condition, return value (may be nil)
	Init, Post *Stmt // for
	Body, Else []*Stmt
	Decl       *LocalVar
	DeclInit   *Expr
}

// LocalVar is a local variable or parameter.
type LocalVar struct {
	Name   string
	Type   *Type
	Offset int64 // rbp-relative (negative)
	Param  int   // parameter index, -1 for plain locals
}

// GlobalVar is a module-level variable.
type GlobalVar struct {
	Name string
	Type *Type
	Init uint64 // initial value for scalars
}

// Function is a function definition.
type Function struct {
	Name      string
	Ret       *Type
	Params    []*LocalVar
	Locals    []*LocalVar // includes params
	Body      []*Stmt
	FrameSize int64
	Line      int
}

// Program is a parsed and checked mini-C translation unit.
type Program struct {
	Globals    []*GlobalVar
	Functions  []*Function
	funcByName map[string]*Function
	globByName map[string]*GlobalVar
}
