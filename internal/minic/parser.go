package minic

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
	prog *Program
}

func (p *parser) tok() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(text string) bool {
	t := p.tok()
	if (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return errTok(p.tok(), "expected %q, got %q", text, p.tok().text)
	}
	return nil
}

// Parse parses a translation unit (without semantic checking).
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prog: &Program{
		funcByName: make(map[string]*Function),
		globByName: make(map[string]*GlobalVar),
	}}
	for p.tok().kind != tokEOF {
		if err := p.topLevel(); err != nil {
			return nil, err
		}
	}
	return p.prog, nil
}

// baseType parses `long`, `unsigned long`, or `void`, returning nil on no
// match (position restored).
func (p *parser) baseType() *Type {
	start := p.pos
	if p.accept("void") {
		return tyVoid
	}
	if p.accept("unsigned") {
		if p.accept("long") {
			return tyULong
		}
		p.pos = start
		return nil
	}
	if p.accept("long") {
		return tyLong
	}
	return nil
}

// declarator parses pointer stars and a name: `*...* name`.
func (p *parser) declarator(base *Type) (*Type, string, error) {
	ty := base
	for p.accept("*") {
		ty = ptrTo(ty)
	}
	t := p.tok()
	if t.kind != tokIdent {
		return nil, "", errTok(t, "expected identifier, got %q", t.text)
	}
	p.pos++
	return ty, t.text, nil
}

func (p *parser) topLevel() error {
	line := p.tok().line
	base := p.baseType()
	if base == nil {
		return errTok(p.tok(), "expected declaration, got %q", p.tok().text)
	}
	ty, name, err := p.declarator(base)
	if err != nil {
		return err
	}
	if p.accept("(") {
		return p.functionRest(ty, name, line)
	}
	// Global variable(s).
	for {
		g := &GlobalVar{Name: name, Type: ty}
		if p.accept("[") {
			n := p.tok()
			if n.kind != tokNumber {
				return errTok(n, "array length must be a constant")
			}
			p.pos++
			if err := p.expect("]"); err != nil {
				return err
			}
			if ty.Kind == TypeVoid {
				return errf(line, "array of void")
			}
			g.Type = arrayOf(ty, int64(n.num))
		}
		if p.accept("=") {
			v := p.tok()
			neg := false
			if v.kind == tokPunct && v.text == "-" {
				neg = true
				p.pos++
				v = p.tok()
			}
			if v.kind != tokNumber {
				return errTok(v, "global initialiser must be a constant")
			}
			p.pos++
			g.Init = v.num
			if neg {
				g.Init = -g.Init
			}
		}
		if g.Type.Kind == TypeVoid {
			return errf(line, "variable of type void")
		}
		if _, dup := p.prog.globByName[g.Name]; dup {
			return errf(line, "duplicate global %q", g.Name)
		}
		p.prog.Globals = append(p.prog.Globals, g)
		p.prog.globByName[g.Name] = g
		if p.accept(",") {
			ty, name, err = p.declarator(base)
			if err != nil {
				return err
			}
			continue
		}
		return p.expect(";")
	}
}

func (p *parser) functionRest(ret *Type, name string, line int) error {
	f := &Function{Name: name, Ret: ret, Line: line}
	if !p.accept(")") {
		if p.accept("void") {
			if err := p.expect(")"); err != nil {
				return err
			}
		} else {
			for {
				base := p.baseType()
				if base == nil {
					return errTok(p.tok(), "expected parameter type, got %q", p.tok().text)
				}
				ty, pname, err := p.declarator(base)
				if err != nil {
					return err
				}
				// Array parameters decay to pointers.
				if p.accept("[") {
					if p.tok().kind == tokNumber {
						p.pos++
					}
					if err := p.expect("]"); err != nil {
						return err
					}
					ty = ptrTo(ty)
				}
				if ty.Kind == TypeVoid {
					return errf(line, "parameter of type void")
				}
				v := &LocalVar{Name: pname, Type: ty, Param: len(f.Params)}
				f.Params = append(f.Params, v)
				f.Locals = append(f.Locals, v)
				if p.accept(",") {
					continue
				}
				if err := p.expect(")"); err != nil {
					return err
				}
				break
			}
		}
	}
	if len(f.Params) > 6 {
		return errf(line, "function %q has %d parameters; at most 6 supported", name, len(f.Params))
	}
	if _, dup := p.prog.funcByName[name]; dup {
		return errf(line, "duplicate function %q", name)
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	body, err := p.block()
	if err != nil {
		return err
	}
	f.Body = body
	p.prog.Functions = append(p.prog.Functions, f)
	p.prog.funcByName[name] = f
	return nil
}

// block parses statements until the closing brace (already past '{').
func (p *parser) block() ([]*Stmt, error) {
	var out []*Stmt
	for !p.accept("}") {
		if p.tok().kind == tokEOF {
			return nil, errTok(p.tok(), "unexpected end of file in block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s...)
	}
	return out, nil
}

// statement returns one or more statements (a declaration list expands).
func (p *parser) statement() ([]*Stmt, error) {
	line := p.tok().line
	switch {
	case p.accept("{"):
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return []*Stmt{{Kind: StmtBlock, Line: line, Body: body}}, nil
	case p.accept(";"):
		return []*Stmt{{Kind: StmtBlock, Line: line}}, nil
	case p.accept("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		s := &Stmt{Kind: StmtIf, Line: line, E: cond, Body: body}
		if p.accept("else") {
			els, err := p.statement()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
		return []*Stmt{s}, nil
	case p.accept("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return []*Stmt{{Kind: StmtWhile, Line: line, E: cond, Body: body}}, nil
	case p.accept("for"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		s := &Stmt{Kind: StmtFor, Line: line}
		if !p.accept(";") {
			init, err := p.forInit(line)
			if err != nil {
				return nil, err
			}
			s.Init = init
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		if !p.accept(";") {
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.E = cond
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		if !p.accept(")") {
			post, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			s.Post = post
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		s.Body = body
		return []*Stmt{s}, nil
	case p.accept("return"):
		s := &Stmt{Kind: StmtReturn, Line: line}
		if !p.accept(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.E = e
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		return []*Stmt{s}, nil
	case p.accept("break"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return []*Stmt{{Kind: StmtBreak, Line: line}}, nil
	case p.accept("continue"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return []*Stmt{{Kind: StmtContinue, Line: line}}, nil
	}
	// Declaration?
	if base := p.baseType(); base != nil {
		var out []*Stmt
		for {
			ty, name, err := p.declarator(base)
			if err != nil {
				return nil, err
			}
			if p.accept("[") {
				n := p.tok()
				if n.kind != tokNumber {
					return nil, errTok(n, "array length must be a constant")
				}
				p.pos++
				if err := p.expect("]"); err != nil {
					return nil, err
				}
				ty = arrayOf(ty, int64(n.num))
			}
			if ty.Kind == TypeVoid {
				return nil, errf(line, "variable of type void")
			}
			v := &LocalVar{Name: name, Type: ty, Param: -1}
			s := &Stmt{Kind: StmtDecl, Line: line, Decl: v}
			if p.accept("=") {
				init, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				s.DeclInit = init
			}
			out = append(out, s)
			if p.accept(",") {
				continue
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			return out, nil
		}
	}
	// Expression statement.
	s, err := p.simpleStmt()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return []*Stmt{s}, nil
}

// forInit parses a for-loop initialiser: either a single declaration with an
// initialiser (C99 style) or an expression statement.
func (p *parser) forInit(line int) (*Stmt, error) {
	if base := p.baseType(); base != nil {
		ty, name, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if ty.Kind == TypeVoid {
			return nil, errf(line, "variable of type void")
		}
		v := &LocalVar{Name: name, Type: ty, Param: -1}
		s := &Stmt{Kind: StmtDecl, Line: line, Decl: v}
		if p.accept("=") {
			init, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			s.DeclInit = init
		}
		return s, nil
	}
	return p.simpleStmt()
}

// simpleStmt parses an expression statement (no trailing ';').
func (p *parser) simpleStmt() (*Stmt, error) {
	line := p.tok().line
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &Stmt{Kind: StmtExpr, Line: line, E: e}, nil
}

// Expression grammar, standard C precedence.

func (p *parser) expr() (*Expr, error) { return p.assignExpr() }

func (p *parser) assignExpr() (*Expr, error) {
	l, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	t := p.tok()
	if t.kind == tokPunct {
		switch t.text {
		case "=":
			p.pos++
			r, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: ExprAssign, Line: t.line, L: l, R: r}, nil
		case "+=", "-=", "*=", "/=", "%=":
			p.pos++
			r, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: ExprAssign, Op: t.text[:1], Line: t.line, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) condExpr() (*Expr, error) {
	c, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if p.accept("?") {
		a, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		b, err := p.condExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprCond, Line: c.Line, C: c, L: a, R: b}, nil
	}
	return c, nil
}

// binary operator precedence levels, low to high.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binExpr(level int) (*Expr, error) {
	if level >= len(precLevels) {
		return p.unaryExpr()
	}
	l, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.tok()
		matched := false
		if t.kind == tokPunct {
			for _, op := range precLevels[level] {
				if t.text == op {
					matched = true
					break
				}
			}
		}
		if !matched {
			return l, nil
		}
		p.pos++
		r, err := p.binExpr(level + 1)
		if err != nil {
			return nil, err
		}
		l = &Expr{Kind: ExprBinary, Op: t.text, Line: t.line, L: l, R: r}
	}
}

func (p *parser) unaryExpr() (*Expr, error) {
	t := p.tok()
	if t.kind == tokPunct {
		switch t.text {
		case "-", "!", "~", "*", "&":
			p.pos++
			e, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &Expr{Kind: ExprUnary, Op: t.text, Line: t.line, L: e}, nil
		case "+":
			p.pos++
			return p.unaryExpr()
		case "++", "--":
			// Pre-increment sugar: ++x => x = x + 1.
			p.pos++
			e, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			one := &Expr{Kind: ExprNum, Num: 1, Line: t.line}
			op := "+"
			if t.text == "--" {
				op = "-"
			}
			return &Expr{Kind: ExprAssign, Op: op, Line: t.line, L: e, R: one}, nil
		}
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (*Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.tok()
		if t.kind != tokPunct {
			return e, nil
		}
		switch t.text {
		case "[":
			p.pos++
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Expr{Kind: ExprIndex, Line: t.line, L: e, R: idx}
		case "(":
			if e.Kind != ExprVar {
				return nil, errTok(t, "call of non-function expression")
			}
			p.pos++
			call := &Expr{Kind: ExprCall, Name: e.Name, Line: t.line}
			if !p.accept(")") {
				for {
					a, err := p.assignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(",") {
						continue
					}
					if err := p.expect(")"); err != nil {
						return nil, err
					}
					break
				}
			}
			e = call
		default:
			return e, nil
		}
	}
}

func (p *parser) primaryExpr() (*Expr, error) {
	t := p.tok()
	switch t.kind {
	case tokNumber:
		p.pos++
		return &Expr{Kind: ExprNum, Num: t.num, Line: t.line}, nil
	case tokIdent:
		p.pos++
		return &Expr{Kind: ExprVar, Name: t.text, Line: t.line}, nil
	case tokPunct:
		if t.text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, errTok(t, "unexpected token %q", t.text)
}
