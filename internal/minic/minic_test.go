package minic

import (
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/machine"
)

// compileRun compiles src in the given mode and runs it on the emulator,
// returning main's result (rax at halt).
func compileRun(t *testing.T, src string, mode Mode) uint64 {
	t.Helper()
	p, err := Compile(src, mode)
	if err != nil {
		t.Fatalf("compile (%s): %v", mode, err)
	}
	cpu, err := emu.RunProgram(p)
	if err != nil {
		t.Fatalf("run (%s): %v", mode, err)
	}
	return cpu.Result()
}

// runBothModes checks that call mode, fork mode (emulator) and fork mode
// (machine simulator) all agree with want.
func runBothModes(t *testing.T, src string, want uint64) {
	t.Helper()
	if got := compileRun(t, src, ModeCall); got != want {
		t.Errorf("call mode = %d, want %d", got, want)
	}
	if got := compileRun(t, src, ModeFork); got != want {
		t.Errorf("fork mode (emulator) = %d, want %d", got, want)
	}
	p, err := Compile(src, ModeFork)
	if err != nil {
		t.Fatal(err)
	}
	r, err := machine.RunProgram(p, 4)
	if err != nil {
		t.Fatalf("fork mode (machine): %v", err)
	}
	if r.RAX != want {
		t.Errorf("fork mode (machine) = %d, want %d", r.RAX, want)
	}
}

func TestReturnConstant(t *testing.T) {
	runBothModes(t, `long main(void) { return 42; }`, 42)
}

func TestArithmetic(t *testing.T) {
	runBothModes(t, `
long main(void) {
    long a = 10;
    long b = 3;
    return a*b + a/b - a%b + (a<<2) - (a>>1) + (a&b) + (a|b) + (a^b);
}`, 30+3-1+40-5+2+11+9)
}

func TestSignedDivision(t *testing.T) {
	runBothModes(t, `
long main(void) {
    long a = 0 - 17;
    long b = 5;
    return a / b + 100;  // -3 + 100
}`, 97)
}

func TestUnsignedDivision(t *testing.T) {
	runBothModes(t, `
unsigned long main(void) {
    unsigned long a = 17;
    unsigned long b = 5;
    return a / b * 10 + a % b;
}`, 32)
}

func TestComparisonsSignedness(t *testing.T) {
	runBothModes(t, `
long main(void) {
    long s = 0 - 1;
    unsigned long u = 0 - 1;   // max
    long r = 0;
    if (s < 1) r = r + 1;      // signed: -1 < 1
    if (u > 1) r = r + 10;     // unsigned: max > 1
    if (s <= 0 - 1) r = r + 100;
    if (1 > 0) r = r + 1000;
    return r;
}`, 1111)
}

func TestWhileLoop(t *testing.T) {
	runBothModes(t, `
long main(void) {
    long i = 0;
    long s = 0;
    while (i < 10) { s = s + i; i = i + 1; }
    return s;
}`, 45)
}

func TestForLoopBreakContinue(t *testing.T) {
	runBothModes(t, `
long main(void) {
    long s = 0;
    for (long i = 0; i < 100; i = i + 1) {
        if (i == 50) break;
        if (i % 2) continue;
        s = s + i;
    }
    return s;  // 0+2+...+48
}`, 600)
}

func TestGlobalsAndArrays(t *testing.T) {
	runBothModes(t, `
unsigned long t[8];
unsigned long n = 8;
long main(void) {
    for (unsigned long i = 0; i < n; i = i + 1) t[i] = i * i;
    unsigned long s = 0;
    for (unsigned long i = 0; i < n; i = i + 1) s = s + t[i];
    return s;  // 0+1+4+...+49
}`, 140)
}

func TestPointers(t *testing.T) {
	runBothModes(t, `
unsigned long buf[4];
unsigned long main(void) {
    unsigned long *p = buf;
    *p = 5;
    *(p + 1) = 7;
    p[2] = 11;
    unsigned long *q = &buf[3];
    *q = 13;
    return buf[0] + buf[1] + buf[2] + buf[3] + (q - p);
}`, 5+7+11+13+3)
}

func TestLocalArrays(t *testing.T) {
	runBothModes(t, `
long main(void) {
    long a[5];
    for (long i = 0; i < 5; i = i + 1) a[i] = i + 1;
    long s = 0;
    for (long i = 0; i < 5; i = i + 1) s = s + a[i];
    return s;
}`, 15)
}

func TestFunctionCalls(t *testing.T) {
	runBothModes(t, `
long add3(long a, long b, long c) { return a + b + c; }
long twice(long x) { return add3(x, x, 0); }
long main(void) { return twice(add3(1, 2, 3)) + add3(10, 20, 30); }`, 72)
}

func TestSixArguments(t *testing.T) {
	runBothModes(t, `
long f(long a, long b, long c, long d, long e, long g) {
    return a + 2*b + 3*c + 4*d + 5*e + 6*g;
}
long main(void) { return f(1, 2, 3, 4, 5, 6); }`, 1+4+9+16+25+36)
}

func TestRecursionFactorial(t *testing.T) {
	runBothModes(t, `
unsigned long fact(unsigned long n) {
    if (n < 2) return 1;
    return n * fact(n - 1);
}
unsigned long main(void) { return fact(10); }`, 3628800)
}

// TestRecursiveSum compiles the paper's Fig. 1a C function (almost verbatim)
// and checks it in both modes — the core claim of §2: the same C code runs
// sequentially with call/ret and in parallel sections with fork/endfork.
func TestRecursiveSum(t *testing.T) {
	src := `
unsigned long t[64];
unsigned long sum(unsigned long *p, unsigned long n) {
    if (n == 1) return p[0];
    else if (n == 2) return p[0] + p[1];
    else return sum(p, n/2) + sum(&p[n/2], n - n/2);
}
unsigned long main(void) {
    for (unsigned long i = 0; i < 64; i = i + 1) t[i] = i + 1;
    return sum(t, 64);
}`
	runBothModes(t, src, 64*65/2)
}

func TestShortCircuit(t *testing.T) {
	runBothModes(t, `
unsigned long g = 0;
long touch(void) { g = g + 1; return 1; }
long main(void) {
    long a = 0 && touch();   // touch not called
    long b = 1 || touch();   // touch not called
    long c = 1 && touch();   // called
    long d = 0 || touch();   // called
    return g * 100 + a + b * 10 + c + d;
}`, 212)
}

func TestTernary(t *testing.T) {
	runBothModes(t, `
long max(long a, long b) { return a > b ? a : b; }
long main(void) { return max(3, 9) * 10 + max(7, 2); }`, 97)
}

func TestCompoundAssign(t *testing.T) {
	runBothModes(t, `
unsigned long a[3];
long main(void) {
    long x = 10;
    x += 5; x -= 3; x *= 4; x /= 6; x %= 5;  // ((10+5-3)*4/6)%5 = 8%5 = 3
    a[1] = 7;
    a[1] += 3;
    long i = 1;
    a[i] *= 2;
    ++x;
    return x * 100 + a[1];
}`, 420)
}

func TestVoidFunction(t *testing.T) {
	runBothModes(t, `
unsigned long g;
void set(unsigned long v) { g = v; }
unsigned long main(void) { set(123); return g; }`, 123)
}

func TestGlobalInitialisers(t *testing.T) {
	runBothModes(t, `
long a = 5, b = -3;
unsigned long c = 0x10;
long main(void) { return a + b + c; }`, 18)
}

func TestNestedIndexing(t *testing.T) {
	runBothModes(t, `
unsigned long idx[4];
unsigned long v[4];
unsigned long main(void) {
    idx[0] = 3; idx[1] = 2; idx[2] = 1; idx[3] = 0;
    v[0] = 10; v[1] = 20; v[2] = 30; v[3] = 40;
    return v[idx[1]];
}`, 30)
}

func TestNotAndBitwise(t *testing.T) {
	runBothModes(t, `
long main(void) {
    long x = 5;
    long a = !x;        // 0
    long b = !a;        // 1
    long c = ~0;        // -1
    return b * 10 + a - c;
}`, 11)
}

// TestFibBothModes cross-checks a doubly recursive function on the machine
// with more cores.
func TestFibBothModes(t *testing.T) {
	src := `
unsigned long fib(unsigned long n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
unsigned long main(void) { return fib(11); }`
	if got := compileRun(t, src, ModeCall); got != 89 {
		t.Errorf("call fib(11) = %d", got)
	}
	p, err := Compile(src, ModeFork)
	if err != nil {
		t.Fatal(err)
	}
	r, err := machine.RunProgram(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r.RAX != 89 {
		t.Errorf("machine fib(11) = %d", r.RAX)
	}
	if len(r.Sections) < 50 {
		t.Errorf("fib(11) created only %d sections", len(r.Sections))
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`long main(void) { return x; }`, "undeclared identifier"},
		{`long main(void) { long x; long x; return 0; }`, "duplicate variable"},
		{`long f(long a, long a) { return 0; } long main(void){return 0;}`, "duplicate parameter"},
		{`long main(void) { return f(); }`, "undefined function"},
		{`long f(long a) { return a; } long main(void) { return f(); }`, "takes 1 arguments"},
		{`long main(void) { 5 = 6; return 0; }`, "non-lvalue"},
		{`long main(void) { break; }`, "outside a loop"},
		{`void main(void) { return 5; }`, "return with a value"},
		{`long main(void) { long *p; return *p * *p(); }`, "undefined function"},
		{`long main(void) { return (1+2)(); }`, "call of non-function"},
		{`long g(void) { return 1; }`, "no main"},
		{`long main(void) { long a[x]; return 0; }`, "array length must be a constant"},
		{`long f(long a, long b, long c, long d, long e, long g, long h) { return 0; } long main(void){return 0;}`, "at most 6"},
		{`long main(void) { /* unterminated`, "unterminated comment"},
		{`long main(void) { return 0 @ 1; }`, "unexpected character"},
		{`long main(void) { long *p; long *q; return p * q; }`, "invalid operands"},
	}
	for _, c := range cases {
		_, err := Compile(c.src, ModeCall)
		if err == nil {
			t.Errorf("Compile(%q) succeeded, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%q) error = %q, want containing %q", c.src, err, c.want)
		}
	}
}

func TestGeneratedAsmShape(t *testing.T) {
	src := `long f(long x) { return x + 1; } long main(void) { return f(41); }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(prog); err != nil {
		t.Fatal(err)
	}
	callAsm, err := Generate(prog, ModeCall)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(callAsm, "call f") || !strings.Contains(callAsm, "ret") {
		t.Errorf("call-mode asm missing call/ret:\n%s", callAsm)
	}
	forkAsm, err := Generate(prog, ModeFork)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(forkAsm, "fork f") || !strings.Contains(forkAsm, "endfork") {
		t.Errorf("fork-mode asm missing fork/endfork:\n%s", forkAsm)
	}
	if strings.Contains(forkAsm, "call ") || strings.Contains(forkAsm, "\tret") {
		t.Errorf("fork-mode asm still contains call/ret:\n%s", forkAsm)
	}
}
