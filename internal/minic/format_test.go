package minic

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/emu"
)

// TestErrorPositions pins the structured line/column information on front-end
// errors: the fuzz minimizer writes reproducers whose compile failures must
// point at the offending token, not just a line.
func TestErrorPositions(t *testing.T) {
	cases := []struct {
		name string
		src  string
		line int
		col  int
		want string
	}{
		{"unexpected char", "long main(void) {\n    return 0 @ 1;\n}\n", 2, 14, "unexpected character"},
		{"unterminated comment", "long x;\n/* dangling\n", 2, 1, "unterminated comment"},
		{"bad hex", "long main(void) { return 0x; }\n", 1, 26, "bad hex literal"},
		{"unexpected token", "long main(void) {\n    return +;\n}\n", 2, 13, "unexpected token"},
		{"missing semicolon", "long main(void) {\n    long a = 1\n    return a;\n}\n", 3, 5, `expected ";"`},
		{"bad declaration", "long main(void) { return 0; }\n; stray\n", 2, 1, "expected declaration"},
		{"non-constant length", "long main(void) {\n    long a[x];\n    return 0;\n}\n", 2, 12, "array length must be a constant"},
		{"bad param", "long f(long a, 5) { return a; }\n", 1, 16, "expected parameter type"},
		{"unterminated block", "long main(void) {\n    return 0;\n", 3, 1, "unexpected end of file"},
		{"call of non-function", "long main(void) {\n    return (1 + 2)();\n}\n", 2, 19, "call of non-function"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile(c.src, ModeCall)
			if err == nil {
				t.Fatalf("Compile(%q) succeeded, want error containing %q", c.src, c.want)
			}
			var me *Error
			if !errors.As(err, &me) {
				t.Fatalf("Compile(%q) error %T %q is not a *minic.Error", c.src, err, err)
			}
			if !strings.Contains(me.Msg, c.want) {
				t.Errorf("error = %q, want containing %q", me.Msg, c.want)
			}
			if me.Line != c.line || me.Col != c.col {
				t.Errorf("error position = %d:%d, want %d:%d (%q)", me.Line, me.Col, c.line, c.col, err)
			}
			if !strings.Contains(err.Error(), "line ") {
				t.Errorf("rendered error lacks position: %q", err)
			}
		})
	}
}

// TestCheckerErrorsLineOnly pins that semantic errors still carry at least a
// line (column zero renders in the legacy "line N:" form).
func TestCheckerErrorsLineOnly(t *testing.T) {
	_, err := Compile("long main(void) {\n    return x;\n}\n", ModeCall)
	var me *Error
	if !errors.As(err, &me) {
		t.Fatalf("error %T is not a *minic.Error: %v", err, err)
	}
	if me.Line != 2 || me.Col != 0 {
		t.Errorf("checker error position = %d:%d, want 2:0", me.Line, me.Col)
	}
	if !strings.Contains(err.Error(), "line 2:") {
		t.Errorf("rendered error = %q, want line 2:", err)
	}
}

// TestFormatRoundTrip: Format∘Parse is a fixpoint, and the formatted program
// compiles to the same machine program as the original source.
func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		`long g = 7;
unsigned long u;
long A[8];

long f1(long x, long y) {
    long t = x * 2 + y;
    if (t > 10 && x != 0) { t -= 1; } else t += g;
    return t ? t : -1;
}

long main(void) {
    long s = 0;
    for (long i = 0; i < 8; i += 1) {
        A[i & 7] = f1(i, s);
        s = s * 31 + A[i];
        if (i == 5) continue;
        while (s > 100000) { s /= 3; }
    }
    u = 18446744073709551615ul;
    u = u >> 3;
    return s ^ A[2];
}
`,
		`long main(void) {
    long x = 5;
    long *p = &x;
    *p = *p + ~x % 3;
    { long y = 2; x += y << 2; }
    for (;;) { break; }
    return !x + (x >= 0 ? x : 0 - x);
}
`,
	}
	for i, src := range srcs {
		ast, err := Parse(src)
		if err != nil {
			t.Fatalf("src %d: %v", i, err)
		}
		once := Format(ast)
		ast2, err := Parse(once)
		if err != nil {
			t.Fatalf("src %d: formatted output does not parse: %v\n%s", i, err, once)
		}
		twice := Format(ast2)
		if once != twice {
			t.Errorf("src %d: Format is not a fixpoint\n-- once --\n%s\n-- twice --\n%s", i, once, twice)
		}
		// Same observable behaviour in both modes.
		for _, mode := range []Mode{ModeCall, ModeFork} {
			r1 := compileRun(t, src, mode)
			r2 := compileRun(t, once, mode)
			if r1 != r2 {
				t.Errorf("src %d (%s): formatted program returns %d, original %d", i, mode, r2, r1)
			}
		}
	}
}

// TestBuildAST exercises the programmatic construction surface end to end:
// build an AST with the exported helpers, compile it with CompileAST, and
// check it behaves like its formatted source compiled through the front end.
func TestBuildAST(t *testing.T) {
	num := func(v uint64) *Expr { return &Expr{Kind: ExprNum, Num: v} }
	vr := func(n string) *Expr { return &Expr{Kind: ExprVar, Name: n} }
	bin := func(op string, l, r *Expr) *Expr { return &Expr{Kind: ExprBinary, Op: op, L: l, R: r} }

	build := func() *Program {
		p := NewProgram()
		if err := p.AddGlobal(&GlobalVar{Name: "g", Type: LongType(), Init: 3}); err != nil {
			t.Fatal(err)
		}
		if err := p.AddGlobal(&GlobalVar{Name: "A", Type: ArrayType(LongType(), 4)}); err != nil {
			t.Fatal(err)
		}
		body := []*Stmt{
			{Kind: StmtDecl, Decl: &LocalVar{Name: "s", Type: LongType(), Param: -1}, DeclInit: num(0)},
			{Kind: StmtFor,
				Init: &Stmt{Kind: StmtDecl, Decl: &LocalVar{Name: "i", Type: LongType(), Param: -1}, DeclInit: num(0)},
				E:    bin("<", vr("i"), num(4)),
				Post: &Stmt{Kind: StmtExpr, E: &Expr{Kind: ExprAssign, Op: "+", L: vr("i"), R: num(1)}},
				Body: []*Stmt{
					{Kind: StmtExpr, E: &Expr{Kind: ExprAssign,
						L: &Expr{Kind: ExprIndex, L: vr("A"), R: vr("i")},
						R: bin("*", vr("i"), vr("g"))}},
					{Kind: StmtExpr, E: &Expr{Kind: ExprAssign, Op: "+",
						L: vr("s"), R: &Expr{Kind: ExprIndex, L: vr("A"), R: vr("i")}}},
				}},
			{Kind: StmtReturn, E: vr("s")},
		}
		if err := p.AddFunction(&Function{Name: "main", Ret: LongType(), Body: body}); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Format before CompileAST: Check annotates the AST in place.
	src := Format(build())
	const want = uint64(0 + 3 + 6 + 9)
	runBothModes(t, src, want)

	prog, err := CompileAST(build(), ModeCall)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := emu.RunProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := cpu.Result(); got != want {
		t.Errorf("CompileAST program returns %d, want %d", got, want)
	}

	// Duplicate and cross-kind name clashes are rejected.
	p := build()
	if err := p.AddGlobal(&GlobalVar{Name: "g", Type: LongType()}); err == nil {
		t.Error("AddGlobal accepted a duplicate global")
	}
	if err := p.AddGlobal(&GlobalVar{Name: "main", Type: LongType()}); err == nil {
		t.Error("AddGlobal accepted a function name")
	}
	if err := p.AddFunction(&Function{Name: "main", Ret: LongType()}); err == nil {
		t.Error("AddFunction accepted a duplicate function")
	}
	if err := p.AddFunction(&Function{Name: "g", Ret: LongType()}); err == nil {
		t.Error("AddFunction accepted a global name")
	}
}
