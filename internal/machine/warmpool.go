package machine

import (
	"fmt"
	"sync"

	"repro/internal/isa"
)

// Pool is a warm-machine pool layered on Machine.Reset: callers that run
// many simulations of the same program and configuration (a sweep over
// seeds, a benchmark's repetitions, a job server's resubmissions) check a
// machine out, run it, and return it, so the arenas, queue buffers, alias
// tables and free lists warmed by the first run are reused instead of a
// fresh machine being constructed — and, in steady state, the run allocates
// nothing (the property pinned by internal/bench's allocation tests, which
// hold through this pool).
//
// Machines are pooled under a caller-provided key that MUST determine the
// program content and every shape-affecting configuration field (cores,
// topology, latencies, caps) — internal/sweep derives it from the encoded
// program and the point coordinates. The two pure scheduling knobs, Dense
// and SimWorkers, are deliberately NOT part of the machine's shape: a Get
// re-arms the pooled machine with the requested values, so one pool serves
// every scheduler (results are bit-identical across them by the scheduler
// oracle). Get still cross-checks the pooled machine's program shape and
// configuration against the request and fails descriptively on a mismatch,
// so a buggy key derivation surfaces as an error, not as silently wrong
// results.
type Pool struct {
	// MaxIdle bounds the machines parked in the pool across all keys;
	// returning a machine to a full pool drops it for the GC instead. 0
	// means DefaultMaxIdle.
	MaxIdle int

	mu    sync.Mutex
	free  map[string][]*Machine
	idle  int
	stats PoolStats
}

// DefaultMaxIdle is the default bound on parked machines. Machines are heavy
// (their arenas are sized to the workload), so the pool keeps only about as
// many as a host's worth of sweep workers can have in flight.
const DefaultMaxIdle = 32

// PoolStats counts what the pool did.
type PoolStats struct {
	// Hits is how many Gets were served by a warmed machine.
	Hits int64
	// Misses is how many Gets constructed a fresh machine.
	Misses int64
	// Dropped is how many Puts found the pool full and released the
	// machine to the GC.
	Dropped int64
}

// NewPool returns an empty pool with the default idle bound.
func NewPool() *Pool { return &Pool{} }

// Stats returns the counters accumulated so far.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Get returns a machine for prog under cfg: a pooled machine for key, Reset
// and re-armed with cfg's scheduling knobs, or a freshly constructed one.
// Either way the machine is in the post-New state — the caller injects
// inputs into DMH() and calls Run, exactly as after New. After a successful
// run, return the machine with Put(key, m); after a failed one, drop it (a
// faulted machine's state is not worth reusing).
func (p *Pool) Get(key string, prog *isa.Program, cfg Config) (*Machine, error) {
	p.mu.Lock()
	if ms := p.free[key]; len(ms) > 0 {
		m := ms[len(ms)-1]
		ms[len(ms)-1] = nil
		p.free[key] = ms[:len(ms)-1]
		p.idle--
		p.stats.Hits++
		p.mu.Unlock()
		if err := m.checkPooled(key, prog, cfg); err != nil {
			return nil, err
		}
		m.cfg.Dense = cfg.Dense
		m.cfg.SimWorkers = cfg.SimWorkers
		m.Reset()
		return m, nil
	}
	p.stats.Misses++
	p.mu.Unlock()
	return New(prog, cfg)
}

// Put parks a machine under key for a later Get. Only machines obtained from
// Get(key, …) that completed a successful Run belong here.
func (p *Pool) Put(key string, m *Machine) {
	max := p.MaxIdle
	if max <= 0 {
		max = DefaultMaxIdle
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.idle >= max {
		p.stats.Dropped++
		return
	}
	if p.free == nil {
		p.free = make(map[string][]*Machine)
	}
	p.free[key] = append(p.free[key], m)
	p.idle++
}

// checkPooled verifies that a pooled machine actually matches the requested
// program and configuration — the defensive net under the key contract. The
// program check is on shape (text length, data length, entry), not content:
// the key is expected to hash the full content, this catches derivation bugs
// loudly. Dense and SimWorkers are excluded: Get re-arms them per request.
func (m *Machine) checkPooled(key string, prog *isa.Program, cfg Config) error {
	cfg = cfg.withDefaults()
	old, mismatch := "", ""
	switch {
	case len(m.prog.Text) != len(prog.Text) || len(m.prog.Data) != len(prog.Data) || m.prog.Entry != prog.Entry:
		old = fmt.Sprintf("text=%d data=%d entry=%d", len(m.prog.Text), len(m.prog.Data), m.prog.Entry)
		mismatch = fmt.Sprintf("text=%d data=%d entry=%d", len(prog.Text), len(prog.Data), prog.Entry)
	case m.cfg.Cores != cfg.Cores:
		old, mismatch = fmt.Sprintf("cores=%d", m.cfg.Cores), fmt.Sprintf("cores=%d", cfg.Cores)
	case m.cfg.Net.Name() != cfg.Net.Name():
		old, mismatch = "net="+m.cfg.Net.Name(), "net="+cfg.Net.Name()
	case m.cfg.CreateLatency != cfg.CreateLatency:
		old, mismatch = fmt.Sprintf("createLatency=%d", m.cfg.CreateLatency), fmt.Sprintf("createLatency=%d", cfg.CreateLatency)
	case m.cfg.Shortcut != cfg.Shortcut:
		old, mismatch = fmt.Sprintf("shortcut=%v", m.cfg.Shortcut), fmt.Sprintf("shortcut=%v", cfg.Shortcut)
	case m.cfg.MaxSectionsPerCore != cfg.MaxSectionsPerCore:
		old, mismatch = fmt.Sprintf("maxSections=%d", m.cfg.MaxSectionsPerCore), fmt.Sprintf("maxSections=%d", cfg.MaxSectionsPerCore)
	case m.cfg.StallLimit != cfg.StallLimit:
		old, mismatch = fmt.Sprintf("stallLimit=%d", m.cfg.StallLimit), fmt.Sprintf("stallLimit=%d", cfg.StallLimit)
	case m.cfg.MaxCycles != cfg.MaxCycles:
		old, mismatch = fmt.Sprintf("maxCycles=%d", m.cfg.MaxCycles), fmt.Sprintf("maxCycles=%d", cfg.MaxCycles)
	default:
		return nil
	}
	return fmt.Errorf("machine: pool key %q collision: pooled machine has %s, request wants %s (the pool key must determine the program and configuration)",
		key, old, mismatch)
}
