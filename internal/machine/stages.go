package machine

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
)

// older orders dynamic instructions by (section order position, ordinal).
func older(a, b *DynInst) bool {
	if a.Sec.Pos != b.Sec.Pos {
		return a.Sec.Pos < b.Sec.Pos
	}
	return a.Idx < b.Idx
}

// ---------------------------------------------------------------- fetch ----

// branchResumable reports whether a stalled control instruction's redirect is
// usable by the fetch stage this cycle. The execute-write-back stage of cycle
// t publishes the branch target at the end of t, so fetch may resume at t+1 —
// the same strictly-older boundary every other consumer of a stage result
// applies (ewReady, maReady, stageRetire). This helper is the single home of
// that comparison; TestStallResumeLatency pins the one-cycle resume latency
// so an off-by-one (resuming at t+2, or same-cycle at t) cannot creep back in
// at any of the three call sites (stalled fetch, hasFetchWork, pickSection).
func (m *Machine) branchResumable(d *DynInst) bool {
	return d != nil && d.resolved && d.tEW > 0 && d.tEW < m.cycle
}

// stageFD implements the fetch-decode-and-partly-execute stage (Fig. 8):
// one instruction per cycle, simple ALU and control instructions computed
// in-stage when their sources are full in the stage-local register file.
func (m *Machine) stageFD(c *Core) {
	if c.fetch == nil {
		m.pickSection(c)
		if c.fetch == nil {
			return
		}
	}
	sec := c.fetch
	if sec.stalled != nil {
		d := sec.stalled
		if m.branchResumable(d) {
			sec.fetchIP = d.nextIP
			sec.stalled = nil
			m.progress++
		} else {
			// A stalled fetch sets the section aside when there is other
			// fetch work: a queued section-creation message or a suspended
			// section whose branch has resolved (engineering extension over
			// the paper, which leaves the interleaving unspecified; this
			// guarantees deadlock freedom when sections outnumber cores).
			if m.hasFetchWork(c) {
				sec.rfSave = c.rf
				c.suspended.Push(sec)
				c.fetch = nil
				m.quietMove = true // state change with no counter move
			}
			return
		}
	}
	if sec.fetchIP < 0 || sec.fetchIP >= int64(len(m.prog.Text)) {
		m.err = fmt.Errorf("machine: section %d fetch out of text at ip=%d", sec.ID, sec.fetchIP)
		return
	}
	in := &m.prog.Text[sec.fetchIP]
	d := m.dyns.alloc()
	d.Sec = sec
	d.Idx = len(sec.Insts)
	d.IP = sec.fetchIP
	d.In = in
	d.Level = sec.curLevel
	d.class = in.Classify()
	d.tFD = m.cycle
	sec.Insts = append(sec.Insts, d)
	c.renameQ.Push(d)
	c.fetched++
	m.progress++
	next := sec.fetchIP + 1

	full := func(rs []isa.Reg) bool {
		for _, r := range rs {
			if !c.rf[r].full {
				return false
			}
		}
		return true
	}
	rd := func(r isa.Reg) uint64 { return c.rf[r].v }
	markEmpty := func() {
		for _, r := range m.regWriteSet(in) {
			c.rf[r] = val{}
		}
	}

	switch d.class {
	case isa.ClassSimple:
		reads := m.regReads(in)
		if full(reads) {
			var out regWrites
			if err := evalRegCompute(in, rd, &out); err != nil {
				m.err = fmt.Errorf("machine: ip=%d (%s): %v", d.IP, in, err)
				return
			}
			for i := 0; i < out.n; i++ {
				r, v := out.reg[i], out.val[i]
				d.setReg(r, v, m.cycle)
				c.rf[r] = val{v: v, full: true}
			}
			d.computedAtFetch = true
		} else {
			markEmpty()
		}
	case isa.ClassComplex:
		// Complex integer instructions are never computed in the fetch
		// stage (§4.1), even when their sources are full.
		markEmpty()
	case isa.ClassLoad, isa.ClassStore:
		// The register half of push/pop (the rsp update) is simple and is
		// computed in-stage when rsp is full, keeping the stack discipline
		// flowing through the fetch stage.
		if (in.Op == isa.PUSH || in.Op == isa.POP) && c.rf[isa.RSP].full {
			nrsp := c.rf[isa.RSP].v - 8
			if in.Op == isa.POP {
				nrsp = c.rf[isa.RSP].v + 8
			}
			d.setReg(isa.RSP, nrsp, m.cycle)
			c.rf[isa.RSP] = val{v: nrsp, full: true}
			if in.Op == isa.POP && in.Dst.Kind == isa.KindReg {
				c.rf[in.Dst.Reg] = val{}
			}
			if in.WritesFlags() {
				c.rf[isa.Flags] = val{}
			}
		} else {
			markEmpty()
		}
	case isa.ClassControl:
		switch in.Op {
		case isa.JMP:
			next = in.Target
			d.taken = true
			d.resolved = true
			d.computedAtFetch = true
		case isa.Jcc:
			if c.rf[isa.Flags].full {
				d.taken = in.Cond.Eval(isa.FlagsVal(c.rf[isa.Flags].v))
				if d.taken {
					next = in.Target
				}
				d.nextIP = next
				d.resolved = true
				d.computedAtFetch = true
			} else {
				// The branch target cannot be computed: fetch stalls until
				// the execute stage resolves it (Fig. 8: "IP is set to
				// empty ... if target is not computed").
				sec.stalled = d
			}
		case isa.FORK:
			m.doFork(c, sec, d)
			next = in.Target
			d.taken = true
			d.resolved = true
			d.computedAtFetch = true
			sec.curLevel++
		case isa.ENDFORK, isa.HLT:
			d.resolved = true
			d.computedAtFetch = true
			sec.fetchDone = true
			c.fetch = nil
			if in.Op == isa.HLT {
				m.hltSeen = true
			}
		}
	}
	sec.fetchIP = next
}

// hasFetchWork reports whether an idle (or stalled) fetch stage has something
// else it could usefully fetch.
func (m *Machine) hasFetchWork(c *Core) bool {
	if !c.pending.Empty() && c.pending.Front().deliverAt < m.cycle {
		return true
	}
	for i, n := 0, c.suspended.Len(); i < n; i++ {
		if m.branchResumable(c.suspended.At(i).stalled) {
			return true
		}
	}
	return false
}

// pickSection chooses what the idle fetch stage works on next: first any
// suspended section whose stalled branch has resolved, then the head of the
// section-creation FIFO (a message is consumed the cycle after delivery).
func (m *Machine) pickSection(c *Core) {
	for i, n := 0, c.suspended.Len(); i < n; i++ {
		s := c.suspended.At(i)
		d := s.stalled
		if m.branchResumable(d) {
			c.suspended.Remove(i)
			s.fetchIP = d.nextIP
			s.stalled = nil
			c.rf = s.rfSave // fetch RF as saved at suspension
			c.fetch = s
			m.progress++
			return
		}
	}
	if !c.pending.Empty() && c.pending.Front().deliverAt < m.cycle {
		msg := c.pending.Pop()
		m.pendingCreates--
		sec := msg.sec
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			c.rf[r] = sec.init[r]
		}
		sec.firstFetch = m.cycle
		c.fetch = sec
		m.progress++
	}
}

// doFork creates the continuation section (starting at the instruction after
// the fork) and sends its creation message: the forked IP, the stack pointer
// and the non-volatile registers (§4.1). Registers that are not computed at
// the fork point cannot travel in the message; they are linked to the
// creator's current producers when the fork passes the rename stage (at that
// point every older write has been renamed and no younger one exists, so the
// creator's RAT entry is exactly the value the copy must carry).
func (m *Machine) doFork(c *Core, sec *Section, d *DynInst) {
	created := m.newSection(d.IP+1, sec.curLevel, m.cycle)
	for _, r := range emu.NonVolatile {
		if c.rf[r].full {
			created.init[r] = c.rf[r]
		} else {
			d.pendingCopy[d.nPending] = r
			d.nPending++
		}
	}
	d.createdSec = created
	m.insertAfter(sec, created)
	m.createMsgs++
	m.assignHost(created, m.cycle+m.cfg.CreateLatency)
}

// --------------------------------------------------------------- rename ----

// ratLookup returns the section's current producer for register r, creating
// the creation-copy constant or the request-backed cache slot on a miss
// (§4.2: a missing source allocates a caching destination and sends a
// renaming request backwards along the section order).
func (m *Machine) ratLookup(sec *Section, r isa.Reg, d *DynInst) *producer {
	p := &sec.rat[r]
	if !p.valid() {
		if sec.init[r].full {
			*p = m.constProd(sec.init[r].v, sec.firstFetch)
		} else {
			sl := m.slots.alloc()
			*p = slotProd(sl)
			m.addRequest(reqReg, r, 0, d, sl)
		}
	}
	return p
}

// stageRR implements the register-rename stage: one instruction per cycle,
// in fetch order. Sources that miss in the section's RAT and have no fork
// copy allocate a cache slot and send a renaming request backwards along the
// section order (§4.2, "Register renaming").
func (m *Machine) stageRR(c *Core) {
	if c.renameQ.Empty() {
		return
	}
	d := c.renameQ.Front()
	if d.tFD >= m.cycle {
		return
	}
	c.renameQ.Pop()
	sec := d.Sec

	needsSources := !d.computedAtFetch || d.isMem()
	if needsSources {
		aRegs := d.In.AddrRegs()
		for _, r := range m.regReads(d.In) {
			p := m.ratLookup(sec, r, d)
			if d.nsrcs == maxSrcs {
				m.err = fmt.Errorf("machine: ip=%d (%s): more than %d register sources", d.IP, d.In, maxSrcs)
				return
			}
			d.srcs[d.nsrcs] = srcRef{reg: r, prod: *p, addr: aRegs.Has(r)}
			d.nsrcs++
		}
	}
	for _, r := range m.regWriteSet(d.In) {
		sec.rat[r] = regProd(d, r)
	}
	if d.In.Op == isa.FORK && d.nPending > 0 {
		// Deferred non-volatile copies: link the created section to the
		// creator's current producers.
		for _, r := range d.pendingCopy[:d.nPending] {
			d.createdSec.rat[r] = *m.ratLookup(sec, r, d)
		}
	}
	d.tRR = m.cycle
	sec.renamed++
	m.progress++
	if d.isMem() {
		sec.memOps++
		sec.arQ.Push(d)
	}
	c.iq = append(c.iq, d)
}

// -------------------------------------------------------------- execute ----

// stageEW implements the out-of-order execute-write-back stage: one
// instruction per cycle, oldest ready first. Register-register instructions
// compute their results; memory instructions compute their access address;
// stalled control instructions resolve and unblock fetch. An instruction is
// ready when its (cached) wake cycle has passed: for memory instructions
// only the address-forming sources gate the stage; for everything else all
// sources do.
func (m *Machine) stageEW(c *Core) {
	if best := m.selectEW(c); best >= 0 {
		m.ewApply(c, best)
	}
}

// selectEW returns the index in c.iq of the instruction the execute-write-back
// stage issues this cycle, or -1. The scan is the selection half of stageEW,
// shared verbatim by the sequential and parallel schedulers: readiness tests
// compare stored timestamps against `< m.cycle`, so the pick is a pure
// function of cycle-start state and is the same whether the scan runs before
// or interleaved with the cycle's stage applies. The only writes are d's own
// wake caches (ewWake), which are write-once derived values — safe for the
// parallel scheduler because an instruction lives in exactly one core's queue.
func (m *Machine) selectEW(c *Core) int {
	best := -1
	for i, d := range c.iq {
		// Fast paths: a known-blocked instruction costs one load, a cached
		// wake one comparison; ewWake handles the rest.
		if d.ewBlocked() {
			continue
		}
		w := d.ewWakeAt
		if w == 0 {
			w = m.ewWake(d)
		}
		if w > m.cycle {
			continue
		}
		if best < 0 || older(d, c.iq[best]) {
			best = i
		}
	}
	return best
}

// ewApply issues c.iq[best] through the execute-write-back stage: the apply
// half of stageEW, run serially (in core order) by both schedulers because it
// mutates shared state (producer cells consumers on other cores poll).
func (m *Machine) ewApply(c *Core, best int) {
	d := c.iq[best]
	swapRemove(&c.iq, best)
	d.tEW = m.cycle
	m.progress++

	if d.isMem() {
		d.addr = d.effectiveAddr()
		// The register half of push/pop, if not computed at fetch.
		if d.In.Op == isa.PUSH {
			if !d.regWritten(isa.RSP) {
				d.setReg(isa.RSP, d.srcValue(isa.RSP)-8, m.cycle)
			}
		}
		if d.In.Op == isa.POP {
			if !d.regWritten(isa.RSP) {
				d.setReg(isa.RSP, d.srcValue(isa.RSP)+8, m.cycle)
			}
		}
		return
	}
	if d.computedAtFetch {
		return // results already produced in the fetch stage
	}
	switch d.In.Op {
	case isa.Jcc:
		fl := isa.FlagsVal(d.srcValue(isa.Flags))
		d.taken = d.In.Cond.Eval(fl)
		d.nextIP = d.IP + 1
		if d.taken {
			d.nextIP = d.In.Target
		}
		d.resolved = true
	case isa.NOP, isa.JMP, isa.FORK, isa.ENDFORK, isa.HLT:
		d.resolved = true
	default:
		var out regWrites
		if err := evalRegCompute(d.In, d.srcValue, &out); err != nil {
			m.err = fmt.Errorf("machine: ip=%d (%s): %v", d.IP, d.In, err)
			return
		}
		for i := 0; i < out.n; i++ {
			d.setReg(out.reg[i], out.val[i], m.cycle)
		}
	}
}

// ------------------------------------------------------- address rename ----

// arHead returns the section's address-rename head if it may pass the stage
// this cycle (its execute-write-back, which computes the address, is
// strictly older), or nil.
func (m *Machine) arHead(s *Section) *DynInst {
	if s.arQ.Empty() {
		return nil
	}
	h := s.arQ.Front()
	if h.tEW == 0 || h.tEW >= m.cycle {
		return nil
	}
	return h
}

// arApply renames the address of sec's AR head d on its hosting core.
func (m *Machine) arApply(c *Core, sec *Section, d *DynInst) {
	sec.arQ.Pop()

	if _, reads := d.In.MemRead(); reads {
		if p := sec.maat.get(d.addr); p != nil {
			d.memSrc = *p
		} else {
			sl := m.slots.alloc()
			d.memSrc = slotProd(sl)
			m.maatPut(&sec.maat, d.addr, d.memSrc)
			m.addRequest(reqMem, 0, d.addr, d, sl)
		}
	}
	if _, writes := d.In.MemWrite(); writes {
		m.maatPut(&sec.maat, d.addr, memProd(d))
	}
	d.tAR = m.cycle
	sec.memRen++
	m.progress++
	c.lsq = append(c.lsq, d)
}

// stageAR implements the in-order address-rename stage: one memory
// instruction per cycle per core, in section order within each section
// (oldest section first across sections). Loads that miss in the MAAT send
// a memory renaming request backwards along the section order, applying the
// call-level shortcut for rsp-positive addresses (§4.2, "Memory renaming").
func (m *Machine) stageAR(c *Core) {
	var sec *Section
	var d *DynInst
	for _, s := range m.order {
		if s.Core != c.id || s.dumped {
			continue
		}
		h := m.arHead(s)
		if h == nil {
			continue
		}
		if sec == nil || s.Pos < sec.Pos {
			sec, d = s, h
		}
	}
	if d == nil {
		return
	}
	m.arApply(c, sec, d)
}

// -------------------------------------------------------- memory access ----

// stageMA implements the memory-access stage: one renamed memory instruction
// per cycle, oldest ready first. Loads deliver their value to the register
// results; stores make their value available to consumers. An instruction is
// ready when its (cached) wake cycle has passed: its loaded value (if any)
// and its non-address sources must be ready.
func (m *Machine) stageMA(c *Core) {
	if best := m.selectMA(c); best >= 0 {
		m.maApply(c, best)
	}
}

// selectMA is selectEW's memory-access counterpart: the selection half of
// stageMA, a pure function of cycle-start state (plus d's own write-once wake
// caches), shared by the sequential and parallel schedulers.
func (m *Machine) selectMA(c *Core) int {
	best := -1
	for i, d := range c.lsq {
		if d.maBlocked() {
			continue
		}
		w := d.maWakeAt
		if w == 0 {
			w = m.maWake(d)
		}
		if w > m.cycle {
			continue
		}
		if best < 0 || older(d, c.lsq[best]) {
			best = i
		}
	}
	return best
}

// maApply performs the memory access of c.lsq[best]: the apply half of
// stageMA, serial in both schedulers (it fills producer cells).
func (m *Machine) maApply(c *Core, best int) {
	d := c.lsq[best]
	swapRemove(&c.lsq, best)
	var mv uint64
	if d.memSrc.valid() {
		mv = d.memSrc.value()
	}
	if err := d.evalMemAccess(mv, m.cycle); err != nil {
		m.err = err
		return
	}
	d.tMA = m.cycle
	m.progress++
}

// --------------------------------------------------------------- retire ----

// retireHead returns the section's in-order retirement head if it may retire
// this cycle (its completing event is strictly older), or nil.
func (m *Machine) retireHead(s *Section) *DynInst {
	if s.retired >= len(s.Insts) {
		return nil
	}
	h := s.Insts[s.retired]
	if !h.done() || h.tRET != 0 {
		return nil
	}
	// A stage boundary: the completing event must be strictly older than
	// this cycle.
	if h.isMem() {
		if h.tMA >= m.cycle {
			return nil
		}
	} else if h.tEW >= m.cycle {
		return nil
	}
	return h
}

// retireApply retires sec's head d.
func (m *Machine) retireApply(sec *Section, d *DynInst) {
	d.tRET = m.cycle
	sec.retired++
	m.progress++
}

// stageRetire implements the in-order (per section) retirement stage: one
// instruction per cycle per core, oldest hosted section first. Retirement is
// parallel across cores/sections (§4.2, "Parallelizing retirement"); the
// oldest section's state is dumped to the DMH by Machine.dumpOldest.
func (m *Machine) stageRetire(c *Core) {
	var sec *Section
	var d *DynInst
	for _, s := range m.order {
		if s.Core != c.id || s.dumped {
			continue
		}
		h := m.retireHead(s)
		if h == nil {
			continue
		}
		if sec == nil || s.Pos < sec.Pos {
			sec, d = s, h
		}
	}
	if d == nil {
		return
	}
	m.retireApply(sec, d)
}
