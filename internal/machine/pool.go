package machine

import (
	"math/bits"

	"repro/internal/isa"
)

// This file holds the allocation-free plumbing behind the simulated hot
// path: the generic sliding-window FIFO backing the per-core queues, the
// arenas that pool DynInst and slot objects, the open-addressed memory
// address alias table recycled through a per-machine free list, and the
// request/section pools. A profile of the previous implementation showed
// ~205k heap allocations per quickSort simulation — a fresh *DynInst per
// dynamic instruction, a map per rename/execute evaluation, interface boxing
// on every alias-table insert — with the GC charging every simulated cycle.
// Steady-state simulation on a warmed machine (see Machine.Reset) now
// allocates nothing per cycle; the regression tests in internal/bench pin
// that property.

// ---------------------------------------------------------------- fifo ----

// fifo is a first-in-first-out queue backed by a sliding window over one
// reusable buffer: Pop advances a head index instead of re-slicing away the
// front (which leaks capacity and forces append to reallocate), and the
// dead front region is compacted amortized O(1). The zero value is ready to
// use.
type fifo[T any] struct {
	buf  []T
	head int
}

func (f *fifo[T]) Len() int    { return len(f.buf) - f.head }
func (f *fifo[T]) Empty() bool { return f.head >= len(f.buf) }

// Front returns the oldest element. The queue must not be empty.
func (f *fifo[T]) Front() T { return f.buf[f.head] }

// At returns the i-th element counting from the front.
func (f *fifo[T]) At(i int) T { return f.buf[f.head+i] }

// Push appends v at the back.
func (f *fifo[T]) Push(v T) {
	if f.head == len(f.buf) {
		// Empty: rewind so the whole capacity is reusable.
		f.buf = f.buf[:0]
		f.head = 0
	}
	f.buf = append(f.buf, v)
}

// Pop removes and returns the front element. The vacated slot is zeroed so
// pooled pointers are not pinned, and the dead front region is slid out once
// it dominates the buffer.
func (f *fifo[T]) Pop() T {
	var zero T
	v := f.buf[f.head]
	f.buf[f.head] = zero
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	} else if f.head > 32 && f.head > len(f.buf)/2 {
		n := copy(f.buf, f.buf[f.head:])
		clear(f.buf[n:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	return v
}

// Remove deletes the i-th element counting from the front, preserving the
// order of the rest. O(live length) — used only for the tiny per-core
// suspended list, whose scan order is the suspension order.
func (f *fifo[T]) Remove(i int) T {
	var zero T
	idx := f.head + i
	v := f.buf[idx]
	copy(f.buf[idx:], f.buf[idx+1:])
	f.buf[len(f.buf)-1] = zero
	f.buf = f.buf[:len(f.buf)-1]
	return v
}

// Reset empties the queue, keeping the buffer for reuse.
func (f *fifo[T]) Reset() {
	clear(f.buf)
	f.buf = f.buf[:0]
	f.head = 0
}

// swapRemove deletes q[i] in O(1) by moving the last element into its place.
// Used for the issue and load-store queues, whose storage order is
// irrelevant: issue selection orders candidates by the explicit
// (section position, ordinal) comparison, never by queue position.
func swapRemove(q *[]*DynInst, i int) {
	s := *q
	last := len(s) - 1
	s[i] = s[last]
	s[last] = nil
	*q = s[:last]
}

// -------------------------------------------------------------- arenas ----

// Arena chunk sizes: one allocation per chunk while the arena grows, zero
// once it has reached the workload's footprint.
const (
	dynChunk  = 256 // DynInst objects (one per dynamic instruction)
	slotChunk = 512 // renaming-slot cells
)

// arena hands out T objects from reusable chunks. Handed-out objects are
// always zero, but the scrubbing happens in bulk — fresh chunks come zeroed
// from make, and reset clears the used prefix wholesale — not per alloc,
// which the profile showed charging every fetched instruction with a
// ~600-byte memclr. Objects are never freed individually: both uses
// (DynInst, which sections and the final Result reference until the run is
// over; slot cells, which can outlive their section via fork copies) stay
// referenced until Machine.Reset rewinds the arena as a whole.
type arena[T any] struct {
	chunks   [][]T
	chunk    int
	ci, used int
}

func newArena[T any](chunk int) arena[T] { return arena[T]{chunk: chunk} }

func (a *arena[T]) alloc() *T {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]T, a.chunk))
	}
	p := &a.chunks[a.ci][a.used]
	a.used++
	if a.used == a.chunk {
		a.ci++
		a.used = 0
	}
	return p
}

func (a *arena[T]) reset() {
	for i := 0; i <= a.ci && i < len(a.chunks); i++ {
		clear(a.chunks[i])
	}
	a.ci, a.used = 0, 0
}

// ---------------------------------------------------------------- maat ----

// maatMinSize is the smallest MAAT backing array, a power of two.
const maatMinSize = 16

// maat is the per-section Memory Address Alias Table: an open-addressed,
// linear-probing hash table from data addresses to producers, replacing the
// previous map[uint64]producer. The backing array is recycled through the
// machine's free list when the owning section dumps (Machine.releaseMaat),
// so in steady state sections are born with a right-sized table and no
// per-section map allocation happens. An entry whose producer is
// invalid (nil ready cell) is empty — producers are only ever inserted
// valid.
type maat struct {
	entries []maatEntry
	n       int
	shift   uint8 // 64 - log2(len(entries)); index = hash >> shift
}

type maatEntry struct {
	p   producer
	key uint64
}

// maatHash is Fibonacci multiplicative hashing. Indexing uses the high bits
// (via the shift) — data addresses are mostly 8-byte aligned, so the low
// product bits carry no entropy.
func maatHash(key uint64) uint64 { return key * 0x9e3779b97f4a7c15 }

func maatShift(size int) uint8 { return uint8(64 - bits.TrailingZeros(uint(size))) }

// get returns a pointer to the producer stored for key, or nil.
func (t *maat) get(key uint64) *producer {
	if t.n == 0 {
		return nil
	}
	i := maatHash(key) >> t.shift
	for {
		e := &t.entries[i]
		if !e.p.valid() {
			return nil
		}
		if e.key == key {
			return &e.p
		}
		i++
		if i == uint64(len(t.entries)) {
			i = 0
		}
	}
}

// maatPut inserts or overwrites key's producer in s's table, growing through
// the machine's recycled backing arrays when the load factor passes 3/4.
func (m *Machine) maatPut(t *maat, key uint64, p producer) {
	if len(t.entries) == 0 || (t.n+1)*4 > len(t.entries)*3 {
		m.maatGrow(t)
	}
	i := maatHash(key) >> t.shift
	for {
		e := &t.entries[i]
		if !e.p.valid() {
			e.key = key
			e.p = p
			t.n++
			return
		}
		if e.key == key {
			e.p = p
			return
		}
		i++
		if i == uint64(len(t.entries)) {
			i = 0
		}
	}
}

// maatGrow doubles t's backing array (or installs the first one) and
// rehashes. The old array goes back to the free list for the next section.
func (m *Machine) maatGrow(t *maat) {
	want := maatMinSize
	if n := len(t.entries) * 2; n > want {
		want = n
	}
	old := t.entries
	t.entries = make([]maatEntry, want)
	t.shift = maatShift(want)
	t.n = 0
	for i := range old {
		if old[i].p.valid() {
			m.maatPut(t, old[i].key, old[i].p)
		}
	}
	if old != nil {
		clear(old)
		m.maatFree = append(m.maatFree, old)
	}
}

// acquireMaat equips t with a recycled backing array if one is available
// (already cleared at release time); otherwise the table stays empty until
// the first insert grows it.
func (m *Machine) acquireMaat(t *maat) {
	t.n = 0
	if k := len(m.maatFree) - 1; k >= 0 {
		t.entries = m.maatFree[k]
		m.maatFree[k] = nil
		m.maatFree = m.maatFree[:k]
		t.shift = maatShift(len(t.entries))
	} else {
		t.entries = nil
		t.shift = 0
	}
}

// releaseMaat clears t and returns its backing array to the free list. Called
// when the owning section dumps — after that point no renaming request can
// search the section (searchTarget skips dumped sections, and dumpOldest
// refuses to dump a section with requests still at it), so the table is dead.
func (m *Machine) releaseMaat(t *maat) {
	if t.entries == nil {
		return
	}
	clear(t.entries)
	m.maatFree = append(m.maatFree, t.entries)
	t.entries = nil
	t.n = 0
	t.shift = 0
}

// --------------------------------------------------------------- pools ----

// acquireSection returns a recycled or fresh Section shell with a MAAT
// backing attached. Sections are recycled only by Machine.Reset: the final
// Result is built from every section of the run, so they stay live until
// then.
func (m *Machine) acquireSection() *Section {
	var s *Section
	if k := len(m.secFree) - 1; k >= 0 {
		s = m.secFree[k]
		m.secFree[k] = nil
		m.secFree = m.secFree[:k]
	} else {
		s = &Section{}
	}
	m.acquireMaat(&s.maat)
	return s
}

// releaseSection scrubs s and pools it, keeping the instruction slice and
// address-rename queue capacity for reuse.
func (m *Machine) releaseSection(s *Section) {
	m.releaseMaat(&s.maat)
	clear(s.Insts)
	insts := s.Insts[:0]
	arQ := s.arQ
	arQ.Reset()
	*s = Section{Insts: insts, arQ: arQ}
	m.secFree = append(m.secFree, s)
}

// newRequest returns a pooled or fresh renaming request.
func (m *Machine) newRequest() *request {
	if k := len(m.reqFree) - 1; k >= 0 {
		r := m.reqFree[k]
		m.reqFree[k] = nil
		m.reqFree = m.reqFree[:k]
		return r
	}
	return &request{}
}

// releaseRequest scrubs r (dropping its section and slot references) and
// pools it.
func (m *Machine) releaseRequest(r *request) {
	*r = request{}
	m.reqFree = append(m.reqFree, r)
}

// regReads resolves the instruction's deduplicated register reads into the
// machine's scratch buffer (no per-call slice allocation).
func (m *Machine) regReads(in *isa.Instruction) []isa.Reg {
	buf := in.RegReads(m.readBuf[:0])
	m.readBuf = buf[:0]
	return dedupRegs(buf)
}

// regWriteSet is regReads' counterpart for register writes.
func (m *Machine) regWriteSet(in *isa.Instruction) []isa.Reg {
	buf := in.RegWrites(m.writeBuf[:0])
	m.writeBuf = buf[:0]
	return dedupRegs(buf)
}
