package machine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// InstTiming is the per-stage timing of one dynamic instruction — one row of
// a Fig. 10 table. A zero means the stage does not apply (e.g. ar/ma for a
// register-register instruction).
type InstTiming struct {
	Section                 int64 // section ID
	SecPos                  int   // final position in the total section order
	Idx                     int   // ordinal within the section (1-based in Label)
	IP                      int64
	In                      *isa.Instruction
	Level                   int32
	FD, RR, EW, AR, MA, RET int64
}

// Label renders the paper's "section-ordinal" instruction name (e.g. "2-13").
func (t InstTiming) Label() string { return fmt.Sprintf("%d-%d", t.SecPos, t.Idx+1) }

// Text renders the instruction. It is a method, not a precomputed field:
// formatting every dynamic instruction eagerly used to dominate Result
// construction on big runs, charged to every simulation whether or not a
// Fig. 10 table was wanted.
func (t InstTiming) Text() string { return t.In.String() }

// SectionInfo summarises one section.
type SectionInfo struct {
	ID           int64
	Pos          int // position in the final total order
	Core         int
	BaseLevel    int32
	Instructions int
	CreatedAt    int64
	FirstFetch   int64
	LastRetire   int64
}

// Result is the outcome of a machine run.
type Result struct {
	Cycles       int64
	Instructions int64
	Sections     []SectionInfo
	Cores        int
	// FetchDone is the cycle the last instruction was fetched; the paper's
	// "the code is fetched in 30 cycles" for sum(t,5).
	FetchDone int64
	// RetireDone is the cycle the last instruction retired; the paper's
	// retirement time (43 for sum(t,5)).
	RetireDone int64
	// RAX is the conventional program result.
	RAX uint64
	// Regs is the final committed architectural register file.
	Regs [isa.NumRegs]uint64
	// Timings holds per-instruction stage cycles, in global trace order.
	Timings []InstTiming
	// FetchedPerCore counts instructions fetched by each core.
	FetchedPerCore []int64
	// Requests counts renaming requests issued (register, memory).
	RegRequests, MemRequests int64
	// CreateMessages counts section-creation messages sent by forks.
	CreateMessages int64
	// RequestHops counts request-forwarding messages: every NoC traversal a
	// renaming request makes while searching backwards along the section
	// order.
	RequestHops int64
	// ResponseMessages counts value responses sent back to requesters,
	// including answers from the committed state.
	ResponseMessages int64
	// DMHAnswers counts the requests answered by the committed state (the
	// paper's "the request travels back to the loader") rather than by a
	// live section.
	DMHAnswers int64
	// NetName identifies the topology used.
	NetName string
}

// NocMessages returns the total messages charged to the on-chip network:
// section creations, request hops and value responses.
func (r *Result) NocMessages() int64 {
	return r.CreateMessages + r.RequestHops + r.ResponseMessages
}

// FetchIPC returns instructions fetched per cycle until fetch completion.
func (r *Result) FetchIPC() float64 {
	if r.FetchDone == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.FetchDone)
}

// RetireIPC returns instructions retired per cycle over the whole run.
func (r *Result) RetireIPC() float64 {
	if r.RetireDone == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.RetireDone)
}

func (m *Machine) result() *Result {
	r := &Result{
		Cycles:           m.cycle,
		Cores:            len(m.cores),
		RAX:              m.arch[isa.RAX],
		Regs:             m.arch,
		NetName:          m.cfg.Net.Name(),
		RegRequests:      m.regReqs,
		MemRequests:      m.memReqs,
		CreateMessages:   m.createMsgs,
		RequestHops:      m.reqHops,
		ResponseMessages: m.respMsgs,
		DMHAnswers:       m.dmhAnswers,
	}
	var fetched int64
	for _, c := range m.cores {
		r.FetchedPerCore = append(r.FetchedPerCore, c.fetched)
		fetched += c.fetched
	}
	r.Timings = make([]InstTiming, 0, fetched)
	r.Sections = make([]SectionInfo, 0, len(m.order))
	for _, s := range m.order {
		info := SectionInfo{
			ID: s.ID, Pos: s.Pos, Core: s.Core, BaseLevel: s.BaseLevel,
			Instructions: len(s.Insts), CreatedAt: s.createdAt, FirstFetch: s.firstFetch,
		}
		for _, d := range s.Insts {
			r.Instructions++
			if d.tFD > r.FetchDone {
				r.FetchDone = d.tFD
			}
			if d.tRET > r.RetireDone {
				r.RetireDone = d.tRET
			}
			if d.tRET > info.LastRetire {
				info.LastRetire = d.tRET
			}
			r.Timings = append(r.Timings, InstTiming{
				Section: s.ID, SecPos: s.Pos, Idx: d.Idx, IP: d.IP,
				In: d.In, Level: d.Level,
				FD: d.tFD, RR: d.tRR, EW: d.tEW, AR: d.tAR, MA: d.tMA, RET: d.tRET,
			})
		}
		r.Sections = append(r.Sections, info)
	}
	// m.order is maintained in ascending position (Pos == index), so both
	// slices are built already sorted in global trace order.
	return r
}

// Fig10Table renders the per-core timing tables in the style of the paper's
// Fig. 10: one table per core, one row per instruction with its six stage
// cycles.
func (r *Result) Fig10Table() string {
	byCore := make(map[int][]InstTiming)
	secCore := make(map[int]int)
	for _, s := range r.Sections {
		secCore[s.Pos] = s.Core
	}
	for _, t := range r.Timings {
		c := secCore[t.SecPos]
		byCore[c] = append(byCore[c], t)
	}
	var cores []int
	for c := range byCore {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	var b strings.Builder
	for _, c := range cores {
		fmt.Fprintf(&b, "core %d pipeline\n", c)
		fmt.Fprintf(&b, "%-7s %-28s %5s %5s %5s %5s %5s %5s\n",
			"instr", "text", "fd", "rr", "ew", "ar", "ma", "ret")
		rows := byCore[c]
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].SecPos != rows[j].SecPos {
				return rows[i].SecPos < rows[j].SecPos
			}
			return rows[i].Idx < rows[j].Idx
		})
		dash := func(v int64) string {
			if v == 0 {
				return "-"
			}
			return fmt.Sprintf("%d", v)
		}
		for _, t := range rows {
			fmt.Fprintf(&b, "%-7s %-28s %5s %5s %5s %5s %5s %5s\n",
				t.Label(), t.Text(), dash(t.FD), dash(t.RR), dash(t.EW), dash(t.AR), dash(t.MA), dash(t.RET))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary renders the headline numbers.
func (r *Result) Summary() string {
	return fmt.Sprintf("cores=%d net=%s sections=%d instructions=%d fetch=%d cycles (%.1f ipc) retire=%d cycles (%.1f ipc) total=%d cycles rax=%d",
		r.Cores, r.NetName, len(r.Sections), r.Instructions,
		r.FetchDone, r.FetchIPC(), r.RetireDone, r.RetireIPC(), r.Cycles, r.RAX)
}

// RunProgram builds a machine with the default configuration and runs prog.
func RunProgram(prog *isa.Program, cores int) (*Result, error) {
	m, err := New(prog, DefaultConfig(cores))
	if err != nil {
		return nil, err
	}
	return m.Run()
}
