package machine

import (
	"strings"
	"testing"

	"repro/internal/analytic"
	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/noc"
	"repro/internal/progs"
)

// runBoth runs prog on the emulator (oracle) and on the machine with the
// given core count, and checks result equivalence.
func runBoth(t *testing.T, prog *isa.Program, cores int) (*emu.CPU, *Result) {
	t.Helper()
	cpu, err := emu.RunProgram(prog)
	if err != nil {
		t.Fatalf("emulator: %v", err)
	}
	r, err := RunProgram(prog, cores)
	if err != nil {
		t.Fatalf("machine (%d cores): %v", cores, err)
	}
	if r.RAX != cpu.Result() {
		t.Fatalf("machine rax = %d, emulator rax = %d", r.RAX, cpu.Result())
	}
	return cpu, r
}

func TestSumCorrectAcrossCoresAndSizes(t *testing.T) {
	for _, cores := range []int{1, 2, 3, 5, 8, 16} {
		for _, size := range []int{1, 2, 3, 5, 10, 20, 40} {
			p, err := progs.BuildSumFork(progs.Vector(size))
			if err != nil {
				t.Fatal(err)
			}
			_, r := runBoth(t, p, cores)
			if r.RAX != progs.VectorSum(size) {
				t.Errorf("cores=%d size=%d: rax = %d, want %d", cores, size, r.RAX, progs.VectorSum(size))
			}
		}
	}
}

// TestSumSections reproduces Fig. 4: sum(t,5) runs as 5 sections (plus the
// driver's continuation section holding hlt).
func TestSumSections(t *testing.T) {
	for n := 0; n <= 4; n++ {
		p, err := progs.BuildSumFork(progs.Vector(5 << uint(n)))
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunProgram(p, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := analytic.Sections(n) + 1 // + the driver's hlt continuation
		if int64(len(r.Sections)) != want {
			t.Errorf("n=%d: %d sections, want %d", n, len(r.Sections), want)
		}
	}
}

// TestSumInstructionCount: the machine fetches exactly the paper's dynamic
// instruction count (45·2ⁿ + 14·(2ⁿ−1) plus the 4-instruction driver).
func TestSumInstructionCount(t *testing.T) {
	for n := 0; n <= 4; n++ {
		p, err := progs.BuildSumFork(progs.Vector(5 << uint(n)))
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunProgram(p, 8)
		if err != nil {
			t.Fatal(err)
		}
		if want := analytic.Instructions(n) + 4; r.Instructions != want {
			t.Errorf("n=%d: %d instructions, want %d", n, r.Instructions, want)
		}
	}
}

// TestSumLongestSection reproduces the Fig. 6 observation: for sum(t,5) the
// longest sum section has 16 instructions.
func TestSumLongestSection(t *testing.T) {
	p, err := progs.BuildSumFork(progs.Vector(5))
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunProgram(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	longest := 0
	for _, s := range r.Sections {
		if s.Instructions > longest {
			longest = s.Instructions
		}
	}
	if longest != 16 {
		t.Errorf("longest section = %d instructions, want 16 (paper Fig. 6 section 2)", longest)
	}
}

func TestFibForkOnMachine(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 8, 10} {
		p, err := progs.BuildFibFork(n)
		if err != nil {
			t.Fatal(err)
		}
		_, r := runBoth(t, p, 8)
		if r.RAX != progs.Fib(n) {
			t.Errorf("fib(%d) = %d, want %d", n, r.RAX, progs.Fib(n))
		}
	}
}

// TestMaxForkOnMachine exercises the fetch-stall path: vmax's conditional
// branches depend on memory loads, so the fetch stage cannot compute them
// and must wait for the execute stage.
func TestMaxForkOnMachine(t *testing.T) {
	vecs := [][]uint64{
		{7},
		{7, 3},
		{3, 7},
		{5, 1, 9, 2, 8},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		{16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1},
	}
	for _, cores := range []int{2, 5, 8} {
		for _, v := range vecs {
			p, err := progs.BuildMaxFork(v)
			if err != nil {
				t.Fatal(err)
			}
			_, r := runBoth(t, p, cores)
			want := uint64(0)
			for _, x := range v {
				if x > want {
					want = x
				}
			}
			if r.RAX != want {
				t.Errorf("cores=%d max(%v) = %d, want %d", cores, v, r.RAX, want)
			}
		}
	}
}

// TestMemoryStateMatchesEmulator: after the run, the machine's committed DMH
// agrees with the emulator's memory on every address the program wrote.
func TestMemoryStateMatchesEmulator(t *testing.T) {
	p, err := progs.BuildSumFork(progs.Vector(20))
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := emu.RunProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Data segment and the stack words used by the run.
	for off := uint64(0); off < uint64(len(p.Data)); off += 8 {
		a := isa.DataBase + off
		if got, want := m.DMH().ReadU64(a), cpu.Mem.ReadU64(a); got != want {
			t.Errorf("data[%#x] = %d, want %d", a, got, want)
		}
	}
	for a := isa.StackTop - 512; a < isa.StackTop; a += 8 {
		if got, want := m.DMH().ReadU64(a), cpu.Mem.ReadU64(a); got != want {
			t.Errorf("stack[%#x] = %d, want %d", a, got, want)
		}
	}
}

// TestFetchTimeScaling reproduces the Section 5 scaling shape: fetch time
// grows by a constant number of cycles per doubling (the paper's 12), so
// fetch IPC grows roughly linearly with the data size.
func TestFetchTimeScaling(t *testing.T) {
	var fetch []int64
	maxN := 5
	for n := 0; n <= maxN; n++ {
		p, err := progs.BuildSumFork(progs.Vector(5 << uint(n)))
		if err != nil {
			t.Fatal(err)
		}
		// Enough cores that section placement never throttles fetch.
		r, err := RunProgram(p, int(analytic.Sections(n))+1)
		if err != nil {
			t.Fatal(err)
		}
		fetch = append(fetch, r.FetchDone)
	}
	// The per-doubling increments must be (near-)constant, not
	// proportional: parallel fetch hides the doubling.
	var incs []int64
	for i := 1; i < len(fetch); i++ {
		incs = append(incs, fetch[i]-fetch[i-1])
	}
	for i := 1; i < len(incs); i++ {
		d := incs[i] - incs[i-1]
		if d < -4 || d > 4 {
			t.Errorf("fetch increments not near-constant: %v (times %v)", incs, fetch)
			break
		}
	}
	// Fetch IPC at n=5 far exceeds 1 (a sequential 1-wide fetcher).
	instr := analytic.Instructions(maxN) + 4
	ipc := float64(instr) / float64(fetch[maxN])
	if ipc < 4 {
		t.Errorf("fetch IPC at n=%d = %.1f, want >= 4", maxN, ipc)
	}
}

// TestSingleCoreStillCorrect: with one core everything serialises through
// one pipeline and the suspension mechanism, but results are unchanged.
func TestSingleCoreStillCorrect(t *testing.T) {
	p, err := progs.BuildSumFork(progs.Vector(10))
	if err != nil {
		t.Fatal(err)
	}
	_, r := runBoth(t, p, 1)
	if r.RAX != progs.VectorSum(10) {
		t.Errorf("rax = %d", r.RAX)
	}
	if got := len(r.FetchedPerCore); got != 1 {
		t.Errorf("cores = %d, want 1", got)
	}
}

// TestMoreCoresNeverSlowerMuch: adding cores should not increase total
// cycles appreciably (scheduling noise aside) and should reduce them
// markedly from 1 core to plenty.
func TestMoreCoresNeverSlowerMuch(t *testing.T) {
	p, err := progs.BuildSumFork(progs.Vector(40))
	if err != nil {
		t.Fatal(err)
	}
	one, err := RunProgram(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunProgram(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if many.Cycles >= one.Cycles {
		t.Errorf("64 cores (%d cycles) not faster than 1 core (%d cycles)", many.Cycles, one.Cycles)
	}
}

func TestShortcutDisabledStillCorrect(t *testing.T) {
	p, err := progs.BuildSumFork(progs.Vector(20))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(6)
	cfg.Shortcut = false
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.RAX != progs.VectorSum(20) {
		t.Errorf("rax = %d, want %d", r.RAX, progs.VectorSum(20))
	}
}

// TestShortcutReducesLatency: with the call-level shortcut the final
// continuation's stack read bypasses deeper sections, so the run with the
// shortcut is no slower than without (and typically faster).
func TestShortcutReducesLatency(t *testing.T) {
	p, err := progs.BuildSumFork(progs.Vector(40))
	if err != nil {
		t.Fatal(err)
	}
	on := DefaultConfig(12)
	off := DefaultConfig(12)
	off.Shortcut = false
	mon, err := New(p, on)
	if err != nil {
		t.Fatal(err)
	}
	ron, err := mon.Run()
	if err != nil {
		t.Fatal(err)
	}
	moff, err := New(p, off)
	if err != nil {
		t.Fatal(err)
	}
	roff, err := moff.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ron.Cycles > roff.Cycles {
		t.Errorf("shortcut run (%d cycles) slower than no-shortcut (%d cycles)", ron.Cycles, roff.Cycles)
	}
}

func TestTopologies(t *testing.T) {
	p, err := progs.BuildSumFork(progs.Vector(20))
	if err != nil {
		t.Fatal(err)
	}
	nets := []noc.Network{
		noc.NewCrossbar(8, 1),
		noc.NewCrossbar(8, 3),
		noc.NewRing(8, 1),
		noc.NewMesh(4, 2, 1),
	}
	var cycles []int64
	for _, n := range nets {
		cfg := DefaultConfig(8)
		cfg.Net = n
		m, err := New(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		if r.RAX != progs.VectorSum(20) {
			t.Errorf("%s: rax = %d", n.Name(), r.RAX)
		}
		cycles = append(cycles, r.Cycles)
	}
	// Higher-latency crossbar cannot be faster than the 1-hop crossbar.
	if cycles[1] < cycles[0] {
		t.Errorf("crossbar hop=3 (%d) faster than hop=1 (%d)", cycles[1], cycles[0])
	}
}

func TestDeterminism(t *testing.T) {
	p, err := progs.BuildFibFork(9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunProgram(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunProgram(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions || a.RAX != b.RAX {
		t.Errorf("non-deterministic: %v vs %v", a.Summary(), b.Summary())
	}
	if len(a.Timings) != len(b.Timings) {
		t.Fatalf("timing lengths differ")
	}
	for i := range a.Timings {
		if a.Timings[i] != b.Timings[i] {
			t.Fatalf("timing %d differs: %+v vs %+v", i, a.Timings[i], b.Timings[i])
		}
	}
}

func TestCallRetRejected(t *testing.T) {
	p, err := progs.BuildSumCall(progs.Vector(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunProgram(p, 4); err == nil {
		t.Error("machine accepted a call/ret program")
	}
}

func TestFig10TableRendering(t *testing.T) {
	p, err := progs.BuildSumFork(progs.Vector(5))
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunProgram(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	tbl := r.Fig10Table()
	for _, want := range []string{"core 0 pipeline", "fd", "ret", "fork sum", "endfork", "movq (%rdi), %rax"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("Fig10 table missing %q", want)
		}
	}
	// Every retired instruction has monotonically ordered stage cycles.
	for _, ti := range r.Timings {
		if ti.RR <= ti.FD {
			t.Errorf("%s: rr %d <= fd %d", ti.Label(), ti.RR, ti.FD)
		}
		if ti.EW <= ti.RR {
			t.Errorf("%s: ew %d <= rr %d", ti.Label(), ti.EW, ti.RR)
		}
		if ti.AR != 0 && ti.AR <= ti.EW {
			t.Errorf("%s: ar %d <= ew %d", ti.Label(), ti.AR, ti.EW)
		}
		if ti.MA != 0 && ti.MA <= ti.AR {
			t.Errorf("%s: ma %d <= ar %d", ti.Label(), ti.MA, ti.AR)
		}
		if ti.RET == 0 {
			t.Errorf("%s: never retired", ti.Label())
		}
	}
}

// TestSectionOrderMatchesTrace: concatenating the machine's sections in
// their final total order yields exactly the emulator's sequential trace.
func TestSectionOrderMatchesTrace(t *testing.T) {
	p, err := progs.BuildSumFork(progs.Vector(5))
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := emu.RunTraced(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunProgram(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if int64(tr.Len()) != r.Instructions {
		t.Fatalf("machine %d instructions, trace %d", r.Instructions, tr.Len())
	}
	for i, ti := range r.Timings {
		if ti.IP != tr.Records[i].IP {
			t.Fatalf("trace position %d: machine ip %d, emulator ip %d", i, ti.IP, tr.Records[i].IP)
		}
	}
}

// TestRequestsIssued: the run uses the distributed renaming machinery (rax
// across sections, stack words across sections).
func TestRequestsIssued(t *testing.T) {
	p, err := progs.BuildSumFork(progs.Vector(5))
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunProgram(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.RegRequests == 0 {
		t.Error("no register renaming requests were issued")
	}
	if r.MemRequests == 0 {
		t.Error("no memory renaming requests were issued")
	}
}

// TestStallDetection: a program that loops forever trips the progress
// detector rather than hanging.
func TestStallDetection(t *testing.T) {
	p, err := asm.Assemble(`
_start: jmp _start
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	cfg.MaxCycles = 5000
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Error("infinite loop did not abort")
	}
}

func TestBadConfig(t *testing.T) {
	p, err := progs.BuildSumFork(progs.Vector(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(p, Config{Cores: 0}); err == nil {
		t.Error("accepted 0 cores")
	}
}

// TestMessageAccounting: every fork sends exactly one creation message, every
// issued request is eventually answered by exactly one response, and the DMH
// answers are a subset of the responses.
func TestMessageAccounting(t *testing.T) {
	p, err := progs.BuildSumFork(progs.Vector(40))
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunProgram(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(r.Sections) - 1); r.CreateMessages != want {
		t.Errorf("CreateMessages = %d, want %d (sections minus the initial one)", r.CreateMessages, want)
	}
	if want := r.RegRequests + r.MemRequests; r.ResponseMessages != want {
		t.Errorf("ResponseMessages = %d, want %d (one per request)", r.ResponseMessages, want)
	}
	if r.DMHAnswers > r.ResponseMessages {
		t.Errorf("DMHAnswers = %d exceeds ResponseMessages = %d", r.DMHAnswers, r.ResponseMessages)
	}
	if got := r.NocMessages(); got != r.CreateMessages+r.RequestHops+r.ResponseMessages {
		t.Errorf("NocMessages() = %d, want the sum of its parts", got)
	}
	if r.NocMessages() == 0 {
		t.Error("NocMessages() = 0 for a forking program")
	}
}

// TestShortcutReducesHops: disabling the call-level shortcut makes memory
// requests search through deeper-level sections, so the no-shortcut run needs
// at least as many request hops.
func TestShortcutReducesHops(t *testing.T) {
	p, err := progs.BuildSumFork(progs.Vector(40))
	if err != nil {
		t.Fatal(err)
	}
	run := func(shortcut bool) *Result {
		cfg := DefaultConfig(12)
		cfg.Shortcut = shortcut
		m, err := New(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	on, off := run(true), run(false)
	if on.RequestHops > off.RequestHops {
		t.Errorf("shortcut run made %d hops, no-shortcut made %d", on.RequestHops, off.RequestHops)
	}
}

// TestMaxSectionsPerCorePacks: with a packing cap, sections fill one core
// after another instead of spreading, and the result stays correct.
func TestMaxSectionsPerCorePacks(t *testing.T) {
	p, err := progs.BuildSumFork(progs.Vector(40))
	if err != nil {
		t.Fatal(err)
	}
	run := func(secCap int) *Result {
		cfg := DefaultConfig(8)
		cfg.MaxSectionsPerCore = secCap
		m, err := New(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r.RAX != progs.VectorSum(40) {
			t.Fatalf("cap=%d: rax = %d, want %d", secCap, r.RAX, progs.VectorSum(40))
		}
		return r
	}
	usedCores := func(r *Result) int {
		used := make(map[int]bool)
		for _, s := range r.Sections {
			used[s.Core] = true
		}
		return len(used)
	}
	spread, packed := run(0), run(100)
	if got, limit := usedCores(spread), usedCores(packed); got < limit {
		t.Errorf("spread run used %d cores, packed run used %d (packing should not use more)", got, limit)
	}
	if got := usedCores(packed); got != 1 {
		t.Errorf("cap=100 run used %d cores, want 1 (every section fits the first core)", got)
	}
}
