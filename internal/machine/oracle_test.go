// Three-way scheduler oracle over the full PBBS suite. This lives in the
// external test package because internal/pbbs imports internal/backend,
// which imports internal/machine — an in-package test would be an import
// cycle. The small hand-built workloads' three-way checks (and the
// scheduler-internals tests) stay in sched_test.go.
package machine_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/backend"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/minic"
	"repro/internal/pbbs"
)

// oracleWorkers is the parallel scheduler's worker count in the oracle runs:
// more workers than the host has cores on small CI machines, so the
// cross-worker interleavings are exercised (and, under -race, watched)
// regardless of host width.
const oracleWorkers = 4

// runMachine executes a compiled kernel on one scheduler and returns the
// full machine result. The program and inputs are built once by the caller
// and shared across the three schedulers: timing rows carry instruction
// pointers, so bit-identity is only meaningful against the same compilation.
func runMachine(t *testing.T, k *pbbs.Kernel, prog *isa.Program, in pbbs.Inputs, n, cores int, dense bool, workers int) *machine.Result {
	t.Helper()
	mb := &backend.Machine{Cfg: machine.Config{
		Cores:         cores,
		CreateLatency: 2,
		Shortcut:      true,
		Dense:         dense,
		SimWorkers:    workers,
	}}
	res, err := mb.Run(prog, in, false)
	if err != nil {
		t.Fatalf("%s n=%d cores=%d dense=%v workers=%d: %v", k.Name, n, cores, dense, workers, err)
	}
	want, err := k.Ref(n, in)
	if err != nil {
		t.Fatalf("%s n=%d: reference: %v", k.Name, n, err)
	}
	if res.RAX != want {
		t.Fatalf("%s n=%d cores=%d: checksum %d, reference %d", k.Name, n, cores, res.RAX, want)
	}
	return res.Machine
}

// sameResult asserts two machine results are bit-identical, down to each
// instruction's six stage timestamps and each section record.
func sameResult(t *testing.T, label string, a, b *machine.Result) {
	t.Helper()
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions || a.RAX != b.RAX ||
		a.FetchDone != b.FetchDone || a.RetireDone != b.RetireDone ||
		a.RegRequests != b.RegRequests || a.MemRequests != b.MemRequests ||
		a.CreateMessages != b.CreateMessages || a.RequestHops != b.RequestHops ||
		a.ResponseMessages != b.ResponseMessages || a.DMHAnswers != b.DMHAnswers {
		t.Errorf("%s: headline metrics differ:\n a: %s\n b: %s", label, a.Summary(), b.Summary())
	}
	if a.Regs != b.Regs {
		t.Errorf("%s: final register files differ", label)
	}
	if !reflect.DeepEqual(a.Sections, b.Sections) {
		t.Errorf("%s: section records differ", label)
	}
	if len(a.Timings) != len(b.Timings) {
		t.Fatalf("%s: %d vs %d timing rows", label, len(a.Timings), len(b.Timings))
	}
	for i := range a.Timings {
		if a.Timings[i] != b.Timings[i] {
			t.Errorf("%s: timing row %d differs:\n a: %+v\n b: %+v", label, i, a.Timings[i], b.Timings[i])
			return
		}
	}
}

// TestThreeWayOracle pins the tentpole's exactness claim on the paper's
// workloads: for every one of the ten PBBS kernels, the dense reference
// loop, the sequential idle-skip scheduler and the parallel phase scheduler
// produce bit-identical results — same cycle count, same per-instruction
// stage timestamps, same NoC accounting, same final architectural state. CI
// runs this under -race, which also checks the parallel scheduler's phase
// discipline (no unsynchronized cross-worker access) on real workloads.
// TestBigNParallelMatches extends the oracle into the paper-scale regime: a
// quickSort large enough to churn hundreds of sections across 64 cores — the
// regime the parallel scheduler exists for, where the per-cycle queues are
// long enough to cross the worker-broadcast threshold organically. The dense
// leg is skipped (minutes-slow out here); idle-skip is the oracle. -short
// keeps it to a seconds-scale size.
func TestBigNParallelMatches(t *testing.T) {
	k, err := pbbs.Find("quicksort")
	if err != nil {
		t.Fatal(err)
	}
	n := 512
	if testing.Short() {
		n = 128
	}
	prog, err := k.Build(n, minic.ModeFork)
	if err != nil {
		t.Fatal(err)
	}
	in := k.Gen(n, 1)
	skip := runMachine(t, k, prog, in, n, 64, false, 0)
	par := runMachine(t, k, prog, in, n, 64, false, oracleWorkers)
	sameResult(t, fmt.Sprintf("%s n=%d cores=64 idle-skip vs parallel", k.Name, n), skip, par)
}

func TestThreeWayOracle(t *testing.T) {
	for _, k := range pbbs.Kernels() {
		k := k
		t.Run(fmt.Sprintf("%02d-%s", k.ID, k.Name), func(t *testing.T) {
			n := k.ClampN(12)
			prog, err := k.Build(n, minic.ModeFork)
			if err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			in := k.Gen(n, 1)
			for _, cores := range []int{1, 4, 16} {
				dense := runMachine(t, k, prog, in, n, cores, true, 0)
				skip := runMachine(t, k, prog, in, n, cores, false, 0)
				par := runMachine(t, k, prog, in, n, cores, false, oracleWorkers)
				label := fmt.Sprintf("%s n=%d cores=%d", k.Name, n, cores)
				sameResult(t, label+" dense vs idle-skip", dense, skip)
				sameResult(t, label+" idle-skip vs parallel", skip, par)
			}
		})
	}
}
