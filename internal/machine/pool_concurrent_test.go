package machine

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// The concurrent pool tests drive Get/Put from many goroutines — the shape
// the fuzz oracle and the sweep engine's worker pool impose — and are run
// under -race in CI, so the pool's locking discipline is checked on the
// exact paths the sequential tests in warmpool_test.go pin functionally:
// hit/miss accounting, MaxIdle drops, and key-collision detection.

// TestPoolConcurrentGetPut: goroutines hammer one key with re-armed
// scheduler variants. Every Get must succeed (same shape throughout), come
// back armed as requested, and reproduce the reference run bit-identically;
// the MaxIdle bound and the stats arithmetic must hold at every moment.
func TestPoolConcurrentGetPut(t *testing.T) {
	prog := mustSumFork(t, 40)
	base := DefaultConfig(4)
	fresh, err := New(prog, base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}

	const maxIdle = 2
	p := &Pool{MaxIdle: maxIdle}
	var gets, puts atomic.Int64
	variants := []Config{base, base, base}
	variants[1].Dense = true
	variants[2].SimWorkers = 3

	const workers = 8
	iters := 6
	if testing.Short() {
		iters = 3
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				cfg := variants[(w+i)%len(variants)]
				m, err := p.Get("k", prog, cfg)
				gets.Add(1)
				if err != nil {
					t.Errorf("worker %d: Get: %v", w, err)
					return
				}
				if m.cfg.Dense != cfg.Dense || m.cfg.SimWorkers != cfg.SimWorkers {
					t.Errorf("worker %d: machine not re-armed: dense=%v workers=%d",
						w, m.cfg.Dense, m.cfg.SimWorkers)
				}
				got, err := m.Run()
				if err != nil {
					t.Errorf("worker %d: Run: %v", w, err)
					return
				}
				checkIdentical(t, "concurrent pooled run", want, got)
				p.Put("k", m)
				puts.Add(1)
			}
		}(w)
	}
	wg.Wait()

	s := p.Stats()
	if s.Hits+s.Misses != gets.Load() {
		t.Errorf("stats %+v: hits+misses != %d gets", s, gets.Load())
	}
	if s.Dropped > puts.Load() {
		t.Errorf("stats %+v: more drops than %d puts", s, puts.Load())
	}
	t.Logf("concurrent phase: %+v", s)
	// Deterministically exercise the MaxIdle drop path: empty the parking
	// slots, then park one machine more than fits.
	held := make([]*Machine, 0, maxIdle+1)
	preDrop := s.Dropped
	for i := 0; i < maxIdle+1; i++ {
		m, err := p.Get("k", prog, base)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, m)
	}
	for _, m := range held {
		p.Put("k", m)
	}
	if p.Stats().Dropped == preDrop {
		t.Errorf("parking %d machines over MaxIdle=%d dropped nothing", maxIdle+1, maxIdle)
	}
	// At most maxIdle machines survived the run: a fresh burst of Gets can
	// hit at most that many times.
	before := p.Stats().Hits
	for i := 0; i < maxIdle+2; i++ {
		if _, err := p.Get("k", prog, base); err != nil {
			t.Fatalf("drain get %d: %v", i, err)
		}
	}
	if hits := p.Stats().Hits - before; hits > maxIdle {
		t.Errorf("%d hits on drain, want <= %d parked machines", hits, maxIdle)
	}
}

// TestPoolConcurrentCollision: when racing Gets present different shapes
// under one key, pooled handoffs must either construct fresh (miss) or fail
// loudly with the collision diagnostic — never return a wrong-shape machine.
func TestPoolConcurrentCollision(t *testing.T) {
	prog := mustSumFork(t, 40)
	cfgs := []Config{DefaultConfig(4), DefaultConfig(8)}
	p := NewPool()
	var collisions atomic.Int64

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				cfg := cfgs[(w+i)%2]
				m, err := p.Get("shared", prog, cfg)
				if err != nil {
					if !strings.Contains(err.Error(), "collision") {
						t.Errorf("worker %d: unexpected Get error: %v", w, err)
					}
					collisions.Add(1)
					continue
				}
				if m.cfg.Cores != cfg.Cores {
					t.Errorf("worker %d: got %d-core machine, want %d", w, m.cfg.Cores, cfg.Cores)
				}
				p.Put("shared", m)
			}
		}(w)
	}
	wg.Wait()
	t.Logf("%d collisions across racing mixed-shape Gets", collisions.Load())

	// The racing phase above may or may not interleave into a collision;
	// pin the detection itself deterministically on a fresh key.
	m, err := p.Get("det", prog, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	p.Put("det", m)
	if _, err := p.Get("det", prog, cfgs[1]); err == nil ||
		!strings.Contains(err.Error(), "collision") {
		t.Errorf("mixed-shape handoff = %v, want collision error", err)
	}
}
