// Package machine implements a cycle-level simulator of the paper's core
// design and many-core execution model (Section 4):
//
//   - per-core six-stage pipeline: fetch-decode-&-partly-execute,
//     register-rename, execute-write-back, address-rename, memory-access,
//     retire — each stage handles one instruction per cycle;
//   - fork/endfork section management with the totally ordered section list
//     (a fork inserts the created continuation section immediately after the
//     creating section, which itself continues into the callee);
//   - distributed register renaming: a source that cannot be renamed locally
//     triggers a request that travels backwards along the section order until
//     a producer (or a cached copy) is found, and the value travels back;
//   - memory renaming through a per-section Memory Address Alias Table
//     (MAAT), with the call-level shortcut for positive-rsp-offset addresses;
//   - parallel retirement: each section retires in order independently; the
//     oldest section dumps its renamings to the data memory hierarchy (DMH).
//
// The simulator executes fork programs (no call/ret) and is validated
// against the sequential emulator: same final rax and same final memory.
//
// The simulated hot path is allocation-free in steady state: dynamic
// instructions and renaming slots come from per-machine arenas, sections and
// requests from free lists, the register alias table is a fixed array and
// the MAAT an open-addressed table with recycled backing (see pool.go), and
// the per-core queues reuse their buffers. Machine.Reset rewinds everything
// for another run on the same program without re-allocating.
package machine

import (
	"fmt"
	"math"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/noc"
)

// Config parameterises the machine.
type Config struct {
	// Cores is the number of cores. Must be >= 1.
	Cores int
	// Net is the on-chip network used to charge message latencies between
	// cores. Defaults to an ideal crossbar with hop latency 1, which
	// reproduces the paper's "3 cycles to reach the producer and return"
	// accounting of Fig. 10.
	Net noc.Network
	// CreateLatency is the section-creation message latency in cycles
	// (paper footnote 7: "the creation time of the forked section
	// (2 cycles)"). Defaults to 2.
	CreateLatency int64
	// Shortcut enables the call-level shortcut for renaming requests whose
	// address is rsp-based with a non-negative offset (§4.2). Default on
	// via DefaultConfig; disable for the ablation bench.
	Shortcut bool
	// MaxSectionsPerCore switches the host chooser from spreading to
	// packing: when > 0, a new section goes to the most loaded core that
	// still hosts fewer than this many live sections, filling cores up to
	// the cap before touching idle ones (locality over fetch spread). The
	// cap is soft: if every core is at the cap the least loaded core is
	// used anyway. 0 keeps the default least-loaded spreading.
	MaxSectionsPerCore int
	// Dense selects the reference dense scheduler, which visits every core,
	// stage and request on every cycle. The default (false) is the idle-skip
	// scheduler: each cycle visits only cores with runnable work, and when
	// nothing in the chip can act before a known future cycle the clock
	// jumps there directly. Both schedulers produce bit-identical results
	// (cycles, timings, message counts); dense exists as the oracle the
	// idle-skip cross-check tests and `repro bench-sim` compare against.
	Dense bool
	// SimWorkers is the host-goroutine count of the parallel scheduler
	// (parallel.go): the per-core issue scans and wake computation of each
	// simulated cycle run on that many workers over a static core partition,
	// with all cross-core effects applied serially at the per-cycle barrier.
	// <= 1 (the default) keeps the sequential idle-skip scheduler. The
	// setting is purely a wall-clock knob: results are bit-identical for
	// every value, because stage selection is a pure function of cycle-start
	// state (see parallel.go for the argument, and the three-way oracle
	// tests for the pin). Ignored when Dense is set.
	SimWorkers int
	// StallLimit aborts the run when no architectural progress happens for
	// this many cycles (deadlock detector). Defaults to 10000.
	StallLimit int64
	// MaxCycles aborts runs longer than this. Defaults to 100M.
	MaxCycles int64
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:         cores,
		CreateLatency: 2,
		Shortcut:      true,
	}
}

// val is a register value with a presence bit (the paper's full/empty bits).
type val struct {
	v    uint64
	full bool
}

// producer is anything a renamed source can wait on: an in-flight
// instruction's register result, a store's memory value, a slot filled by a
// remote renaming response, or an immediately available creation-copy value.
// Every one of those reduces to the same two words, so a producer simply
// points at them: the ready-time cell (0 = not yet produced; real cycles
// start at 1) and the value cell. An instruction's register result points
// into its wrAt/wrVal cells, a store's memory value at its tMA/storeVal
// fields, a renaming response at its slot. readyAt is the hottest read in
// the simulator — every waiting instruction re-polls its blocking source
// through it — and earlier representations (an interface with dynamic
// dispatch, then a 40-byte tagged union with a kind switch) both showed up
// at the top of the CPU profile; two direct loads do not.
type producer struct {
	t *int64
	v *uint64
}

func slotProd(sl *slot) producer { return producer{t: &sl.at, v: &sl.v} }
func regProd(d *DynInst, r isa.Reg) producer {
	i := d.wrSlot(r)
	return producer{t: &d.wrAt[i], v: &d.wrVal[i]}
}
func memProd(d *DynInst) producer { return producer{t: &d.tMA, v: &d.storeVal} }

// constProd returns an already-available producer (a creation-message
// register copy), backed by a pre-filled arena slot.
func (m *Machine) constProd(v uint64, at int64) producer {
	sl := m.slots.alloc()
	sl.v = v
	sl.at = at
	return slotProd(sl)
}

// valid reports whether p holds a producer at all.
func (p *producer) valid() bool { return p.t != nil }

// readyAt returns the cycle the value became available, or -1 if not yet
// available. A consumer stage running at cycle c may use the value when
// readyAt() >= 0 && readyAt() < c.
func (p *producer) readyAt() int64 {
	if t := *p.t; t != 0 {
		return t
	}
	return -1
}

// value returns the produced value; meaningful once readyAt() >= 0.
func (p *producer) value() uint64 { return *p.v }

// slot is a shared fill cell: renaming-request caches (the paper's
// "destination d serves as a caching of the missing source") and remotely
// fetched memory words. Slots are arena-allocated.
type slot struct {
	v  uint64
	at int64 // 0 until filled
}

func (s *slot) fill(v uint64, at int64) {
	s.v = v
	s.at = at
}

// srcRef is one resolved register source of an instruction.
type srcRef struct {
	prod producer
	reg  isa.Reg
	addr bool // true when the register only feeds the address computation
}

// maxSrcs bounds the register sources of one instruction after
// deduplication (the widest case is divq with a memory destination: rax,
// rdx, base, index).
const maxSrcs = 4

// maxWr bounds the architectural registers one instruction writes: a
// destination plus Flags, or rax plus rdx for the divides.
const maxWr = 2

// DynInst is one dynamic instruction in flight. DynInsts are arena-allocated
// (a chunked arena, pool.go) and recycled wholesale by Machine.Reset.
type DynInst struct {
	Sec   *Section
	Idx   int // ordinal within the section
	IP    int64
	In    *isa.Instruction
	Level int32 // call level at this instruction

	class           isa.Class
	computedAtFetch bool
	nsrcs           uint8
	srcs            [maxSrcs]srcRef
	// Register-result cells: wrRegs names the (at most maxWr) registers the
	// instruction writes, wrVal/wrAt their values and ready cycles (0 = not
	// yet produced; real cycles start at 1). Cells are claimed
	// find-or-create by wrSlot — at fetch for in-stage computed results, at
	// rename for the alias-table producers — and their wrAt/wrVal words are
	// exactly what regProd points consumers at. Two cells instead of the
	// earlier [NumRegs] arrays: the arrays made DynInst so large that
	// zeroing and GC-scanning the arena dominated fork-heavy workloads.
	wrRegs [maxWr]isa.Reg
	nwr    uint8
	wrAt   [maxWr]int64
	wrVal  [maxWr]uint64

	addr     uint64 // effective address (mem ops), set at EW
	storeVal uint64 // store data, set at MA
	memSrc   producer

	// branch outcome, resolved at fetch or EW
	taken    bool
	nextIP   int64
	resolved bool

	// For fork instructions: the created section, and the non-volatile
	// registers that were not computed at the fork point and must be
	// linked to the creator's current producers at the rename stage.
	// pendingCopy is sized for the whole fork-copied register set (an init
	// check pins cap >= len(emu.NonVolatile)), so doFork can never overflow
	// it — the count is a property of the ABI, not of the workload size.
	createdSec  *Section
	pendingCopy [16]isa.Reg
	nPending    uint8

	// Stage timestamps (0 = not yet / not applicable): fetch-decode,
	// register-rename, execute-write-back, address-rename, memory-access,
	// retire. These are the six columns of the paper's Fig. 10.
	tFD, tRR, tEW, tAR, tMA, tRET int64

	// ewWakeAt/maWakeAt cache the earliest cycle the instruction can pass
	// the execute-write-back / memory-access stage (0 = not yet known).
	// Producer ready times are write-once, so a known wake never changes
	// and the per-cycle readiness poll collapses to one comparison.
	ewWakeAt, maWakeAt int64
	// ewSrcMax/ewSrcIdx (and the ma pair) make the wake computation
	// incremental while some source is still unready: sources are confirmed
	// ready left to right, the running maximum of their ready times is kept,
	// and a confirmed source is never polled again — only the first
	// still-unready source is re-polled per visit. Exact for the same
	// write-once reason the whole-wake cache is. A max of 0 means the
	// accumulation has not started (real ready times are >= 1); for the ma
	// pair index 0 is the loaded-value producer, index i+1 is srcs[i].
	ewSrcMax, maSrcMax int64
	ewSrcIdx, maSrcIdx uint8
	// ewBlock/maBlock point at the ready cell of the source the last wake
	// computation blocked on. While that cell is still zero the instruction
	// cannot possibly pass the stage, so the issue scans skip it with a
	// single load instead of re-entering the wake computation — the
	// difference between the blocked and runnable cases dominated the CPU
	// profile, since most queue residents are blocked most cycles.
	ewBlock, maBlock *int64
}

func (d *DynInst) isMem() bool { return d.class == isa.ClassLoad || d.class == isa.ClassStore }

// ewBlocked reports that d provably cannot pass the execute-write-back
// stage this cycle: no cached wake, and the source the last wake
// computation blocked on is still unproduced. This is the single
// definition of the skip test the issue scans and nextWake apply — the
// exactness of the idle-skip scheduler rests on it, so it must not be
// re-derived at call sites.
func (d *DynInst) ewBlocked() bool {
	return d.ewWakeAt == 0 && d.ewBlock != nil && *d.ewBlock == 0
}

// maBlocked is ewBlocked's memory-access-stage counterpart.
func (d *DynInst) maBlocked() bool {
	return d.maWakeAt == 0 && d.maBlock != nil && *d.maBlock == 0
}

// done reports whether the instruction has produced everything it will.
func (d *DynInst) done() bool {
	if d.isMem() {
		return d.tMA != 0
	}
	return d.tEW != 0
}

// Section is one instruction flow, created by a fork (or the initial flow).
// Section shells are pooled and recycled by Machine.Reset.
type Section struct {
	ID        int64 // creation sequence number
	Pos       int   // current position in the machine's total order
	Core      int   // hosting core, -1 until the creation message is accepted
	BaseLevel int32

	Insts []*DynInst

	// rat is the register alias table (+ request caches + fork copies): a
	// fixed array indexed by register, with the producer's kind as the
	// validity mark. The previous map[isa.Reg]producer paid map hashing on
	// every rename of a 17-entry keyspace.
	rat  [isa.NumRegs]producer
	maat maat             // memory address alias table (8-byte words)
	arQ  fifo[*DynInst]   // memory ops awaiting in-order address renaming
	init [isa.NumRegs]val // creation-message register copies

	startIP   int64
	fetchDone bool
	renamed   int // instructions past the rename stage
	memOps    int // memory ops fetched
	memRen    int // memory ops address-renamed
	retired   int
	dumped    bool

	createdAt  int64 // fork fetch cycle
	firstFetch int64
	curLevel   int32 // fetch-time call level cursor
	fetchIP    int64
	stalled    *DynInst         // unresolved control instruction blocking fetch
	rfSave     [isa.NumRegs]val // fetch RF snapshot while suspended
}

func (s *Section) fullyRenamed() bool {
	return s.fetchDone && s.renamed == len(s.Insts)
}

func (s *Section) memRenameDone() bool {
	return s.fullyRenamed() && s.memRen == s.memOps
}

func (s *Section) fullyRetired() bool {
	return s.fetchDone && s.retired == len(s.Insts)
}

// sectionMsg is the section-creation message a fork sends to a hosting core.
// Messages live as values inside the per-core FIFO ring — no per-message
// allocation.
type sectionMsg struct {
	sec       *Section
	deliverAt int64
}

// Core is one core's pipeline state. The queues are reusable-buffer
// structures: the FIFOs slide instead of re-slicing, and the issue/load-store
// queues delete by swap (their storage order carries no meaning — selection
// orders by the explicit (section position, ordinal) comparison).
type Core struct {
	id        int
	rf        [isa.NumRegs]val // fetch-stage register file
	fetch     *Section
	pending   fifo[sectionMsg] // FIFO of section-creation messages
	suspended fifo[*Section]   // stalled sections set aside to fetch pending ones
	renameQ   fifo[*DynInst]
	iq        []*DynInst // waiting execution (unordered)
	lsq       []*DynInst // waiting memory access (unordered)
	live      int        // hosted, not fully retired sections
	fetched   int64      // statistics

	// ewSel/maSel are the issue picks (indexes into iq/lsq, -1 = none) the
	// parallel scheduler's select phase computes each cycle for the apply
	// phase to consume (see parallel.go). The sequential schedulers never
	// read them.
	ewSel, maSel int
}

// Machine is the whole chip.
type Machine struct {
	cfg   Config
	prog  *isa.Program
	cores []*Core
	order []*Section // total section order (dumped sections retained)
	reqs  []*request
	dmh   *emu.Memory
	arch  [isa.NumRegs]uint64

	cycle     int64
	nextSecID int64
	rrHost    int // round-robin tiebreak for host choice
	oldest    int // index into order of the first undumped section
	progress  int64
	lastMove  int64
	hltSeen   bool
	err       error // first fault (bad fetch, div by zero, ...)
	// quietMove records a state change that moves no counter (today only the
	// fetch stage suspending a stalled section); the idle-skip scheduler must
	// not jump the clock over a cycle that mutated anything.
	quietMove bool

	pendingCreates   int
	regReqs, memReqs int64

	// retirePick/arPick are the idle-skip scheduler's per-core work lists for
	// the two stages that scan the section order: one pass over the live
	// sections fills them, replacing the dense loop's per-core scans. An
	// entry is valid only when its generation matches pickGen — bumping the
	// generation invalidates every pick without rewriting two pointer
	// arrays each cycle.
	retirePick, arPick []*Section
	retireGen, arGen   []int64
	pickGen            int64

	// NoC message accounting: section-creation messages sent by forks,
	// request-forwarding messages between cores, value responses travelling
	// back, and requests answered by the committed state (DMH/loader).
	createMsgs, reqHops, respMsgs, dmhAnswers int64

	// Arenas, free lists and scratch buffers behind the allocation-free hot
	// path (pool.go). All of them survive Reset, so a warmed machine re-runs
	// without growing the heap.
	dyns     arena[DynInst]
	slots    arena[slot]
	secFree  []*Section
	maatFree [][]maatEntry
	reqFree  []*request
	readBuf  []isa.Reg
	writeBuf []isa.Reg
}

// DMH returns the data memory hierarchy (the committed memory), for
// inspection after Run.
func (m *Machine) DMH() *emu.Memory { return m.dmh }

// The fork-copy staging array must hold the whole non-volatile set: doFork
// appends one entry per not-yet-computed register of emu.NonVolatile, so its
// capacity is an ABI property. Checked at init so an extension of the
// register set cannot silently truncate fork copies at runtime.
func init() {
	if n := len(emu.NonVolatile); n > len(DynInst{}.pendingCopy) {
		panic(fmt.Sprintf("machine: DynInst.pendingCopy holds %d registers, emu.NonVolatile has %d",
			len(DynInst{}.pendingCopy), n))
	}
}

// withDefaults returns cfg with every zero field replaced by its default.
// New applies it on construction; the warm pool (warmpool.go) applies it to
// requested configurations so they compare against the normalized one a
// pooled machine carries.
func (cfg Config) withDefaults() Config {
	if cfg.Net == nil {
		cfg.Net = noc.NewCrossbar(cfg.Cores, 1)
	}
	if cfg.CreateLatency == 0 {
		cfg.CreateLatency = 2
	}
	if cfg.StallLimit == 0 {
		cfg.StallLimit = 10000
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 100 << 20
	}
	return cfg
}

// New prepares a machine for prog.
func New(prog *isa.Program, cfg Config) (*Machine, error) {
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("machine: need at least one core")
	}
	cfg = cfg.withDefaults()
	for i := range prog.Text {
		switch prog.Text[i].Op {
		case isa.CALL, isa.RET:
			return nil, fmt.Errorf("machine: instruction %d is %s; the machine executes fork programs (use internal/forkify or mini-C -fork mode)", i, prog.Text[i].Op)
		}
	}
	m := &Machine{cfg: cfg, prog: prog, dyns: newArena[DynInst](dynChunk), slots: newArena[slot](slotChunk)}
	for i := 0; i < cfg.Cores; i++ {
		m.cores = append(m.cores, &Core{id: i, ewSel: -1, maSel: -1})
	}
	m.retirePick = make([]*Section, cfg.Cores)
	m.arPick = make([]*Section, cfg.Cores)
	m.retireGen = make([]int64, cfg.Cores)
	m.arGen = make([]int64, cfg.Cores)
	m.readBuf = make([]isa.Reg, 0, 2*isa.NumRegs)
	m.writeBuf = make([]isa.Reg, 0, 2*isa.NumRegs)
	m.dmh = emu.NewMemory()
	m.boot()
	return m, nil
}

// Reset rewinds the machine to its post-New state for another run of the
// same program, recycling every per-run object: sections, dynamic
// instructions, slots, requests, alias-table backings and queue buffers all
// return to the machine's pools, and the committed memory is re-seeded with
// the program's data segment. Inputs injected into the DMH must be
// re-injected by the caller, exactly as after New. A warmed machine
// (one completed Run) re-runs with no steady-state heap allocation — the
// property pinned by internal/bench's allocation-regression tests.
func (m *Machine) Reset() {
	for _, s := range m.order {
		m.releaseSection(s)
	}
	clear(m.order)
	m.order = m.order[:0]
	for _, c := range m.cores {
		c.rf = [isa.NumRegs]val{}
		c.fetch = nil
		c.pending.Reset()
		c.suspended.Reset()
		c.renameQ.Reset()
		clear(c.iq)
		c.iq = c.iq[:0]
		clear(c.lsq)
		c.lsq = c.lsq[:0]
		c.live = 0
		c.fetched = 0
		c.ewSel, c.maSel = -1, -1
	}
	for _, r := range m.reqs {
		m.releaseRequest(r)
	}
	clear(m.reqs)
	m.reqs = m.reqs[:0]
	m.dyns.reset()
	m.slots.reset()
	for i := range m.retireGen {
		m.retireGen[i], m.arGen[i] = 0, 0
		m.retirePick[i], m.arPick[i] = nil, nil
	}
	m.pickGen = 0
	m.cycle, m.nextSecID, m.lastMove, m.progress = 0, 0, 0, 0
	m.rrHost, m.oldest = 0, 0
	m.hltSeen, m.quietMove = false, false
	m.err = nil
	m.pendingCreates = 0
	m.regReqs, m.memReqs = 0, 0
	m.createMsgs, m.reqHops, m.respMsgs, m.dmhAnswers = 0, 0, 0, 0
	m.dmh.Reset()
	m.boot()
}

// boot seeds the committed state and the initial section, the shared tail of
// New and Reset.
func (m *Machine) boot() {
	m.dmh.CopyIn(isa.DataBase, m.prog.Data)
	m.arch = [isa.NumRegs]uint64{}
	m.arch[isa.RSP] = isa.StackTop

	// The initial section: all registers full with the entry state.
	s := m.newSection(m.prog.Entry, 0, 0)
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		s.init[r] = val{v: m.arch[r], full: true}
	}
	m.order = append(m.order, s)
	s.Pos = 0
	m.assignHost(s, 0)
}

func (m *Machine) newSection(startIP int64, baseLevel int32, createdAt int64) *Section {
	s := m.acquireSection()
	s.ID = m.nextSecID
	s.Core = -1
	s.BaseLevel = baseLevel
	s.startIP = startIP
	s.fetchIP = startIP
	s.curLevel = baseLevel
	s.createdAt = createdAt
	m.nextSecID++
	return s
}

// insertAfter places created immediately after creator in the total order
// (the paper's §2: "new sections are inserted in place in the list of
// existing sections ... building the sequential trace of the run").
func (m *Machine) insertAfter(creator, created *Section) {
	at := creator.Pos + 1
	m.order = append(m.order, nil)
	copy(m.order[at+1:], m.order[at:])
	m.order[at] = created
	for i := at; i < len(m.order); i++ {
		m.order[i].Pos = i
	}
}

// prevOf returns the section immediately before s in the total order, or nil.
func (m *Machine) prevOf(s *Section) *Section {
	if s.Pos == 0 {
		return nil
	}
	return m.order[s.Pos-1]
}

// nextOf returns the section immediately after s, or nil.
func (m *Machine) nextOf(s *Section) *Section {
	if s.Pos+1 >= len(m.order) {
		return nil
	}
	return m.order[s.Pos+1]
}

// chooseHost picks the hosting core for a new section (the paper leaves
// load balancing out of scope). The default policy spreads: the least
// loaded core wins, round-robin on ties. With Config.MaxSectionsPerCore > 0
// the policy packs instead: the most loaded core still under the cap wins,
// so sections fill one core after another; when every core is at the cap
// the least loaded core is used (the cap is soft).
func (m *Machine) chooseHost() int {
	best, bestLoad := -1, int(^uint(0)>>1)
	packed, packedLoad := -1, -1
	n := len(m.cores)
	for i := 0; i < n; i++ {
		c := m.cores[(m.rrHost+i)%n]
		// live already counts sections whose creation message is still in
		// flight (assignHost increments it at assignment time).
		load := c.live
		if load < bestLoad {
			best, bestLoad = c.id, load
		}
		if m.cfg.MaxSectionsPerCore > 0 && load < m.cfg.MaxSectionsPerCore && load > packedLoad {
			packed, packedLoad = c.id, load
		}
	}
	if packed >= 0 {
		best = packed
	}
	m.rrHost = (best + 1) % n
	return best
}

func (m *Machine) assignHost(s *Section, deliverAt int64) {
	host := m.chooseHost()
	s.Core = host
	c := m.cores[host]
	c.live++
	c.pending.Push(sectionMsg{sec: s, deliverAt: deliverAt})
	m.pendingCreates++
}

// Run simulates until completion and returns the result. The default
// scheduler is idle-skip (see runIdleSkip); Config.Dense selects the
// reference dense loop, Config.SimWorkers > 1 the parallel phase scheduler
// (see parallel.go). All three produce bit-identical results.
func (m *Machine) Run() (*Result, error) {
	if m.cfg.Dense {
		return m.runDense()
	}
	if m.cfg.SimWorkers > 1 {
		return m.runParallel()
	}
	return m.runIdleSkip()
}

// runDense is the reference scheduler: every cycle visits every core, every
// stage and every request, whether or not anything can make progress. It is
// kept as the oracle the idle-skip scheduler is cross-checked against.
func (m *Machine) runDense() (*Result, error) {
	for {
		if m.err != nil {
			return nil, m.err
		}
		if m.done() {
			return m.result(), nil
		}
		m.cycle++
		if m.cycle > m.cfg.MaxCycles {
			return nil, fmt.Errorf("machine: exceeded %d cycles", m.cfg.MaxCycles)
		}
		before := m.progress
		for _, c := range m.cores {
			m.stageRetire(c)
			m.stageMA(c)
			m.stageAR(c)
			m.stageEW(c)
			m.stageRR(c)
			m.stageFD(c)
		}
		m.processRequests()
		m.dumpOldest()
		if m.progress != before {
			m.lastMove = m.cycle
		} else if m.cycle-m.lastMove > m.cfg.StallLimit {
			return nil, fmt.Errorf("machine: no progress for %d cycles at cycle %d: %s",
				m.cfg.StallLimit, m.cycle, m.stuckReport())
		}
	}
}

// runIdleSkip is the work-list-driven scheduler. Three observations make it
// exact (not approximate):
//
//   - The two stages that scan the whole section order per core (retire and
//     address rename) pick the oldest hosted section whose head is eligible,
//     and eligibility cannot change mid-cycle (a completion timestamp set
//     this cycle fails the strictly-older boundary either way), so one pass
//     over the live sections computes every core's pick up front (pickHeads)
//     — same choice, O(sections) instead of O(cores × sections).
//   - A core hosting no live section cannot act: every stage reads only the
//     core's own slots and queues, and all of them (the fetch slot, the
//     message FIFO, the suspension list, the rename/issue/load-store
//     queues) hold state of live hosted sections, so c.live == 0 — already
//     maintained incrementally for the host chooser — implies the core is
//     inert and is skipped with one comparison.
//   - If a whole cycle mutates nothing (no stage fired, no request moved,
//     no section was suspended or dumped), then the machine state at the
//     next cycle is identical and the earliest cycle at which anything can
//     act is decided purely by stored timestamps (stage completion times,
//     message delivery times, request availability, value-ready times).
//     nextWake enumerates every such timestamp, so the clock can jump
//     straight to the minimum — every skipped cycle is one the dense loop
//     would have spent doing nothing.
//
// The stall detector and the cycle cap are clamped into the jump so that
// pathological programs fail at the same cycle, with the same error, as
// under the dense loop.
func (m *Machine) runIdleSkip() (*Result, error) {
	acted := true
	for {
		if m.err != nil {
			return nil, m.err
		}
		if m.done() {
			return m.result(), nil
		}
		if acted {
			m.cycle++
		} else {
			next := m.nextWake()
			if bound := m.lastMove + m.cfg.StallLimit + 1; next > bound {
				next = bound
			}
			if bound := m.cfg.MaxCycles + 1; next > bound {
				next = bound
			}
			m.cycle = next
		}
		if m.cycle > m.cfg.MaxCycles {
			return nil, fmt.Errorf("machine: exceeded %d cycles", m.cfg.MaxCycles)
		}
		before, hops := m.progress, m.reqHops
		m.quietMove = false
		m.pickHeads()
		for _, c := range m.cores {
			if c.live == 0 {
				continue
			}
			var rp, ap *Section
			if m.retireGen[c.id] == m.pickGen {
				rp = m.retirePick[c.id]
			}
			if m.arGen[c.id] == m.pickGen {
				ap = m.arPick[c.id]
			}
			if rp == nil && ap == nil && !coreActive(c) {
				continue
			}
			if rp != nil {
				m.retireApply(rp, rp.Insts[rp.retired])
			}
			m.stageMA(c)
			if ap != nil {
				m.arApply(c, ap, ap.arQ.Front())
			}
			m.stageEW(c)
			m.stageRR(c)
			m.stageFD(c)
		}
		m.processRequests()
		m.dumpOldest()
		acted = m.progress != before || m.reqHops != hops || m.quietMove
		if m.progress != before {
			m.lastMove = m.cycle
		} else if m.cycle-m.lastMove > m.cfg.StallLimit {
			return nil, fmt.Errorf("machine: no progress for %d cycles at cycle %d: %s",
				m.cfg.StallLimit, m.cycle, m.stuckReport())
		}
	}
}

// pickHeads fills the per-core retire and address-rename picks: for each
// core, the oldest hosted live section whose respective head is eligible
// this cycle. m.order[m.oldest:] is exactly the live sections in ascending
// position, so the first hit per core is the dense loop's min-position
// choice.
func (m *Machine) pickHeads() {
	m.pickGen++
	for _, s := range m.order[m.oldest:] {
		c := s.Core
		if m.retireGen[c] != m.pickGen && m.retireHead(s) != nil {
			m.retirePick[c] = s
			m.retireGen[c] = m.pickGen
		}
		if m.arGen[c] != m.pickGen && m.arHead(s) != nil {
			m.arPick[c] = s
			m.arGen[c] = m.pickGen
		}
	}
}

// coreActive reports whether any stage other than retire and address rename
// (which have explicit picks) could possibly act on c this cycle. Those
// stages read only the core's own slots and queues, so a core with none of
// that state is skipped without calling its stages.
func coreActive(c *Core) bool {
	return c.fetch != nil ||
		!c.pending.Empty() || !c.suspended.Empty() ||
		!c.renameQ.Empty() || len(c.iq) > 0 || len(c.lsq) > 0
}

// never is the wake time of work that is blocked on a value or condition not
// yet produced: it cannot become runnable without some other action first,
// and that action has its own wake entry.
const never = int64(math.MaxInt64)

// nextWake returns the earliest cycle at which anything in the machine could
// act, assuming nothing acted in the cycle just simulated (so every blocking
// condition is decided by stored timestamps alone). Entries may be
// conservative (too early just wastes a visit); they must never be late.
// Each entry mirrors one `... < m.cycle` / `... >= m.cycle` comparison in
// the stage and request code. The enumeration is split into a per-core half
// (nextWakeCores, strided so the parallel scheduler can partition it across
// workers) and a global half (nextWakeGlobal: section heads and requests);
// clamping each entry before taking the minimum is order-independent, so the
// split merge equals the single-pass value exactly.
func (m *Machine) nextWake() int64 {
	w := m.nextWakeCores(0, 1)
	if g := m.nextWakeGlobal(); g < w {
		w = g
	}
	return w
}

// clampWake floors a wake entry to the next cycle: anything at or before the
// current cycle can only be acted on from cycle+1.
func (m *Machine) clampWake(t int64) int64 {
	if t <= m.cycle {
		return m.cycle + 1
	}
	return t
}

// nextWakeCores enumerates the per-core wake sources of cores from, from+
// stride, from+2·stride, … — the core-local state only (fetch slot, message
// FIFO, suspension list, rename/issue/load-store queues). It writes nothing
// but the visited instructions' own write-once wake caches (via ewWake and
// maWake), so strided calls over disjoint core sets are safe concurrently.
func (m *Machine) nextWakeCores(from, stride int) int64 {
	w := never
	wake := func(t int64) {
		if t = m.clampWake(t); t < w {
			w = t
		}
	}
	for ci := from; ci < len(m.cores); ci += stride {
		c := m.cores[ci]
		if c.live == 0 {
			// Every wake source below is state of a live hosted section.
			continue
		}
		if c.fetch != nil {
			if d := c.fetch.stalled; d != nil {
				if d.resolved && d.tEW > 0 {
					wake(d.tEW + 1) // branch redirect visible the cycle after EW
				}
			} else {
				wake(m.cycle + 1) // fetch in flight: one instruction per cycle
			}
		}
		if !c.pending.Empty() {
			wake(c.pending.Front().deliverAt + 1) // creation message consumable
		}
		for i, n := 0, c.suspended.Len(); i < n; i++ {
			if d := c.suspended.At(i).stalled; d != nil && d.resolved && d.tEW > 0 {
				wake(d.tEW + 1)
			}
		}
		if !c.renameQ.Empty() {
			wake(c.renameQ.Front().tFD + 1) // rename the cycle after fetch
		}
		for _, d := range c.iq {
			if d.ewBlocked() {
				continue // no wake until another action produces the source
			}
			wake(m.ewWake(d))
		}
		for _, d := range c.lsq {
			if d.maBlocked() {
				continue
			}
			wake(m.maWake(d))
		}
	}
	return w
}

// nextWakeGlobal enumerates the wake sources that live outside any single
// core: the in-order address-rename and retire heads of the live sections,
// and the in-flight renaming requests. It reads section and request state
// plus producer ready cells — disjoint from the wake caches nextWakeCores
// writes — so the parallel scheduler overlaps it with the per-core halves.
func (m *Machine) nextWakeGlobal() int64 {
	w := never
	wake := func(t int64) {
		if t = m.clampWake(t); t < w {
			w = t
		}
	}
	// Sections before m.oldest are dumped; later ones host the in-order
	// address-rename and retire heads.
	for _, s := range m.order[m.oldest:] {
		if s.arQ.Len() > 0 {
			if h := s.arQ.Front(); h.tEW > 0 {
				wake(h.tEW + 1)
			}
		}
		if s.retired < len(s.Insts) {
			h := s.Insts[s.retired]
			if h.done() {
				if h.isMem() {
					wake(h.tMA + 1)
				} else {
					wake(h.tEW + 1)
				}
			}
		}
	}
	for _, r := range m.reqs {
		if r.availableAt > m.cycle {
			wake(r.availableAt) // in flight: may act on arrival
			continue
		}
		// Waiting at its target for the producer's value (a target that is
		// not yet fully renamed, or a producer slot not yet filled, can only
		// change through another action, which has its own wake entry).
		if t := r.target; t != nil {
			var p *producer
			if r.kind == reqReg {
				if t.fullyRenamed() {
					if rp := &t.rat[r.reg]; rp.valid() {
						p = rp
					}
				}
			} else if t.memRenameDone() {
				p = t.maat.get(r.addr)
			}
			if p != nil {
				if at := p.readyAt(); at >= 0 {
					wake(at + 1) // export reads the value the cycle after
				}
			}
		}
	}
	return w
}

// ewWake returns the earliest cycle d can pass the execute-write-back stage
// (a stage boundary: the cycle after the last of its rename and relevant
// source-ready times), or never while a source value has not been produced
// yet. A known wake is cached on the instruction — producer ready times are
// write-once, so it cannot change.
func (m *Machine) ewWake(d *DynInst) int64 {
	if d.ewWakeAt != 0 {
		return d.ewWakeAt
	}
	if d.tRR == 0 {
		return never // not renamed yet: the rename-queue entry covers it
	}
	t := d.ewSrcMax
	if t == 0 {
		t = d.tRR
	}
	if !d.computedAtFetch || d.isMem() {
		mem := d.isMem()
		for int(d.ewSrcIdx) < int(d.nsrcs) {
			s := &d.srcs[d.ewSrcIdx]
			if mem && !s.addr {
				d.ewSrcIdx++
				continue
			}
			at := s.prod.readyAt()
			if at < 0 {
				d.ewSrcMax = t
				d.ewBlock = s.prod.t
				return never
			}
			if at > t {
				t = at
			}
			d.ewSrcIdx++
		}
	}
	d.ewWakeAt = t + 1
	return d.ewWakeAt
}

// maWake returns the earliest cycle d can pass the memory-access stage, or
// never while its loaded value or a source is not yet produced. A known wake
// is cached, like ewWake's.
func (m *Machine) maWake(d *DynInst) int64 {
	if d.maWakeAt != 0 {
		return d.maWakeAt
	}
	if d.tAR == 0 {
		return never // not address-renamed yet: the AR head entry covers it
	}
	t := d.maSrcMax
	if t == 0 {
		t = d.tAR
	}
	if d.maSrcIdx == 0 {
		if d.memSrc.valid() {
			at := d.memSrc.readyAt()
			if at < 0 {
				d.maSrcMax = t
				d.maBlock = d.memSrc.t
				return never
			}
			if at > t {
				t = at
			}
		}
		d.maSrcIdx = 1
	}
	for int(d.maSrcIdx) <= int(d.nsrcs) {
		p := &d.srcs[d.maSrcIdx-1].prod
		at := p.readyAt()
		if at < 0 {
			d.maSrcMax = t
			d.maBlock = p.t
			return never
		}
		if at > t {
			t = at
		}
		d.maSrcIdx++
	}
	d.maWakeAt = t + 1
	return d.maWakeAt
}

func (m *Machine) done() bool {
	if !m.hltSeen || m.pendingCreates > 0 {
		return false
	}
	return m.oldest >= len(m.order)
}

// stuckReport summarises pipeline state for deadlock diagnostics.
func (m *Machine) stuckReport() string {
	s := ""
	for _, sec := range m.order {
		if sec.dumped {
			continue
		}
		s += fmt.Sprintf("[sec %d core %d pos %d: %d insts fetchDone=%v renamed=%d retired=%d memRen=%d/%d stalled=%v] ",
			sec.ID, sec.Core, sec.Pos, len(sec.Insts), sec.fetchDone, sec.renamed, sec.retired, sec.memRen, sec.memOps, sec.stalled != nil)
	}
	s += fmt.Sprintf("reqs=%d", len(m.reqs))
	return s
}

// dumpOldest retires the oldest fully retired sections into the DMH and the
// architectural register file (the paper's §4.2 footnote 6: "the oldest
// section ... dumps its renamings to the data memory hierarchy").
func (m *Machine) dumpOldest() {
	for m.oldest < len(m.order) {
		s := m.order[m.oldest]
		if !s.fullyRetired() {
			return
		}
		// A section with pending incoming requests keeps its tables until
		// they are answered.
		if m.hasRequestsAt(s) {
			return
		}
		// Memory writes, in section order (last store to a word wins).
		for _, d := range s.Insts {
			if d.class == isa.ClassStore {
				m.dmh.WriteU64(d.addr, d.storeVal)
			}
		}
		// Register state: every renamed or cached register value.
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if p := &s.rat[r]; p.valid() && p.readyAt() >= 0 {
				m.arch[r] = p.value()
			}
		}
		s.dumped = true
		// The section can no longer be searched by renaming requests; its
		// MAAT backing goes back to the free list for the next section.
		m.releaseMaat(&s.maat)
		m.cores[s.Core].live--
		m.oldest++
		m.progress++
	}
}

func (m *Machine) hasRequestsAt(s *Section) bool {
	for _, r := range m.reqs {
		if r.target == s || r.from == s {
			return true
		}
	}
	return false
}
