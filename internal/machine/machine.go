// Package machine implements a cycle-level simulator of the paper's core
// design and many-core execution model (Section 4):
//
//   - per-core six-stage pipeline: fetch-decode-&-partly-execute,
//     register-rename, execute-write-back, address-rename, memory-access,
//     retire — each stage handles one instruction per cycle;
//   - fork/endfork section management with the totally ordered section list
//     (a fork inserts the created continuation section immediately after the
//     creating section, which itself continues into the callee);
//   - distributed register renaming: a source that cannot be renamed locally
//     triggers a request that travels backwards along the section order until
//     a producer (or a cached copy) is found, and the value travels back;
//   - memory renaming through a per-section Memory Address Alias Table
//     (MAAT), with the call-level shortcut for positive-rsp-offset addresses;
//   - parallel retirement: each section retires in order independently; the
//     oldest section dumps its renamings to the data memory hierarchy (DMH).
//
// The simulator executes fork programs (no call/ret) and is validated
// against the sequential emulator: same final rax and same final memory.
package machine

import (
	"fmt"
	"math"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/noc"
)

// Config parameterises the machine.
type Config struct {
	// Cores is the number of cores. Must be >= 1.
	Cores int
	// Net is the on-chip network used to charge message latencies between
	// cores. Defaults to an ideal crossbar with hop latency 1, which
	// reproduces the paper's "3 cycles to reach the producer and return"
	// accounting of Fig. 10.
	Net noc.Network
	// CreateLatency is the section-creation message latency in cycles
	// (paper footnote 7: "the creation time of the forked section
	// (2 cycles)"). Defaults to 2.
	CreateLatency int64
	// Shortcut enables the call-level shortcut for renaming requests whose
	// address is rsp-based with a non-negative offset (§4.2). Default on
	// via DefaultConfig; disable for the ablation bench.
	Shortcut bool
	// MaxSectionsPerCore switches the host chooser from spreading to
	// packing: when > 0, a new section goes to the most loaded core that
	// still hosts fewer than this many live sections, filling cores up to
	// the cap before touching idle ones (locality over fetch spread). The
	// cap is soft: if every core is at the cap the least loaded core is
	// used anyway. 0 keeps the default least-loaded spreading.
	MaxSectionsPerCore int
	// Dense selects the reference dense scheduler, which visits every core,
	// stage and request on every cycle. The default (false) is the idle-skip
	// scheduler: each cycle visits only cores with runnable work, and when
	// nothing in the chip can act before a known future cycle the clock
	// jumps there directly. Both schedulers produce bit-identical results
	// (cycles, timings, message counts); dense exists as the oracle the
	// idle-skip cross-check tests and `repro bench-sim` compare against.
	Dense bool
	// StallLimit aborts the run when no architectural progress happens for
	// this many cycles (deadlock detector). Defaults to 10000.
	StallLimit int64
	// MaxCycles aborts runs longer than this. Defaults to 100M.
	MaxCycles int64
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:         cores,
		CreateLatency: 2,
		Shortcut:      true,
	}
}

// val is a register value with a presence bit (the paper's full/empty bits).
type val struct {
	v    uint64
	full bool
}

// producer is anything a renamed source can wait on: an in-flight
// instruction's register result, a store's memory value, or a slot filled by
// a remote renaming response or a fork register copy.
type producer interface {
	// readyAt returns the cycle the value became available, or -1 if not
	// yet available. A consumer stage running at cycle c may use the value
	// when readyAt() >= 0 && readyAt() < c.
	readyAt() int64
	value() uint64
}

// slot is a value container: fork-copied registers, renaming-request caches
// (the paper's "destination d serves as a caching of the missing source"),
// and remotely fetched memory words.
type slot struct {
	v  uint64
	at int64 // -1 until filled
}

func newSlot() *slot { return &slot{at: -1} }

func filledSlot(v uint64, at int64) *slot { return &slot{v: v, at: at} }

func (s *slot) readyAt() int64 { return s.at }
func (s *slot) value() uint64  { return s.v }
func (s *slot) fill(v uint64, at int64) {
	s.v = v
	s.at = at
}

// regProd is an instruction's register result viewed as a producer.
type regProd struct {
	inst *DynInst
	reg  isa.Reg
}

func (p regProd) readyAt() int64 {
	if t := p.inst.regAt[p.reg]; t != 0 {
		return t
	}
	return -1
}
func (p regProd) value() uint64 { return p.inst.regOut[p.reg] }

// memProd is a store instruction's memory value viewed as a producer.
type memProd struct {
	inst *DynInst
}

func (p memProd) readyAt() int64 {
	if p.inst.tMA == 0 {
		return -1
	}
	return p.inst.tMA
}
func (p memProd) value() uint64 { return p.inst.storeVal }

// srcRef is one resolved register source of an instruction.
type srcRef struct {
	reg  isa.Reg
	prod producer
	addr bool // true when the register only feeds the address computation
}

// DynInst is one dynamic instruction in flight.
type DynInst struct {
	Sec   *Section
	Idx   int // ordinal within the section
	IP    int64
	In    *isa.Instruction
	Level int32 // call level at this instruction

	class           isa.Class
	computedAtFetch bool
	srcs            []srcRef
	// regOut/regAt hold the register results and the cycle each became
	// ready (0 = no result for that register; real cycles start at 1).
	// Fixed arrays, not maps: readyAt is the hottest read in the simulator —
	// every waiting instruction re-polls its sources via it each cycle.
	regOut [isa.NumRegs]uint64
	regAt  [isa.NumRegs]int64

	addr     uint64 // effective address (mem ops), set at EW
	storeVal uint64 // store data, set at MA
	memSrc   producer

	// branch outcome, resolved at fetch or EW
	taken    bool
	nextIP   int64
	resolved bool

	// For fork instructions: the created section, and the non-volatile
	// registers that were not computed at the fork point and must be
	// linked to the creator's current producers at the rename stage.
	createdSec  *Section
	pendingCopy []isa.Reg

	// Stage timestamps (0 = not yet / not applicable): fetch-decode,
	// register-rename, execute-write-back, address-rename, memory-access,
	// retire. These are the six columns of the paper's Fig. 10.
	tFD, tRR, tEW, tAR, tMA, tRET int64

	// ewWakeAt/maWakeAt cache the earliest cycle the instruction can pass
	// the execute-write-back / memory-access stage (0 = not yet known).
	// Producer ready times are write-once, so a known wake never changes
	// and the per-cycle readiness poll collapses to one comparison.
	ewWakeAt, maWakeAt int64
}

func (d *DynInst) isMem() bool { return d.class == isa.ClassLoad || d.class == isa.ClassStore }

// done reports whether the instruction has produced everything it will.
func (d *DynInst) done() bool {
	if d.isMem() {
		return d.tMA != 0
	}
	return d.tEW != 0
}

// Section is one instruction flow, created by a fork (or the initial flow).
type Section struct {
	ID        int64 // creation sequence number
	Pos       int   // current position in the machine's total order
	Core      int   // hosting core, -1 until the creation message is accepted
	BaseLevel int32

	Insts []*DynInst

	rat  map[isa.Reg]producer // register alias table + caches + fork copies
	maat map[uint64]producer  // memory address alias table (8-byte words)
	arQ  []*DynInst           // memory ops awaiting in-order address renaming
	init [isa.NumRegs]val     // creation-message register copies

	startIP   int64
	fetchDone bool
	renamed   int // instructions past the rename stage
	memOps    int // memory ops fetched
	memRen    int // memory ops address-renamed
	retired   int
	dumped    bool

	createdAt  int64 // fork fetch cycle
	firstFetch int64
	curLevel   int32 // fetch-time call level cursor
	fetchIP    int64
	stalled    *DynInst         // unresolved control instruction blocking fetch
	rfSave     [isa.NumRegs]val // fetch RF snapshot while suspended
}

func (s *Section) fullyRenamed() bool {
	return s.fetchDone && s.renamed == len(s.Insts)
}

func (s *Section) memRenameDone() bool {
	return s.fullyRenamed() && s.memRen == s.memOps
}

func (s *Section) fullyRetired() bool {
	return s.fetchDone && s.retired == len(s.Insts)
}

// sectionMsg is the section-creation message a fork sends to a hosting core.
type sectionMsg struct {
	sec       *Section
	deliverAt int64
}

// Core is one core's pipeline state.
type Core struct {
	id        int
	rf        [isa.NumRegs]val // fetch-stage register file
	fetch     *Section
	pending   []sectionMsg // FIFO of section-creation messages
	suspended []*Section   // stalled sections set aside to fetch pending ones
	renameQ   []*DynInst
	iq        []*DynInst // waiting execution
	lsq       []*DynInst // waiting memory access
	live      int        // hosted, not fully retired sections
	fetched   int64      // statistics
}

// Machine is the whole chip.
type Machine struct {
	cfg   Config
	prog  *isa.Program
	cores []*Core
	order []*Section // total section order (dumped sections retained)
	byID  map[int64]*Section
	reqs  []*request
	dmh   *emu.Memory
	arch  [isa.NumRegs]uint64

	cycle     int64
	nextSecID int64
	rrHost    int // round-robin tiebreak for host choice
	oldest    int // index into order of the first undumped section
	progress  int64
	lastMove  int64
	hltSeen   bool
	err       error // first fault (bad fetch, div by zero, ...)
	// quietMove records a state change that moves no counter (today only the
	// fetch stage suspending a stalled section); the idle-skip scheduler must
	// not jump the clock over a cycle that mutated anything.
	quietMove bool

	pendingCreates   int
	regReqs, memReqs int64

	// retirePick/arPick are the idle-skip scheduler's per-core work lists for
	// the two stages that scan the section order: one pass over the live
	// sections fills them, replacing the dense loop's per-core scans. An
	// entry is valid only when its generation matches pickGen — bumping the
	// generation invalidates every pick without rewriting two pointer
	// arrays each cycle.
	retirePick, arPick []*Section
	retireGen, arGen   []int64
	pickGen            int64

	// NoC message accounting: section-creation messages sent by forks,
	// request-forwarding messages between cores, value responses travelling
	// back, and requests answered by the committed state (DMH/loader).
	createMsgs, reqHops, respMsgs, dmhAnswers int64
}

// DMH returns the data memory hierarchy (the committed memory), for
// inspection after Run.
func (m *Machine) DMH() *emu.Memory { return m.dmh }

// New prepares a machine for prog.
func New(prog *isa.Program, cfg Config) (*Machine, error) {
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("machine: need at least one core")
	}
	if cfg.Net == nil {
		cfg.Net = noc.NewCrossbar(cfg.Cores, 1)
	}
	if cfg.CreateLatency == 0 {
		cfg.CreateLatency = 2
	}
	if cfg.StallLimit == 0 {
		cfg.StallLimit = 10000
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 100 << 20
	}
	for i := range prog.Text {
		switch prog.Text[i].Op {
		case isa.CALL, isa.RET:
			return nil, fmt.Errorf("machine: instruction %d is %s; the machine executes fork programs (use internal/forkify or mini-C -fork mode)", i, prog.Text[i].Op)
		}
	}
	m := &Machine{cfg: cfg, prog: prog, byID: make(map[int64]*Section)}
	for i := 0; i < cfg.Cores; i++ {
		m.cores = append(m.cores, &Core{id: i})
	}
	m.retirePick = make([]*Section, cfg.Cores)
	m.arPick = make([]*Section, cfg.Cores)
	m.retireGen = make([]int64, cfg.Cores)
	m.arGen = make([]int64, cfg.Cores)
	m.dmh = emu.NewMemory()
	m.dmh.CopyIn(isa.DataBase, prog.Data)
	m.arch[isa.RSP] = isa.StackTop

	// The initial section: all registers full with the entry state.
	s := m.newSection(prog.Entry, 0, 0)
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		s.init[r] = val{v: m.arch[r], full: true}
	}
	m.order = append(m.order, s)
	s.Pos = 0
	m.assignHost(s, 0)
	return m, nil
}

func (m *Machine) newSection(startIP int64, baseLevel int32, createdAt int64) *Section {
	s := &Section{
		ID:        m.nextSecID,
		Core:      -1,
		BaseLevel: baseLevel,
		rat:       make(map[isa.Reg]producer),
		maat:      make(map[uint64]producer),
		startIP:   startIP,
		fetchIP:   startIP,
		curLevel:  baseLevel,
		createdAt: createdAt,
	}
	m.nextSecID++
	m.byID[s.ID] = s
	return s
}

// insertAfter places created immediately after creator in the total order
// (the paper's §2: "new sections are inserted in place in the list of
// existing sections ... building the sequential trace of the run").
func (m *Machine) insertAfter(creator, created *Section) {
	at := creator.Pos + 1
	m.order = append(m.order, nil)
	copy(m.order[at+1:], m.order[at:])
	m.order[at] = created
	for i := at; i < len(m.order); i++ {
		m.order[i].Pos = i
	}
}

// prevOf returns the section immediately before s in the total order, or nil.
func (m *Machine) prevOf(s *Section) *Section {
	if s.Pos == 0 {
		return nil
	}
	return m.order[s.Pos-1]
}

// nextOf returns the section immediately after s, or nil.
func (m *Machine) nextOf(s *Section) *Section {
	if s.Pos+1 >= len(m.order) {
		return nil
	}
	return m.order[s.Pos+1]
}

// chooseHost picks the hosting core for a new section (the paper leaves
// load balancing out of scope). The default policy spreads: the least
// loaded core wins, round-robin on ties. With Config.MaxSectionsPerCore > 0
// the policy packs instead: the most loaded core still under the cap wins,
// so sections fill one core after another; when every core is at the cap
// the least loaded core is used (the cap is soft).
func (m *Machine) chooseHost() int {
	best, bestLoad := -1, int(^uint(0)>>1)
	packed, packedLoad := -1, -1
	n := len(m.cores)
	for i := 0; i < n; i++ {
		c := m.cores[(m.rrHost+i)%n]
		// live already counts sections whose creation message is still in
		// flight (assignHost increments it at assignment time).
		load := c.live
		if load < bestLoad {
			best, bestLoad = c.id, load
		}
		if m.cfg.MaxSectionsPerCore > 0 && load < m.cfg.MaxSectionsPerCore && load > packedLoad {
			packed, packedLoad = c.id, load
		}
	}
	if packed >= 0 {
		best = packed
	}
	m.rrHost = (best + 1) % n
	return best
}

func (m *Machine) assignHost(s *Section, deliverAt int64) {
	host := m.chooseHost()
	s.Core = host
	c := m.cores[host]
	c.live++
	c.pending = append(c.pending, sectionMsg{sec: s, deliverAt: deliverAt})
	m.pendingCreates++
}

// Run simulates until completion and returns the result. The default
// scheduler is idle-skip (see runIdleSkip); Config.Dense selects the
// reference dense loop. Both produce bit-identical results.
func (m *Machine) Run() (*Result, error) {
	if m.cfg.Dense {
		return m.runDense()
	}
	return m.runIdleSkip()
}

// runDense is the reference scheduler: every cycle visits every core, every
// stage and every request, whether or not anything can make progress. It is
// kept as the oracle the idle-skip scheduler is cross-checked against.
func (m *Machine) runDense() (*Result, error) {
	for {
		if m.err != nil {
			return nil, m.err
		}
		if m.done() {
			return m.result(), nil
		}
		m.cycle++
		if m.cycle > m.cfg.MaxCycles {
			return nil, fmt.Errorf("machine: exceeded %d cycles", m.cfg.MaxCycles)
		}
		before := m.progress
		for _, c := range m.cores {
			m.stageRetire(c)
			m.stageMA(c)
			m.stageAR(c)
			m.stageEW(c)
			m.stageRR(c)
			m.stageFD(c)
		}
		m.processRequests()
		m.dumpOldest()
		if m.progress != before {
			m.lastMove = m.cycle
		} else if m.cycle-m.lastMove > m.cfg.StallLimit {
			return nil, fmt.Errorf("machine: no progress for %d cycles at cycle %d: %s",
				m.cfg.StallLimit, m.cycle, m.stuckReport())
		}
	}
}

// runIdleSkip is the work-list-driven scheduler. Three observations make it
// exact (not approximate):
//
//   - The two stages that scan the whole section order per core (retire and
//     address rename) pick the oldest hosted section whose head is eligible,
//     and eligibility cannot change mid-cycle (a completion timestamp set
//     this cycle fails the strictly-older boundary either way), so one pass
//     over the live sections computes every core's pick up front (pickHeads)
//     — same choice, O(sections) instead of O(cores × sections).
//   - A core with no pick whose fetch slot, message FIFO, suspension list
//     and stage queues are all empty cannot act: the remaining stages read
//     only that state, so the core is skipped entirely.
//   - If a whole cycle mutates nothing (no stage fired, no request moved,
//     no section was suspended or dumped), then the machine state at the
//     next cycle is identical and the earliest cycle at which anything can
//     act is decided purely by stored timestamps (stage completion times,
//     message delivery times, request availability, value-ready times).
//     nextWake enumerates every such timestamp, so the clock can jump
//     straight to the minimum — every skipped cycle is one the dense loop
//     would have spent doing nothing.
//
// The stall detector and the cycle cap are clamped into the jump so that
// pathological programs fail at the same cycle, with the same error, as
// under the dense loop.
func (m *Machine) runIdleSkip() (*Result, error) {
	acted := true
	for {
		if m.err != nil {
			return nil, m.err
		}
		if m.done() {
			return m.result(), nil
		}
		if acted {
			m.cycle++
		} else {
			next := m.nextWake()
			if bound := m.lastMove + m.cfg.StallLimit + 1; next > bound {
				next = bound
			}
			if bound := m.cfg.MaxCycles + 1; next > bound {
				next = bound
			}
			m.cycle = next
		}
		if m.cycle > m.cfg.MaxCycles {
			return nil, fmt.Errorf("machine: exceeded %d cycles", m.cfg.MaxCycles)
		}
		before, hops := m.progress, m.reqHops
		m.quietMove = false
		m.pickHeads()
		for _, c := range m.cores {
			var rp, ap *Section
			if m.retireGen[c.id] == m.pickGen {
				rp = m.retirePick[c.id]
			}
			if m.arGen[c.id] == m.pickGen {
				ap = m.arPick[c.id]
			}
			if rp == nil && ap == nil && !coreActive(c) {
				continue
			}
			if rp != nil {
				m.retireApply(rp, rp.Insts[rp.retired])
			}
			m.stageMA(c)
			if ap != nil {
				m.arApply(c, ap, ap.arQ[0])
			}
			m.stageEW(c)
			m.stageRR(c)
			m.stageFD(c)
		}
		m.processRequests()
		m.dumpOldest()
		acted = m.progress != before || m.reqHops != hops || m.quietMove
		if m.progress != before {
			m.lastMove = m.cycle
		} else if m.cycle-m.lastMove > m.cfg.StallLimit {
			return nil, fmt.Errorf("machine: no progress for %d cycles at cycle %d: %s",
				m.cfg.StallLimit, m.cycle, m.stuckReport())
		}
	}
}

// pickHeads fills the per-core retire and address-rename picks: for each
// core, the oldest hosted live section whose respective head is eligible
// this cycle. m.order[m.oldest:] is exactly the live sections in ascending
// position, so the first hit per core is the dense loop's min-position
// choice.
func (m *Machine) pickHeads() {
	m.pickGen++
	for _, s := range m.order[m.oldest:] {
		c := s.Core
		if m.retireGen[c] != m.pickGen && m.retireHead(s) != nil {
			m.retirePick[c] = s
			m.retireGen[c] = m.pickGen
		}
		if m.arGen[c] != m.pickGen && m.arHead(s) != nil {
			m.arPick[c] = s
			m.arGen[c] = m.pickGen
		}
	}
}

// coreActive reports whether any stage other than retire and address rename
// (which have explicit picks) could possibly act on c this cycle. Those
// stages read only the core's own slots and queues, so a core with none of
// that state is skipped without calling its stages.
func coreActive(c *Core) bool {
	return c.fetch != nil ||
		len(c.pending) > 0 || len(c.suspended) > 0 ||
		len(c.renameQ) > 0 || len(c.iq) > 0 || len(c.lsq) > 0
}

// never is the wake time of work that is blocked on a value or condition not
// yet produced: it cannot become runnable without some other action first,
// and that action has its own wake entry.
const never = int64(math.MaxInt64)

// nextWake returns the earliest cycle at which anything in the machine could
// act, assuming nothing acted in the cycle just simulated (so every blocking
// condition is decided by stored timestamps alone). Entries may be
// conservative (too early just wastes a visit); they must never be late.
// Each entry mirrors one `... < m.cycle` / `... >= m.cycle` comparison in
// the stage and request code.
func (m *Machine) nextWake() int64 {
	w := never
	wake := func(t int64) {
		if t <= m.cycle {
			t = m.cycle + 1
		}
		if t < w {
			w = t
		}
	}
	for _, c := range m.cores {
		if c.fetch != nil {
			if d := c.fetch.stalled; d != nil {
				if d.resolved && d.tEW > 0 {
					wake(d.tEW + 1) // branch redirect visible the cycle after EW
				}
			} else {
				wake(m.cycle + 1) // fetch in flight: one instruction per cycle
			}
		}
		if len(c.pending) > 0 {
			wake(c.pending[0].deliverAt + 1) // creation message consumable
		}
		for _, s := range c.suspended {
			if d := s.stalled; d != nil && d.resolved && d.tEW > 0 {
				wake(d.tEW + 1)
			}
		}
		if len(c.renameQ) > 0 {
			wake(c.renameQ[0].tFD + 1) // rename the cycle after fetch
		}
		for _, d := range c.iq {
			wake(m.ewWake(d))
		}
		for _, d := range c.lsq {
			wake(m.maWake(d))
		}
	}
	// Sections before m.oldest are dumped; later ones host the in-order
	// address-rename and retire heads.
	for _, s := range m.order[m.oldest:] {
		if len(s.arQ) > 0 {
			if h := s.arQ[0]; h.tEW > 0 {
				wake(h.tEW + 1)
			}
		}
		if s.retired < len(s.Insts) {
			h := s.Insts[s.retired]
			if h.done() {
				if h.isMem() {
					wake(h.tMA + 1)
				} else {
					wake(h.tEW + 1)
				}
			}
		}
	}
	for _, r := range m.reqs {
		if r.availableAt > m.cycle {
			wake(r.availableAt) // in flight: may act on arrival
			continue
		}
		// Waiting at its target for the producer's value (a target that is
		// not yet fully renamed, or a producer slot not yet filled, can only
		// change through another action, which has its own wake entry).
		if t := r.target; t != nil {
			var p producer
			if r.kind == reqReg {
				if t.fullyRenamed() {
					p = t.rat[r.reg]
				}
			} else if t.memRenameDone() {
				p = t.maat[r.addr]
			}
			if p != nil {
				if at := p.readyAt(); at >= 0 {
					wake(at + 1) // export reads the value the cycle after
				}
			}
		}
	}
	return w
}

// ewWake returns the earliest cycle d can pass the execute-write-back stage
// (a stage boundary: the cycle after the last of its rename and relevant
// source-ready times), or never while a source value has not been produced
// yet. A known wake is cached on the instruction — producer ready times are
// write-once, so it cannot change.
func (m *Machine) ewWake(d *DynInst) int64 {
	if d.ewWakeAt != 0 {
		return d.ewWakeAt
	}
	if d.tRR == 0 {
		return never // not renamed yet: the rename-queue entry covers it
	}
	t := d.tRR
	if !d.computedAtFetch || d.isMem() {
		for _, s := range d.srcs {
			if d.isMem() && !s.addr {
				continue
			}
			at := s.prod.readyAt()
			if at < 0 {
				return never
			}
			if at > t {
				t = at
			}
		}
	}
	d.ewWakeAt = t + 1
	return d.ewWakeAt
}

// maWake returns the earliest cycle d can pass the memory-access stage, or
// never while its loaded value or a source is not yet produced. A known wake
// is cached, like ewWake's.
func (m *Machine) maWake(d *DynInst) int64 {
	if d.maWakeAt != 0 {
		return d.maWakeAt
	}
	if d.tAR == 0 {
		return never // not address-renamed yet: the AR head entry covers it
	}
	t := d.tAR
	if d.memSrc != nil {
		at := d.memSrc.readyAt()
		if at < 0 {
			return never
		}
		if at > t {
			t = at
		}
	}
	for _, s := range d.srcs {
		at := s.prod.readyAt()
		if at < 0 {
			return never
		}
		if at > t {
			t = at
		}
	}
	d.maWakeAt = t + 1
	return d.maWakeAt
}

func (m *Machine) done() bool {
	if !m.hltSeen || m.pendingCreates > 0 {
		return false
	}
	return m.oldest >= len(m.order)
}

// stuckReport summarises pipeline state for deadlock diagnostics.
func (m *Machine) stuckReport() string {
	s := ""
	for _, sec := range m.order {
		if sec.dumped {
			continue
		}
		s += fmt.Sprintf("[sec %d core %d pos %d: %d insts fetchDone=%v renamed=%d retired=%d memRen=%d/%d stalled=%v] ",
			sec.ID, sec.Core, sec.Pos, len(sec.Insts), sec.fetchDone, sec.renamed, sec.retired, sec.memRen, sec.memOps, sec.stalled != nil)
	}
	s += fmt.Sprintf("reqs=%d", len(m.reqs))
	return s
}

// dumpOldest retires the oldest fully retired sections into the DMH and the
// architectural register file (the paper's §4.2 footnote 6: "the oldest
// section ... dumps its renamings to the data memory hierarchy").
func (m *Machine) dumpOldest() {
	for m.oldest < len(m.order) {
		s := m.order[m.oldest]
		if !s.fullyRetired() {
			return
		}
		// A section with pending incoming requests keeps its tables until
		// they are answered.
		if m.hasRequestsAt(s) {
			return
		}
		// Memory writes, in section order (last store to a word wins).
		for _, d := range s.Insts {
			if d.class == isa.ClassStore {
				m.dmh.WriteU64(d.addr, d.storeVal)
			}
		}
		// Register state: every renamed or cached register value.
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if p, ok := s.rat[r]; ok && p.readyAt() >= 0 {
				m.arch[r] = p.value()
			}
		}
		s.dumped = true
		m.cores[s.Core].live--
		m.oldest++
		m.progress++
	}
}

func (m *Machine) hasRequestsAt(s *Section) bool {
	for _, r := range m.reqs {
		if r.target == s || r.from == s {
			return true
		}
	}
	return false
}
