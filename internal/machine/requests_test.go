package machine

import (
	"testing"
)

// TestProcessRequestsCompaction covers the drain loop's retirement ordering:
// finished requests are compacted out in place, the survivors keep their
// relative order (the protocol steps at most one request per cycle per
// entry, so a shuffle would change which request reaches a section first),
// and retired request objects return to the pool scrubbed.
func TestProcessRequestsCompaction(t *testing.T) {
	m := &Machine{}
	mk := func(tag int) *request {
		r := m.newRequest()
		// Far in the future: stepRequest leaves the request untouched, so
		// the test controls exactly which entries retire.
		r.availableAt = 100
		r.hops = tag
		return r
	}
	reqs := []*request{mk(0), mk(1), mk(2), mk(3), mk(4), mk(5)}
	m.reqs = append([]*request{}, reqs...)
	for _, idx := range []int{1, 3, 4} {
		m.reqs[idx].done = true
	}

	m.processRequests()

	want := []int{0, 2, 5}
	if len(m.reqs) != len(want) {
		t.Fatalf("%d live requests, want %d", len(m.reqs), len(want))
	}
	for i, tag := range want {
		if m.reqs[i].hops != tag {
			t.Errorf("live[%d] carries tag %d, want %d (order not preserved)", i, m.reqs[i].hops, tag)
		}
	}
	if len(m.reqFree) != 3 {
		t.Fatalf("%d pooled requests, want 3", len(m.reqFree))
	}
	// Pooled requests are scrubbed and reused (LIFO), not re-allocated.
	r := m.newRequest()
	if r != reqs[4] {
		t.Error("newRequest did not reuse the most recently retired request")
	}
	if r.hops != 0 || r.done || r.availableAt != 0 {
		t.Errorf("reused request not scrubbed: %+v", r)
	}

	// A second drain with nothing finished must not move anything.
	before := append([]*request{}, m.reqs...)
	m.processRequests()
	for i := range before {
		if m.reqs[i] != before[i] {
			t.Fatalf("no-op drain moved request %d", i)
		}
	}
}
