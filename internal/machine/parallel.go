package machine

import (
	"fmt"
	"sync"
)

// This file implements the parallel phase scheduler (Config.SimWorkers > 1):
// the idle-skip scheduler with its per-cycle work split into a parallel
// SELECT phase and a serial APPLY phase.
//
// Why this shape is exact. Every readiness test in the machine compares a
// stored timestamp against the strictly-older boundary (`t < m.cycle` /
// `t >= m.cycle`): a value produced in the current cycle never satisfies a
// consumer in the same cycle. Stage selection — which instruction the
// execute-write-back and memory-access stages issue, whether a head can
// retire or address-rename — is therefore a pure function of cycle-start
// state, invariant to the order the cycle's effects are applied in. That
// makes the expensive part of each cycle, the O(queue-length) issue scans
// over every core's issue and load-store queues, embarrassingly parallel:
// workers own a static stride partition of the cores (worker k scans cores
// k, k+W, …), read shared producer cells freely (no cell is written during
// the phase) and write only their own cores' picks and the scanned
// instructions' write-once wake caches (an instruction lives in exactly one
// core's queue, so no cell is contended).
//
// Applying the effects is NOT independent per core, and not only through the
// NoC: besides the modelled messages (section-creation messages into another
// core's FIFO, renaming-request hops and responses), a fork links the created
// section's alias table directly to the creator's producers at rename, the
// section total order is renumbered on insertion, and the oldest section's
// dump commits to the shared DMH. So the apply phase runs serially, in core
// order, executing exactly the statement sequence of the sequential
// scheduler's cycle body — the barrier is every cycle, and "merge" means
// replaying the same deterministic order the sequential scheduler uses.
// Idle-cycle clock jumps parallelize the same way: the per-core half of the
// wake enumeration is strided across the workers while the coordinator
// overlaps the global half (sections and requests — state disjoint from the
// wake caches the workers touch), and clamped minima merge exactly.
//
// The three-way oracle tests (sched_test.go, oracle_test.go) pin the
// bit-identity of dense ≡ idle-skip ≡ parallel down to per-instruction stage
// timestamps, and CI runs them under -race.

// parallelMinWork is the queued-instruction threshold below which a cycle's
// select phase runs inline on the coordinator: waking every worker costs two
// channel operations each, which only pays for itself when the scans are
// long. Selection is shared code either way, so the switch cannot change
// results. A variable (not const) so tests can force the broadcast path on
// small workloads.
var parallelMinWork = 128

// phaseWorkers is the worker pool of one runParallel invocation: one
// goroutine per worker, each owning the stride partition {id, id+n, …} of
// the cores, driven phase-by-phase through per-worker command channels and
// joined on a WaitGroup barrier.
type phaseWorkers struct {
	m     *Machine
	n     int
	cmd   []chan phaseOp
	wakes []int64
	wg    sync.WaitGroup
}

type phaseOp uint8

const (
	opSelect phaseOp = iota + 1 // compute ewSel/maSel for owned cores
	opWake                      // compute the owned cores' wake minimum
)

func newPhaseWorkers(m *Machine, n int) *phaseWorkers {
	p := &phaseWorkers{m: m, n: n, cmd: make([]chan phaseOp, n), wakes: make([]int64, n)}
	for i := range p.cmd {
		p.cmd[i] = make(chan phaseOp, 1)
		go p.worker(i)
	}
	return p
}

// stop terminates the workers. runParallel defers it, so the pool never
// outlives its run.
func (p *phaseWorkers) stop() {
	for _, c := range p.cmd {
		close(c)
	}
}

func (p *phaseWorkers) worker(id int) {
	for op := range p.cmd[id] {
		switch op {
		case opSelect:
			p.m.selectPhase(id, p.n)
		case opWake:
			p.wakes[id] = p.m.nextWakeCores(id, p.n)
		}
		p.wg.Done()
	}
}

// selectAll runs the select phase over every core and waits for the barrier.
func (p *phaseWorkers) selectAll() {
	p.wg.Add(p.n)
	for _, c := range p.cmd {
		c <- opSelect
	}
	p.wg.Wait()
}

// nextWake is the parallel counterpart of Machine.nextWake: the per-core
// halves run on the workers while the coordinator overlaps the global half
// (they touch disjoint state — see nextWakeGlobal), and the clamped minima
// merge to exactly the sequential value.
func (p *phaseWorkers) nextWake() int64 {
	p.wg.Add(p.n)
	for _, c := range p.cmd {
		c <- opWake
	}
	w := p.m.nextWakeGlobal()
	p.wg.Wait()
	for _, pw := range p.wakes {
		if pw < w {
			w = pw
		}
	}
	return w
}

// selectPhase computes the execute-write-back and memory-access issue picks
// for cores from, from+stride, … — the parallel scheduler's per-worker share
// of the select phase, and (with stride 1) its inline small-cycle fallback.
// A live core's picks match what the sequential scheduler's stage scans
// would choose, because selection is a pure function of cycle-start state.
func (m *Machine) selectPhase(from, stride int) {
	for ci := from; ci < len(m.cores); ci += stride {
		c := m.cores[ci]
		c.ewSel, c.maSel = -1, -1
		if c.live == 0 {
			continue
		}
		c.maSel = m.selectMA(c)
		c.ewSel = m.selectEW(c)
	}
}

// queuedWork counts the instructions resident in issue and load-store queues
// — the length of the scans the select phase parallelizes, and so the gate
// for whether waking the workers is worth the synchronization.
func (m *Machine) queuedWork() int {
	n := 0
	for _, c := range m.cores {
		n += len(c.iq) + len(c.lsq)
	}
	return n
}

// runParallel is the phase scheduler: the idle-skip loop with the issue
// scans (and, on idle cycles, the per-core wake enumeration) fanned out over
// SimWorkers goroutines between per-cycle barriers, and every cross-core
// effect applied serially in the sequential scheduler's exact order. See the
// file comment for the exactness argument.
func (m *Machine) runParallel() (*Result, error) {
	workers := m.cfg.SimWorkers
	if workers > len(m.cores) {
		workers = len(m.cores)
	}
	if workers < 2 {
		return m.runIdleSkip()
	}
	pw := newPhaseWorkers(m, workers)
	defer pw.stop()

	acted := true
	for {
		if m.err != nil {
			return nil, m.err
		}
		if m.done() {
			return m.result(), nil
		}
		if acted {
			m.cycle++
		} else {
			var next int64
			if m.queuedWork() >= parallelMinWork {
				next = pw.nextWake()
			} else {
				next = m.nextWake()
			}
			if bound := m.lastMove + m.cfg.StallLimit + 1; next > bound {
				next = bound
			}
			if bound := m.cfg.MaxCycles + 1; next > bound {
				next = bound
			}
			m.cycle = next
		}
		if m.cycle > m.cfg.MaxCycles {
			return nil, fmt.Errorf("machine: exceeded %d cycles", m.cfg.MaxCycles)
		}
		before, hops := m.progress, m.reqHops
		m.quietMove = false
		m.pickHeads()
		// SELECT: the per-core issue scans, in parallel (or inline when the
		// queues are too short to amortize the barrier).
		if m.queuedWork() >= parallelMinWork {
			pw.selectAll()
		} else {
			m.selectPhase(0, 1)
		}
		// APPLY: serial, in core order — the same statement order as
		// runIdleSkip's cycle body, with the stage scans replaced by the
		// precomputed picks.
		for _, c := range m.cores {
			if c.live == 0 {
				continue
			}
			var rp, ap *Section
			if m.retireGen[c.id] == m.pickGen {
				rp = m.retirePick[c.id]
			}
			if m.arGen[c.id] == m.pickGen {
				ap = m.arPick[c.id]
			}
			if rp == nil && ap == nil && !coreActive(c) {
				continue
			}
			if rp != nil {
				m.retireApply(rp, rp.Insts[rp.retired])
			}
			if c.maSel >= 0 {
				m.maApply(c, c.maSel)
			}
			if ap != nil {
				m.arApply(c, ap, ap.arQ.Front())
			}
			if c.ewSel >= 0 {
				m.ewApply(c, c.ewSel)
			}
			m.stageRR(c)
			m.stageFD(c)
		}
		m.processRequests()
		m.dumpOldest()
		acted = m.progress != before || m.reqHops != hops || m.quietMove
		if m.progress != before {
			m.lastMove = m.cycle
		} else if m.cycle-m.lastMove > m.cfg.StallLimit {
			return nil, fmt.Errorf("machine: no progress for %d cycles at cycle %d: %s",
				m.cfg.StallLimit, m.cycle, m.stuckReport())
		}
	}
}
