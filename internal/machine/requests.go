package machine

import (
	"repro/internal/isa"
)

// reqKind discriminates register and memory renaming requests.
type reqKind uint8

// Request kinds: register renaming (RRRU/RERU traffic) and memory renaming
// (ARRU/MERU traffic).
const (
	reqReg reqKind = iota
	reqMem
)

// request is one in-flight renaming request travelling backwards along the
// section order (§4.2). It carries the slot to fill at the requester.
// Requests are pooled per machine (newRequest/releaseRequest): a finished
// request is scrubbed and reused by the next one.
//
// Protocol: the request searches the section immediately preceding `from`
// (initially the requesting section) in the *current* total order. A
// searched section must be fully renamed (register requests) or fully
// address-renamed (memory requests) before it can answer — this is the
// paper's "the renaming request is enqueued in the ARQ to avoid bypassing
// renamings ... not yet done" discipline, and it also guarantees the
// predecessor can no longer fork, so the gap between it and `from` is
// stable. On a miss the request moves on (`from` advances backwards); when
// no live predecessor remains, the committed architectural state (registers)
// or the DMH (memory) answers — the paper's "the request travels back to the
// loader".
type request struct {
	kind     reqKind
	reg      isa.Reg
	addr     uint64
	level    int32 // consumer call level, for the call-level shortcut
	shortcut bool  // rsp-based positive-offset address (§4.2 statement ii)

	reqSec *Section
	sl     *slot

	from        *Section // last searched section (or the requester)
	target      *Section // section the request is travelling to / waiting at
	availableAt int64    // cycle the request is available at its location
	done        bool

	hops int // visited sections, for statistics
}

// addRequest creates a renaming request for instruction d.
func (m *Machine) addRequest(kind reqKind, reg isa.Reg, addr uint64, d *DynInst, sl *slot) {
	r := m.newRequest()
	r.kind = kind
	r.reg = reg
	r.addr = addr
	r.level = d.Level
	r.reqSec = d.Sec
	r.sl = sl
	r.from = d.Sec
	r.availableAt = m.cycle
	if kind == reqMem {
		r.shortcut = rspPositive(d.In)
		m.memReqs++
	} else {
		m.regReqs++
	}
	m.reqs = append(m.reqs, r)
	m.progress++
}

// rspPositive reports whether the instruction's data address is rsp-based
// with a non-negative offset — the paper's condition for the call-level
// shortcut ("stack pointer based variables with a positive offset (e.g.
// 0(rsp)) benefit from a shortcut eliminating instructions belonging to a
// call level deeper than the consumer").
func rspPositive(in *isa.Instruction) bool {
	if in.Op == isa.POP {
		return true
	}
	o, ok := in.MemRead()
	if !ok {
		return false
	}
	return o.Base == isa.RSP && o.Index == isa.NoReg && o.Imm >= 0
}

// searchTarget returns the next section the request must search, or nil when
// the committed state answers (every older live section has been searched or
// skipped). Deeper-level sections are skipped for shortcut requests.
func (m *Machine) searchTarget(r *request) *Section {
	s := m.prevOf(r.from)
	for s != nil && !s.dumped && r.kind == reqMem && r.shortcut && m.cfg.Shortcut && s.BaseLevel > r.level {
		s = m.prevOf(s)
	}
	if s == nil || s.dumped {
		return nil
	}
	return s
}

// processRequests advances every in-flight renaming request by at most one
// protocol step per cycle. Finished requests are compacted out of the list
// in place — surviving requests keep their relative order and are only moved
// when a hole has actually opened before them (the previous drain loop
// rewrote the whole list through append every cycle) — and returned to the
// machine's pool.
func (m *Machine) processRequests() {
	w := 0
	for i, r := range m.reqs {
		m.stepRequest(r)
		if r.done {
			m.releaseRequest(r)
			continue
		}
		if w != i {
			m.reqs[w] = r
		}
		w++
	}
	if w != len(m.reqs) {
		clear(m.reqs[w:])
		m.reqs = m.reqs[:w]
	}
}

func (m *Machine) stepRequest(r *request) {
	if r.done || m.cycle < r.availableAt {
		return
	}
	want := m.searchTarget(r)
	if want == nil {
		m.answerFromCommitted(r)
		return
	}
	if r.target != want {
		// Travel to the (possibly re-evaluated) predecessor's core. The
		// re-evaluation handles sections inserted between the last search
		// point and the requester by later forks.
		r.target = want
		from := r.reqSec.Core
		if r.from != r.reqSec && r.from.Core >= 0 {
			from = r.from.Core
		}
		to := want.Core
		if to < 0 {
			to = from
		}
		r.availableAt = m.cycle + m.cfg.Net.Latency(from, to)
		r.hops++
		m.reqHops++
		return
	}
	// At the target: it must be completely renamed before it can answer,
	// otherwise the request waits (the export instruction is not yet
	// insertable).
	if r.kind == reqReg {
		if !want.fullyRenamed() {
			return
		}
		p := &want.rat[r.reg]
		if !p.valid() {
			r.from = want
			r.target = nil
			m.progress++
			return
		}
		m.deliver(r, p)
		return
	}
	if !want.memRenameDone() {
		return
	}
	p := want.maat.get(r.addr)
	if p == nil {
		r.from = want
		r.target = nil
		m.progress++
		return
	}
	m.deliver(r, p)
}

// deliver sends the producer's value back to the requester once it is
// available (the paper's export instruction waits in the IQ/LSQ for the
// requested value, then reads it and sends it through the RERU/MERU).
func (m *Machine) deliver(r *request, p *producer) {
	at := p.readyAt()
	if at < 0 || at >= m.cycle {
		return // value not produced yet; the export waits
	}
	back := m.cfg.Net.Latency(r.target.Core, r.reqSec.Core)
	r.sl.fill(p.value(), m.cycle+back)
	r.done = true
	m.respMsgs++
	m.progress++
}

// answerFromCommitted serves a request from the committed architectural
// state: the DMH for memory, the architectural register file for registers.
// This is correct because a nil search target means every older section has
// dumped (in order), so the committed state reflects exactly the program
// point before the requester's earliest live predecessor.
func (m *Machine) answerFromCommitted(r *request) {
	var v uint64
	if r.kind == reqReg {
		v = m.arch[r.reg]
	} else {
		v = m.dmh.ReadU64(r.addr)
	}
	// One cycle to reach the DMH/loader, one processing cycle, one cycle
	// back: the value is usable three cycles after the request left
	// (Fig. 10's "counting 3 cycles to reach the producer and return").
	r.sl.fill(v, m.cycle+2)
	r.done = true
	m.respMsgs++
	m.dmhAnswers++
	m.progress++
}
