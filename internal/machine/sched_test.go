package machine

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/noc"
	"repro/internal/progs"
)

// runSched runs prog under one scheduler and returns the result.
func runSched(t *testing.T, prog *isa.Program, cfg Config, dense bool) *Result {
	t.Helper()
	cfg.Dense = dense
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatalf("dense=%v: %v", dense, err)
	}
	return r
}

// runPar runs prog under the parallel phase scheduler with the given worker
// count and returns the result.
func runPar(t *testing.T, prog *isa.Program, cfg Config, workers int) *Result {
	t.Helper()
	cfg.Dense = false
	cfg.SimWorkers = workers
	m, err := New(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return r
}

// checkIdentical asserts two results are bit-identical: every headline
// metric, every message counter, every per-instruction stage timestamp and
// every section record.
func checkIdentical(t *testing.T, label string, dense, skip *Result) {
	t.Helper()
	if dense.Cycles != skip.Cycles || dense.Instructions != skip.Instructions ||
		dense.RAX != skip.RAX || dense.FetchDone != skip.FetchDone ||
		dense.RetireDone != skip.RetireDone {
		t.Errorf("%s: headline metrics differ:\n dense: %s\n skip:  %s",
			label, dense.Summary(), skip.Summary())
	}
	if dense.RegRequests != skip.RegRequests || dense.MemRequests != skip.MemRequests ||
		dense.CreateMessages != skip.CreateMessages || dense.RequestHops != skip.RequestHops ||
		dense.ResponseMessages != skip.ResponseMessages || dense.DMHAnswers != skip.DMHAnswers ||
		dense.NocMessages() != skip.NocMessages() {
		t.Errorf("%s: NoC accounting differs: dense {create %d hops %d resp %d dmh %d}, skip {create %d hops %d resp %d dmh %d}",
			label, dense.CreateMessages, dense.RequestHops, dense.ResponseMessages, dense.DMHAnswers,
			skip.CreateMessages, skip.RequestHops, skip.ResponseMessages, skip.DMHAnswers)
	}
	if dense.Regs != skip.Regs {
		t.Errorf("%s: final register files differ", label)
	}
	if !reflect.DeepEqual(dense.Sections, skip.Sections) {
		t.Errorf("%s: section records differ", label)
	}
	if !reflect.DeepEqual(dense.Timings, skip.Timings) {
		if len(dense.Timings) != len(skip.Timings) {
			t.Fatalf("%s: %d vs %d timing rows", label, len(dense.Timings), len(skip.Timings))
		}
		for i := range dense.Timings {
			if dense.Timings[i] != skip.Timings[i] {
				t.Errorf("%s: timing row %d differs: dense %+v, skip %+v",
					label, i, dense.Timings[i], skip.Timings[i])
				break
			}
		}
	}
}

// TestIdleSkipMatchesDense: the idle-skip scheduler is an optimisation, not a
// model change — on the paper's workloads it must reproduce the dense loop's
// result exactly, down to each instruction's six stage timestamps, across
// core counts, topologies, the shortcut ablation and the packing cap. The
// same three-way oracle covers the parallel phase scheduler (SimWorkers > 1):
// dense ≡ idle-skip ≡ parallel. The ten-kernel PBBS leg of the oracle lives
// in oracle_test.go (external package, to avoid the pbbs import cycle).
func TestIdleSkipMatchesDense(t *testing.T) {
	build := func(f func() (*isa.Program, error)) *isa.Program {
		p, err := f()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	workloads := map[string]*isa.Program{
		"sum40":  build(func() (*isa.Program, error) { return progs.BuildSumFork(progs.Vector(40)) }),
		"fib9":   build(func() (*isa.Program, error) { return progs.BuildFibFork(9) }),
		"vmax16": build(func() (*isa.Program, error) { return progs.BuildMaxFork(progs.Vector(16)) }),
	}
	for name, p := range workloads {
		for _, cores := range []int{1, 2, 5, 8, 64} {
			cfg := DefaultConfig(cores)
			dense := runSched(t, p, cfg, true)
			skip := runSched(t, p, cfg, false)
			checkIdentical(t, name+"/default", dense, skip)
			par := runPar(t, p, cfg, 4)
			checkIdentical(t, name+"/default/parallel", dense, par)
		}
	}
	p := workloads["sum40"]
	variants := []Config{
		{Cores: 8, Net: noc.NewRing(8, 1), CreateLatency: 2, Shortcut: true},
		{Cores: 8, Net: noc.NewMesh(4, 2, 1), CreateLatency: 2, Shortcut: true},
		{Cores: 8, Net: noc.NewCrossbar(8, 5), CreateLatency: 7, Shortcut: true},
		{Cores: 8, CreateLatency: 2, Shortcut: false},
		{Cores: 8, CreateLatency: 2, Shortcut: true, MaxSectionsPerCore: 2},
		{Cores: 3, CreateLatency: 2, Shortcut: true, MaxSectionsPerCore: 1},
	}
	for i, cfg := range variants {
		dense := runSched(t, p, cfg, true)
		skip := runSched(t, p, cfg, false)
		checkIdentical(t, fmt.Sprintf("variant %d (%+v)", i, cfg), dense, skip)
		par := runPar(t, p, cfg, 4)
		checkIdentical(t, fmt.Sprintf("variant %d (%+v) parallel", i, cfg), dense, par)
	}
}

// TestParallelForcedBroadcast re-runs the three-way comparison with the
// inline-select fallback disabled, so every cycle's select phase (and every
// idle jump's wake enumeration) actually crosses the worker goroutines even
// on these small workloads — the configuration the race detector must see.
// Without this, a workload whose queues never reach parallelMinWork would
// pass the oracle while exercising only the single-threaded fallback.
func TestParallelForcedBroadcast(t *testing.T) {
	old := parallelMinWork
	parallelMinWork = 0
	defer func() { parallelMinWork = old }()
	for _, build := range []func() (*isa.Program, error){
		func() (*isa.Program, error) { return progs.BuildSumFork(progs.Vector(40)) },
		func() (*isa.Program, error) { return progs.BuildFibFork(9) },
	} {
		p, err := build()
		if err != nil {
			t.Fatal(err)
		}
		for _, cores := range []int{2, 8, 64} {
			cfg := DefaultConfig(cores)
			dense := runSched(t, p, cfg, true)
			for _, workers := range []int{2, 4, 7} {
				par := runPar(t, p, cfg, workers)
				checkIdentical(t, fmt.Sprintf("cores=%d workers=%d", cores, workers), dense, par)
			}
		}
	}
}

// TestStallResumeLatency pins the stalled-branch resume boundary: a control
// instruction that cannot be computed at fetch blocks the section until the
// execute-write-back stage resolves it at some cycle t; fetch must resume at
// exactly t+1 (not t, not t+2) under both schedulers. The program forces the
// stall by branching on flags produced from a loaded (hence fetch-empty)
// register.
func TestStallResumeLatency(t *testing.T) {
	p, err := asm.Assemble(`
_start: movq $t, %rdi
        movq (%rdi), %rax
        cmpq $0, %rax
        je .skip
        movq $1, %rbx
.skip:  hlt
.data
t: .quad 5
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, dense := range []bool{true, false} {
		r := runSched(t, p, DefaultConfig(1), dense)
		var branch, next *InstTiming
		for i := range r.Timings {
			ti := &r.Timings[i]
			if strings.HasPrefix(ti.Text(), "je") {
				branch = ti
				if i+1 < len(r.Timings) {
					next = &r.Timings[i+1]
				}
			}
		}
		if branch == nil || next == nil {
			t.Fatalf("dense=%v: branch or successor not found in timings", dense)
		}
		if branch.FD >= branch.EW {
			t.Fatalf("dense=%v: branch did not stall (fd=%d ew=%d)", dense, branch.FD, branch.EW)
		}
		if got, want := next.FD, branch.EW+1; got != want {
			t.Errorf("dense=%v: fetch resumed at cycle %d, want %d (branch resolved at %d, resume latency must be exactly one cycle)",
				dense, got, want, branch.EW)
		}
	}
}

// TestIdleSkipStallDetection: the clock-jumping scheduler must still trip the
// progress detector on a deadlocked/looping program, at the same cycle and
// with the same error as the dense loop.
func TestIdleSkipStallDetection(t *testing.T) {
	p, err := asm.Assemble(`
_start: jmp _start
`)
	if err != nil {
		t.Fatal(err)
	}
	errFor := func(dense bool, workers int) string {
		cfg := DefaultConfig(2)
		cfg.MaxCycles = 5000
		cfg.Dense = dense
		cfg.SimWorkers = workers
		m, err := New(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, rerr := m.Run()
		if rerr == nil {
			t.Fatalf("dense=%v workers=%d: infinite loop did not abort", dense, workers)
		}
		return rerr.Error()
	}
	d := errFor(true, 0)
	if s := errFor(false, 0); d != s {
		t.Errorf("abort errors differ:\n dense: %s\n skip:  %s", d, s)
	}
	if p := errFor(false, 2); d != p {
		t.Errorf("abort errors differ:\n dense:    %s\n parallel: %s", d, p)
	}
}

// TestIdleSkipSkipsCycles is the point of the tentpole: on a many-core run
// with long NoC latencies most cycles are dead time, and the scheduler's
// wake computation must be able to jump them. We can't observe the jumps
// directly from Result (the metrics are identical by design), so assert the
// enabling property instead: nextWake on a fresh machine reports the first
// creation-message consumption cycle rather than cycle+1.
func TestIdleSkipSkipsCycles(t *testing.T) {
	p, err := progs.BuildSumFork(progs.Vector(10))
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	// The initial section's creation message is queued with deliverAt 0 and
	// is consumable once deliverAt < cycle, i.e. from cycle 1 on.
	if got := m.nextWake(); got != 1 {
		t.Errorf("fresh machine nextWake = %d, want 1", got)
	}
}
