package machine

import (
	"strings"
	"testing"
)

// TestPoolHitMissDrop pins the pool mechanics: a first Get constructs, a Put
// then Get under the same key returns the very same machine, and a full pool
// drops further Puts.
func TestPoolHitMissDrop(t *testing.T) {
	prog := mustSumFork(t, 40)
	cfg := DefaultConfig(4)
	p := &Pool{MaxIdle: 1}

	m1, err := p.Get("k", prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := p.Get("k", prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Fatal("two live Gets returned the same machine")
	}
	p.Put("k", m1)
	p.Put("k", m2) // over MaxIdle: dropped
	m3, err := p.Get("k", prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m3 != m1 {
		t.Fatal("Get did not return the pooled machine")
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Dropped != 1 {
		t.Fatalf("stats %+v, want 1 hit, 2 misses, 1 dropped", s)
	}
}

// TestPoolReArmsSchedulers: one pooled machine serves requests with different
// Dense/SimWorkers settings (those are not part of the machine's shape), and
// each pooled run reproduces the fresh machine's result bit-identically.
func TestPoolReArmsSchedulers(t *testing.T) {
	prog := mustSumFork(t, 40)
	base := DefaultConfig(5)
	fresh, err := New(prog, base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}

	dense, par := base, base
	dense.Dense = true
	par.SimWorkers = 3
	p := NewPool()
	for _, cfg := range []Config{base, dense, par} {
		m, err := p.Get("sum40", prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.cfg.Dense != cfg.Dense || m.cfg.SimWorkers != cfg.SimWorkers {
			t.Fatalf("pooled machine not re-armed: have dense=%v workers=%d, want dense=%v workers=%d",
				m.cfg.Dense, m.cfg.SimWorkers, cfg.Dense, cfg.SimWorkers)
		}
		got, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		checkIdentical(t, "pooled run", want, got)
		p.Put("sum40", m)
	}
	if s := p.Stats(); s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats %+v, want 2 hits, 1 miss", s)
	}
}

// TestPoolKeyCollision: a key that maps to machines of different shapes is a
// key-derivation bug; Get must fail descriptively, not hand back the wrong
// machine.
func TestPoolKeyCollision(t *testing.T) {
	prog := mustSumFork(t, 40)
	p := NewPool()
	m, err := p.Get("k", prog, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	p.Put("k", m)
	_, err = p.Get("k", prog, DefaultConfig(8))
	if err == nil {
		t.Fatal("shape-mismatched Get succeeded")
	}
	if !strings.Contains(err.Error(), "collision") || !strings.Contains(err.Error(), "cores") {
		t.Fatalf("collision error %q does not name the mismatch", err)
	}
}
