package machine

import (
	"fmt"

	"repro/internal/isa"
)

// wrSlot returns the index of d's result cell for register r, claiming a
// free cell on first use. An instruction writes at most maxWr registers
// (guaranteed by isa.Instruction.RegWrites); the array bound traps any
// violation.
func (d *DynInst) wrSlot(r isa.Reg) int {
	for i := 0; i < int(d.nwr); i++ {
		if d.wrRegs[i] == r {
			return i
		}
	}
	i := int(d.nwr)
	d.wrRegs[i] = r
	d.nwr++
	return i
}

// regWritten reports whether d has already produced a result for r.
func (d *DynInst) regWritten(r isa.Reg) bool {
	for i := 0; i < int(d.nwr); i++ {
		if d.wrRegs[i] == r {
			return d.wrAt[i] != 0
		}
	}
	return false
}

// setReg records one register result of d becoming available at cycle cyc.
func (d *DynInst) setReg(r isa.Reg, v uint64, cyc int64) {
	i := d.wrSlot(r)
	if d.wrAt[i] != 0 {
		// Keep the earliest availability (e.g. pop's rsp update computed at
		// fetch must not be delayed by the load half).
		d.wrVal[i] = v
		return
	}
	d.wrVal[i] = v
	d.wrAt[i] = cyc
}

// srcValue returns the resolved value of register r among d's sources.
func (d *DynInst) srcValue(r isa.Reg) uint64 {
	for i := range d.srcs[:d.nsrcs] {
		if d.srcs[i].reg == r {
			return d.srcs[i].prod.value()
		}
	}
	return 0
}

// regWrites collects the register results of one instruction evaluation: at
// most two writes (a destination plus Flags, or rax plus rdx for divides).
// A fixed-size out-parameter, not a map — the previous map allocation per
// evaluated instruction was one of the simulator's top allocation sites.
type regWrites struct {
	n   int
	reg [2]isa.Reg
	val [2]uint64
}

func (w *regWrites) set(r isa.Reg, v uint64) {
	w.reg[w.n] = r
	w.val[w.n] = v
	w.n++
}

// evalRegCompute computes the register results of a non-memory instruction
// given a register reader, appending them to out. Used both by the fetch
// stage's in-order partial execution and by the execute-write-back stage.
// Controls and memory ops produce no writes here.
func evalRegCompute(in *isa.Instruction, rd func(isa.Reg) uint64, out *regWrites) error {
	src := func() uint64 {
		switch in.Src.Kind {
		case isa.KindReg:
			return rd(in.Src.Reg)
		case isa.KindImm:
			return uint64(in.Src.Imm)
		}
		return 0
	}
	switch in.Op {
	case isa.NOP, isa.JMP, isa.Jcc, isa.FORK, isa.ENDFORK, isa.HLT:
		return nil
	case isa.MOV:
		out.set(in.Dst.Reg, src())
	case isa.LEA:
		a := uint64(in.Src.Imm)
		if in.Src.Base != isa.NoReg {
			a += rd(in.Src.Base)
		}
		if in.Src.Index != isa.NoReg {
			a += rd(in.Src.Index) * uint64(in.Src.Scale)
		}
		out.set(in.Dst.Reg, a)
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.IMUL, isa.SHL, isa.SHR, isa.SAR:
		a := rd(in.Dst.Reg)
		b := src()
		var r uint64
		var fl isa.FlagsVal
		setFlags := true
		switch in.Op {
		case isa.ADD:
			r = a + b
			fl = isa.FlagsAdd(a, b, r)
		case isa.SUB:
			r = a - b
			fl = isa.FlagsSub(a, b, r)
		case isa.AND:
			r = a & b
			fl = isa.FlagsLogic(r)
		case isa.OR:
			r = a | b
			fl = isa.FlagsLogic(r)
		case isa.XOR:
			r = a ^ b
			fl = isa.FlagsLogic(r)
		case isa.IMUL:
			r = uint64(int64(a) * int64(b))
			setFlags = false
		case isa.SHL:
			r = a << (b & 63)
			fl = isa.FlagsLogic(r)
		case isa.SHR:
			r = a >> (b & 63)
			fl = isa.FlagsLogic(r)
		case isa.SAR:
			r = uint64(int64(a) >> (b & 63))
			fl = isa.FlagsLogic(r)
		}
		out.set(in.Dst.Reg, r)
		if setFlags {
			out.set(isa.Flags, uint64(fl))
		}
	case isa.NEG:
		v := rd(in.Dst.Reg)
		r := -v
		out.set(in.Dst.Reg, r)
		out.set(isa.Flags, uint64(isa.FlagsSub(0, v, r)))
	case isa.NOT:
		out.set(in.Dst.Reg, ^rd(in.Dst.Reg))
	case isa.INC:
		v := rd(in.Dst.Reg)
		out.set(in.Dst.Reg, v+1)
		out.set(isa.Flags, uint64(isa.FlagsAdd(v, 1, v+1)))
	case isa.DEC:
		v := rd(in.Dst.Reg)
		out.set(in.Dst.Reg, v-1)
		out.set(isa.Flags, uint64(isa.FlagsSub(v, 1, v-1)))
	case isa.CQTO:
		out.set(isa.RDX, uint64(int64(rd(isa.RAX))>>63))
	case isa.CMP:
		a := rd(in.Dst.Reg)
		b := src()
		out.set(isa.Flags, uint64(isa.FlagsSub(a, b, a-b)))
	case isa.TEST:
		out.set(isa.Flags, uint64(isa.FlagsLogic(rd(in.Dst.Reg)&src())))
	case isa.SETcc:
		v := uint64(0)
		if in.Cond.Eval(isa.FlagsVal(rd(isa.Flags))) {
			v = 1
		}
		out.set(in.Dst.Reg, v)
	case isa.DIV:
		d := rd(in.Dst.Reg)
		if d == 0 {
			return fmt.Errorf("division by zero")
		}
		if rd(isa.RDX) != 0 {
			return fmt.Errorf("divq with non-zero rdx")
		}
		out.set(isa.RAX, rd(isa.RAX)/d)
		out.set(isa.RDX, rd(isa.RAX)%d)
	case isa.IDIV:
		d := int64(rd(in.Dst.Reg))
		if d == 0 {
			return fmt.Errorf("division by zero")
		}
		num := int64(rd(isa.RAX))
		if int64(rd(isa.RDX)) != num>>63 {
			return fmt.Errorf("idivq with rdx not the sign extension of rax")
		}
		out.set(isa.RAX, uint64(num/d))
		out.set(isa.RDX, uint64(num%d))
	default:
		return fmt.Errorf("unexpected opcode %s in register compute", in.Op)
	}
	return nil
}

// effectiveAddr computes the data address of a memory instruction from its
// resolved register sources. For push the address is rsp-8 (post-decrement);
// for pop it is the incoming rsp.
func (d *DynInst) effectiveAddr() uint64 {
	in := d.In
	switch in.Op {
	case isa.PUSH:
		return d.srcValue(isa.RSP) - 8
	case isa.POP:
		return d.srcValue(isa.RSP)
	}
	var o isa.Operand
	if mo, ok := in.MemRead(); ok {
		o = mo
	} else if mo, ok := in.MemWrite(); ok {
		o = mo
	}
	a := uint64(o.Imm)
	if o.Base != isa.NoReg {
		a += d.srcValue(o.Base)
	}
	if o.Index != isa.NoReg {
		a += d.srcValue(o.Index) * uint64(o.Scale)
	}
	return a
}

// evalMemAccess computes the memory-access-stage results of a load/store d:
// the register results for loads and/or the stored value for stores.
// memVal is the loaded value (producers already checked ready by the caller);
// it is ignored by pure stores.
func (d *DynInst) evalMemAccess(memVal uint64, cyc int64) error {
	in := d.In
	rd := d.srcValue
	switch in.Op {
	case isa.MOV:
		if in.Src.Kind == isa.KindMem {
			d.setReg(in.Dst.Reg, memVal, cyc)
		} else {
			// Store: data from reg or imm.
			if in.Src.Kind == isa.KindReg {
				d.storeVal = rd(in.Src.Reg)
			} else {
				d.storeVal = uint64(in.Src.Imm)
			}
		}
	case isa.PUSH:
		if in.Src.Kind == isa.KindReg {
			d.storeVal = rd(in.Src.Reg)
		} else {
			d.storeVal = uint64(in.Src.Imm)
		}
	case isa.POP:
		d.setReg(in.Dst.Reg, memVal, cyc)
	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.IMUL:
		if in.Src.Kind == isa.KindMem {
			// Load form: dst = dst OP [mem].
			a := rd(in.Dst.Reg)
			var r uint64
			var fl isa.FlagsVal
			setFlags := true
			switch in.Op {
			case isa.ADD:
				r = a + memVal
				fl = isa.FlagsAdd(a, memVal, r)
			case isa.SUB:
				r = a - memVal
				fl = isa.FlagsSub(a, memVal, r)
			case isa.AND:
				r = a & memVal
				fl = isa.FlagsLogic(r)
			case isa.OR:
				r = a | memVal
				fl = isa.FlagsLogic(r)
			case isa.XOR:
				r = a ^ memVal
				fl = isa.FlagsLogic(r)
			case isa.IMUL:
				r = uint64(int64(a) * int64(memVal))
				setFlags = false
			}
			d.setReg(in.Dst.Reg, r, cyc)
			if setFlags {
				d.setReg(isa.Flags, uint64(fl), cyc)
			}
		} else {
			// Read-modify-write memory destination.
			var b uint64
			if in.Src.Kind == isa.KindReg {
				b = rd(in.Src.Reg)
			} else {
				b = uint64(in.Src.Imm)
			}
			a := memVal
			var r uint64
			var fl isa.FlagsVal
			setFlags := true
			switch in.Op {
			case isa.ADD:
				r = a + b
				fl = isa.FlagsAdd(a, b, r)
			case isa.SUB:
				r = a - b
				fl = isa.FlagsSub(a, b, r)
			case isa.AND:
				r = a & b
				fl = isa.FlagsLogic(r)
			case isa.OR:
				r = a | b
				fl = isa.FlagsLogic(r)
			case isa.XOR:
				r = a ^ b
				fl = isa.FlagsLogic(r)
			case isa.IMUL:
				r = uint64(int64(a) * int64(b))
				setFlags = false
			}
			d.storeVal = r
			if setFlags {
				d.setReg(isa.Flags, uint64(fl), cyc)
			}
		}
	case isa.CMP:
		// cmpq with a memory operand: flags only.
		var a, b uint64
		if in.Src.Kind == isa.KindMem {
			a, b = rd(in.Dst.Reg), memVal
		} else {
			a = memVal
			if in.Src.Kind == isa.KindReg {
				b = rd(in.Src.Reg)
			} else {
				b = uint64(in.Src.Imm)
			}
		}
		d.setReg(isa.Flags, uint64(isa.FlagsSub(a, b, a-b)), cyc)
	case isa.TEST:
		var a, b uint64
		if in.Src.Kind == isa.KindMem {
			a, b = rd(in.Dst.Reg), memVal
		} else {
			a = memVal
			if in.Src.Kind == isa.KindReg {
				b = rd(in.Src.Reg)
			} else {
				b = uint64(in.Src.Imm)
			}
		}
		d.setReg(isa.Flags, uint64(isa.FlagsLogic(a&b)), cyc)
	default:
		return fmt.Errorf("machine: unsupported memory op %s", in)
	}
	return nil
}

// dedupRegs removes duplicates in place, preserving order.
func dedupRegs(rs []isa.Reg) []isa.Reg {
	out := rs[:0]
	var seen isa.RegMask
	for _, r := range rs {
		if r < isa.NumRegs && !seen.Has(r) {
			seen.Add(r)
			out = append(out, r)
		}
	}
	return out
}
