package machine

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/progs"
)

func mustSumFork(t *testing.T, n int) *isa.Program {
	t.Helper()
	p, err := progs.BuildSumFork(progs.Vector(n))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFifoSlideAndOrder(t *testing.T) {
	var f fifo[int]
	for i := 0; i < 100; i++ {
		f.Push(i)
	}
	for i := 0; i < 100; i++ {
		if f.Len() != 100-i {
			t.Fatalf("len %d, want %d", f.Len(), 100-i)
		}
		if got := f.Pop(); got != i {
			t.Fatalf("pop %d, want %d", got, i)
		}
	}
	if !f.Empty() {
		t.Fatal("queue not empty after draining")
	}
	// Interleaved push/pop must keep FIFO order across the slide compaction.
	next, expect := 0, 0
	for round := 0; round < 500; round++ {
		f.Push(next)
		next++
		f.Push(next)
		next++
		if got := f.Pop(); got != expect {
			t.Fatalf("round %d: pop %d, want %d", round, got, expect)
		}
		expect++
	}
	for !f.Empty() {
		if got := f.Pop(); got != expect {
			t.Fatalf("drain: pop %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained to %d, pushed %d", expect, next)
	}
}

func TestFifoRemoveKeepsOrder(t *testing.T) {
	var f fifo[int]
	for i := 0; i < 6; i++ {
		f.Push(i)
	}
	f.Pop()     // head offset non-zero
	f.Remove(2) // removes live element index 2 == value 3
	want := []int{1, 2, 4, 5}
	if f.Len() != len(want) {
		t.Fatalf("len %d, want %d", f.Len(), len(want))
	}
	for i, w := range want {
		if got := f.At(i); got != w {
			t.Errorf("At(%d) = %d, want %d", i, got, w)
		}
	}
}

// TestMaatTable drives the open-addressed MAAT directly: insert, overwrite,
// growth-with-rehash and the recycled-backing path. Keys are multiples of 8
// (word addresses), the worst case for a low-bit hash — the table must stay
// correct and loadable anyway.
func TestMaatTable(t *testing.T) {
	m := &Machine{}
	var tbl maat
	cell := make([]int64, 600)
	vals := make([]uint64, 600)
	prod := func(i int) producer { return producer{t: &cell[i], v: &vals[i]} }

	const n = 512 // several growth rounds past maatMinSize
	for i := 0; i < n; i++ {
		m.maatPut(&tbl, uint64(i*8), prod(i))
	}
	if tbl.n != n {
		t.Fatalf("table count %d, want %d", tbl.n, n)
	}
	for i := 0; i < n; i++ {
		p := tbl.get(uint64(i * 8))
		if p == nil || p.t != &cell[i] {
			t.Fatalf("key %d: wrong or missing producer", i*8)
		}
	}
	if tbl.get(uint64(n*8)) != nil {
		t.Fatal("get of absent key returned a producer")
	}
	// Overwrite must replace, not duplicate.
	m.maatPut(&tbl, 0, prod(599))
	if tbl.n != n {
		t.Fatalf("overwrite changed count to %d", tbl.n)
	}
	if p := tbl.get(0); p == nil || p.t != &cell[599] {
		t.Fatal("overwrite did not take")
	}

	// Release, then equip a new table: it must reuse the recycled backing
	// (free list LIFO — growth already pooled each superseded array) and
	// come back empty.
	released := tbl.entries
	pooled := len(m.maatFree)
	m.releaseMaat(&tbl)
	if tbl.entries != nil || len(m.maatFree) != pooled+1 {
		t.Fatal("release did not pool the backing array")
	}
	var tbl2 maat
	m.acquireMaat(&tbl2)
	if len(m.maatFree) != pooled || &tbl2.entries[0] != &released[0] {
		t.Fatal("acquire did not reuse the recycled backing")
	}
	if tbl2.get(0) != nil || tbl2.n != 0 {
		t.Fatal("recycled table not empty")
	}
	m.maatPut(&tbl2, 40, prod(7))
	if p := tbl2.get(40); p == nil || p.t != &cell[7] {
		t.Fatal("recycled table lost an insert")
	}
}

// TestArenaChunkBoundaries drives an arena across several chunk boundaries —
// the regime paper-scale (big-N) runs live in, where one simulation allocates
// thousands of DynInsts — and checks that every handed-out object is distinct,
// zeroed, and survives a reset/refill cycle without aliasing.
func TestArenaChunkBoundaries(t *testing.T) {
	const chunk = 4
	a := newArena[int64](chunk)
	const n = chunk*3 + 2 // three full chunks and a partial fourth
	seen := make(map[*int64]bool, n)
	for i := 0; i < n; i++ {
		p := a.alloc()
		if *p != 0 {
			t.Fatalf("alloc %d: not zeroed (%d)", i, *p)
		}
		if seen[p] {
			t.Fatalf("alloc %d: pointer handed out twice", i)
		}
		seen[p] = true
		*p = int64(i + 1)
	}
	if len(a.chunks) != 4 {
		t.Fatalf("chunks %d, want 4", len(a.chunks))
	}
	a.reset()
	// The refill must reuse the same chunk storage, scrubbed.
	for i := 0; i < n; i++ {
		p := a.alloc()
		if *p != 0 {
			t.Fatalf("post-reset alloc %d: stale value %d", i, *p)
		}
		if !seen[p] {
			t.Fatalf("post-reset alloc %d: fresh chunk instead of reuse", i)
		}
	}
	if len(a.chunks) != 4 {
		t.Fatalf("refill grew the arena to %d chunks", len(a.chunks))
	}
}

// TestMaatBigN scales the alias table to thousands of keys — the footprint a
// paper-scale section can accumulate — across several growth/rehash rounds,
// then checks the recycle path hands the big backing to the next table.
func TestMaatBigN(t *testing.T) {
	m := &Machine{}
	var tbl maat
	const n = 5000
	cell := make([]int64, n)
	for i := 0; i < n; i++ {
		m.maatPut(&tbl, uint64(i*8), producer{t: &cell[i]})
	}
	if tbl.n != n {
		t.Fatalf("table count %d, want %d", tbl.n, n)
	}
	for i := 0; i < n; i++ {
		p := tbl.get(uint64(i * 8))
		if p == nil || p.t != &cell[i] {
			t.Fatalf("key %d: wrong or missing producer after growth", i*8)
		}
	}
	if got := len(tbl.entries); got < n*4/3 {
		t.Fatalf("load factor bound violated: %d entries for %d keys", got, n)
	}
	m.releaseMaat(&tbl)
	var tbl2 maat
	m.acquireMaat(&tbl2)
	if len(tbl2.entries) < n {
		t.Fatalf("recycled backing has %d entries, want the big array back", len(tbl2.entries))
	}
	for i := range tbl2.entries {
		if tbl2.entries[i].p.valid() {
			t.Fatalf("recycled entry %d not scrubbed", i)
		}
	}
}

// TestResetReproduces pins Machine.Reset's contract: a warmed machine re-runs
// the same program to a bit-identical Result, under both schedulers.
func TestResetReproduces(t *testing.T) {
	for _, dense := range []bool{false, true} {
		p := mustSumFork(t, 40)
		cfg := DefaultConfig(5)
		cfg.Dense = dense
		m, err := New(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		first, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ {
			m.Reset()
			again, err := m.Run()
			if err != nil {
				t.Fatalf("dense=%v round %d: %v", dense, round, err)
			}
			checkIdentical(t, "reset re-run", first, again)
		}
	}
}

// TestResetAfterError: Reset must also recover a machine whose run aborted
// (sections not dumped, requests possibly in flight) back to a clean,
// runnable state.
func TestResetAfterError(t *testing.T) {
	p := mustSumFork(t, 40)
	cfg := DefaultConfig(2)
	cfg.MaxCycles = 10 // abort mid-run
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("truncated run unexpectedly succeeded")
	}
	m.Reset()
	m.cfg.MaxCycles = 100 << 20
	got, err := m.Run()
	if err != nil {
		t.Fatalf("run after error+Reset: %v", err)
	}
	fresh, err := New(p, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}
	checkIdentical(t, "reset after error", want, got)
}
