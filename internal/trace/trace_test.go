package trace

import (
	"testing"

	"repro/internal/isa"
)

// synthetic returns a small hand-built trace exercising every record field.
func synthetic() *Trace {
	t := &Trace{}
	t.Append(Record{IP: 0, Op: isa.MOV, RegWrites: []isa.Reg{isa.RAX}})
	t.Append(Record{IP: 1, Op: isa.MOV, RegReads: []isa.Reg{isa.RAX},
		MemWrites: []MemRef{{Addr: 0x10000}}})
	t.Append(Record{IP: 2, Op: isa.ADD,
		RegReads:  []isa.Reg{isa.RAX, isa.RBX},
		RegWrites: []isa.Reg{isa.RAX, isa.Flags},
		MemReads:  []MemRef{{Addr: 0x10008}}})
	t.Append(Record{IP: 3, Op: isa.Jcc, RegReads: []isa.Reg{isa.Flags}, Taken: true})
	t.Append(Record{IP: 4, Op: isa.Jcc, RegReads: []isa.Reg{isa.Flags}})
	t.Append(Record{IP: 5, Op: isa.CALL, CallLevel: 0,
		MemWrites: []MemRef{{Addr: 0x7ffeff00}}})
	t.Append(Record{IP: 9, Op: isa.RET, CallLevel: 1,
		MemReads: []MemRef{{Addr: 0x7ffeff00}}})
	t.Append(Record{IP: 6, Op: isa.FORK, CallLevel: 0})
	t.Append(Record{IP: 7, Op: isa.ENDFORK, CallLevel: 1})
	t.Append(Record{IP: 8, Op: isa.HLT})
	return t
}

func TestAppendAssignsSeq(t *testing.T) {
	tr := synthetic()
	for i, r := range tr.Records {
		if r.Seq != int64(i) {
			t.Errorf("record %d has Seq %d", i, r.Seq)
		}
	}
	if tr.Len() != 10 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := synthetic()
	buf := tr.Encode()
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("decoded %d records, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Records {
		a, b := &tr.Records[i], &got.Records[i]
		if a.Seq != b.Seq || a.IP != b.IP || a.Op != b.Op || a.Taken != b.Taken || a.CallLevel != b.CallLevel {
			t.Errorf("record %d header differs: %+v vs %+v", i, a, b)
		}
		if len(a.RegReads) != len(b.RegReads) || len(a.RegWrites) != len(b.RegWrites) ||
			len(a.MemReads) != len(b.MemReads) || len(a.MemWrites) != len(b.MemWrites) {
			t.Fatalf("record %d set sizes differ: %+v vs %+v", i, a, b)
		}
		for j := range a.RegReads {
			if a.RegReads[j] != b.RegReads[j] {
				t.Errorf("record %d RegReads[%d] differs", i, j)
			}
		}
		for j := range a.RegWrites {
			if a.RegWrites[j] != b.RegWrites[j] {
				t.Errorf("record %d RegWrites[%d] differs", i, j)
			}
		}
		for j := range a.MemReads {
			if a.MemReads[j] != b.MemReads[j] {
				t.Errorf("record %d MemReads[%d] differs", i, j)
			}
		}
		for j := range a.MemWrites {
			if a.MemWrites[j] != b.MemWrites[j] {
				t.Errorf("record %d MemWrites[%d] differs", i, j)
			}
		}
	}
	// Re-encoding the decoded trace is byte-identical.
	buf2 := got.Encode()
	if string(buf) != string(buf2) {
		t.Error("re-encoded trace differs from original encoding")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty buffer accepted")
	}
	buf := synthetic().Encode()
	for _, cut := range []int{5, 12, 20, len(buf) - 1} {
		if _, err := Decode(buf[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestComputeStats(t *testing.T) {
	s := synthetic().ComputeStats()
	if s.Instructions != 10 {
		t.Errorf("Instructions = %d", s.Instructions)
	}
	if s.Loads != 2 {
		t.Errorf("Loads = %d", s.Loads)
	}
	if s.Stores != 2 {
		t.Errorf("Stores = %d", s.Stores)
	}
	if s.Branches != 2 {
		t.Errorf("Branches = %d", s.Branches)
	}
	if s.Taken != 1 {
		t.Errorf("Taken = %d", s.Taken)
	}
	if s.Calls != 1 || s.Returns != 1 || s.Forks != 1 {
		t.Errorf("Calls/Returns/Forks = %d/%d/%d", s.Calls, s.Returns, s.Forks)
	}
	if s.MaxCallLevel != 1 {
		t.Errorf("MaxCallLevel = %d", s.MaxCallLevel)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestIsControl(t *testing.T) {
	control := []isa.Op{isa.JMP, isa.Jcc, isa.CALL, isa.RET, isa.FORK, isa.ENDFORK, isa.HLT}
	for _, op := range control {
		r := Record{Op: op}
		if !r.IsControl() {
			t.Errorf("%v not classified as control", op)
		}
	}
	for _, op := range []isa.Op{isa.MOV, isa.ADD, isa.PUSH, isa.NOP} {
		r := Record{Op: op}
		if r.IsControl() {
			t.Errorf("%v classified as control", op)
		}
	}
}
