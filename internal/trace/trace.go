// Package trace defines the dynamic instruction trace format produced by the
// functional emulator and consumed by the ILP analyses — the substrate of
// the paper's Section 3 trace study (Fig. 7).
//
// A Record captures exactly what the paper's dependence models need: the
// architectural registers read and written (with the Flags register made
// explicit), the data memory words read and written, and the control outcome.
// Records are independent of instruction encoding, so the analyser never
// needs to re-decode anything.
package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
)

// MemRef is one data-memory access of 8 bytes at Addr.
type MemRef struct {
	Addr uint64
}

// Record is one dynamic instruction instance.
type Record struct {
	Seq       int64     // position in the dynamic trace, from 0
	IP        int64     // code address (instruction index)
	Op        isa.Op    // opcode, for classification and reporting
	RegReads  []isa.Reg // architectural registers read (incl. Flags, rsp)
	RegWrites []isa.Reg // architectural registers written
	MemReads  []MemRef  // 8-byte data loads
	MemWrites []MemRef  // 8-byte data stores
	Taken     bool      // for control instructions: branch taken
	CallLevel int32     // call nesting depth at this instruction
}

// IsControl reports whether the record is a control-flow instruction.
func (r *Record) IsControl() bool {
	switch r.Op {
	case isa.JMP, isa.Jcc, isa.CALL, isa.RET, isa.FORK, isa.ENDFORK, isa.HLT:
		return true
	}
	return false
}

// Trace is an in-memory dynamic trace.
type Trace struct {
	Records []Record
}

// Append adds a record, assigning its sequence number.
func (t *Trace) Append(r Record) {
	r.Seq = int64(len(t.Records))
	t.Records = append(t.Records, r)
}

// Len returns the number of dynamic instructions.
func (t *Trace) Len() int { return len(t.Records) }

// Stats summarises a trace.
type Stats struct {
	Instructions int
	Loads        int
	Stores       int
	Branches     int // conditional branches
	Taken        int
	Calls        int
	Returns      int
	Forks        int
	MaxCallLevel int32
}

// ComputeStats scans the trace once and returns summary statistics.
func (t *Trace) ComputeStats() Stats {
	var s Stats
	s.Instructions = len(t.Records)
	for i := range t.Records {
		r := &t.Records[i]
		s.Loads += len(r.MemReads)
		s.Stores += len(r.MemWrites)
		switch r.Op {
		case isa.Jcc:
			s.Branches++
			if r.Taken {
				s.Taken++
			}
		case isa.CALL:
			s.Calls++
		case isa.RET:
			s.Returns++
		case isa.FORK:
			s.Forks++
		}
		if r.CallLevel > s.MaxCallLevel {
			s.MaxCallLevel = r.CallLevel
		}
	}
	return s
}

// String formats the stats for reports.
func (s Stats) String() string {
	return fmt.Sprintf("instr=%d loads=%d stores=%d branches=%d (taken %d) calls=%d rets=%d forks=%d maxlevel=%d",
		s.Instructions, s.Loads, s.Stores, s.Branches, s.Taken, s.Calls, s.Returns, s.Forks, s.MaxCallLevel)
}

// Binary serialisation, for storing traces produced by cmd/emurun and
// re-analysing them with cmd/ilpstat without re-running the emulator.

const traceMagic = "MCT1"

// Encode serialises the trace.
func (t *Trace) Encode() []byte {
	var b bytes.Buffer
	b.WriteString(traceMagic)
	var tmp [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		b.Write(tmp[:])
	}
	u64(uint64(len(t.Records)))
	for i := range t.Records {
		r := &t.Records[i]
		u64(uint64(r.IP))
		b.WriteByte(byte(r.Op))
		flags := byte(0)
		if r.Taken {
			flags |= 1
		}
		b.WriteByte(flags)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(r.CallLevel))
		b.Write(tmp[:4])
		b.WriteByte(byte(len(r.RegReads)))
		for _, reg := range r.RegReads {
			b.WriteByte(byte(reg))
		}
		b.WriteByte(byte(len(r.RegWrites)))
		for _, reg := range r.RegWrites {
			b.WriteByte(byte(reg))
		}
		b.WriteByte(byte(len(r.MemReads)))
		for _, m := range r.MemReads {
			u64(m.Addr)
		}
		b.WriteByte(byte(len(r.MemWrites)))
		for _, m := range r.MemWrites {
			u64(m.Addr)
		}
	}
	return b.Bytes()
}

// Decode deserialises a trace produced by Encode.
func Decode(buf []byte) (*Trace, error) {
	if len(buf) < 4 || string(buf[:4]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic")
	}
	off := 4
	need := func(n int) error {
		if off+n > len(buf) {
			return fmt.Errorf("trace: truncated at offset %d", off)
		}
		return nil
	}
	if err := need(8); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(buf[off:])
	off += 8
	t := &Trace{Records: make([]Record, 0, n)}
	for i := uint64(0); i < n; i++ {
		var r Record
		r.Seq = int64(i)
		if err := need(8 + 1 + 1 + 4); err != nil {
			return nil, err
		}
		r.IP = int64(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		r.Op = isa.Op(buf[off])
		off++
		r.Taken = buf[off]&1 != 0
		off++
		r.CallLevel = int32(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		readRegs := func() ([]isa.Reg, error) {
			if err := need(1); err != nil {
				return nil, err
			}
			k := int(buf[off])
			off++
			if err := need(k); err != nil {
				return nil, err
			}
			if k == 0 {
				return nil, nil
			}
			rs := make([]isa.Reg, k)
			for j := 0; j < k; j++ {
				rs[j] = isa.Reg(buf[off+j])
			}
			off += k
			return rs, nil
		}
		var err error
		if r.RegReads, err = readRegs(); err != nil {
			return nil, err
		}
		if r.RegWrites, err = readRegs(); err != nil {
			return nil, err
		}
		readMems := func() ([]MemRef, error) {
			if err := need(1); err != nil {
				return nil, err
			}
			k := int(buf[off])
			off++
			if err := need(8 * k); err != nil {
				return nil, err
			}
			if k == 0 {
				return nil, nil
			}
			ms := make([]MemRef, k)
			for j := 0; j < k; j++ {
				ms[j].Addr = binary.LittleEndian.Uint64(buf[off:])
				off += 8
			}
			return ms, nil
		}
		if r.MemReads, err = readMems(); err != nil {
			return nil, err
		}
		if r.MemWrites, err = readMems(); err != nil {
			return nil, err
		}
		t.Records = append(t.Records, r)
	}
	return t, nil
}
