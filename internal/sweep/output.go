package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// JSONLWriter streams records as one JSON object per line, flushing after
// every record so long sweeps produce output incrementally.
type JSONLWriter struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	return &JSONLWriter{w: bw, enc: json.NewEncoder(bw)}
}

// Write emits one record and flushes.
func (j *JSONLWriter) Write(rec Record) error {
	if err := j.enc.Encode(rec); err != nil {
		return err
	}
	return j.w.Flush()
}

// ReadJSONL parses a sweep file: one Record per non-blank line.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("sweep: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// ReadFile loads a sweep JSONL file from disk.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}
