package sweep

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/backend"
	"repro/internal/machine"
	"repro/internal/minic"
	"repro/internal/pbbs"
)

// smallSpec is a 2-kernel × 2-core × 2-topology grid cheap enough for tests.
func smallSpec() *Spec {
	return &Spec{
		Kernels:    []int{2, 10},
		Sizes:      []int{16},
		Cores:      []int{1, 4},
		Topologies: []string{TopoCrossbar, TopoRing},
		Seed:       1,
	}
}

func TestSpecDefaults(t *testing.T) {
	s := &Spec{}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if len(s.Kernels) != len(pbbs.Kernels()) {
		t.Errorf("default kernels = %d, want all %d", len(s.Kernels), len(pbbs.Kernels()))
	}
	if len(s.Sizes) == 0 || len(s.Cores) == 0 || len(s.Topologies) == 0 ||
		len(s.Shortcut) == 0 || len(s.MaxSections) == 0 || s.Seed == 0 {
		t.Errorf("Normalize left an axis empty: %+v", s)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []*Spec{
		{Kernels: []int{99}},
		{Sizes: []int{0}},
		{Cores: []int{-1}},
		{Topologies: []string{"torus"}},
		{MaxSections: []int{-2}},
	}
	for _, s := range bad {
		if err := s.Normalize(); err == nil {
			t.Errorf("Normalize(%+v) accepted a bad axis", s)
		}
	}
}

func TestPointsDedupClampedSizes(t *testing.T) {
	k, err := pbbs.ByID(2)
	if err != nil {
		t.Fatal(err)
	}
	// Both sizes clamp onto the kernel's minimum: one point, not two.
	s := &Spec{Kernels: []int{2}, Sizes: []int{1, 2}, Cores: []int{1}}
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].N != k.MinN {
		t.Errorf("points = %+v, want one point at the clamped size %d", pts, k.MinN)
	}
}

func TestPointsDeterministicOrder(t *testing.T) {
	a, err := smallSpec().Points()
	if err != nil {
		t.Fatal(err)
	}
	b, err := smallSpec().Points()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two enumerations of the same spec differ")
	}
	if len(a) != 8 {
		t.Errorf("grid size = %d, want 2 kernels × 2 cores × 2 topologies = 8", len(a))
	}
}

func TestMakeNet(t *testing.T) {
	for _, cores := range []int{1, 2, 4, 6, 7, 16} {
		for _, topo := range Topologies {
			n, err := MakeNet(topo, cores)
			if err != nil {
				t.Fatalf("%s/%d: %v", topo, cores, err)
			}
			if n.Cores() != cores {
				t.Errorf("%s over %d cores reports %d endpoints", topo, cores, n.Cores())
			}
		}
	}
	if _, err := MakeNet("torus", 4); err == nil {
		t.Error("MakeNet accepted an unknown topology")
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	k, err := pbbs.ByID(2)
	if err != nil {
		t.Fatal(err)
	}
	base := Point{Kernel: 2, N: 16, Cores: 4, Topology: TopoCrossbar, Shortcut: true, Seed: 1}
	prog, err := k.Build(16, minic.ModeFork)
	if err != nil {
		t.Fatal(err)
	}
	in := k.Gen(16, 1)
	ref := cacheKey(prog, in, base)

	perturbed := []Point{
		{Kernel: 2, N: 16, Cores: 8, Topology: TopoCrossbar, Shortcut: true, Seed: 1},
		{Kernel: 2, N: 16, Cores: 4, Topology: TopoRing, Shortcut: true, Seed: 1},
		{Kernel: 2, N: 16, Cores: 4, Topology: TopoCrossbar, Shortcut: false, Seed: 1},
		{Kernel: 2, N: 16, Cores: 4, Topology: TopoCrossbar, Shortcut: true, MaxSections: 2, Seed: 1},
	}
	for _, p := range perturbed {
		if cacheKey(prog, in, p) == ref {
			t.Errorf("config change %+v did not change the cache key", p)
		}
	}
	if other, err := k.Build(24, minic.ModeFork); err != nil {
		t.Fatal(err)
	} else if cacheKey(other, in, base) == ref {
		t.Error("program change did not change the cache key")
	}
	if cacheKey(prog, k.Gen(16, 7), base) == ref {
		t.Error("input change did not change the cache key")
	}
	if cacheKey(prog, in, base) != ref {
		t.Error("identical point hashed differently")
	}
}

// TestCacheKeyFraming pins the injectivity of the input encoding: near-miss
// input maps must hash apart. The v1 encoding wrote arrays as bare
// variable-width words with no length frame, so the word stream carried no
// record of how the values were grouped; v2 length-frames every array (and
// the symbol set) with fixed-width words.
func TestCacheKeyFraming(t *testing.T) {
	k, err := pbbs.ByID(2)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := k.Build(16, minic.ModeFork)
	if err != nil {
		t.Fatal(err)
	}
	p := Point{Kernel: 2, N: 16, Cores: 4, Topology: TopoCrossbar, Shortcut: true, Seed: 1}
	cases := []struct {
		name string
		in   backend.Inputs
	}{
		{"no inputs", backend.Inputs{}},
		{"empty array", backend.Inputs{"A": {}}},
		{"one zero word", backend.Inputs{"A": {0}}},
		{"split word", backend.Inputs{"A": {0x12}}},
		{"two words", backend.Inputs{"A": {0x1, 0x2}}},
		{"word pair swapped", backend.Inputs{"A": {0x2, 0x1}}},
		{"second empty symbol", backend.Inputs{"A": {0x12}, "B": {}}},
		{"first empty symbol", backend.Inputs{"A": {}, "B": {0x12}}},
		{"moved word", backend.Inputs{"A": {}, "B": {0x12, 0x12}}},
		{"value in other symbol", backend.Inputs{"B": {0x12}}},
	}
	seen := make(map[string]string)
	for _, c := range cases {
		key := cacheKey(prog, c.in, p)
		if prev, dup := seen[key]; dup {
			t.Errorf("inputs %q and %q hash to the same key", prev, c.name)
		}
		seen[key] = c.name
		if again := cacheKey(prog, c.in, p); again != key {
			t.Errorf("inputs %q: key not stable", c.name)
		}
	}
}

func TestEngineCachesAcrossEngines(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e1 := &Engine{Cache: cache, Workers: 4}
	recs1, err := e1.Run(smallSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s1 := e1.Stats()
	if s1.Hits != 0 || s1.Simulated != len(recs1) || s1.Failures != 0 {
		t.Fatalf("first run stats = %+v, want all %d points simulated", s1, len(recs1))
	}

	// A fresh engine over the same directory models a separate process: every
	// point must come from the cache, with zero machine re-simulations.
	cache2, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := &Engine{Cache: cache2, Workers: 4}
	recs2, err := e2.Run(smallSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s2 := e2.Stats()
	if s2.Simulated != 0 || s2.Hits != len(recs2) {
		t.Fatalf("second run stats = %+v, want all %d points cached", s2, len(recs2))
	}
	if !reflect.DeepEqual(recs1, recs2) {
		t.Error("cached records differ from simulated records")
	}
}

// TestPooledRunsMatchFresh pins the warm-pool contract at the sweep level:
// an engine with a machine pool produces JSONL byte-identical to a fresh
// engine's (after zeroing the host wall-clock fields, the one
// non-deterministic part of a record), across repeated runs where the pool
// is actually serving warmed machines.
func TestPooledRunsMatchFresh(t *testing.T) {
	spec := func() *Spec {
		return &Spec{Kernels: []int{2, 10}, Sizes: []int{16}, Cores: []int{1, 4}, Seed: 1}
	}
	jsonl := func(recs []Record) string {
		var buf bytes.Buffer
		jw := NewJSONLWriter(&buf)
		for _, r := range recs {
			r.Metrics = r.Metrics.StripTiming()
			if err := jw.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}

	fresh := &Engine{Workers: 2}
	want, err := fresh.Run(spec(), nil)
	if err != nil {
		t.Fatal(err)
	}

	pooled := &Engine{Workers: 2, Pool: machine.NewPool()}
	var got []Record
	for round := 0; round < 2; round++ {
		if got, err = pooled.Run(spec(), nil); err != nil {
			t.Fatal(err)
		}
		if a, b := jsonl(want), jsonl(got); a != b {
			t.Fatalf("round %d: pooled JSONL differs from fresh:\n%s\nvs\n%s", round, b, a)
		}
	}
	// The second round must have run on warmed machines, or the comparison
	// proved nothing about the pool.
	if s := pooled.Pool.Stats(); s.Hits == 0 {
		t.Fatalf("pool stats %+v: second sweep never hit the pool", s)
	}
}

func TestEngineWithoutCache(t *testing.T) {
	e := &Engine{}
	recs, err := e.Run(&Spec{Kernels: []int{10}, Sizes: []int{8}, Cores: []int{2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Err != "" || recs[0].Cycles == 0 {
		t.Errorf("cacheless run produced %+v", recs)
	}
	if s := e.Stats(); s.Hits != 0 || s.Simulated != 1 {
		t.Errorf("cacheless stats = %+v", s)
	}
}

func TestMeasureClampsPoint(t *testing.T) {
	k, err := pbbs.ByID(2)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{}
	rec := e.Measure(Point{Kernel: 2, N: 1, Cores: 1, Topology: TopoCrossbar, Shortcut: true, Seed: 1})
	if rec.Err != "" {
		t.Fatalf("Measure failed: %s", rec.Err)
	}
	if rec.N != k.MinN || rec.Name != k.Name {
		t.Errorf("Measure point = %+v, want clamped n=%d name=%q", rec.Point, k.MinN, k.Name)
	}
	// The clamp is surfaced, not silent: the record keeps what was asked for.
	if rec.RequestedN != 1 {
		t.Errorf("RequestedN = %d, want the pre-clamp 1", rec.RequestedN)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"requestedN":1`) {
		t.Errorf("clamped record JSONL missing requestedN: %s", b)
	}

	// An in-range request carries no RequestedN — the field is omitted from
	// the JSONL so unclamped records stay byte-identical to the old format.
	rec = e.Measure(Point{Kernel: 2, N: k.MinN, Cores: 1, Topology: TopoCrossbar, Shortcut: true, Seed: 1})
	if rec.Err != "" {
		t.Fatalf("Measure failed: %s", rec.Err)
	}
	if rec.RequestedN != 0 {
		t.Errorf("unclamped RequestedN = %d, want 0", rec.RequestedN)
	}
	if b, err = json.Marshal(rec); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "requestedN") {
		t.Errorf("unclamped record JSONL leaks requestedN: %s", b)
	}
}

// TestMeasureCoalescesConcurrentDuplicates pins the singleflight guarantee:
// K identical concurrent measurements simulate exactly once. The cache
// covers goroutines that start after the leader finished, the flight group
// covers the ones in flight with it, so the "exactly one simulation" holds
// under every interleaving.
func TestMeasureCoalescesConcurrentDuplicates(t *testing.T) {
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Cache: cache}
	p := Point{Kernel: 10, N: 8, Cores: 2, Topology: TopoCrossbar, Shortcut: true, Seed: 1}
	const K = 8
	recs := make([]Record, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			recs[i] = e.Measure(p)
		}()
	}
	wg.Wait()
	s := e.Stats()
	if s.Simulated != 1 {
		t.Errorf("stats = %+v, want exactly 1 simulation for %d identical submissions", s, K)
	}
	if s.Hits+s.Coalesced != K-1 || s.Failures != 0 {
		t.Errorf("stats = %+v, want the other %d served by cache or coalescing", s, K-1)
	}
	for i := 1; i < K; i++ {
		if !reflect.DeepEqual(recs[i], recs[0]) {
			t.Errorf("record %d differs from record 0: %+v vs %+v", i, recs[i], recs[0])
		}
	}
}

func TestCorruptCacheEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Cache: cache}
	spec := &Spec{Kernels: []int{10}, Sizes: []int{8}, Cores: []int{1}}
	recs, err := e.Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, recs[0].Key+".json"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	e2 := &Engine{Cache: cache}
	recs2, err := e2.Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s := e2.Stats(); s.Simulated != 1 || s.Hits != 0 {
		t.Errorf("corrupt entry was not re-simulated: %+v", s)
	}
	// Wall-clock timing differs between measurements; everything else is
	// deterministic.
	if recs2[0].Metrics.StripTiming() != recs[0].Metrics.StripTiming() {
		t.Error("re-simulated metrics differ")
	}
}

func TestEmitOrderAndJSONLDeterminism(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		jw := NewJSONLWriter(&buf)
		e := &Engine{Workers: 8}
		if _, err := e.Run(smallSpec(), func(r Record) {
			if err := jw.Write(r); err != nil {
				t.Fatal(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	// Two independent measurements agree on everything except the host
	// wall-clock fields (cached re-runs are byte-identical including those;
	// TestEngineCachesAcrossEngines covers that).
	a, b := render(), render()
	ra, err := ReadJSONL(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := ReadJSONL(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("runs produced %d and %d records", len(ra), len(rb))
	}
	for i := range ra {
		x, y := ra[i], rb[i]
		x.Metrics, y.Metrics = x.Metrics.StripTiming(), y.Metrics.StripTiming()
		if !reflect.DeepEqual(x, y) {
			t.Errorf("record %d differs between runs: %+v vs %+v", i, x, y)
		}
	}
	recs := ra
	pts, err := smallSpec().Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(pts) {
		t.Fatalf("JSONL has %d records, grid has %d points", len(recs), len(pts))
	}
	for i := range recs {
		if recs[i].Point != pts[i] {
			t.Errorf("record %d is point %+v, want grid order %+v", i, recs[i].Point, pts[i])
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := []Record{
		{Point: Point{Kernel: 2, Name: "x/y", N: 16, Cores: 4, Topology: TopoRing, Shortcut: true, Seed: 1},
			Metrics: Metrics{Instructions: 10, Cycles: 5, IPC: 2, NocMessages: 3, Checksum: 42}, Key: "abc"},
		{Point: Point{Kernel: 3, Name: "z", N: 8, Cores: 1, Topology: TopoCrossbar, Seed: 1}, Err: "boom"},
	}
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf)
	for _, r := range recs {
		if err := jw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("round trip: got %+v, want %+v", got, recs)
	}
}

func TestDiff(t *testing.T) {
	p1 := Point{Kernel: 2, Name: "a", N: 16, Cores: 4, Topology: TopoRing, Shortcut: true, Seed: 1}
	p2 := Point{Kernel: 3, Name: "b", N: 16, Cores: 4, Topology: TopoRing, Shortcut: true, Seed: 1}
	p3 := Point{Kernel: 4, Name: "c", N: 16, Cores: 4, Topology: TopoRing, Shortcut: true, Seed: 1}
	base := []Record{
		{Point: p1, Metrics: Metrics{Cycles: 100, IPC: 1, NocMessages: 50}},
		{Point: p2, Metrics: Metrics{Cycles: 10, IPC: 1, NocMessages: 5}},
	}
	cur := []Record{
		{Point: p1, Metrics: Metrics{Cycles: 50, IPC: 2, NocMessages: 40}},
		{Point: p3, Metrics: Metrics{Cycles: 1, IPC: 1, NocMessages: 1}},
	}
	d := Diff(base, cur)
	if len(d.Rows) != 1 || d.BaseOnly != 1 || d.NewOnly != 1 {
		t.Fatalf("diff = %+v, want 1 matched, 1 base-only, 1 new-only", d)
	}
	row := d.Rows[0]
	if row.Speedup() != 2.0 {
		t.Errorf("speedup = %v, want 2.0", row.Speedup())
	}
	if row.MsgDelta() != -10 {
		t.Errorf("message delta = %d, want -10", row.MsgDelta())
	}
	// A renamed but otherwise identical point still matches.
	renamed := []Record{{Point: func() Point { p := p1; p.Name = "renamed"; return p }(),
		Metrics: Metrics{Cycles: 100}}}
	if d := Diff(base[:1], renamed); len(d.Rows) != 1 {
		t.Error("diff failed to match a point that differs only in display name")
	}
	// Failed records never match.
	failed := []Record{{Point: p1, Err: "x"}}
	if d := Diff(base[:1], failed); len(d.Rows) != 0 {
		t.Error("diff matched a failed record")
	}
}

func TestTableRendersFailures(t *testing.T) {
	recs := []Record{{Point: Point{Kernel: 2, Name: "s/q", N: 4, Cores: 1, Topology: TopoCrossbar}, Err: "boom"}}
	out := Table(recs)
	if want := "FAIL: boom"; !bytes.Contains([]byte(out), []byte(want)) {
		t.Errorf("table %q does not contain %q", out, want)
	}
}

// TestConcurrentDuplicatesWithPool pins the singleflight + warm-pool
// interaction on fuzz-shaped load: K identical concurrent points simulate
// exactly once on a pool-backed engine (the flight leader takes one machine
// from the pool and parks it back), and a follow-up wave of same-shape
// points — different seed, so a cache miss but the same machine identity —
// runs on the warmed machine and still agrees with a fresh engine.
func TestConcurrentDuplicatesWithPool(t *testing.T) {
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Cache: cache, Pool: machine.NewPool()}
	p := Point{Kernel: 10, N: 8, Cores: 2, Topology: TopoCrossbar, Shortcut: true, Seed: 1}
	const K = 8
	recs := make([]Record, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			recs[i] = e.Measure(p)
		}()
	}
	wg.Wait()
	s := e.Stats()
	if s.Simulated != 1 || s.Failures != 0 {
		t.Errorf("stats = %+v, want exactly 1 simulation for %d identical submissions", s, K)
	}
	if s.Hits+s.Coalesced != K-1 {
		t.Errorf("stats = %+v, want the other %d served by cache or coalescing", s, K-1)
	}
	for i := 1; i < K; i++ {
		if !reflect.DeepEqual(recs[i], recs[0]) {
			t.Errorf("record %d differs from record 0", i)
		}
	}

	// Same machine shape, different seed: a cache miss that must be served
	// by the machine parked by the first wave, bit-identical to a fresh
	// engine's answer.
	p2 := p
	p2.Seed = 2
	warm := e.Measure(p2)
	if warm.Err != "" {
		t.Fatalf("warm-pool measure failed: %s", warm.Err)
	}
	if ps := e.Pool.Stats(); ps.Hits == 0 {
		t.Errorf("pool stats %+v: second wave never hit the pool", ps)
	}
	fresh := (&Engine{}).Measure(p2)
	warm.Metrics = warm.Metrics.StripTiming()
	fresh.Metrics = fresh.Metrics.StripTiming()
	if !reflect.DeepEqual(warm, fresh) {
		t.Errorf("pooled record differs from fresh:\n%+v\nvs\n%+v", warm, fresh)
	}
}
