package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/backend"
	"repro/internal/isa"
)

// cacheVersion invalidates every cached point when the metrics schema or the
// key derivation changes. v2: input arrays are length-framed with
// fixed-width words, and the symbol count frames the input section — see
// cacheKey.
const cacheVersion = "sweep-v2"

// cacheKey derives the content hash of a sweep point: the encoded compiled
// program (covering the kernel source and the compiler), the generated input
// arrays, and every machine-configuration coordinate. Identical keys are
// guaranteed identical simulations, so a change to a kernel, the compiler,
// the workload generator or the configuration re-measures exactly the points
// it touches.
//
// Every variable-length field is framed by its length so the encoding is
// injective: symbol names via put, each input array by its element count
// with fixed-width (16-hex-digit) words, and the input section by its symbol
// count. The v1 encoding wrote arrays as bare variable-width words with no
// length frame, leaving empty arrays contributing nothing and word
// boundaries resting on the "%x," formatting alone; TestCacheKeyFraming pins
// the near-miss input pairs that must hash apart.
func cacheKey(prog *isa.Program, in backend.Inputs, p Point) string {
	h := sha256.New()
	put := func(s string) {
		fmt.Fprintf(h, "%d:%s;", len(s), s)
	}
	put(cacheVersion)
	put(string(prog.Encode()))
	syms := make([]string, 0, len(in))
	for sym := range in {
		syms = append(syms, sym)
	}
	sort.Strings(syms)
	fmt.Fprintf(h, "syms=%d;", len(syms))
	for _, sym := range syms {
		put(sym)
		fmt.Fprintf(h, "%d:", len(in[sym]))
		for _, w := range in[sym] {
			fmt.Fprintf(h, "%016x,", w)
		}
		fmt.Fprintf(h, ";")
	}
	fmt.Fprintf(h, "cores=%d;topo=%s;shortcut=%v;cap=%d;seed=%d;",
		p.Cores, p.Topology, p.Shortcut, p.MaxSections, p.Seed)
	return hex.EncodeToString(h.Sum(nil))
}

// machineKey derives the warm-pool identity of a point's machine: the
// encoded program plus every configuration coordinate that shapes the
// simulated chip. It deliberately excludes the inputs and the seed (inputs
// are injected per run after Machine.Reset) and the scheduler knobs (Dense,
// SimWorkers — the pool re-arms those per Get), so a pooled machine is
// reused across every point that differs only in workload data or scheduler.
func machineKey(prog *isa.Program, p Point) string {
	h := sha256.New()
	put := func(s string) {
		fmt.Fprintf(h, "%d:%s;", len(s), s)
	}
	put("machine-v1")
	put(string(prog.Encode()))
	fmt.Fprintf(h, "cores=%d;topo=%s;shortcut=%v;cap=%d;",
		p.Cores, p.Topology, p.Shortcut, p.MaxSections)
	return hex.EncodeToString(h.Sum(nil))
}

// Cache is a persistent content-keyed store of sweep metrics: one JSON file
// per key under a directory, written atomically (temp file + rename), so
// concurrent workers and separate processes can share it safely.
type Cache struct {
	dir string
}

// NewCache opens (creating if needed) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the metrics stored under key, if any. Unreadable or corrupt
// entries count as misses.
func (c *Cache) Get(key string) (*Metrics, bool) {
	if c == nil {
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var m Metrics
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, false
	}
	return &m, true
}

// Put stores the metrics under key.
func (c *Cache) Put(key string, m *Metrics) error {
	if c == nil {
		return nil
	}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}

// Len counts the stored entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n
}
