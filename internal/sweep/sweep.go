// Package sweep is the many-core scaling laboratory: it runs the
// cycle-level machine simulator (internal/machine) across the cross-product
// of {kernel, dataset size, core count, NoC topology, call-level shortcut,
// section-placement cap} and reports how the paper's fork-based design
// scales (§4.2, Figs. 8–10).
//
// The engine generalises the internal/pbbs batch harness: points are
// measured concurrently by a worker pool, results stream out in
// deterministic grid order as JSONL plus a rendered table, and a
// content-keyed persistent cache (internal/sweep.Cache) makes repeated
// points free — the cache key hashes the compiled kernel source, the
// generated inputs and the full machine configuration, so any change to
// compiler output, workload generator or simulator parameters re-measures
// exactly the points it invalidates.
//
// Two sweep files can be diffed (Diff, DiffTable) to quantify speedups and
// regressions between configurations or code revisions: machine IPC,
// cycles, and NoC message counts.
package sweep

import (
	"fmt"
	"strings"

	"repro/internal/noc"
	"repro/internal/pbbs"
)

// Topology names accepted by Spec and MakeNet.
const (
	TopoCrossbar = "crossbar"
	TopoRing     = "ring"
	TopoMesh     = "mesh"
)

// Topologies lists the supported NoC topology names, in catalog order.
// internal/noc.Catalog is the single source of truth; the constants above
// exist so grid code can name topologies without indexing the catalog.
var Topologies = func() []string {
	cat := noc.Catalog()
	names := make([]string, len(cat))
	for i, t := range cat {
		names[i] = t.Name
	}
	return names
}()

// MakeNet builds the named topology over the given core count with unit hop
// latency. Meshes use the most square w×h factorisation of cores.
func MakeNet(name string, cores int) (noc.Network, error) {
	switch name {
	case TopoCrossbar:
		return noc.NewCrossbar(cores, 1), nil
	case TopoRing:
		return noc.NewRing(cores, 1), nil
	case TopoMesh:
		w := 1
		for d := 1; d*d <= cores; d++ {
			if cores%d == 0 {
				w = d
			}
		}
		return noc.NewMesh(w, cores/w, 1), nil
	}
	return nil, fmt.Errorf("sweep: unknown topology %q (want %s)", name, strings.Join(Topologies, "|"))
}

// Spec describes a sweep grid. Every slice is one axis of the cross-product;
// an empty axis gets a single default value (see Normalize).
type Spec struct {
	// Kernels is the benchmark ID axis.
	Kernels []int
	// Sizes is the dataset-size axis (clamped per kernel, duplicates after
	// clamping are measured once).
	Sizes []int
	// Cores is the core-count axis.
	Cores []int
	// Topologies is the NoC topology axis (names from Topologies).
	Topologies []string
	// Shortcut is the call-level-shortcut axis (§4.2 ablation).
	Shortcut []bool
	// MaxSections is the MaxSectionsPerCore placement axis (0 = spread).
	MaxSections []int
	// Seed is the workload seed shared by every point.
	Seed uint64
}

// Normalize fills defaulted axes (all kernels; size 64; 1 core; crossbar;
// shortcut on; no placement cap; seed 1) and validates the rest.
func (s *Spec) Normalize() error {
	if len(s.Kernels) == 0 {
		for _, k := range pbbs.Kernels() {
			s.Kernels = append(s.Kernels, k.ID)
		}
	}
	for _, id := range s.Kernels {
		if _, err := pbbs.ByID(id); err != nil {
			return err
		}
	}
	if len(s.Sizes) == 0 {
		s.Sizes = []int{64}
	}
	for _, n := range s.Sizes {
		if n <= 0 {
			return fmt.Errorf("sweep: bad dataset size %d", n)
		}
	}
	if len(s.Cores) == 0 {
		s.Cores = []int{1}
	}
	for _, c := range s.Cores {
		if c < 1 {
			return fmt.Errorf("sweep: bad core count %d", c)
		}
	}
	if len(s.Topologies) == 0 {
		s.Topologies = []string{TopoCrossbar}
	}
	for _, t := range s.Topologies {
		if _, err := MakeNet(t, 1); err != nil {
			return err
		}
	}
	if len(s.Shortcut) == 0 {
		s.Shortcut = []bool{true}
	}
	if len(s.MaxSections) == 0 {
		s.MaxSections = []int{0}
	}
	for _, ms := range s.MaxSections {
		if ms < 0 {
			return fmt.Errorf("sweep: bad max-sections cap %d", ms)
		}
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return nil
}

// Point is one configuration of the grid: a kernel at a dataset size on one
// machine configuration. Point is comparable and keys the baseline diff.
type Point struct {
	Kernel      int    `json:"kernel"`
	Name        string `json:"name"`
	N           int    `json:"n"`
	Cores       int    `json:"cores"`
	Topology    string `json:"topology"`
	Shortcut    bool   `json:"shortcut"`
	MaxSections int    `json:"maxSections"`
	Seed        uint64 `json:"seed"`
}

// key is the diff-matching identity: every grid coordinate except the
// human-readable name.
func (p Point) key() Point {
	p.Name = ""
	return p
}

// Config renders the machine-configuration coordinates compactly.
func (p Point) Config() string {
	sc := "off"
	if p.Shortcut {
		sc = "on"
	}
	return fmt.Sprintf("c%d/%s/sc=%s/cap=%d", p.Cores, p.Topology, sc, p.MaxSections)
}

// Points enumerates the grid in deterministic order: kernel, size, cores,
// topology, shortcut, cap. Sizes below a kernel's minimum clamp onto the
// same point; such duplicates are enumerated once.
func (s *Spec) Points() ([]Point, error) {
	if err := s.Normalize(); err != nil {
		return nil, err
	}
	var pts []Point
	seen := make(map[Point]bool)
	for _, id := range s.Kernels {
		k, err := pbbs.ByID(id)
		if err != nil {
			return nil, err
		}
		for _, n := range s.Sizes {
			n = k.ClampN(n)
			for _, cores := range s.Cores {
				for _, topo := range s.Topologies {
					for _, sc := range s.Shortcut {
						for _, secCap := range s.MaxSections {
							p := Point{
								Kernel: k.ID, Name: k.Name, N: n,
								Cores: cores, Topology: topo,
								Shortcut: sc, MaxSections: secCap,
								Seed: s.Seed,
							}
							if seen[p] {
								continue
							}
							seen[p] = true
							pts = append(pts, p)
						}
					}
				}
			}
		}
	}
	return pts, nil
}

// Metrics is what one machine run yields for a point: the scaling quantities
// of Figs. 8–10 plus the NoC traffic accounting.
type Metrics struct {
	Instructions     int64   `json:"instructions"`
	Cycles           int64   `json:"cycles"`
	IPC              float64 `json:"ipc"`
	FetchCycles      int64   `json:"fetchCycles"`
	RetireCycles     int64   `json:"retireCycles"`
	Sections         int     `json:"sections"`
	RegRequests      int64   `json:"regRequests"`
	MemRequests      int64   `json:"memRequests"`
	CreateMessages   int64   `json:"createMessages"`
	RequestHops      int64   `json:"requestHops"`
	ResponseMessages int64   `json:"responseMessages"`
	DMHAnswers       int64   `json:"dmhAnswers"`
	NocMessages      int64   `json:"nocMessages"`
	Checksum         uint64  `json:"checksum"`
	// SimNs is the wall-clock nanoseconds the machine simulation took when
	// this point was measured (cache hits keep the time of the original
	// measurement, so cached re-runs stay byte-identical).
	SimNs int64 `json:"simNs"`
	// NsPerCycle is SimNs per simulated cycle — the simulator-performance
	// figure `repro bench-sim` tracks.
	NsPerCycle float64 `json:"nsPerCycle"`
}

// StripTiming returns a copy of m with the wall-clock fields zeroed, for
// comparing metrics across runs: the simulation outcome is deterministic,
// the host timing is not.
func (m Metrics) StripTiming() Metrics {
	m.SimNs = 0
	m.NsPerCycle = 0
	return m
}

// Record is one emitted sweep row: the point, its metrics, the content hash
// that keys the cache, and the error message when the point failed.
type Record struct {
	Point
	Metrics
	// RequestedN is the dataset size the caller asked for when it was below
	// the kernel's minimum and got clamped up: the embedded Point carries
	// the effective size that ran, this field the original request. Zero
	// when no clamping happened.
	RequestedN int    `json:"requestedN,omitempty"`
	Key        string `json:"key,omitempty"`
	Err        string `json:"error,omitempty"`
}

// Table renders records as an aligned report, one row per point. ns/cyc is
// host wall time per simulated cycle (from the original measurement for
// cached points).
func Table(recs []Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-28s %6s %6s %-9s %-3s %4s %10s %10s %7s %5s %9s %7s %8s\n",
		"#", "benchmark", "n", "cores", "topology", "sc", "cap",
		"instr", "cycles", "IPC", "secs", "noc-msgs", "ns/cyc", "status")
	for _, r := range recs {
		name := r.Name
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		sc := "off"
		if r.Shortcut {
			sc = "on"
		}
		status := "ok"
		if r.Err != "" {
			status = "FAIL: " + r.Err
		}
		fmt.Fprintf(&b, "%-3d %-28s %6d %6d %-9s %-3s %4d %10d %10d %7.2f %5d %9d %7.0f %8s\n",
			r.Kernel, name, r.N, r.Cores, r.Topology, sc, r.MaxSections,
			r.Instructions, r.Cycles, r.IPC, r.Sections, r.Metrics.NocMessages,
			r.NsPerCycle, status)
	}
	return b.String()
}
