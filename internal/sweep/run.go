package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/machine"
	"repro/internal/minic"
	"repro/internal/pbbs"
)

// Stats counts what a sweep run did.
type Stats struct {
	// Points is the grid size after normalisation and dedup.
	Points int
	// Hits is how many points were served from the cache.
	Hits int
	// Coalesced is how many points shared a concurrent in-flight measurement
	// of the same content key instead of simulating (singleflight).
	Coalesced int
	// Simulated is how many points ran the machine simulator.
	Simulated int
	// Failures is how many points errored (build, divergence, timeout).
	Failures int
}

func (s Stats) String() string {
	return fmt.Sprintf("%d points: %d cached, %d coalesced, %d simulated, %d failed",
		s.Points, s.Hits, s.Coalesced, s.Simulated, s.Failures)
}

// Engine measures sweep grids with a worker pool and an optional persistent
// cache.
type Engine struct {
	// Cache, when non-nil, serves repeated points without re-simulation.
	Cache *Cache
	// Workers bounds concurrent measurements; <= 0 uses GOMAXPROCS.
	Workers int
	// Dense selects the machine's reference dense scheduler instead of the
	// default idle-skip one. Simulation outcomes are identical either way
	// (only SimNs/NsPerCycle differ), so the cache key is unaffected.
	Dense bool
	// SimWorkers selects the machine's parallel phase scheduler for every
	// measurement: > 1 runs each simulation's per-core event phases on that
	// many goroutines (machine.Config.SimWorkers). Like Dense, it changes
	// only wall-clock metrics — results are bit-identical by the scheduler
	// oracle — so the cache key is unaffected.
	SimWorkers int
	// Pool, when non-nil, serves machines from a warm pool instead of
	// constructing one per measurement: points sharing a program and
	// configuration (same kernel, size, cores, topology — only inputs/seed
	// differing) reuse a Reset machine, amortizing arena setup. Simulation
	// outcomes are byte-identical with and without the pool (pinned by
	// TestPooledRunsMatchFresh).
	Pool *machine.Pool

	mu      sync.Mutex
	stats   Stats
	flights flightGroup
}

// Stats returns the counters accumulated over every Run of this engine.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Run measures every point of the grid. Workers measure concurrently, but
// emit (when non-nil) is called from a single goroutine in deterministic
// grid order, as soon as each prefix of the grid is complete — the streaming
// hook for incremental JSONL output. The returned records are in the same
// order. Per-point failures are reported inside the records (Record.Err) and
// joined into the returned error.
func (e *Engine) Run(spec *Spec, emit func(Record)) ([]Record, error) {
	pts, err := spec.Points()
	if err != nil {
		return nil, err
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pts) && len(pts) > 0 {
		workers = len(pts)
	}

	recs := make([]Record, len(pts))
	ready := make([]chan struct{}, len(pts))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				recs[i] = e.Measure(pts[i])
				close(ready[i])
			}
		}()
	}
	go func() {
		for i := range pts {
			jobs <- i
		}
		close(jobs)
	}()

	var errs []error
	for i := range pts {
		<-ready[i]
		if emit != nil {
			emit(recs[i])
		}
		if recs[i].Err != "" {
			errs = append(errs, fmt.Errorf("%s n=%d %s: %s",
				recs[i].Name, recs[i].N, recs[i].Config(), recs[i].Err))
		}
	}
	wg.Wait()
	return recs, errors.Join(errs...)
}

// Measure runs one point: resolve the kernel, derive the content key, serve
// from the cache or compile + simulate + validate, and store the outcome. It
// is the programmatic run-one-point API (the grid path Run and the job
// server both build on it) and is safe for concurrent use: concurrent
// measurements of the same content key are coalesced (singleflight), so N
// identical in-flight submissions simulate a point exactly once and share
// the outcome. A dataset size below the kernel's minimum is clamped and the
// display name is normalised; the returned record carries the effective
// point.
func (e *Engine) Measure(p Point) Record {
	rec := Record{Point: p}
	e.count(func(s *Stats) { s.Points++ })

	fail := func(err error) Record {
		rec.Err = err.Error()
		e.count(func(s *Stats) { s.Failures++ })
		return rec
	}

	k, err := pbbs.ByID(p.Kernel)
	if err != nil {
		return fail(err)
	}
	requested := p.N
	p.N, p.Name = k.ClampN(p.N), k.Name
	rec.Point = p
	if p.N != requested {
		// The clamp used to be silent; the record now carries the size the
		// caller asked for next to the size that actually ran.
		rec.RequestedN = requested
	}
	prog, err := k.Build(p.N, minic.ModeFork)
	if err != nil {
		return fail(err)
	}
	in := k.Gen(p.N, p.Seed)
	rec.Key = cacheKey(prog, in, p)

	f, leader := e.flights.join(rec.Key)
	if !leader {
		<-f.done
		rec.Metrics, rec.Err = f.metrics, f.errMsg
		e.count(func(s *Stats) {
			if rec.Err != "" {
				s.Failures++
			} else {
				s.Coalesced++
			}
		})
		return rec
	}
	defer func() { e.flights.finish(rec.Key, f, rec.Metrics, rec.Err) }()

	if m, ok := e.Cache.Get(rec.Key); ok {
		rec.Metrics = *m
		e.count(func(s *Stats) { s.Hits++ })
		return rec
	}

	net, err := MakeNet(p.Topology, p.Cores)
	if err != nil {
		return fail(err)
	}
	cfg := machine.Config{
		Cores:              p.Cores,
		Net:                net,
		CreateLatency:      2,
		Shortcut:           p.Shortcut,
		MaxSectionsPerCore: p.MaxSections,
		Dense:              e.Dense,
		SimWorkers:         e.SimWorkers,
	}
	// The timed window covers machine acquisition, input injection and the
	// run, so SimNs reflects what the pool amortizes: a pooled Get is a
	// Reset of warmed arenas where a fresh construction allocates them.
	start := time.Now()
	var sim *machine.Machine
	if e.Pool != nil {
		sim, err = e.Pool.Get(machineKey(prog, p), prog, cfg)
	} else {
		sim, err = machine.New(prog, cfg)
	}
	if err != nil {
		return fail(err)
	}
	if err := backend.Inject(prog, sim.DMH(), in); err != nil {
		return fail(err)
	}
	mr, err := sim.Run()
	simNs := time.Since(start).Nanoseconds()
	if err != nil {
		return fail(err)
	}
	// A faulted machine is not returned to the pool; this one ran clean.
	if e.Pool != nil {
		e.Pool.Put(machineKey(prog, p), sim)
	}
	e.count(func(s *Stats) { s.Simulated++ })
	want, err := k.Ref(p.N, in)
	if err != nil {
		return fail(fmt.Errorf("reference: %w", err))
	}
	if mr.RAX != want {
		return fail(fmt.Errorf("checksum %d, reference %d", mr.RAX, want))
	}
	rec.Metrics = Metrics{
		Instructions:     mr.Instructions,
		Cycles:           mr.Cycles,
		IPC:              float64(mr.Instructions) / float64(mr.Cycles),
		FetchCycles:      mr.FetchDone,
		RetireCycles:     mr.RetireDone,
		Sections:         len(mr.Sections),
		RegRequests:      mr.RegRequests,
		MemRequests:      mr.MemRequests,
		CreateMessages:   mr.CreateMessages,
		RequestHops:      mr.RequestHops,
		ResponseMessages: mr.ResponseMessages,
		DMHAnswers:       mr.DMHAnswers,
		NocMessages:      mr.NocMessages(),
		Checksum:         mr.RAX,
		SimNs:            simNs,
		NsPerCycle:       float64(simNs) / float64(mr.Cycles),
	}
	// The cache is best-effort: a failed store just means the point is
	// re-simulated next time.
	_ = e.Cache.Put(rec.Key, &rec.Metrics)
	return rec
}

func (e *Engine) count(f func(*Stats)) {
	e.mu.Lock()
	f(&e.stats)
	e.mu.Unlock()
}
