package sweep

import "sync"

// flight is one in-progress measurement of a content key. The leader fills
// in the outcome and closes done; followers block on done and copy it.
type flight struct {
	done    chan struct{}
	metrics Metrics
	errMsg  string
}

// flightGroup coalesces concurrent measurements of the same cache key
// (singleflight): the first caller to join a key becomes the leader and
// simulates; callers that join while the leader is in flight wait and share
// the leader's outcome. Together with the persistent cache this gives the
// job server its exactly-once property — the cache deduplicates across time,
// the flight group deduplicates across concurrent requests, so N identical
// simultaneous submissions simulate each point exactly once.
//
// Finished keys are removed, so a later caller consults the cache (which a
// successful leader populated) instead of a stale flight; failures are not
// cached, so a later caller retries them.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// join returns the flight for key and whether the caller is its leader. A
// leader must eventually call finish exactly once.
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f, false
	}
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// finish records the leader's outcome, retires the key and wakes the
// followers.
func (g *flightGroup) finish(key string, f *flight, m Metrics, errMsg string) {
	f.metrics, f.errMsg = m, errMsg
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
}
