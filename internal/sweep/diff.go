package sweep

import (
	"fmt"
	"strings"
)

// DiffRow compares one grid point across two sweep files.
type DiffRow struct {
	Point
	Base, New Metrics
}

// Speedup returns base-cycles over new-cycles: > 1 means the new sweep is
// faster at this point.
func (d DiffRow) Speedup() float64 {
	if d.New.Cycles == 0 {
		return 0
	}
	return float64(d.Base.Cycles) / float64(d.New.Cycles)
}

// MsgDelta returns the NoC message-count change (new minus base).
func (d DiffRow) MsgDelta() int64 { return d.New.NocMessages - d.Base.NocMessages }

// DiffResult is the outcome of matching two sweep files.
type DiffResult struct {
	// Rows holds the matched points, in the base file's order.
	Rows []DiffRow
	// BaseOnly and NewOnly count points present in only one file.
	BaseOnly, NewOnly int
}

// Diff matches records of two sweep files by grid point (every coordinate
// except the display name) and pairs their metrics. Failed records (Err set)
// are skipped on either side.
func Diff(base, cur []Record) DiffResult {
	byPoint := make(map[Point]Metrics, len(cur))
	for _, r := range cur {
		if r.Err == "" {
			byPoint[r.Point.key()] = r.Metrics
		}
	}
	var res DiffResult
	matched := make(map[Point]bool)
	for _, r := range base {
		if r.Err != "" {
			continue
		}
		m, ok := byPoint[r.Point.key()]
		if !ok {
			res.BaseOnly++
			continue
		}
		matched[r.Point.key()] = true
		res.Rows = append(res.Rows, DiffRow{Point: r.Point, Base: r.Metrics, New: m})
	}
	res.NewOnly = len(byPoint) - len(matched)
	return res
}

// DiffTable renders a diff as an aligned report: cycles, IPC and NoC traffic
// on both sides, with speedup and message delta per point.
func DiffTable(d DiffResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-28s %6s %-22s %10s %10s %8s %7s %7s %9s %9s %8s\n",
		"#", "benchmark", "n", "config",
		"cycles0", "cycles1", "speedup", "IPC0", "IPC1", "noc0", "noc1", "Δmsgs")
	for _, row := range d.Rows {
		name := row.Name
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		fmt.Fprintf(&b, "%-3d %-28s %6d %-22s %10d %10d %8.2f %7.2f %7.2f %9d %9d %+8d\n",
			row.Kernel, name, row.N, row.Config(),
			row.Base.Cycles, row.New.Cycles, row.Speedup(),
			row.Base.IPC, row.New.IPC,
			row.Base.NocMessages, row.New.NocMessages, row.MsgDelta())
	}
	if d.BaseOnly > 0 || d.NewOnly > 0 {
		fmt.Fprintf(&b, "unmatched points: %d only in baseline, %d only in new\n",
			d.BaseOnly, d.NewOnly)
	}
	return b.String()
}
