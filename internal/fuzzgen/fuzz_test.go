package fuzzgen

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/minic"
)

// The native fuzz targets. Plain `go test` replays the committed corpus
// under testdata/fuzz/ plus the f.Add seeds below — so every CI run drives
// the corpus through all four substrates and the warm-Reset path; `go test
// -fuzz=<target>` explores new seeds from there.

// fuzzSeeds are the baseline corpus replayed on every plain `go test` run,
// in addition to the files under testdata/fuzz/.
var fuzzSeeds = []uint64{0, 1, 2, 3, 7, 42, 1337, 0xdeadbeef, 1 << 33, ^uint64(0)}

// FuzzTripleEquivalence drives a generated program through the full oracle:
// emulator vs dense vs idle-skip vs parallel machine, plus warm-Reset and
// pool re-runs, bit-identical down to stage timestamps.
func FuzzTripleEquivalence(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	o := &Oracle{}
	f.Fuzz(func(t *testing.T, seed uint64) {
		p := Generate(seed)
		if fail := o.CheckProgram(p); fail != nil {
			t.Fatalf("%v\nprogram:\n%s", fail, p.Source)
		}
	})
}

// FuzzResetReproduces hammers the warm-machine lifecycle specifically: one
// Machine re-run repeatedly through Reset, and through a Pool whose Get
// re-arms a different scheduler configuration each time, must reproduce the
// cold run exactly.
func FuzzResetReproduces(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		p := Generate(seed)
		prog, err := minic.Compile(p.Source, minic.ModeFork)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, p.Source)
		}
		cfg := machine.DefaultConfig(p.Cores)
		m, err := machine.New(prog, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cold, err := m.Run()
		if err != nil {
			t.Fatalf("seed %d: cold run: %v\n%s", seed, err, p.Source)
		}
		for i := 0; i < 3; i++ {
			m.Reset()
			warm, err := m.Run()
			if err != nil {
				t.Fatalf("seed %d: warm run %d: %v", seed, i, err)
			}
			if diff := diffResults(cold, warm); diff != "" {
				t.Fatalf("seed %d: warm-Reset run %d diverged: %s\n%s", seed, i, diff, p.Source)
			}
		}

		// Pool path: a hit re-arms Dense/SimWorkers on the cached machine,
		// so alternating configurations through one pooled machine must
		// still match a fresh run of each configuration.
		pool := &machine.Pool{}
		const key = "fuzz-reset" // caller-chosen identity; checkPooled guards it
		for _, workers := range []int{0, 2, 0} {
			c := cfg
			c.SimWorkers = workers
			pm, err := pool.Get(key, prog, c)
			if err != nil {
				t.Fatalf("seed %d: pool get (workers=%d): %v", seed, workers, err)
			}
			got, err := pm.Run()
			if err != nil {
				t.Fatalf("seed %d: pooled run (workers=%d): %v", seed, workers, err)
			}
			pool.Put(key, pm)
			if diff := diffResults(cold, got); diff != "" {
				t.Fatalf("seed %d: pooled run (workers=%d) diverged: %s\n%s", seed, workers, diff, p.Source)
			}
		}
		if s := pool.Stats(); s.Misses != 1 || s.Hits != 2 {
			t.Fatalf("seed %d: pool stats %+v, want 1 miss + 2 hits", seed, s)
		}
	})
}
