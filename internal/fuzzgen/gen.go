// Package fuzzgen is the differential-fuzzing subsystem: a seeded generator
// of terminating mini-C programs, an equivalence oracle over the four
// execution substrates (sequential emulator, dense machine, idle-skip
// machine, parallel machine) plus warm-Reset/pool re-runs, and a
// delta-debugging minimizer that shrinks failing programs to small
// reproducers. The native fuzz targets in fuzz_test.go and the `repro fuzz`
// subcommand are thin drivers over these three pieces.
package fuzzgen

import (
	"fmt"

	"repro/internal/minic"
)

// rng is a splitmix64 generator: tiny, fast, and — unlike math/rand —
// guaranteed to produce the same stream for the same seed on every Go
// version, so corpus seeds stay meaningful forever.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int      { return int(r.next() % uint64(n)) }
func (r *rng) chance(pct int) bool { return r.intn(100) < pct }

// Program is one generated fuzz case.
type Program struct {
	// Seed reproduces the program: Generate(Seed) is deterministic.
	Seed uint64
	// Cores is the machine width the oracle should use, derived from Seed.
	Cores int
	// Source is the mini-C text. It always compiles in both modes and every
	// run terminates by construction: loops are `for` with constant trip
	// counts and protected counters, calls form an acyclic forward DAG, and
	// there is no `while`, recursion or unbounded construct to generate.
	Source string
}

// Budget constants: the generator charges every statement its dynamic
// execution count (nesting multiplies), so total dynamic work — and with it
// section counts and emulator steps — is bounded no matter what the seed
// dealt.
const (
	mainBudget   = 3000
	helperBudget = 500
)

// coreChoices are the machine widths fuzz cases run at — the small end of
// the paper's sweep, where scheduling corner cases (single core, non-power
// -of-two, ring wrap-around) live.
var coreChoices = []int{1, 2, 3, 4, 5, 8, 13, 16}

// interesting are boundary constants mixed into generated expressions.
var interesting = []uint64{
	0, 1, 2, 3, 5, 7, 8, 15, 16, 31, 63, 64, 127, 255,
	1 << 31, 1<<32 - 1, 1 << 62, 1<<63 - 1, 1 << 63, ^uint64(0),
}

type arrayInfo struct {
	name string
	size int64 // power of two, so indices mask with size-1
}

type helperInfo struct {
	name    string
	nparams int
	cost    int64 // dynamic statement cost of one invocation
}

type gen struct {
	r       *rng
	scalars []string // global scalar names
	arrays  []arrayInfo
	helpers []helperInfo // callable set: suffix of this slice (forward calls only)

	// Per-function state.
	vars      []string // readable+writable scalars in scope (params and locals)
	counters  []string // loop counters: readable, never written
	scopeMark []int    // vars length at each open scope
	nameSeq   int      // unique local-name counter
	loopDepth int
	callable  []helperInfo
	budget    int64
	mult      int64
	cost      int64 // dynamic cost accumulated for the current function
}

// Generate builds the fuzz case for a seed. Same seed, same program.
func Generate(seed uint64) *Program {
	r := newRng(seed)
	g := &gen{r: r}
	prog := minic.NewProgram()

	nScalar := 1 + r.intn(3)
	for i := 0; i < nScalar; i++ {
		name := fmt.Sprintf("g%d", i)
		ty := minic.LongType()
		if r.chance(30) {
			ty = minic.ULongType()
		}
		g.scalars = append(g.scalars, name)
		mustAdd(prog.AddGlobal(&minic.GlobalVar{Name: name, Type: ty, Init: uint64(r.intn(100))}))
	}
	nArr := 1 + r.intn(3)
	for i := 0; i < nArr; i++ {
		name := fmt.Sprintf("a%d", i)
		size := int64(4 << r.intn(3)) // 4, 8 or 16
		ty := minic.LongType()
		if r.chance(30) {
			ty = minic.ULongType()
		}
		g.arrays = append(g.arrays, arrayInfo{name: name, size: size})
		mustAdd(prog.AddGlobal(&minic.GlobalVar{Name: name, Type: minic.ArrayType(ty, size)}))
	}

	// Helpers are generated last-to-first so that fi may call fj only for
	// j > i: the call graph is an acyclic forward DAG and recursion is
	// impossible by construction. In fork mode every call is a fork/endfork
	// section, so helpers are also the generator's parallel constructs.
	nFun := r.intn(4)
	funcs := make([]*minic.Function, nFun)
	for i := nFun - 1; i >= 0; i-- {
		name := fmt.Sprintf("f%d", i+1)
		nparams := r.intn(4)
		fn := &minic.Function{Name: name, Ret: minic.LongType()}
		g.startFunction(helperBudget, g.helpers)
		for p := 0; p < nparams; p++ {
			pname := fmt.Sprintf("p%d", p)
			fn.Params = append(fn.Params, &minic.LocalVar{Name: pname, Type: minic.LongType(), Param: p})
			g.vars = append(g.vars, pname)
		}
		fn.Body = g.block(2 + g.r.intn(4))
		fn.Body = append(fn.Body, &minic.Stmt{Kind: minic.StmtReturn, E: g.expr(2)})
		g.helpers = append([]helperInfo{{name: name, nparams: nparams, cost: g.cost + 1}}, g.helpers...)
		funcs[i] = fn
	}
	for _, fn := range funcs {
		mustAdd(prog.AddFunction(fn))
	}

	mn := &minic.Function{Name: "main", Ret: minic.LongType()}
	g.startFunction(mainBudget, g.helpers)
	mn.Body = g.block(3 + g.r.intn(5))
	mn.Body = append(mn.Body, g.checksumEpilogue()...)
	mustAdd(prog.AddFunction(mn))

	return &Program{
		Seed:   seed,
		Cores:  coreChoices[r.intn(len(coreChoices))],
		Source: minic.Format(prog),
	}
}

func mustAdd(err error) {
	if err != nil {
		panic("fuzzgen: generator produced an invalid program: " + err.Error())
	}
}

func (g *gen) startFunction(budget int64, callable []helperInfo) {
	g.vars = g.vars[:0]
	g.counters = g.counters[:0]
	g.scopeMark = g.scopeMark[:0]
	g.nameSeq = 0
	g.loopDepth = 0
	g.callable = callable
	g.budget = budget
	g.mult = 1
	g.cost = 0
}

// charge deducts the dynamic cost of one statement at the current loop
// multiplier; it reports false when the budget cannot afford it.
func (g *gen) charge(c int64) bool {
	c *= g.mult
	if c > g.budget {
		return false
	}
	g.budget -= c
	g.cost += c
	return true
}

// block generates n statements in a fresh scope.
func (g *gen) block(n int) []*minic.Stmt {
	g.scopeMark = append(g.scopeMark, len(g.vars))
	var out []*minic.Stmt
	for i := 0; i < n; i++ {
		if s := g.statement(); s != nil {
			out = append(out, s)
		}
	}
	mark := g.scopeMark[len(g.scopeMark)-1]
	g.scopeMark = g.scopeMark[:len(g.scopeMark)-1]
	g.vars = g.vars[:mark]
	return out
}

func (g *gen) statement() *minic.Stmt {
	switch k := g.r.intn(100); {
	case k < 20: // local declaration
		if !g.charge(1) {
			return nil
		}
		name := fmt.Sprintf("x%d", g.nameSeq)
		g.nameSeq++
		s := &minic.Stmt{
			Kind:     minic.StmtDecl,
			Decl:     &minic.LocalVar{Name: name, Type: minic.LongType(), Param: -1},
			DeclInit: g.expr(2),
		}
		g.vars = append(g.vars, name)
		return s
	case k < 45: // scalar assignment
		if !g.charge(1) {
			return nil
		}
		return &minic.Stmt{Kind: minic.StmtExpr, E: g.assign()}
	case k < 60: // array store
		if !g.charge(1) {
			return nil
		}
		a := g.arrays[g.r.intn(len(g.arrays))]
		return &minic.Stmt{Kind: minic.StmtExpr, E: &minic.Expr{
			Kind: minic.ExprAssign,
			L:    g.indexExpr(a),
			R:    g.expr(2),
		}}
	case k < 72: // if / if-else
		if !g.charge(1) || len(g.scopeMark) > 3 {
			return nil
		}
		s := &minic.Stmt{Kind: minic.StmtIf, E: g.expr(2), Body: g.block(1 + g.r.intn(3))}
		if g.r.chance(40) {
			s.Else = g.block(1 + g.r.intn(2))
		}
		if len(s.Body) == 0 {
			return nil // "if (c) {}" formats to an empty body; skip
		}
		return s
	case k < 85: // bounded for loop
		if g.loopDepth >= 2 || len(g.scopeMark) > 3 {
			return nil
		}
		trips := int64(1 + g.r.intn(6))
		if !g.charge(1 + trips) {
			return nil
		}
		ctr := fmt.Sprintf("i%d", g.nameSeq)
		g.nameSeq++
		s := &minic.Stmt{
			Kind: minic.StmtFor,
			Init: &minic.Stmt{Kind: minic.StmtDecl,
				Decl: &minic.LocalVar{Name: ctr, Type: minic.LongType(), Param: -1}, DeclInit: num(0)},
			E: &minic.Expr{Kind: minic.ExprBinary, Op: "<", L: varRef(ctr), R: num(uint64(trips))},
			Post: &minic.Stmt{Kind: minic.StmtExpr,
				E: &minic.Expr{Kind: minic.ExprAssign, Op: "+", L: varRef(ctr), R: num(1)}},
		}
		g.counters = append(g.counters, ctr)
		g.loopDepth++
		oldMult := g.mult
		g.mult *= trips
		s.Body = g.block(1 + g.r.intn(3))
		if g.loopDepth < 2 && g.r.chance(25) {
			kind := minic.StmtContinue
			if g.r.chance(50) {
				kind = minic.StmtBreak
			}
			s.Body = append(s.Body, &minic.Stmt{Kind: minic.StmtIf,
				E:    g.expr(1),
				Body: []*minic.Stmt{{Kind: kind}},
			})
		}
		g.mult = oldMult
		g.loopDepth--
		g.counters = g.counters[:len(g.counters)-1]
		if len(s.Body) == 0 {
			s.Body = []*minic.Stmt{{Kind: minic.StmtExpr, E: g.assign()}}
		}
		return s
	default: // call a helper (statement or assigned), if one is affordable
		if call := g.callExpr(); call != nil {
			if g.r.chance(50) && len(g.writableScalars()) > 0 {
				return &minic.Stmt{Kind: minic.StmtExpr, E: &minic.Expr{
					Kind: minic.ExprAssign, L: g.writableScalar(), R: call}}
			}
			return &minic.Stmt{Kind: minic.StmtExpr, E: call}
		}
		if !g.charge(1) {
			return nil
		}
		return &minic.Stmt{Kind: minic.StmtExpr, E: g.assign()}
	}
}

// callExpr builds a call to an affordable helper, or nil.
func (g *gen) callExpr() *minic.Expr {
	if len(g.callable) == 0 {
		return nil
	}
	h := g.callable[g.r.intn(len(g.callable))]
	if !g.charge(h.cost) {
		return nil
	}
	e := &minic.Expr{Kind: minic.ExprCall, Name: h.name}
	for i := 0; i < h.nparams; i++ {
		e.Args = append(e.Args, g.expr(1))
	}
	return e
}

// writableScalars lists the assignable names in scope: globals and locals,
// never loop counters.
func (g *gen) writableScalars() []string {
	return append(append([]string{}, g.scalars...), g.vars...)
}

func (g *gen) writableScalar() *minic.Expr {
	ws := g.writableScalars()
	return varRef(ws[g.r.intn(len(ws))])
}

// assign builds a (possibly compound) scalar assignment expression.
func (g *gen) assign() *minic.Expr {
	e := &minic.Expr{Kind: minic.ExprAssign, L: g.writableScalar(), R: g.expr(2)}
	if g.r.chance(40) {
		// The grammar's compound forms are += -= *= /= %=; exclude / and %,
		// which would need the same nonzero-divisor guard for nothing the
		// plain form lacks.
		ops := []string{"+", "-", "*"}
		e.Op = ops[g.r.intn(len(ops))]
	}
	return e
}

// indexExpr builds a masked array access: a[e & (size-1)] is always in
// bounds because sizes are powers of two.
func (g *gen) indexExpr(a arrayInfo) *minic.Expr {
	return &minic.Expr{
		Kind: minic.ExprIndex,
		L:    varRef(a.name),
		R: &minic.Expr{Kind: minic.ExprBinary, Op: "&",
			L: g.expr(1), R: num(uint64(a.size - 1))},
	}
}

// expr builds an expression of bounded depth. All readable names are in
// scope and every divisor is forced odd, so the result always compiles and
// never faults.
func (g *gen) expr(depth int) *minic.Expr {
	if depth <= 0 || g.r.chance(30) {
		return g.leaf()
	}
	switch k := g.r.intn(100); {
	case k < 15: // unary
		ops := []string{"-", "~", "!"}
		return &minic.Expr{Kind: minic.ExprUnary, Op: ops[g.r.intn(len(ops))], L: g.expr(depth - 1)}
	case k < 75: // binary
		ops := []string{"+", "-", "*", "&", "|", "^", "<<", ">>", "/", "%",
			"<", "<=", ">", ">=", "==", "!=", "&&", "||"}
		op := ops[g.r.intn(len(ops))]
		l := g.expr(depth - 1)
		r := g.expr(depth - 1)
		if op == "/" || op == "%" {
			// Both substrates fault identically on a zero divisor, so a
			// division fault is not a divergence — just a wasted case.
			// (e | 1) keeps every divisor nonzero.
			r = &minic.Expr{Kind: minic.ExprBinary, Op: "|", L: r, R: num(1)}
		}
		return &minic.Expr{Kind: minic.ExprBinary, Op: op, L: l, R: r}
	case k < 85: // ternary
		return &minic.Expr{Kind: minic.ExprCond,
			C: g.expr(depth - 1), L: g.expr(depth - 1), R: g.expr(depth - 1)}
	default:
		return g.leaf()
	}
}

func (g *gen) leaf() *minic.Expr {
	readable := append(append(append([]string{}, g.scalars...), g.vars...), g.counters...)
	switch k := g.r.intn(100); {
	case k < 35: // constant
		v := interesting[g.r.intn(len(interesting))]
		if g.r.chance(30) {
			v = uint64(g.r.intn(1000))
		}
		if g.r.chance(20) {
			return &minic.Expr{Kind: minic.ExprUnary, Op: "-", L: num(v)}
		}
		return num(v)
	case k < 75: // scalar variable
		return varRef(readable[g.r.intn(len(readable))])
	default: // array load
		a := g.arrays[g.r.intn(len(g.arrays))]
		return &minic.Expr{
			Kind: minic.ExprIndex,
			L:    varRef(a.name),
			R: &minic.Expr{Kind: minic.ExprBinary, Op: "&",
				L: varRef(readable[g.r.intn(len(readable))]), R: num(uint64(a.size - 1))},
		}
	}
}

// checksumEpilogue folds every array element and every global scalar into
// one value and returns it, so RAX alone witnesses the whole final state —
// on top of the oracle's word-by-word data-segment comparison.
func (g *gen) checksumEpilogue() []*minic.Stmt {
	out := []*minic.Stmt{{
		Kind:     minic.StmtDecl,
		Decl:     &minic.LocalVar{Name: "chk", Type: minic.LongType(), Param: -1},
		DeclInit: num(0),
	}}
	fold := func(e *minic.Expr) *minic.Expr {
		return &minic.Expr{Kind: minic.ExprAssign, L: varRef("chk"),
			R: &minic.Expr{Kind: minic.ExprBinary, Op: "+",
				L: &minic.Expr{Kind: minic.ExprBinary, Op: "*", L: varRef("chk"), R: num(31)},
				R: e}}
	}
	for i, a := range g.arrays {
		ctr := fmt.Sprintf("c%d", i)
		out = append(out, &minic.Stmt{
			Kind: minic.StmtFor,
			Init: &minic.Stmt{Kind: minic.StmtDecl,
				Decl: &minic.LocalVar{Name: ctr, Type: minic.LongType(), Param: -1}, DeclInit: num(0)},
			E: &minic.Expr{Kind: minic.ExprBinary, Op: "<", L: varRef(ctr), R: num(uint64(a.size))},
			Post: &minic.Stmt{Kind: minic.StmtExpr,
				E: &minic.Expr{Kind: minic.ExprAssign, Op: "+", L: varRef(ctr), R: num(1)}},
			Body: []*minic.Stmt{{Kind: minic.StmtExpr,
				E: fold(&minic.Expr{Kind: minic.ExprIndex, L: varRef(a.name), R: varRef(ctr)})}},
		})
	}
	for _, s := range g.scalars {
		out = append(out, &minic.Stmt{Kind: minic.StmtExpr, E: fold(varRef(s))})
	}
	return append(out, &minic.Stmt{Kind: minic.StmtReturn, E: varRef("chk")})
}

func num(v uint64) *minic.Expr    { return &minic.Expr{Kind: minic.ExprNum, Num: v} }
func varRef(n string) *minic.Expr { return &minic.Expr{Kind: minic.ExprVar, Name: n} }
