package fuzzgen

import (
	"repro/internal/minic"
)

// Minimize delta-debugs src down to a smaller program for which keep still
// returns true. keep is the invariant to preserve — for a fuzz failure,
// "the oracle still fails the same way"; candidates that no longer compile
// are naturally rejected by a keep built on the oracle, because a compile
// failure is a different failure stage.
//
// The algorithm parses the current program, enumerates structural mutations
// (drop a statement, a global or a function; unwrap a branch or loop body;
// kill a loop; simplify an expression), and greedily accepts any mutation
// that strictly shrinks the formatted source while keep holds — restarting
// the enumeration after each acceptance, until no mutation is accepted.
// Strict shrinkage is the termination argument. Loop conditions are only
// ever replaced by the constant 0 (never a sub-expression that could be
// constant-true), and loop init/post clauses are never touched, so no
// mutation can turn a terminating program into a non-terminating one — and
// the oracle's bounded emulator leg catches any runaway candidate anyway.
func Minimize(src string, keep func(string) bool) string {
	p, err := minic.Parse(src)
	if err != nil {
		return src
	}
	cur := minic.Format(p)
	i := 0
	for {
		p, err := minic.Parse(cur)
		if err != nil {
			return cur // unreachable: cur is Format output
		}
		muts := collectMutations(p)
		if i >= len(muts) {
			return cur
		}
		muts[i]()
		cand := minic.Format(p)
		if len(cand) < len(cur) && keep(cand) {
			cur = cand
			i = 0
		} else {
			i++
		}
	}
}

// collectMutations enumerates single mutations of p as closures. Each
// closure is applied at most once, to the very AST it was collected from;
// the caller re-parses before collecting again.
func collectMutations(p *minic.Program) []func() {
	var muts []func()
	for i := range p.Globals {
		i := i
		muts = append(muts, func() {
			p.Globals = append(p.Globals[:i:i], p.Globals[i+1:]...)
		})
	}
	for i, fn := range p.Functions {
		if fn.Name != "main" {
			i := i
			muts = append(muts, func() {
				p.Functions = append(p.Functions[:i:i], p.Functions[i+1:]...)
			})
		}
	}
	for _, fn := range p.Functions {
		fn := fn
		muts = collectStmts(muts, &fn.Body)
	}
	return muts
}

// collectStmts enumerates mutations of one statement list, recursing.
func collectStmts(muts []func(), list *[]*minic.Stmt) []func() {
	for i, s := range *list {
		i, s := i, s
		// Drop the statement.
		muts = append(muts, func() {
			*list = append((*list)[:i:i], (*list)[i+1:]...)
		})
		splice := func(body []*minic.Stmt) func() {
			return func() {
				rest := append([]*minic.Stmt{}, (*list)[i+1:]...)
				*list = append(append((*list)[:i:i], body...), rest...)
			}
		}
		switch s.Kind {
		case minic.StmtIf:
			muts = append(muts, splice(s.Body))
			if len(s.Else) > 0 {
				muts = append(muts, splice(s.Else))
				muts = append(muts, func() { s.Else = nil })
			}
			muts = collectExpr(muts, &s.E)
			muts = collectStmts(muts, &s.Body)
			muts = collectStmts(muts, &s.Else)
		case minic.StmtWhile, minic.StmtFor:
			// Kill the loop (condition 0 never runs the body) or unwrap it
			// to a single straight-line iteration. The condition's
			// sub-expressions and the for init/post clauses are off limits:
			// replacing a sub-term could make the condition constant-true.
			muts = append(muts, func() { s.E = &minic.Expr{Kind: minic.ExprNum, Num: 0} })
			muts = append(muts, splice(s.Body))
			muts = collectStmts(muts, &s.Body)
		case minic.StmtBlock:
			muts = append(muts, splice(s.Body))
			muts = collectStmts(muts, &s.Body)
		case minic.StmtExpr:
			muts = collectExpr(muts, &s.E)
		case minic.StmtDecl:
			if s.DeclInit != nil {
				muts = collectExpr(muts, &s.DeclInit)
			}
		case minic.StmtReturn:
			if s.E != nil {
				muts = collectExpr(muts, &s.E)
			}
		}
	}
	return muts
}

// collectExpr enumerates simplifications of one expression slot: replace it
// with a constant, with one of its operands, or narrow a literal; then
// recurse into the children. Candidates that break typing (e.g. replacing
// an lvalue with 0) simply fail to compile and are rejected by keep.
func collectExpr(muts []func(), slot **minic.Expr) []func() {
	e := *slot
	set := func(to *minic.Expr) func() { return func() { *slot = to } }
	if e.Kind != minic.ExprNum {
		muts = append(muts, set(&minic.Expr{Kind: minic.ExprNum, Num: 0}))
	} else if e.Num > 9 {
		muts = append(muts, set(&minic.Expr{Kind: minic.ExprNum, Num: e.Num / 10}))
	}
	switch e.Kind {
	case minic.ExprBinary:
		muts = append(muts, set(e.L), set(e.R))
		muts = collectExpr(muts, &e.L)
		muts = collectExpr(muts, &e.R)
	case minic.ExprUnary:
		muts = append(muts, set(e.L))
		muts = collectExpr(muts, &e.L)
	case minic.ExprAssign:
		muts = append(muts, set(e.R))
		muts = collectExpr(muts, &e.R)
		if e.L.Kind == minic.ExprIndex { // simplify the index, keep the lvalue
			muts = collectExpr(muts, &e.L.R)
		}
	case minic.ExprCond:
		muts = append(muts, set(e.L), set(e.R))
		muts = collectExpr(muts, &e.C)
		muts = collectExpr(muts, &e.L)
		muts = collectExpr(muts, &e.R)
	case minic.ExprIndex:
		muts = append(muts, set(e.R))
		muts = collectExpr(muts, &e.R)
	case minic.ExprCall:
		for i := range e.Args {
			muts = append(muts, set(e.Args[i]))
			muts = collectExpr(muts, &e.Args[i])
		}
	}
	return muts
}
