package fuzzgen

import (
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/minic"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 1 << 40, ^uint64(0)} {
		a, b := Generate(seed), Generate(seed)
		if a.Source != b.Source || a.Cores != b.Cores {
			t.Errorf("seed %d: Generate is not deterministic", seed)
		}
	}
}

// TestGeneratedPrograms pins the generator's contract over a window of
// seeds: every program compiles in both modes, is a Format fixpoint (so the
// minimizer can round-trip it), terminates quickly on the emulator, and
// asks for a legal core count.
func TestGeneratedPrograms(t *testing.T) {
	seeds := 300
	if testing.Short() {
		seeds = 60
	}
	for seed := 0; seed < seeds; seed++ {
		p := Generate(uint64(seed))
		if p.Cores < 1 || p.Cores > 16 {
			t.Fatalf("seed %d: cores = %d", seed, p.Cores)
		}
		ast, err := minic.Parse(p.Source)
		if err != nil {
			t.Fatalf("seed %d: generated source does not parse: %v\n%s", seed, err, p.Source)
		}
		if got := minic.Format(ast); got != p.Source {
			t.Fatalf("seed %d: source is not a Format fixpoint", seed)
		}
		if _, err := minic.Compile(p.Source, minic.ModeCall); err != nil {
			t.Fatalf("seed %d: call mode: %v\n%s", seed, err, p.Source)
		}
		prog, err := minic.Compile(p.Source, minic.ModeFork)
		if err != nil {
			t.Fatalf("seed %d: fork mode: %v\n%s", seed, err, p.Source)
		}
		cpu := emu.New(prog)
		cpu.MaxSteps = 1 << 20 // far above any budget-respecting program
		if _, err := cpu.Run(); err != nil {
			t.Fatalf("seed %d: emulator: %v\n%s", seed, err, p.Source)
		}
	}
}

// TestGeneratorVariety guards against the generator silently collapsing:
// across a seed window it must emit loops, branches, calls (fork sections),
// array stores and division — the constructs the oracle exists to cross.
func TestGeneratorVariety(t *testing.T) {
	var all strings.Builder
	for seed := 0; seed < 100; seed++ {
		all.WriteString(Generate(uint64(seed)).Source)
	}
	src := all.String()
	for _, construct := range []string{"for (", "if (", "f1(", " / ", " % ", "] = ", "?", "&&"} {
		if !strings.Contains(src, construct) {
			t.Errorf("no %q anywhere in 100 seeds", construct)
		}
	}
}

func TestOracleAcceptsGenerated(t *testing.T) {
	o := &Oracle{}
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		p := Generate(uint64(seed))
		if f := o.CheckProgram(p); f != nil {
			t.Errorf("seed %d: %v\n%s", seed, f, p.Source)
		}
	}
}

// TestOracleCatchesMismatch feeds the oracle a hand-broken pair by proxy:
// a program whose behaviour is fine, checked at a bogus stage — the compile
// stage must classify, not panic, and carry the position of the error.
func TestOracleCatchesBadProgram(t *testing.T) {
	o := &Oracle{}
	f := o.Check("long main(void) { return x; }", 2)
	if f == nil || f.Stage != "compile" {
		t.Fatalf("oracle on malformed program = %v, want compile-stage failure", f)
	}
	if !strings.Contains(f.Detail, "line 1") {
		t.Errorf("compile failure lacks position: %q", f.Detail)
	}
	if !strings.Contains(f.Error(), "compile") {
		t.Errorf("Failure.Error() = %q", f.Error())
	}
}
