package fuzzgen

import (
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/minic"
)

// compilesAndReturns runs src on the emulator (fork mode, bounded) and
// reports its result; ok is false when it does not compile or run.
func compilesAndReturns(src string) (uint64, bool) {
	prog, err := minic.Compile(src, minic.ModeFork)
	if err != nil {
		return 0, false
	}
	cpu := emu.New(prog)
	cpu.MaxSteps = 1 << 20
	if _, err := cpu.Run(); err != nil {
		return 0, false
	}
	return cpu.Result(), true
}

// TestMinimizeShrinksGenerated minimizes a generated program under a
// behavioural keep — "still compiles and still returns the same checksum" —
// the same shape of predicate the fuzz driver uses, with the oracle swapped
// for the cheap emulator.
func TestMinimizeShrinksGenerated(t *testing.T) {
	src := Generate(42).Source
	want, ok := compilesAndReturns(src)
	if !ok {
		t.Fatal("seed program does not run")
	}
	keep := func(s string) bool {
		got, ok := compilesAndReturns(s)
		return ok && got == want
	}
	min := Minimize(src, keep)
	if !keep(min) {
		t.Fatalf("minimized program violates keep:\n%s", min)
	}
	if len(min) >= len(src) {
		t.Errorf("no shrink: %d -> %d bytes", len(src), len(min))
	}
	// Idempotent: a second pass finds nothing more.
	if again := Minimize(min, keep); again != min {
		t.Errorf("second Minimize pass shrank further: %d -> %d bytes", len(min), len(again))
	}
}

// TestMinimizeTargeted pins that minimization homes in on the one statement
// the predicate needs: everything except the marker store is deletable.
func TestMinimizeTargeted(t *testing.T) {
	src := `long g0 = 1;
long g1 = 2;
long a0[8];

long helper(long x) {
    return x * 3;
}

long main(void) {
    long t = 0;
    for (long i = 0; i < 6; i += 1) {
        t += helper(i) + g1;
    }
    a0[2] = 77;
    g0 = t;
    return t;
}
`
	keep := func(s string) bool {
		if !strings.Contains(s, "a0[2] = 77") {
			return false
		}
		_, ok := compilesAndReturns(s)
		return ok
	}
	min := Minimize(src, keep)
	if !keep(min) {
		t.Fatalf("minimized program violates keep:\n%s", min)
	}
	for _, gone := range []string{"helper", "for (", "g1"} {
		if strings.Contains(min, gone) {
			t.Errorf("minimized program still contains %q:\n%s", gone, min)
		}
	}
}

// TestMinimizeNeverKept: when keep rejects everything, the input comes back
// canonicalized but otherwise untouched.
func TestMinimizeNeverKept(t *testing.T) {
	src := Generate(7).Source
	min := Minimize(src, func(string) bool { return false })
	if min != src {
		t.Errorf("Minimize under always-false keep altered the program")
	}
}

// TestMinimizeLoopSafety: mutations around loops cannot hang the minimizer.
// The program's while-loop exits through break; deleting the break would
// make it infinite, so any keep built on a bounded runner must reject that
// candidate — and Minimize must come back in finite time regardless.
func TestMinimizeLoopSafety(t *testing.T) {
	src := `long g0;

long main(void) {
    long n = 0;
    while (1) {
        n += 1;
        if (n > 5) {
            break;
        }
    }
    g0 = n;
    return n;
}
`
	keep := func(s string) bool {
		got, ok := compilesAndReturns(s)
		return ok && got == 6
	}
	min := Minimize(src, keep)
	if got, ok := compilesAndReturns(min); !ok || got != 6 {
		t.Fatalf("minimized loop program returns %d (ok=%v):\n%s", got, ok, min)
	}
}

func TestMinimizeMalformedInput(t *testing.T) {
	src := "not a program"
	if got := Minimize(src, func(string) bool { return true }); got != src {
		t.Errorf("Minimize on unparseable input = %q, want input back", got)
	}
}
