package fuzzgen

import (
	"fmt"
	"reflect"

	"repro/internal/backend"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/minic"
)

// Failure describes a fuzz case that broke the equivalence invariant.
// It implements error so drivers can return it directly.
type Failure struct {
	// Seed regenerates the original program; zero when the source did not
	// come from Generate (e.g. a minimized candidate).
	Seed uint64
	// Source is the failing mini-C program.
	Source string
	// Cores is the machine width the oracle ran at.
	Cores int
	// Stage classifies the failure: "compile", "emulator" (the sequential
	// oracle itself faulted), "machine" (a machine leg faulted), or
	// "mismatch" (two substrates disagreed).
	Stage string
	// Detail is the human-readable specifics: which legs, which metric.
	Detail string
}

func (f *Failure) Error() string {
	return fmt.Sprintf("fuzz seed %d (cores=%d) %s: %s", f.Seed, f.Cores, f.Stage, f.Detail)
}

// Oracle checks the repo's core invariant on one program: emulator ≡ dense
// machine ≡ idle-skip machine ≡ parallel machine — checksums, final data
// segments, and per-instruction stage timestamps — and the machine legs
// reproduce bit-identically across warm Reset and pool reuse.
type Oracle struct {
	// SimWorkers are the parallel-scheduler widths to test; default {2, 4}.
	// Values above the host width are deliberate: they force cross-worker
	// handoff even on narrow CI machines.
	SimWorkers []int
	// MaxSteps bounds the emulator leg; 0 uses a fuzz-sized default large
	// enough for any generator budget and small enough to fail fast on a
	// runaway minimizer candidate.
	MaxSteps int64
}

const fuzzMaxSteps = 1 << 22 // ~4M steps; generator programs use a few thousand

func (o *Oracle) simWorkers() []int {
	if len(o.SimWorkers) == 0 {
		return []int{2, 4}
	}
	return o.SimWorkers
}

// CheckProgram runs a generated case through the full oracle.
func (o *Oracle) CheckProgram(p *Program) *Failure {
	f := o.Check(p.Source, p.Cores)
	if f != nil {
		f.Seed = p.Seed
	}
	return f
}

// Check compiles src once in fork mode and runs the compiled program on
// every substrate, returning nil if all agree or a Failure describing the
// first divergence. Compiling once is load-bearing: timing rows carry
// instruction pointers, so bit-identity is only meaningful against the same
// compilation.
func (o *Oracle) Check(src string, cores int) *Failure {
	fail := func(stage, format string, args ...any) *Failure {
		return &Failure{Source: src, Cores: cores, Stage: stage, Detail: fmt.Sprintf(format, args...)}
	}

	prog, err := minic.Compile(src, minic.ModeFork)
	if err != nil {
		return fail("compile", "%v", err)
	}

	// Substrate 1: the sequential emulator, bounded so that a minimizer
	// candidate that loops forever dies here instead of hanging a slower
	// machine leg.
	em := backend.NewEmulator()
	em.MaxSteps = o.MaxSteps
	if em.MaxSteps == 0 {
		em.MaxSteps = fuzzMaxSteps
	}
	emuRes, err := em.Run(prog, nil, false)
	if err != nil {
		return fail("emulator", "%v", err)
	}

	// Substrate 2: the idle-skip machine is the reference all other machine
	// legs are compared against.
	runLeg := func(dense bool, workers int) (*backend.Result, error) {
		cfg := machine.DefaultConfig(cores)
		cfg.Dense = dense
		cfg.SimWorkers = workers
		mb := &backend.Machine{Cfg: cfg}
		return mb.Run(prog, nil, false)
	}
	ref, err := runLeg(false, 0)
	if err != nil {
		return fail("machine", "idle-skip: %v", err)
	}

	// Emulator vs machine: architectural state (rax + full data segment).
	if emuRes.RAX != ref.RAX {
		return fail("mismatch", "emulator rax=%d, idle-skip machine rax=%d", emuRes.RAX, ref.RAX)
	}
	for off := uint64(0); off < uint64(len(prog.Data)); off += 8 {
		addr := isa.DataBase + off
		if a, b := emuRes.Mem.ReadU64(addr), ref.Mem.ReadU64(addr); a != b {
			return fail("mismatch", "data[%#x]: emulator=%d, idle-skip machine=%d", addr, a, b)
		}
	}

	// Substrates 3 and 4: dense and parallel legs must be bit-identical to
	// the idle-skip reference, stage timestamps included.
	legs := []struct {
		label   string
		dense   bool
		workers int
	}{{"dense", true, 0}}
	for _, w := range o.simWorkers() {
		legs = append(legs, struct {
			label   string
			dense   bool
			workers int
		}{fmt.Sprintf("parallel(workers=%d)", w), false, w})
	}
	for _, leg := range legs {
		res, err := runLeg(leg.dense, leg.workers)
		if err != nil {
			return fail("machine", "%s: %v", leg.label, err)
		}
		if diff := diffResults(ref.Machine, res.Machine); diff != "" {
			return fail("mismatch", "idle-skip vs %s: %s", leg.label, diff)
		}
	}

	// Warm re-runs: the same Machine after Reset, and a pool Get → Put →
	// Get cycle, must reproduce the cold run bit for bit.
	cfg := machine.DefaultConfig(cores)
	m, err := machine.New(prog, cfg)
	if err != nil {
		return fail("machine", "construct: %v", err)
	}
	cold, err := m.Run()
	if err != nil {
		return fail("machine", "cold run: %v", err)
	}
	if diff := diffResults(ref.Machine, cold); diff != "" {
		return fail("mismatch", "idle-skip vs fresh construction: %s", diff)
	}
	m.Reset()
	warm, err := m.Run()
	if err != nil {
		return fail("machine", "warm run after Reset: %v", err)
	}
	if diff := diffResults(cold, warm); diff != "" {
		return fail("mismatch", "cold vs warm-Reset re-run: %s", diff)
	}

	pool := &machine.Pool{}
	const key = "fuzz"
	pm, err := pool.Get(key, prog, cfg)
	if err != nil {
		return fail("machine", "pool get: %v", err)
	}
	if _, err := pm.Run(); err != nil {
		return fail("machine", "pooled cold run: %v", err)
	}
	pool.Put(key, pm)
	pm, err = pool.Get(key, prog, cfg) // warm hit: comes back via Reset
	if err != nil {
		return fail("machine", "pool warm get: %v", err)
	}
	pooled, err := pm.Run()
	if err != nil {
		return fail("machine", "pooled warm run: %v", err)
	}
	if diff := diffResults(ref.Machine, pooled); diff != "" {
		return fail("mismatch", "idle-skip vs pooled warm re-run: %s", diff)
	}
	if s := pool.Stats(); s.Hits != 1 || s.Misses != 1 {
		return fail("machine", "pool stats hits=%d misses=%d, want 1/1", s.Hits, s.Misses)
	}

	return nil
}

// diffResults compares two machine results for bit-identity — the same
// fields the scheduler oracle test pins: headline metrics, final register
// files, section records, and every per-instruction stage-timestamp row.
// It returns "" when identical, else a description of the first difference.
func diffResults(a, b *machine.Result) string {
	switch {
	case a.Cycles != b.Cycles:
		return fmt.Sprintf("cycles %d vs %d", a.Cycles, b.Cycles)
	case a.Instructions != b.Instructions:
		return fmt.Sprintf("instructions %d vs %d", a.Instructions, b.Instructions)
	case a.RAX != b.RAX:
		return fmt.Sprintf("rax %d vs %d", a.RAX, b.RAX)
	case a.FetchDone != b.FetchDone:
		return fmt.Sprintf("fetchDone %d vs %d", a.FetchDone, b.FetchDone)
	case a.RetireDone != b.RetireDone:
		return fmt.Sprintf("retireDone %d vs %d", a.RetireDone, b.RetireDone)
	case a.RegRequests != b.RegRequests:
		return fmt.Sprintf("regRequests %d vs %d", a.RegRequests, b.RegRequests)
	case a.MemRequests != b.MemRequests:
		return fmt.Sprintf("memRequests %d vs %d", a.MemRequests, b.MemRequests)
	case a.CreateMessages != b.CreateMessages:
		return fmt.Sprintf("createMessages %d vs %d", a.CreateMessages, b.CreateMessages)
	case a.RequestHops != b.RequestHops:
		return fmt.Sprintf("requestHops %d vs %d", a.RequestHops, b.RequestHops)
	case a.ResponseMessages != b.ResponseMessages:
		return fmt.Sprintf("responseMessages %d vs %d", a.ResponseMessages, b.ResponseMessages)
	case a.DMHAnswers != b.DMHAnswers:
		return fmt.Sprintf("dmhAnswers %d vs %d", a.DMHAnswers, b.DMHAnswers)
	}
	if a.Regs != b.Regs {
		return "final register files differ"
	}
	if !reflect.DeepEqual(a.Sections, b.Sections) {
		return "section records differ"
	}
	if len(a.Timings) != len(b.Timings) {
		return fmt.Sprintf("%d vs %d timing rows", len(a.Timings), len(b.Timings))
	}
	for i := range a.Timings {
		if a.Timings[i] != b.Timings[i] {
			return fmt.Sprintf("timing row %d: %+v vs %+v", i, a.Timings[i], b.Timings[i])
		}
	}
	return ""
}
