// Package isa defines the x86-flavoured instruction set used throughout the
// reproduction: registers, opcodes, operands and addressing modes, and the
// Instruction type shared by the assembler, the functional emulator, the
// trace-based ILP analyser and the many-core machine simulator.
//
// The ISA is the ~25-instruction subset the paper's own examples use
// (Figs. 2 and 5), written in gas (AT&T) syntax with the destination as the
// rightmost operand, extended with the paper's two new control instructions:
//
//	fork    target   // start a new section at the next instruction,
//	                 // continue this flow at target (no return address)
//	endfork          // terminate the current section (no return)
//
// Code addresses are instruction indices (one instruction per code address);
// data addresses are byte addresses in a separate data/stack space. All data
// operations are 64-bit ("q" suffix).
package isa

import "fmt"

// Reg identifies an architectural register. The numbering follows the SysV
// x86-64 convention so that disassembly matches the paper's listings.
type Reg uint8

// Architectural registers. Flags is modelled as an explicit register so that
// the dependence analyses can track cmp→jcc producer/consumer pairs exactly
// like data dependences.
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	Flags // condition codes, written by cmp/test/ALU ops, read by jcc/setcc
	NumRegs
)

var regNames = [NumRegs]string{
	"rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
	"r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15", "flags",
}

// String returns the gas-style register name without the % sigil.
func (r Reg) String() string {
	if r < NumRegs {
		return regNames[r]
	}
	return fmt.Sprintf("r?%d", uint8(r))
}

// ParseReg maps a register name (without %) to its Reg value.
func ParseReg(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	return 0, false
}

// IsGPR reports whether r is a general-purpose register (not Flags).
func (r Reg) IsGPR() bool { return r < Flags }

// RegMask is a bitset over the architectural registers, the allocation-free
// representation of small register sets (dependence analyses, the
// simulator's address-source classification and read/write deduplication).
type RegMask uint32

// The register file must fit in a RegMask (compile-time check: the shift
// overflows the untyped constant if NumRegs outgrows 32).
const _ RegMask = 1 << (NumRegs - 1)

// Has reports whether r is in the set.
func (m RegMask) Has(r Reg) bool { return m&(1<<r) != 0 }

// Add inserts r into the set.
func (m *RegMask) Add(r Reg) { *m |= 1 << r }

// Op enumerates the instruction opcodes.
type Op uint8

// Opcodes. Operand order follows gas: src first, dst last.
const (
	NOP Op = iota

	// Data movement.
	MOV // movq src, dst (reg/imm/mem -> reg, reg/imm -> mem)
	LEA // leaq mem, reg (address computation only)

	// Integer ALU, two-operand: dst = dst OP src. Set Flags.
	ADD
	SUB
	AND
	OR
	XOR
	IMUL // two-operand signed multiply (no flags dependence downstream used)
	SHL  // shift left by imm or %rcx (low 6 bits)
	SHR  // logical shift right
	SAR  // arithmetic shift right

	// One-operand ALU. Set Flags.
	NEG
	NOT // does not set flags on real x86; we follow x86 (no flags write)
	INC
	DEC

	// Division: unsigned divq src divides rdx:rax by src; quotient -> rax,
	// remainder -> rdx. cqto sign-extends rax into rdx for idivq.
	DIV
	IDIV
	CQTO

	// Comparison: set Flags only.
	CMP  // cmpq src, dst : flags from dst - src
	TEST // testq src, dst : flags from dst & src

	// Conditional set: setCC dst (dst = 0/1 from Flags).
	SETcc

	// Stack.
	PUSH // pushq src : rsp -= 8; [rsp] = src
	POP  // popq dst  : dst = [rsp]; rsp += 8

	// Control flow.
	JMP  // unconditional, direct target
	Jcc  // conditional, direct target
	CALL // push next code address (as a data value on the stack); jump
	RET  // pop code address; jump

	// The paper's additions.
	FORK    // start new section at next instruction; continue at target
	ENDFORK // terminate the current section

	HLT // stop the machine (end of program)

	NumOps
)

var opNames = [NumOps]string{
	"nop", "movq", "leaq",
	"addq", "subq", "andq", "orq", "xorq", "imulq", "shlq", "shrq", "sarq",
	"negq", "notq", "incq", "decq",
	"divq", "idivq", "cqto",
	"cmpq", "testq", "set",
	"pushq", "popq",
	"jmp", "j", "call", "ret",
	"fork", "endfork",
	"hlt",
}

// String returns the gas mnemonic (without condition suffix for Jcc/SETcc).
func (o Op) String() string {
	if o < NumOps {
		return opNames[o]
	}
	return fmt.Sprintf("op?%d", uint8(o))
}

// Cond enumerates condition codes for Jcc and SETcc.
type Cond uint8

// Condition codes, matching x86 semantics over the Flags register.
const (
	CondE  Cond = iota // equal: ZF
	CondNE             // not equal: !ZF
	CondA              // unsigned above: !CF && !ZF
	CondAE             // unsigned above or equal: !CF
	CondB              // unsigned below: CF
	CondBE             // unsigned below or equal: CF || ZF
	CondG              // signed greater: !ZF && SF==OF
	CondGE             // signed greater or equal: SF==OF
	CondL              // signed less: SF!=OF
	CondLE             // signed less or equal: ZF || SF!=OF
	CondS              // sign: SF
	CondNS             // not sign: !SF
	NumConds
)

var condNames = [NumConds]string{"e", "ne", "a", "ae", "b", "be", "g", "ge", "l", "le", "s", "ns"}

// String returns the x86 condition suffix ("e", "ne", "a", ...).
func (c Cond) String() string {
	if c < NumConds {
		return condNames[c]
	}
	return fmt.Sprintf("cc?%d", uint8(c))
}

// ParseCond maps a condition suffix to its Cond value.
func ParseCond(s string) (Cond, bool) {
	for i, n := range condNames {
		if n == s {
			return Cond(i), true
		}
	}
	return 0, false
}

// FlagsVal packs the four condition flags into a register-sized value so that
// Flags flows through the same 64-bit datapaths as every other register.
type FlagsVal uint64

// Flag bit positions within a FlagsVal.
const (
	FlagZ FlagsVal = 1 << iota
	FlagS
	FlagC
	FlagO
)

// Eval evaluates condition c against packed flags f.
func (c Cond) Eval(f FlagsVal) bool {
	zf := f&FlagZ != 0
	sf := f&FlagS != 0
	cf := f&FlagC != 0
	of := f&FlagO != 0
	switch c {
	case CondE:
		return zf
	case CondNE:
		return !zf
	case CondA:
		return !cf && !zf
	case CondAE:
		return !cf
	case CondB:
		return cf
	case CondBE:
		return cf || zf
	case CondG:
		return !zf && sf == of
	case CondGE:
		return sf == of
	case CondL:
		return sf != of
	case CondLE:
		return zf || sf != of
	case CondS:
		return sf
	case CondNS:
		return !sf
	}
	return false
}

// OperandKind discriminates Operand variants.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindReg              // %rax
	KindImm              // $42 (also resolved label addresses for jumps)
	KindMem              // disp(base,index,scale)
)

// Operand is one instruction operand. Mem operands use the full x86 form
// disp(base,index,scale); Base/Index of NumRegs mean "absent".
type Operand struct {
	Kind  OperandKind
	Reg   Reg    // KindReg
	Imm   int64  // KindImm: value; KindMem: displacement
	Base  Reg    // KindMem
	Index Reg    // KindMem
	Scale uint8  // KindMem: 1, 2, 4 or 8
	Sym   string // optional symbol name the Imm/displacement came from
}

// NoReg marks an absent base or index register in a Mem operand.
const NoReg = NumRegs

// RegOp returns a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// ImmOp returns an immediate operand.
func ImmOp(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// MemOp returns a memory operand disp(base,index,scale).
func MemOp(disp int64, base, index Reg, scale uint8) Operand {
	if scale == 0 {
		scale = 1
	}
	return Operand{Kind: KindMem, Imm: disp, Base: base, Index: index, Scale: scale}
}

// MemBase returns the common disp(base) memory operand.
func MemBase(disp int64, base Reg) Operand { return MemOp(disp, base, NoReg, 1) }

// String renders the operand in gas syntax.
func (o Operand) String() string {
	switch o.Kind {
	case KindNone:
		return ""
	case KindReg:
		return "%" + o.Reg.String()
	case KindImm:
		if o.Sym != "" {
			return "$" + o.Sym
		}
		return fmt.Sprintf("$%d", o.Imm)
	case KindMem:
		s := ""
		if o.Sym != "" {
			s = o.Sym
			if o.Imm != 0 {
				s += fmt.Sprintf("%+d", o.Imm)
			}
		} else if o.Imm != 0 {
			s = fmt.Sprintf("%d", o.Imm)
		}
		if o.Base == NoReg && o.Index == NoReg {
			return s
		}
		s += "("
		if o.Base != NoReg {
			s += "%" + o.Base.String()
		}
		if o.Index != NoReg {
			s += ",%" + o.Index.String()
			s += fmt.Sprintf(",%d", o.Scale)
		}
		return s + ")"
	}
	return "?"
}

// Instruction is one decoded instruction. For two-operand forms Src is the
// gas first operand and Dst the second (destination). Control instructions
// put their target code address in Target (an instruction index).
type Instruction struct {
	Op     Op
	Cond   Cond // for Jcc / SETcc
	Src    Operand
	Dst    Operand
	Target int64  // code address for JMP/Jcc/CALL/FORK
	Label  string // symbolic target, kept for disassembly
}

// String disassembles the instruction in gas syntax.
func (in Instruction) String() string {
	switch in.Op {
	case NOP, CQTO, RET, ENDFORK, HLT:
		return in.Op.String()
	case JMP, CALL, FORK:
		if in.Label != "" {
			return fmt.Sprintf("%s %s", in.Op, in.Label)
		}
		return fmt.Sprintf("%s %d", in.Op, in.Target)
	case Jcc:
		if in.Label != "" {
			return fmt.Sprintf("j%s %s", in.Cond, in.Label)
		}
		return fmt.Sprintf("j%s %d", in.Cond, in.Target)
	case SETcc:
		return fmt.Sprintf("set%s %s", in.Cond, in.Dst)
	case NEG, NOT, INC, DEC, DIV, IDIV, POP:
		return fmt.Sprintf("%s %s", in.Op, in.Dst)
	case PUSH:
		return fmt.Sprintf("%s %s", in.Op, in.Src)
	default:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Src, in.Dst)
	}
}

// Class groups opcodes by their pipeline treatment in the paper's core.
type Class uint8

// Instruction classes. The fetch-decode stage computes ClassSimple and
// ClassControl instructions in-stage when their sources are full; loads,
// stores and complex integer ops (mul/div) execute later, out of order.
const (
	ClassSimple  Class = iota // ALU computable in the fetch-decode stage
	ClassComplex              // imul/div: executed in the EW stage only
	ClassLoad                 // reads data memory
	ClassStore                // writes data memory
	ClassControl              // jmp/jcc/call/ret/fork/endfork/hlt
)

// Classify returns the pipeline class of the instruction. MOV/ALU forms with
// a memory source are loads; forms with a memory destination are stores.
// PUSH/POP are store/load plus an rsp update.
func (in *Instruction) Classify() Class {
	switch in.Op {
	case JMP, Jcc, CALL, RET, FORK, ENDFORK, HLT:
		return ClassControl
	case IMUL, DIV, IDIV:
		if in.Src.Kind == KindMem {
			return ClassLoad
		}
		return ClassComplex
	case PUSH:
		return ClassStore
	case POP:
		return ClassLoad
	case LEA:
		return ClassSimple
	}
	if in.Src.Kind == KindMem {
		return ClassLoad
	}
	if in.Dst.Kind == KindMem {
		return ClassStore
	}
	return ClassSimple
}

// IsControl reports whether the instruction redirects or terminates a flow.
func (in *Instruction) IsControl() bool { return in.Classify() == ClassControl }

// WritesFlags reports whether the instruction writes the Flags register.
func (in *Instruction) WritesFlags() bool {
	switch in.Op {
	case ADD, SUB, AND, OR, XOR, NEG, INC, DEC, CMP, TEST, SHL, SHR, SAR:
		return true
	}
	return false
}

// ReadsFlags reports whether the instruction reads the Flags register.
func (in *Instruction) ReadsFlags() bool {
	return in.Op == Jcc || in.Op == SETcc
}

// RegReads appends to buf the registers read by the instruction (including
// address-component registers of memory operands and Flags) and returns it.
func (in *Instruction) RegReads(buf []Reg) []Reg {
	addMem := func(o Operand) {
		if o.Base != NoReg && o.Base < NumRegs {
			buf = append(buf, o.Base)
		}
		if o.Index != NoReg && o.Index < NumRegs {
			buf = append(buf, o.Index)
		}
	}
	switch in.Op {
	case NOP, JMP, HLT, ENDFORK:
		return buf
	case Jcc, SETcc:
		buf = append(buf, Flags)
		if in.Op == SETcc && in.Dst.Kind == KindMem {
			addMem(in.Dst)
		}
		return buf
	case CALL, FORK:
		if in.Op == CALL {
			buf = append(buf, RSP)
		}
		return buf
	case RET:
		buf = append(buf, RSP)
		return buf
	case PUSH:
		buf = append(buf, RSP)
		if in.Src.Kind == KindReg {
			buf = append(buf, in.Src.Reg)
		} else if in.Src.Kind == KindMem {
			addMem(in.Src)
		}
		return buf
	case POP:
		buf = append(buf, RSP)
		if in.Dst.Kind == KindMem {
			addMem(in.Dst)
		}
		return buf
	case CQTO:
		buf = append(buf, RAX)
		return buf
	case DIV, IDIV:
		buf = append(buf, RAX, RDX)
		if in.Dst.Kind == KindReg {
			buf = append(buf, in.Dst.Reg)
		} else if in.Dst.Kind == KindMem {
			addMem(in.Dst)
		}
		return buf
	case MOV, LEA:
		if in.Src.Kind == KindReg {
			buf = append(buf, in.Src.Reg)
		} else if in.Src.Kind == KindMem {
			addMem(in.Src)
		}
		if in.Dst.Kind == KindMem {
			addMem(in.Dst)
		}
		return buf
	case NEG, NOT, INC, DEC:
		if in.Dst.Kind == KindReg {
			buf = append(buf, in.Dst.Reg)
		} else if in.Dst.Kind == KindMem {
			addMem(in.Dst)
		}
		return buf
	}
	// Two-operand ALU and CMP/TEST: read src and dst.
	if in.Src.Kind == KindReg {
		buf = append(buf, in.Src.Reg)
	} else if in.Src.Kind == KindMem {
		addMem(in.Src)
	}
	if in.Dst.Kind == KindReg {
		buf = append(buf, in.Dst.Reg)
	} else if in.Dst.Kind == KindMem {
		addMem(in.Dst)
	}
	if (in.Op == SHL || in.Op == SHR || in.Op == SAR) && in.Src.Kind == KindNone {
		// Single-operand shift-by-one form has no extra reads.
		_ = buf
	}
	return buf
}

// RegWrites appends to buf the registers written by the instruction
// (including Flags where applicable) and returns it.
func (in *Instruction) RegWrites(buf []Reg) []Reg {
	switch in.Op {
	case NOP, JMP, Jcc, HLT, FORK, ENDFORK:
		return buf
	case CMP, TEST:
		return append(buf, Flags)
	case CALL, RET:
		return append(buf, RSP)
	case PUSH:
		return append(buf, RSP)
	case POP:
		buf = append(buf, RSP)
		if in.Dst.Kind == KindReg {
			buf = append(buf, in.Dst.Reg)
		}
		return buf
	case CQTO:
		return append(buf, RDX)
	case DIV, IDIV:
		return append(buf, RAX, RDX)
	case SETcc:
		if in.Dst.Kind == KindReg {
			buf = append(buf, in.Dst.Reg)
		}
		return buf
	}
	if in.Dst.Kind == KindReg {
		buf = append(buf, in.Dst.Reg)
	}
	if in.WritesFlags() {
		buf = append(buf, Flags)
	}
	return buf
}

// AddrRegs returns the set of registers that feed only the address
// computation of a memory instruction. The paper's pipeline splits a memory
// op's sources in two: address-forming registers gate the execute-write-back
// stage (which computes the access address), while the remaining data
// sources are needed only at memory access. Non-memory instructions return
// the empty set.
func (in *Instruction) AddrRegs() RegMask {
	var m RegMask
	switch in.Op {
	case PUSH, POP:
		m.Add(RSP)
		return m
	}
	add := func(o Operand) {
		if o.Base != NoReg && o.Base < NumRegs {
			m.Add(o.Base)
		}
		if o.Index != NoReg && o.Index < NumRegs {
			m.Add(o.Index)
		}
	}
	if mo, ok := in.MemRead(); ok {
		add(mo)
	}
	if mo, ok := in.MemWrite(); ok {
		add(mo)
	}
	return m
}

// MemRead reports whether the instruction loads from data memory, and which
// operand holds the address.
func (in *Instruction) MemRead() (Operand, bool) {
	switch in.Op {
	case POP:
		return MemBase(0, RSP), true
	case RET:
		return MemBase(0, RSP), true
	case LEA:
		return Operand{}, false
	}
	if in.Src.Kind == KindMem {
		return in.Src, true
	}
	// Read-modify-write memory destinations also load.
	if in.Dst.Kind == KindMem {
		switch in.Op {
		case ADD, SUB, AND, OR, XOR, NEG, NOT, INC, DEC, CMP, TEST:
			return in.Dst, true
		}
	}
	return Operand{}, false
}

// MemWrite reports whether the instruction stores to data memory, and which
// operand holds the address. PUSH/CALL store at the post-decrement rsp.
func (in *Instruction) MemWrite() (Operand, bool) {
	switch in.Op {
	case PUSH:
		return MemBase(-8, RSP), true
	case CALL:
		return MemBase(-8, RSP), true
	case CMP, TEST, LEA:
		return Operand{}, false
	}
	if in.Dst.Kind == KindMem {
		return in.Dst, true
	}
	return Operand{}, false
}
