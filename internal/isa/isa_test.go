package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := map[Reg]string{
		RAX: "rax", RBX: "rbx", RCX: "rcx", RDX: "rdx",
		RSP: "rsp", RBP: "rbp", RSI: "rsi", RDI: "rdi",
		R8: "r8", R15: "r15", Flags: "flags",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
		back, ok := ParseReg(want)
		if !ok || back != r {
			t.Errorf("ParseReg(%q) = %v, %v; want %v, true", want, back, ok, r)
		}
	}
	if _, ok := ParseReg("xmm0"); ok {
		t.Error("ParseReg accepted xmm0")
	}
}

func TestCondEval(t *testing.T) {
	type tc struct {
		a, b uint64 // flags from a - b
	}
	cases := []tc{
		{5, 5}, {5, 2}, {2, 5}, {0, 1}, {1, 0},
		{^uint64(0), 1}, {1, ^uint64(0)},
		{1 << 63, 1}, {0x7fffffffffffffff, ^uint64(0)},
	}
	sub := func(a, b uint64) FlagsVal {
		r := a - b
		var f FlagsVal
		if r == 0 {
			f |= FlagZ
		}
		if int64(r) < 0 {
			f |= FlagS
		}
		if a < b {
			f |= FlagC
		}
		if (int64(a) < 0) != (int64(b) < 0) && (int64(r) < 0) != (int64(a) < 0) {
			f |= FlagO
		}
		return f
	}
	for _, c := range cases {
		f := sub(c.a, c.b)
		checks := map[Cond]bool{
			CondE:  c.a == c.b,
			CondNE: c.a != c.b,
			CondA:  c.a > c.b,
			CondAE: c.a >= c.b,
			CondB:  c.a < c.b,
			CondBE: c.a <= c.b,
			CondG:  int64(c.a) > int64(c.b),
			CondGE: int64(c.a) >= int64(c.b),
			CondL:  int64(c.a) < int64(c.b),
			CondLE: int64(c.a) <= int64(c.b),
		}
		for cc, want := range checks {
			if got := cc.Eval(f); got != want {
				t.Errorf("cmp(%d,%d): cond %s = %v, want %v", c.a, c.b, cc, got, want)
			}
		}
	}
}

func TestCondEvalQuick(t *testing.T) {
	// Property: every unsigned/signed comparison condition agrees with the
	// direct Go comparison, for random operands.
	f := func(a, b uint64) bool {
		r := a - b
		var fl FlagsVal
		if r == 0 {
			fl |= FlagZ
		}
		if int64(r) < 0 {
			fl |= FlagS
		}
		if a < b {
			fl |= FlagC
		}
		if (int64(a) < 0) != (int64(b) < 0) && (int64(r) < 0) != (int64(a) < 0) {
			fl |= FlagO
		}
		return CondA.Eval(fl) == (a > b) &&
			CondB.Eval(fl) == (a < b) &&
			CondAE.Eval(fl) == (a >= b) &&
			CondBE.Eval(fl) == (a <= b) &&
			CondG.Eval(fl) == (int64(a) > int64(b)) &&
			CondL.Eval(fl) == (int64(a) < int64(b)) &&
			CondGE.Eval(fl) == (int64(a) >= int64(b)) &&
			CondLE.Eval(fl) == (int64(a) <= int64(b)) &&
			CondE.Eval(fl) == (a == b) &&
			CondNE.Eval(fl) == (a != b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestOperandString(t *testing.T) {
	cases := []struct {
		o    Operand
		want string
	}{
		{RegOp(RAX), "%rax"},
		{ImmOp(42), "$42"},
		{ImmOp(-8), "$-8"},
		{MemBase(0, RSP), "(%rsp)"},
		{MemBase(8, RDI), "8(%rdi)"},
		{MemBase(-16, RBP), "-16(%rbp)"},
		{MemOp(0, RDI, RSI, 8), "(%rdi,%rsi,8)"},
		{MemOp(24, RAX, RCX, 4), "24(%rax,%rcx,4)"},
	}
	for _, c := range cases {
		if got := c.o.String(); got != c.want {
			t.Errorf("Operand.String() = %q, want %q", got, c.want)
		}
	}
}

func TestInstructionString(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: MOV, Src: MemBase(0, RDI), Dst: RegOp(RAX)}, "movq (%rdi), %rax"},
		{Instruction{Op: CMP, Src: ImmOp(2), Dst: RegOp(RSI)}, "cmpq $2, %rsi"},
		{Instruction{Op: Jcc, Cond: CondA, Label: ".L2"}, "ja .L2"},
		{Instruction{Op: RET}, "ret"},
		{Instruction{Op: FORK, Label: "sum"}, "fork sum"},
		{Instruction{Op: ENDFORK}, "endfork"},
		{Instruction{Op: PUSH, Src: RegOp(RBX)}, "pushq %rbx"},
		{Instruction{Op: POP, Dst: RegOp(RBX)}, "popq %rbx"},
		{Instruction{Op: LEA, Src: MemOp(0, RDI, RSI, 8), Dst: RegOp(RDI)}, "leaq (%rdi,%rsi,8), %rdi"},
		{Instruction{Op: SETcc, Cond: CondE, Dst: RegOp(RAX)}, "sete %rax"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Instruction.String() = %q, want %q", got, c.want)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		in   Instruction
		want Class
	}{
		{Instruction{Op: ADD, Src: RegOp(RBX), Dst: RegOp(RAX)}, ClassSimple},
		{Instruction{Op: ADD, Src: MemBase(0, RSP), Dst: RegOp(RAX)}, ClassLoad},
		{Instruction{Op: MOV, Src: RegOp(RAX), Dst: MemBase(0, RSP)}, ClassStore},
		{Instruction{Op: PUSH, Src: RegOp(RBX)}, ClassStore},
		{Instruction{Op: POP, Dst: RegOp(RBX)}, ClassLoad},
		{Instruction{Op: IMUL, Src: RegOp(RBX), Dst: RegOp(RAX)}, ClassComplex},
		{Instruction{Op: DIV, Dst: RegOp(RCX)}, ClassComplex},
		{Instruction{Op: Jcc, Cond: CondA}, ClassControl},
		{Instruction{Op: FORK}, ClassControl},
		{Instruction{Op: ENDFORK}, ClassControl},
		{Instruction{Op: LEA, Src: MemOp(0, RDI, RSI, 8), Dst: RegOp(RDI)}, ClassSimple},
	}
	for _, c := range cases {
		if got := c.in.Classify(); got != c.want {
			t.Errorf("%s: Classify() = %d, want %d", c.in.String(), got, c.want)
		}
	}
}

func TestRegReadsWrites(t *testing.T) {
	has := func(rs []Reg, r Reg) bool {
		for _, x := range rs {
			if x == r {
				return true
			}
		}
		return false
	}
	// cmpq $2, %rsi reads rsi, writes flags.
	cmp := Instruction{Op: CMP, Src: ImmOp(2), Dst: RegOp(RSI)}
	if r := cmp.RegReads(nil); !has(r, RSI) || has(r, Flags) {
		t.Errorf("cmp reads = %v", r)
	}
	if w := cmp.RegWrites(nil); !has(w, Flags) || len(w) != 1 {
		t.Errorf("cmp writes = %v", w)
	}
	// ja reads flags, writes nothing.
	ja := Instruction{Op: Jcc, Cond: CondA}
	if r := ja.RegReads(nil); !has(r, Flags) {
		t.Errorf("ja reads = %v", r)
	}
	if w := ja.RegWrites(nil); len(w) != 0 {
		t.Errorf("ja writes = %v", w)
	}
	// leaq (%rdi,%rsi,8), %rdi reads rdi+rsi, writes rdi, no flags.
	lea := Instruction{Op: LEA, Src: MemOp(0, RDI, RSI, 8), Dst: RegOp(RDI)}
	if r := lea.RegReads(nil); !has(r, RDI) || !has(r, RSI) {
		t.Errorf("lea reads = %v", r)
	}
	if w := lea.RegWrites(nil); !has(w, RDI) || has(w, Flags) {
		t.Errorf("lea writes = %v", w)
	}
	// pushq %rbx reads rsp+rbx, writes rsp, stores memory.
	push := Instruction{Op: PUSH, Src: RegOp(RBX)}
	if r := push.RegReads(nil); !has(r, RSP) || !has(r, RBX) {
		t.Errorf("push reads = %v", r)
	}
	if w := push.RegWrites(nil); !has(w, RSP) {
		t.Errorf("push writes = %v", w)
	}
	if _, ok := push.MemWrite(); !ok {
		t.Error("push should write memory")
	}
	// popq %rbx reads rsp+mem, writes rsp and rbx.
	pop := Instruction{Op: POP, Dst: RegOp(RBX)}
	if w := pop.RegWrites(nil); !has(w, RSP) || !has(w, RBX) {
		t.Errorf("pop writes = %v", w)
	}
	if _, ok := pop.MemRead(); !ok {
		t.Error("pop should read memory")
	}
	// divq %rcx reads rax,rdx,rcx; writes rax,rdx.
	div := Instruction{Op: DIV, Dst: RegOp(RCX)}
	if r := div.RegReads(nil); !has(r, RAX) || !has(r, RDX) || !has(r, RCX) {
		t.Errorf("div reads = %v", r)
	}
	if w := div.RegWrites(nil); !has(w, RAX) || !has(w, RDX) {
		t.Errorf("div writes = %v", w)
	}
	// addq 0(%rsp), %rax is a load that also reads rax.
	addm := Instruction{Op: ADD, Src: MemBase(0, RSP), Dst: RegOp(RAX)}
	if r := addm.RegReads(nil); !has(r, RSP) || !has(r, RAX) {
		t.Errorf("addq mem reads = %v", r)
	}
	if _, ok := addm.MemRead(); !ok {
		t.Error("addq 0(%rsp), %rax should read memory")
	}
	// movq %rax, 0(%rsp) stores but does not load.
	st := Instruction{Op: MOV, Src: RegOp(RAX), Dst: MemBase(0, RSP)}
	if _, ok := st.MemRead(); ok {
		t.Error("store mov should not read memory")
	}
	if _, ok := st.MemWrite(); !ok {
		t.Error("store mov should write memory")
	}
	// addq %rbx, 0(%rsp) is read-modify-write memory.
	rmw := Instruction{Op: ADD, Src: RegOp(RBX), Dst: MemBase(0, RSP)}
	if _, ok := rmw.MemRead(); !ok {
		t.Error("rmw add should read memory")
	}
	if _, ok := rmw.MemWrite(); !ok {
		t.Error("rmw add should write memory")
	}
}

func randOperand(r *rand.Rand, allowImm bool) Operand {
	switch k := r.Intn(3); {
	case k == 0:
		return RegOp(Reg(r.Intn(int(Flags))))
	case k == 1 && allowImm:
		return ImmOp(int64(r.Uint64()))
	default:
		base := Reg(r.Intn(int(Flags)))
		idx := NoReg
		scale := uint8(1)
		if r.Intn(2) == 0 {
			idx = Reg(r.Intn(int(Flags)))
			scale = []uint8{1, 2, 4, 8}[r.Intn(4)]
		}
		return MemOp(int64(int32(r.Uint32())), base, idx, scale)
	}
}

func TestProgramEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		p := NewProgram()
		n := r.Intn(200)
		for i := 0; i < n; i++ {
			var in Instruction
			in.Op = Op(r.Intn(int(NumOps)))
			in.Cond = Cond(r.Intn(int(NumConds)))
			in.Src = randOperand(r, true)
			in.Dst = randOperand(r, false)
			in.Target = int64(r.Intn(1000))
			p.Text = append(p.Text, in)
		}
		p.Data = make([]byte, r.Intn(256))
		r.Read(p.Data)
		p.Labels["main"] = 0
		p.Labels[".L1"] = int64(r.Intn(n + 1))
		p.DataSyms["t"] = DataBase
		p.Entry = int64(r.Intn(n + 1))

		enc := p.Encode()
		q, err := Decode(enc)
		if err != nil {
			t.Fatalf("iter %d: Decode: %v", iter, err)
		}
		if len(q.Text) != len(p.Text) {
			t.Fatalf("iter %d: text length %d != %d", iter, len(q.Text), len(p.Text))
		}
		for i := range p.Text {
			a, b := p.Text[i], q.Text[i]
			// Label and Sym are presentation-only and not serialised.
			a.Label, b.Label = "", ""
			a.Src.Sym, b.Src.Sym = "", ""
			a.Dst.Sym, b.Dst.Sym = "", ""
			if a != b {
				t.Fatalf("iter %d: instruction %d: %+v != %+v", iter, i, a, b)
			}
		}
		if string(q.Data) != string(p.Data) {
			t.Fatalf("iter %d: data mismatch", iter)
		}
		if q.Entry != p.Entry {
			t.Fatalf("iter %d: entry %d != %d", iter, q.Entry, p.Entry)
		}
		for k, v := range p.Labels {
			if q.Labels[k] != v {
				t.Fatalf("iter %d: label %q: %d != %d", iter, k, q.Labels[k], v)
			}
		}
		for k, v := range p.DataSyms {
			if q.DataSyms[k] != v {
				t.Fatalf("iter %d: datasym %q: %d != %d", iter, k, q.DataSyms[k], v)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) succeeded")
	}
	if _, err := Decode([]byte("XXXX")); err == nil {
		t.Error("Decode(bad magic) succeeded")
	}
	p := NewProgram()
	p.Text = []Instruction{{Op: RET}}
	enc := p.Encode()
	for cut := 5; cut < len(enc); cut += 3 {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("Decode(truncated %d) succeeded", cut)
		}
	}
}
