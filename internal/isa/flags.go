package isa

// FlagsSub returns the condition flags of a - b with result r (the semantics
// of sub/cmp/neg/dec).
func FlagsSub(a, b, r uint64) FlagsVal {
	var f FlagsVal
	if r == 0 {
		f |= FlagZ
	}
	if int64(r) < 0 {
		f |= FlagS
	}
	if a < b {
		f |= FlagC
	}
	if (int64(a) < 0) != (int64(b) < 0) && (int64(r) < 0) != (int64(a) < 0) {
		f |= FlagO
	}
	return f
}

// FlagsAdd returns the condition flags of a + b with result r.
func FlagsAdd(a, b, r uint64) FlagsVal {
	var f FlagsVal
	if r == 0 {
		f |= FlagZ
	}
	if int64(r) < 0 {
		f |= FlagS
	}
	if r < a {
		f |= FlagC
	}
	if (int64(a) < 0) == (int64(b) < 0) && (int64(r) < 0) != (int64(a) < 0) {
		f |= FlagO
	}
	return f
}

// FlagsLogic returns the condition flags of a logical result r
// (and/or/xor/test/shifts): carry and overflow cleared.
func FlagsLogic(r uint64) FlagsVal {
	var f FlagsVal
	if r == 0 {
		f |= FlagZ
	}
	if int64(r) < 0 {
		f |= FlagS
	}
	return f
}
