package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Memory layout constants shared by the assembler, emulator and machine.
const (
	// DataBase is the byte address where the data segment is loaded.
	DataBase uint64 = 0x10000
	// StackTop is the initial stack pointer; the stack grows down.
	StackTop uint64 = 0x7fff0000
	// HeapBase is where the bump allocator used by mini-C programs starts.
	HeapBase uint64 = 0x1000000
)

// Program is a loadable unit: a text segment (one instruction per code
// address), an initialised data segment and symbol tables.
type Program struct {
	Text     []Instruction
	Data     []byte            // initial data segment image, loaded at DataBase
	Labels   map[string]int64  // code symbols -> instruction index
	DataSyms map[string]uint64 // data symbols -> byte address
	Entry    int64             // instruction index where execution starts
}

// NewProgram returns an empty program with initialised symbol tables.
func NewProgram() *Program {
	return &Program{
		Labels:   make(map[string]int64),
		DataSyms: make(map[string]uint64),
	}
}

// Lookup resolves a code label.
func (p *Program) Lookup(label string) (int64, bool) {
	v, ok := p.Labels[label]
	return v, ok
}

// DataAddr resolves a data symbol to its absolute byte address.
func (p *Program) DataAddr(sym string) (uint64, bool) {
	v, ok := p.DataSyms[sym]
	return v, ok
}

// Disassemble renders the whole text segment with labels and addresses.
func (p *Program) Disassemble() string {
	byAddr := make(map[int64][]string)
	for l, a := range p.Labels {
		byAddr[a] = append(byAddr[a], l)
	}
	var b strings.Builder
	for i := range p.Text {
		labels := byAddr[int64(i)]
		sort.Strings(labels)
		for _, l := range labels {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "%6d:\t%s\n", i, p.Text[i].String())
	}
	return b.String()
}

// Binary encoding. The format is a compact, self-describing, versioned
// serialisation used to store assembled programs; it is not meant to model
// x86 machine code. Round-tripping is exercised by property tests.

const progMagic = "MCP1" // Many-Core Program, version 1

// Encode serialises the program.
func (p *Program) Encode() []byte {
	var b bytes.Buffer
	b.WriteString(progMagic)
	writeU64 := func(v uint64) {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], v)
		b.Write(tmp[:])
	}
	writeStr := func(s string) {
		writeU64(uint64(len(s)))
		b.WriteString(s)
	}
	writeU64(uint64(p.Entry))
	writeU64(uint64(len(p.Text)))
	for i := range p.Text {
		encodeInstr(&b, &p.Text[i])
	}
	writeU64(uint64(len(p.Data)))
	b.Write(p.Data)
	writeU64(uint64(len(p.Labels)))
	for _, k := range sortedKeys(p.Labels) {
		writeStr(k)
		writeU64(uint64(p.Labels[k]))
	}
	writeU64(uint64(len(p.DataSyms)))
	for _, k := range sortedKeysU(p.DataSyms) {
		writeStr(k)
		writeU64(p.DataSyms[k])
	}
	return b.Bytes()
}

func sortedKeys(m map[string]int64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedKeysU(m map[string]uint64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func encodeOperand(b *bytes.Buffer, o *Operand) {
	b.WriteByte(byte(o.Kind))
	switch o.Kind {
	case KindReg:
		b.WriteByte(byte(o.Reg))
	case KindImm:
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], uint64(o.Imm))
		b.Write(tmp[:])
	case KindMem:
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], uint64(o.Imm))
		b.Write(tmp[:])
		b.WriteByte(byte(o.Base))
		b.WriteByte(byte(o.Index))
		b.WriteByte(o.Scale)
	}
}

func encodeInstr(b *bytes.Buffer, in *Instruction) {
	b.WriteByte(byte(in.Op))
	b.WriteByte(byte(in.Cond))
	encodeOperand(b, &in.Src)
	encodeOperand(b, &in.Dst)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(in.Target))
	b.Write(tmp[:])
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.err = fmt.Errorf("isa: truncated program at offset %d", d.off)
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.err = fmt.Errorf("isa: truncated program at offset %d", d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.err = fmt.Errorf("isa: bad string length %d at offset %d", n, d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) operand() Operand {
	var o Operand
	o.Kind = OperandKind(d.u8())
	switch o.Kind {
	case KindNone:
	case KindReg:
		o.Reg = Reg(d.u8())
	case KindImm:
		o.Imm = int64(d.u64())
	case KindMem:
		o.Imm = int64(d.u64())
		o.Base = Reg(d.u8())
		o.Index = Reg(d.u8())
		o.Scale = d.u8()
	default:
		d.err = fmt.Errorf("isa: bad operand kind %d", o.Kind)
	}
	return o
}

// Decode deserialises a program produced by Encode.
func Decode(buf []byte) (*Program, error) {
	if len(buf) < 4 || string(buf[:4]) != progMagic {
		return nil, fmt.Errorf("isa: bad magic")
	}
	d := &decoder{buf: buf, off: 4}
	p := NewProgram()
	p.Entry = int64(d.u64())
	n := d.u64()
	if d.err == nil && n > uint64(len(buf)) {
		return nil, fmt.Errorf("isa: implausible text size %d", n)
	}
	p.Text = make([]Instruction, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		var in Instruction
		in.Op = Op(d.u8())
		in.Cond = Cond(d.u8())
		in.Src = d.operand()
		in.Dst = d.operand()
		in.Target = int64(d.u64())
		if in.Op >= NumOps {
			d.err = fmt.Errorf("isa: bad opcode %d at instruction %d", in.Op, i)
		}
		p.Text = append(p.Text, in)
	}
	nd := d.u64()
	if d.err == nil {
		if nd > uint64(len(buf)-d.off) {
			return nil, fmt.Errorf("isa: bad data size %d", nd)
		}
		p.Data = append([]byte(nil), buf[d.off:d.off+int(nd)]...)
		d.off += int(nd)
	}
	nl := d.u64()
	for i := uint64(0); i < nl && d.err == nil; i++ {
		k := d.str()
		p.Labels[k] = int64(d.u64())
	}
	ns := d.u64()
	for i := uint64(0); i < ns && d.err == nil; i++ {
		k := d.str()
		p.DataSyms[k] = d.u64()
	}
	if d.err != nil {
		return nil, d.err
	}
	return p, nil
}
