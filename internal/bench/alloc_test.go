package bench

import (
	"testing"

	"repro/internal/backend"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/minic"
	"repro/internal/pbbs"
)

// steadyAllocBudget bounds the heap allocations of one whole warmed
// simulation (thousands of cycles): the Result construction and a few
// fixed-cost odds and ends. Anything per-cycle or per-instruction creeping
// back into the hot path shows up as thousands of allocations per run and
// fails loudly — the pre-arena implementation allocated ~30k times on this
// workload.
const steadyAllocBudget = 64

// inject writes the workload inputs into the machine's committed memory,
// exactly as backend.Machine.Run does after machine.New.
func inject(t *testing.T, m *machine.Machine, prog *isa.Program, in backend.Inputs) {
	t.Helper()
	for sym, words := range in {
		addr, ok := prog.DataAddr(sym)
		if !ok {
			t.Fatalf("program has no data symbol %q", sym)
		}
		for i, w := range words {
			m.DMH().WriteU64(addr+uint64(8*i), w)
		}
	}
}

// TestSteadyStateAllocs pins the tentpole's allocation contract: on a warmed
// machine (arenas grown to the workload's footprint by one completed run),
// Reset + re-run performs effectively zero heap allocations per simulated
// cycle. Checked on one core and on 16 (multi-core exercises the renaming
// request path, section migration and the per-core queues).
func TestSteadyStateAllocs(t *testing.T) {
	k, err := pbbs.Find("duplicates")
	if err != nil {
		t.Fatal(err)
	}
	n := k.ClampN(64)
	prog, err := k.Build(n, minic.ModeFork)
	if err != nil {
		t.Fatal(err)
	}
	in := k.Gen(n, 1)
	want, err := k.Ref(n, in)
	if err != nil {
		t.Fatal(err)
	}

	for _, cores := range []int{1, 16} {
		m, err := machine.New(prog, machine.DefaultConfig(cores))
		if err != nil {
			t.Fatal(err)
		}
		inject(t, m, prog, in)
		warm, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if warm.RAX != want {
			t.Fatalf("c%d: checksum %d, reference %d", cores, warm.RAX, want)
		}

		var runErr error
		avg := testing.AllocsPerRun(3, func() {
			m.Reset()
			for sym, words := range in {
				addr, _ := prog.DataAddr(sym)
				for i, w := range words {
					m.DMH().WriteU64(addr+uint64(8*i), w)
				}
			}
			res, err := m.Run()
			if err != nil {
				runErr = err
				return
			}
			if res.RAX != want || res.Cycles != warm.Cycles {
				runErr = errMismatch
			}
		})
		if runErr != nil {
			t.Fatalf("c%d: warmed re-run failed: %v", cores, runErr)
		}
		perCycle := avg / float64(warm.Cycles)
		t.Logf("c%d: %.0f allocs per warmed run over %d cycles = %g allocs/cycle",
			cores, avg, warm.Cycles, perCycle)
		if avg > steadyAllocBudget {
			t.Errorf("c%d: warmed run allocated %.0f times (budget %d; %g allocs per simulated cycle) — the hot path is no longer allocation-free",
				cores, avg, steadyAllocBudget, perCycle)
		}
	}
}

// TestSteadyStateAllocsThroughPool re-checks the allocation contract through
// the warm-machine pool: a Get-hit (Reset + re-arm), injection, run and Put
// cycle must stay within the same budget as a bare Reset re-run — the pool
// adds bookkeeping, not per-cycle allocation.
func TestSteadyStateAllocsThroughPool(t *testing.T) {
	k, err := pbbs.Find("duplicates")
	if err != nil {
		t.Fatal(err)
	}
	n := k.ClampN(64)
	prog, err := k.Build(n, minic.ModeFork)
	if err != nil {
		t.Fatal(err)
	}
	in := k.Gen(n, 1)
	want, err := k.Ref(n, in)
	if err != nil {
		t.Fatal(err)
	}

	cfg := machine.DefaultConfig(16)
	pool := machine.NewPool()
	warmM, err := pool.Get("alloc", prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inject(t, warmM, prog, in)
	warm, err := warmM.Run()
	if err != nil {
		t.Fatal(err)
	}
	if warm.RAX != want {
		t.Fatalf("checksum %d, reference %d", warm.RAX, want)
	}
	pool.Put("alloc", warmM)

	var runErr error
	avg := testing.AllocsPerRun(3, func() {
		m, err := pool.Get("alloc", prog, cfg)
		if err != nil {
			runErr = err
			return
		}
		for sym, words := range in {
			addr, _ := prog.DataAddr(sym)
			for i, w := range words {
				m.DMH().WriteU64(addr+uint64(8*i), w)
			}
		}
		res, err := m.Run()
		if err != nil {
			runErr = err
			return
		}
		pool.Put("alloc", m)
		if res.RAX != want || res.Cycles != warm.Cycles {
			runErr = errMismatch
		}
	})
	if runErr != nil {
		t.Fatalf("pooled re-run failed: %v", runErr)
	}
	if s := pool.Stats(); s.Hits < 4 {
		t.Fatalf("pool stats %+v: the measured loop was not running on pool hits", s)
	}
	t.Logf("%.0f allocs per pooled run over %d cycles", avg, warm.Cycles)
	if avg > steadyAllocBudget {
		t.Errorf("pooled run allocated %.0f times (budget %d) — Get/Put is no longer allocation-free",
			avg, steadyAllocBudget)
	}
}

var errMismatch = errString("warmed re-run produced a different result")

type errString string

func (e errString) Error() string { return string(e) }
