package bench

import (
	"strings"
	"testing"
)

func mkReport(idle ...float64) *Report {
	r := &Report{Schema: Schema}
	for i, v := range idle {
		r.Points = append(r.Points, Point{
			Kernel: "k", N: 64, Cores: 1 << i,
			IdleSkipNsPerCycle: v,
			DenseNsPerCycle:    v * 3,
		})
	}
	return r
}

func TestCompare(t *testing.T) {
	old := mkReport(1000, 2000, 500)
	cur := mkReport(900, 2500, 500) // -10%, +25%, ±0%

	c := Compare(old, cur, 0.20)
	if len(c.Deltas) != 3 || c.NewOnly != 0 {
		t.Fatalf("deltas %d newOnly %d, want 3/0", len(c.Deltas), c.NewOnly)
	}
	if c.Deltas[0].Regressed || !c.Deltas[1].Regressed || c.Deltas[2].Regressed {
		t.Errorf("regression flags wrong: %+v", c.Deltas)
	}
	if got := c.Deltas[1].Change; got < 0.24 || got > 0.26 {
		t.Errorf("delta[1] change %v, want 0.25", got)
	}
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "c2") {
		t.Errorf("Err() = %v, want a regression naming point c2", err)
	}
	tbl := c.Table()
	for _, want := range []string{"REGRESSED", "+25.0%", "-10.0%", "old-idle/c"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}

	// Within a looser tolerance the same measurement passes.
	if err := Compare(old, cur, 0.30).Err(); err != nil {
		t.Errorf("tolerance 0.30 still failed: %v", err)
	}
	// Zero tolerance is honoured: any growth regresses, improvements pass.
	strict := Compare(old, cur, 0)
	if strict.Tolerance != 0 || strict.Deltas[0].Regressed || !strict.Deltas[1].Regressed {
		t.Errorf("zero tolerance not strict: %+v", strict.Deltas)
	}
	// Negative falls back to the default.
	if got := Compare(old, cur, -1).Tolerance; got != DefaultTolerance {
		t.Errorf("negative tolerance resolved to %v, want default %v", got, DefaultTolerance)
	}
}

func TestCompareInvalidBaseline(t *testing.T) {
	old := mkReport(0, 1000) // first point malformed (zero ns/cycle)
	cur := mkReport(900, 900)
	c := Compare(old, cur, 0.20)
	if c.Invalid != 1 {
		t.Fatalf("invalid count %d, want 1", c.Invalid)
	}
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "malformed baseline") {
		t.Errorf("Err() = %v, want a malformed-baseline error", err)
	}
}

func TestCompareUnmatchedPoints(t *testing.T) {
	old := mkReport(1000)
	cur := mkReport(1000, 800) // second point has no baseline
	c := Compare(old, cur, 0.20)
	if len(c.Deltas) != 1 || c.NewOnly != 1 {
		t.Fatalf("deltas %d newOnly %d, want 1/1", len(c.Deltas), c.NewOnly)
	}
	if err := c.Err(); err != nil {
		t.Errorf("unmatched points must not fail the compare: %v", err)
	}
	if !strings.Contains(c.Table(), "no baseline counterpart") {
		t.Error("table does not mention the unmatched point")
	}
}
