// Package bench times the cycle-level machine simulator itself — not the
// simulated chip. It reproduces no paper material: it is infrastructure
// guarding the speed of the §4 model that every scaling study (Figs. 8–10)
// runs on. It runs a fixed kernel × core-count grid under the simulator's
// schedulers (the reference dense loop, the idle-skip scheduler, and the
// parallel phase scheduler when the grid asks for one), verifies on every
// point that all of them produce bit-identical simulation results, and
// reports wall time and nanoseconds per simulated cycle for each.
//
// Beyond the small standard trio the grid carries paper-scale big-N points
// (dataset sizes in the thousands on 64 cores). Those skip the dense leg —
// the dense loop's per-core, per-cycle scans make it minutes-slow out there,
// which is exactly why idle-skip exists — and are timed once: a multi-second
// simulation does not need best-of-three to be noise-immune.
//
// `repro bench-sim` serialises the report to BENCH_machine.json, the
// checked-in performance trajectory every future change to the simulator's
// hot loop is diffed against.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/minic"
	"repro/internal/pbbs"
)

// Schema identifies the BENCH_machine.json format. v2 adds the parallel
// phase-scheduler leg (parallelNs, parSpeedup, simWorkers per point) and the
// big-N points, which carry no dense figures.
const Schema = "bench-machine-v2"

// Grid describes the benchmark grid.
type Grid struct {
	// Kernels are pbbs selectors (IDs or name substrings). Empty selects the
	// default trio covering a sorting, a graph and a hashing kernel.
	Kernels []string
	// N is the dataset size (clamped per kernel).
	N int
	// Cores are the simulated core counts. The 64-core point is where
	// idle-skip pays: few live sections spread over many cores means most
	// cores idle most cycles.
	Cores []int
	// Seed is the workload seed.
	Seed uint64
	// Runs is how many times each (point, scheduler) pair is timed; the
	// minimum wall time is reported, the usual defence against scheduling
	// noise.
	Runs int
	// SimWorkers is the goroutine count of the parallel phase scheduler's
	// timing leg; <= 1 skips that leg. Results are bit-identical to the
	// sequential schedulers for every value (Measure verifies this on each
	// point), so the leg only adds wall-clock columns.
	SimWorkers int
	// BigNs are paper-scale dataset sizes timed for BigNKernels × BigNCores
	// in addition to the standard grid. Big-N points skip the dense leg
	// (minutes-slow at these sizes) and are timed once regardless of Runs —
	// a multi-second simulation is noise-immune without best-of-k.
	BigNs []int
	// BigNKernels selects the big-N kernels (pbbs selectors). Empty means
	// quickSort, the fork-heavy kernel with real section churn at scale.
	BigNKernels []string
	// BigNCores are the big-N core counts. Empty means {64}, the
	// many-core regime the paper's scaling studies live in.
	BigNCores []int
}

// DefaultGrid returns the standard trajectory grid: a fork-heavy kernel
// (quickSort), the few-sections extreme (removeDuplicates runs two sections,
// so on 64 cores almost every core idles almost every cycle) and the
// many-sections extreme (parallelKruskal, where the dense loop's per-core
// section scans dominate).
func DefaultGrid() Grid {
	return Grid{
		Kernels:    []string{"quicksort", "duplicates", "kruskal"},
		N:          64,
		Cores:      []int{1, 16, 64},
		Seed:       1,
		Runs:       3,
		SimWorkers: 4,
		// 512 and 1024 are seconds-to-a-minute on a single-CPU host; 2048
		// already costs minutes, too slow for a checked-in trajectory.
		BigNs: []int{512, 1024},
	}
}

// QuickGrid returns a seconds-scale grid for CI smoke runs. It keeps one
// big-N point (quickSort n=512 on 64 cores) and the parallel leg, so the
// smoke run exercises every scheduler and the paper-scale regime — and its
// points all have DefaultGrid counterparts, so -against a full-grid baseline
// judges each of them.
func QuickGrid() Grid {
	return Grid{
		Kernels:    []string{"duplicates"},
		N:          64,
		Cores:      []int{1, 64},
		Seed:       1,
		Runs:       1,
		SimWorkers: 4,
		BigNs:      []int{512},
	}
}

// Point is one measured grid point: one kernel at one core count, simulated
// under each scheduler the grid enables. Big-N points carry no dense figures
// (DenseNs and friends stay 0).
type Point struct {
	Kernel       string `json:"kernel"`
	N            int    `json:"n"`
	Cores        int    `json:"cores"`
	Sections     int    `json:"sections"`
	Instructions int64  `json:"instructions"`
	Cycles       int64  `json:"cycles"`
	NocMessages  int64  `json:"nocMessages"`
	// DenseNs and IdleSkipNs are the best-of-Runs wall times of one full
	// simulation under each scheduler.
	DenseNs    int64 `json:"denseNs"`
	IdleSkipNs int64 `json:"idleSkipNs"`
	// DenseNsPerCycle and IdleSkipNsPerCycle divide the wall times by the
	// simulated cycle count — the simulator's figure of merit.
	DenseNsPerCycle    float64 `json:"denseNsPerCycle"`
	IdleSkipNsPerCycle float64 `json:"idleSkipNsPerCycle"`
	// Speedup is DenseNsPerCycle / IdleSkipNsPerCycle (the cycle counts are
	// identical by construction, so this equals the wall-time ratio).
	Speedup float64 `json:"speedup"`
	// SimWorkers is the goroutine count of the parallel leg; 0 means the leg
	// was not run and the three parallel figures below are absent.
	SimWorkers int `json:"simWorkers,omitempty"`
	// ParallelNs is the best-of-Runs wall time under the parallel phase
	// scheduler, ParallelNsPerCycle the per-cycle figure, and ParSpeedup the
	// serial-vs-parallel wall-clock ratio IdleSkipNs / ParallelNs (> 1 means
	// the goroutines paid off; expect < 1 on a single-CPU host, where the
	// leg measures pure coordination overhead).
	ParallelNs         int64   `json:"parallelNs,omitempty"`
	ParallelNsPerCycle float64 `json:"parallelNsPerCycle,omitempty"`
	ParSpeedup         float64 `json:"parSpeedup,omitempty"`
}

// Report is the serialised benchmark outcome.
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// CPUs is the machine's logical CPU count (runtime.NumCPU) and
	// Gomaxprocs the scheduler's processor limit at measurement time —
	// recorded separately because they routinely differ under containers
	// and CI cgroup limits, and trajectory points are only comparable when
	// both match. (Reports written before the split carry gomaxprocs 0 =
	// unknown.)
	CPUs       int     `json:"cpus"`
	Gomaxprocs int     `json:"gomaxprocs"`
	Runs       int     `json:"runs"`
	Points     []Point `json:"points"`
	// Aggregates over the whole grid: total wall time divided by total
	// simulated cycles, per scheduler, and the total wall-time ratio. The
	// dense aggregates cover only the points that ran the dense leg (big-N
	// points skip it); the parallel ones only the points that ran the
	// parallel leg, with ParSpeedup the idle-skip/parallel wall-time ratio
	// over those points.
	DenseNsPerCycle    float64 `json:"denseNsPerCycle"`
	IdleSkipNsPerCycle float64 `json:"idleSkipNsPerCycle"`
	Speedup            float64 `json:"speedup"`
	ParallelNsPerCycle float64 `json:"parallelNsPerCycle,omitempty"`
	ParSpeedup         float64 `json:"parSpeedup,omitempty"`
}

// benchCase is one (kernel, n) of the grid with the core counts to sweep:
// the program and inputs are built once per case.
type benchCase struct {
	k     *pbbs.Kernel
	n     int
	cores []int
	runs  int
	// dense selects whether the reference dense leg runs; big-N cases skip
	// it (minutes-slow) and use idle-skip as the point's oracle instead.
	dense bool
}

// cases expands the grid into its measurement cases: the standard kernel ×
// core grid at g.N, then the big-N cases.
func (g Grid) cases() ([]benchCase, error) {
	sel := strings.Join(g.Kernels, ",")
	if sel == "" {
		sel = strings.Join(DefaultGrid().Kernels, ",")
	}
	ks, err := pbbs.FindAll(sel)
	if err != nil {
		return nil, err
	}
	var out []benchCase
	for _, k := range ks {
		out = append(out, benchCase{k: k, n: g.N, cores: g.Cores, runs: g.Runs, dense: true})
	}
	if len(g.BigNs) == 0 {
		return out, nil
	}
	bigSel := strings.Join(g.BigNKernels, ",")
	if bigSel == "" {
		bigSel = "quicksort"
	}
	bigKs, err := pbbs.FindAll(bigSel)
	if err != nil {
		return nil, err
	}
	bigCores := g.BigNCores
	if len(bigCores) == 0 {
		bigCores = []int{64}
	}
	for _, k := range bigKs {
		for _, n := range g.BigNs {
			out = append(out, benchCase{k: k, n: n, cores: bigCores, runs: 1, dense: false})
		}
	}
	return out, nil
}

// Measure runs the grid and builds the report. Every point cross-checks all
// of its scheduler legs against the first one (dense where it runs, idle-skip
// on big-N points): differing cycles, instruction counts, checksums or NoC
// message totals are an error, so timing numbers are only ever produced for
// verified-identical simulations.
func Measure(g Grid) (*Report, error) {
	if g.N <= 0 {
		g.N = 64
	}
	if g.Runs <= 0 {
		g.Runs = 1
	}
	if len(g.Cores) == 0 {
		g.Cores = DefaultGrid().Cores
	}
	if g.Seed == 0 {
		g.Seed = 1
	}
	cases, err := g.cases()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Schema:     Schema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Runs:       g.Runs,
	}
	// Aggregate accumulators. The dense and parallel legs do not run on
	// every point, so their ratios are computed against the idle-skip time
	// of exactly the points they ran on.
	var skipNs, cycles int64
	var denseNs, denseIdleNs, denseCycles int64
	var parNs, parIdleNs, parCycles int64
	for _, bc := range cases {
		k := bc.k
		n := k.ClampN(bc.n)
		prog, err := k.Build(n, minic.ModeFork)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", k.Name, err)
		}
		in := k.Gen(n, g.Seed)
		want, err := k.Ref(n, in)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: reference: %w", k.Name, err)
		}
		for _, cores := range bc.cores {
			pt := Point{Kernel: k.Name, N: n, Cores: cores}
			// The legs of this point, in oracle-first order: every later leg
			// is cross-checked against the first one's results.
			type leg struct {
				name    string
				dense   bool
				workers int
				best    *int64
			}
			var legs []leg
			if bc.dense {
				legs = append(legs, leg{"dense", true, 0, &pt.DenseNs})
			}
			legs = append(legs, leg{"idle-skip", false, 0, &pt.IdleSkipNs})
			if g.SimWorkers > 1 {
				pt.SimWorkers = g.SimWorkers
				legs = append(legs, leg{"parallel", false, g.SimWorkers, &pt.ParallelNs})
			}
			for run := 0; run < bc.runs; run++ {
				for _, l := range legs {
					// The paper-calibrated default config (shortcut on,
					// 2-cycle creates) — the same machine every other entry
					// point simulates — with only the scheduler varied.
					mb := backend.NewMachine(cores)
					mb.Cfg.Dense = l.dense
					mb.Cfg.SimWorkers = l.workers
					// Collect the previous simulation's garbage outside the
					// timed window, so each timing reflects its own run, not
					// the backlog of whichever scheduler happened to go
					// before it.
					runtime.GC()
					start := time.Now()
					res, err := mb.Run(prog, in, false)
					ns := time.Since(start).Nanoseconds()
					if err != nil {
						return nil, fmt.Errorf("bench: %s c%d %s: %w", k.Name, cores, l.name, err)
					}
					mr := res.Machine
					if mr.RAX != want {
						return nil, fmt.Errorf("bench: %s c%d %s: checksum %d, reference %d",
							k.Name, cores, l.name, mr.RAX, want)
					}
					if *l.best == 0 || ns < *l.best {
						*l.best = ns
					}
					if pt.Cycles == 0 {
						pt.Sections = len(mr.Sections)
						pt.Instructions = mr.Instructions
						pt.Cycles = mr.Cycles
						pt.NocMessages = mr.NocMessages()
					} else if mr.Cycles != pt.Cycles || mr.Instructions != pt.Instructions ||
						mr.NocMessages() != pt.NocMessages {
						return nil, fmt.Errorf(
							"bench: %s c%d: %s diverges from the %s oracle (cycles %d vs %d, instr %d vs %d, noc %d vs %d)",
							k.Name, cores, l.name, legs[0].name, mr.Cycles, pt.Cycles,
							mr.Instructions, pt.Instructions, mr.NocMessages(), pt.NocMessages)
					}
				}
			}
			pt.IdleSkipNsPerCycle = float64(pt.IdleSkipNs) / float64(pt.Cycles)
			skipNs += pt.IdleSkipNs
			cycles += pt.Cycles
			if pt.DenseNs > 0 {
				pt.DenseNsPerCycle = float64(pt.DenseNs) / float64(pt.Cycles)
				pt.Speedup = pt.DenseNsPerCycle / pt.IdleSkipNsPerCycle
				denseNs += pt.DenseNs
				denseIdleNs += pt.IdleSkipNs
				denseCycles += pt.Cycles
			}
			if pt.ParallelNs > 0 {
				pt.ParallelNsPerCycle = float64(pt.ParallelNs) / float64(pt.Cycles)
				pt.ParSpeedup = float64(pt.IdleSkipNs) / float64(pt.ParallelNs)
				parNs += pt.ParallelNs
				parIdleNs += pt.IdleSkipNs
				parCycles += pt.Cycles
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	if cycles > 0 {
		rep.IdleSkipNsPerCycle = float64(skipNs) / float64(cycles)
	}
	if denseCycles > 0 {
		rep.DenseNsPerCycle = float64(denseNs) / float64(denseCycles)
	}
	if denseIdleNs > 0 {
		rep.Speedup = float64(denseNs) / float64(denseIdleNs)
	}
	if parNs > 0 {
		rep.ParallelNsPerCycle = float64(parNs) / float64(parCycles)
		rep.ParSpeedup = float64(parIdleNs) / float64(parNs)
	}
	return rep, nil
}

// Write serialises the report to path (indented JSON, trailing newline).
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads and validates a report written by Write.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("bench: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	if len(r.Points) == 0 {
		return nil, fmt.Errorf("bench: %s: no points", path)
	}
	return &r, nil
}

// Table renders the report as an aligned text table. Legs a point did not
// run (dense on big-N points, parallel when the grid disables it) print "-".
func (r *Report) Table() string {
	ms := func(ns int64) string {
		if ns == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", float64(ns)/1e6)
	}
	ratio := func(v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", v)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %5s %6s %5s %10s %11s %11s %11s %10s %7s %8s\n",
		"benchmark", "n", "cores", "secs", "cycles", "dense-ms", "idle-ms", "par-ms", "idle-ns/c", "speedup", "par-spd")
	for _, p := range r.Points {
		name := p.Kernel
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		fmt.Fprintf(&b, "%-28s %5d %6d %5d %10d %11s %11s %11s %10.1f %7s %8s\n",
			name, p.N, p.Cores, p.Sections, p.Cycles,
			ms(p.DenseNs), ms(p.IdleSkipNs), ms(p.ParallelNs),
			p.IdleSkipNsPerCycle, ratio(p.Speedup), ratio(p.ParSpeedup))
	}
	fmt.Fprintf(&b, "aggregate: dense %.1f ns/cycle, idle-skip %.1f ns/cycle, speedup %.2fx",
		r.DenseNsPerCycle, r.IdleSkipNsPerCycle, r.Speedup)
	if r.ParallelNsPerCycle > 0 {
		fmt.Fprintf(&b, ", parallel %.1f ns/cycle (par-speedup %.2fx)", r.ParallelNsPerCycle, r.ParSpeedup)
	}
	fmt.Fprintf(&b, " (%s, %d cpus, gomaxprocs %d, best of %d)\n",
		r.GoVersion, r.CPUs, r.Gomaxprocs, r.Runs)
	return b.String()
}
