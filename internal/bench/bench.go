// Package bench times the cycle-level machine simulator itself — not the
// simulated chip. It reproduces no paper material: it is infrastructure
// guarding the speed of the §4 model that every scaling study (Figs. 8–10)
// runs on. It runs a fixed kernel × core-count grid under both
// schedulers (the reference dense loop and the idle-skip scheduler), verifies
// on every point that the two produce bit-identical simulation results, and
// reports wall time and nanoseconds per simulated cycle for each.
//
// `repro bench-sim` serialises the report to BENCH_machine.json, the
// checked-in performance trajectory every future change to the simulator's
// hot loop is diffed against.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/minic"
	"repro/internal/pbbs"
)

// Schema identifies the BENCH_machine.json format.
const Schema = "bench-machine-v1"

// Grid describes the benchmark grid.
type Grid struct {
	// Kernels are pbbs selectors (IDs or name substrings). Empty selects the
	// default trio covering a sorting, a graph and a hashing kernel.
	Kernels []string
	// N is the dataset size (clamped per kernel).
	N int
	// Cores are the simulated core counts. The 64-core point is where
	// idle-skip pays: few live sections spread over many cores means most
	// cores idle most cycles.
	Cores []int
	// Seed is the workload seed.
	Seed uint64
	// Runs is how many times each (point, scheduler) pair is timed; the
	// minimum wall time is reported, the usual defence against scheduling
	// noise.
	Runs int
}

// DefaultGrid returns the standard trajectory grid: a fork-heavy kernel
// (quickSort), the few-sections extreme (removeDuplicates runs two sections,
// so on 64 cores almost every core idles almost every cycle) and the
// many-sections extreme (parallelKruskal, where the dense loop's per-core
// section scans dominate).
func DefaultGrid() Grid {
	return Grid{
		Kernels: []string{"quicksort", "duplicates", "kruskal"},
		N:       64,
		Cores:   []int{1, 16, 64},
		Seed:    1,
		Runs:    3,
	}
}

// QuickGrid returns a seconds-scale grid for CI smoke runs.
func QuickGrid() Grid {
	return Grid{
		Kernels: []string{"duplicates"},
		N:       64,
		Cores:   []int{1, 64},
		Seed:    1,
		Runs:    1,
	}
}

// Point is one measured grid point: one kernel at one core count, simulated
// under both schedulers.
type Point struct {
	Kernel       string `json:"kernel"`
	N            int    `json:"n"`
	Cores        int    `json:"cores"`
	Sections     int    `json:"sections"`
	Instructions int64  `json:"instructions"`
	Cycles       int64  `json:"cycles"`
	NocMessages  int64  `json:"nocMessages"`
	// DenseNs and IdleSkipNs are the best-of-Runs wall times of one full
	// simulation under each scheduler.
	DenseNs    int64 `json:"denseNs"`
	IdleSkipNs int64 `json:"idleSkipNs"`
	// DenseNsPerCycle and IdleSkipNsPerCycle divide the wall times by the
	// simulated cycle count — the simulator's figure of merit.
	DenseNsPerCycle    float64 `json:"denseNsPerCycle"`
	IdleSkipNsPerCycle float64 `json:"idleSkipNsPerCycle"`
	// Speedup is DenseNsPerCycle / IdleSkipNsPerCycle (the cycle counts are
	// identical by construction, so this equals the wall-time ratio).
	Speedup float64 `json:"speedup"`
}

// Report is the serialised benchmark outcome.
type Report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// CPUs is the machine's logical CPU count (runtime.NumCPU) and
	// Gomaxprocs the scheduler's processor limit at measurement time —
	// recorded separately because they routinely differ under containers
	// and CI cgroup limits, and trajectory points are only comparable when
	// both match. (Reports written before the split carry gomaxprocs 0 =
	// unknown.)
	CPUs       int     `json:"cpus"`
	Gomaxprocs int     `json:"gomaxprocs"`
	Runs       int     `json:"runs"`
	Points     []Point `json:"points"`
	// Aggregates over the whole grid: total wall time divided by total
	// simulated cycles, per scheduler, and the total wall-time ratio.
	DenseNsPerCycle    float64 `json:"denseNsPerCycle"`
	IdleSkipNsPerCycle float64 `json:"idleSkipNsPerCycle"`
	Speedup            float64 `json:"speedup"`
}

// Measure runs the grid and builds the report. Every point cross-checks the
// two schedulers: differing cycles, instruction counts, checksums or NoC
// message totals are an error, so timing numbers are only ever produced for
// verified-identical simulations.
func Measure(g Grid) (*Report, error) {
	if g.N <= 0 {
		g.N = 64
	}
	if g.Runs <= 0 {
		g.Runs = 1
	}
	if len(g.Cores) == 0 {
		g.Cores = DefaultGrid().Cores
	}
	if g.Seed == 0 {
		g.Seed = 1
	}
	sel := strings.Join(g.Kernels, ",")
	if sel == "" {
		sel = strings.Join(DefaultGrid().Kernels, ",")
	}
	ks, err := pbbs.FindAll(sel)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Schema:     Schema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Runs:       g.Runs,
	}
	var denseNs, skipNs, cycles int64
	for _, k := range ks {
		n := k.ClampN(g.N)
		prog, err := k.Build(n, minic.ModeFork)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", k.Name, err)
		}
		in := k.Gen(n, g.Seed)
		want := k.Ref(n, in)
		for _, cores := range g.Cores {
			pt := Point{Kernel: k.Name, N: n, Cores: cores}
			for run := 0; run < g.Runs; run++ {
				for _, dense := range []bool{true, false} {
					// The paper-calibrated default config (shortcut on,
					// 2-cycle creates) — the same machine every other entry
					// point simulates — with only the scheduler varied.
					mb := backend.NewMachine(cores)
					mb.Cfg.Dense = dense
					// Collect the previous simulation's garbage outside the
					// timed window, so each timing reflects its own run, not
					// the backlog of whichever scheduler happened to go
					// before it.
					runtime.GC()
					start := time.Now()
					res, err := mb.Run(prog, in, false)
					ns := time.Since(start).Nanoseconds()
					if err != nil {
						return nil, fmt.Errorf("bench: %s c%d dense=%v: %w", k.Name, cores, dense, err)
					}
					mr := res.Machine
					if mr.RAX != want {
						return nil, fmt.Errorf("bench: %s c%d dense=%v: checksum %d, reference %d",
							k.Name, cores, dense, mr.RAX, want)
					}
					if dense {
						if pt.DenseNs == 0 || ns < pt.DenseNs {
							pt.DenseNs = ns
						}
						pt.Sections = len(mr.Sections)
						pt.Instructions = mr.Instructions
						pt.Cycles = mr.Cycles
						pt.NocMessages = mr.NocMessages()
						continue
					}
					if pt.IdleSkipNs == 0 || ns < pt.IdleSkipNs {
						pt.IdleSkipNs = ns
					}
					// The cross-check: idle-skip must match the dense oracle
					// (the dense run of this iteration always came first).
					if mr.Cycles != pt.Cycles || mr.Instructions != pt.Instructions ||
						mr.NocMessages() != pt.NocMessages {
						return nil, fmt.Errorf(
							"bench: %s c%d: idle-skip diverges from dense (cycles %d vs %d, instr %d vs %d, noc %d vs %d)",
							k.Name, cores, mr.Cycles, pt.Cycles, mr.Instructions, pt.Instructions,
							mr.NocMessages(), pt.NocMessages)
					}
				}
			}
			pt.DenseNsPerCycle = float64(pt.DenseNs) / float64(pt.Cycles)
			pt.IdleSkipNsPerCycle = float64(pt.IdleSkipNs) / float64(pt.Cycles)
			pt.Speedup = pt.DenseNsPerCycle / pt.IdleSkipNsPerCycle
			denseNs += pt.DenseNs
			skipNs += pt.IdleSkipNs
			cycles += pt.Cycles
			rep.Points = append(rep.Points, pt)
		}
	}
	if cycles > 0 {
		rep.DenseNsPerCycle = float64(denseNs) / float64(cycles)
		rep.IdleSkipNsPerCycle = float64(skipNs) / float64(cycles)
	}
	if skipNs > 0 {
		rep.Speedup = float64(denseNs) / float64(skipNs)
	}
	return rep, nil
}

// Write serialises the report to path (indented JSON, trailing newline).
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads and validates a report written by Write.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("bench: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	if len(r.Points) == 0 {
		return nil, fmt.Errorf("bench: %s: no points", path)
	}
	return &r, nil
}

// Table renders the report as an aligned text table.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %5s %6s %5s %10s %11s %11s %10s %10s %7s\n",
		"benchmark", "n", "cores", "secs", "cycles", "dense-ms", "idle-ms", "dense-ns/c", "idle-ns/c", "speedup")
	for _, p := range r.Points {
		name := p.Kernel
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		fmt.Fprintf(&b, "%-28s %5d %6d %5d %10d %11.2f %11.2f %10.1f %10.1f %6.2fx\n",
			name, p.N, p.Cores, p.Sections, p.Cycles,
			float64(p.DenseNs)/1e6, float64(p.IdleSkipNs)/1e6,
			p.DenseNsPerCycle, p.IdleSkipNsPerCycle, p.Speedup)
	}
	fmt.Fprintf(&b, "aggregate: dense %.1f ns/cycle, idle-skip %.1f ns/cycle, speedup %.2fx (%s, %d cpus, gomaxprocs %d, best of %d)\n",
		r.DenseNsPerCycle, r.IdleSkipNsPerCycle, r.Speedup, r.GoVersion, r.CPUs, r.Gomaxprocs, r.Runs)
	return b.String()
}
