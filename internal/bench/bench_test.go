package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/pbbs"
)

// TestCrossCheckAllKernels is the acceptance cross-check: on every
// registered kernel the idle-skip and dense schedulers must produce
// identical cycles, instruction counts and NoC message totals — Measure
// errors out on any divergence, so a nil error here is the proof.
func TestCrossCheckAllKernels(t *testing.T) {
	want := len(pbbs.Kernels())
	if want < 11 {
		t.Fatalf("registry has %d kernels, want at least the ten of Table 1 plus histogram", want)
	}
	rep, err := Measure(Grid{Kernels: []string{"all"}, N: 12, Cores: []int{7}, Seed: 1, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != want {
		t.Fatalf("measured %d points, want %d", len(rep.Points), want)
	}
	for _, p := range rep.Points {
		if p.Cycles <= 0 || p.Instructions <= 0 || p.DenseNs <= 0 || p.IdleSkipNs <= 0 {
			t.Errorf("%s: degenerate point %+v", p.Kernel, p)
		}
		if p.Speedup <= 0 {
			t.Errorf("%s: non-positive speedup %v", p.Kernel, p.Speedup)
		}
	}
}

func TestReportRoundTripAndTable(t *testing.T) {
	rep, err := Measure(QuickGrid())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != Schema || rep.Speedup <= 0 || rep.DenseNsPerCycle <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	path := filepath.Join(t.TempDir(), "BENCH_machine.json")
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Error("report did not survive the Write/Load round trip")
	}
	tbl := rep.Table()
	for _, want := range []string{"deterministicHash", "speedup", "aggregate:"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("Load accepted non-JSON")
	}
	wrong := filepath.Join(dir, "wrong.json")
	if err := os.WriteFile(wrong, []byte(`{"schema":"other","points":[{}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(wrong); err == nil {
		t.Error("Load accepted a wrong schema")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"schema":"`+Schema+`"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); err == nil {
		t.Error("Load accepted a pointless report")
	}
}

func TestBadSelector(t *testing.T) {
	if _, err := Measure(Grid{Kernels: []string{"no-such-kernel"}}); err == nil {
		t.Error("Measure accepted an unknown kernel selector")
	}
}
