package bench

import (
	"fmt"
	"strings"
)

// DefaultTolerance is the relative idle-skip ns/cycle growth Compare accepts
// before declaring a regression.
const DefaultTolerance = 0.20

// Delta is one matched point of a Compare: the old and new ns-per-cycle
// figures of the schedulers and the relative changes of the judged ones.
type Delta struct {
	Kernel string
	N      int
	Cores  int
	// OldIdle/NewIdle (and the dense and parallel pairs) are ns per
	// simulated cycle. A leg a report did not run is 0.
	OldIdle, NewIdle   float64
	OldDense, NewDense float64
	OldPar, NewPar     float64
	// Change is NewIdle/OldIdle - 1: negative is faster, positive slower.
	Change float64
	// ChangePar is the parallel leg's relative change, judged only when both
	// reports measured it (otherwise 0 and unjudged).
	ChangePar float64
	// Regressed marks points whose idle-skip ns/cycle grew past the
	// tolerance; RegressedPar the same for the parallel leg.
	Regressed    bool
	RegressedPar bool
}

// Comparison is the outcome of matching a fresh report against a baseline.
type Comparison struct {
	Deltas []Delta
	// NewOnly counts measured points with no baseline counterpart (reported,
	// never a failure — grids may grow).
	NewOnly int
	// Invalid counts matched points whose baseline ns/cycle is not positive
	// (a hand-edited or schema-drifted file). They cannot be judged, so
	// Err() fails on them — a guard that cannot fire must not pass silently.
	Invalid int
	// Tolerance is the relative growth accepted before a point regresses.
	Tolerance float64
}

// Compare matches cur's points to old's by (kernel, n, cores) and computes
// per-point ns-per-cycle deltas. The comparison judges the idle-skip
// scheduler — the default path every sweep and serve simulation runs on —
// and, on points where both reports measured it, the parallel phase
// scheduler; the dense oracle's figures are carried along for context only.
// A tolerance of 0 is honoured (any growth fails); negative selects
// DefaultTolerance.
func Compare(old, cur *Report, tolerance float64) *Comparison {
	if tolerance < 0 {
		tolerance = DefaultTolerance
	}
	type key struct {
		kernel string
		n      int
		cores  int
	}
	base := make(map[key]*Point, len(old.Points))
	for i := range old.Points {
		p := &old.Points[i]
		base[key{p.Kernel, p.N, p.Cores}] = p
	}
	c := &Comparison{Tolerance: tolerance}
	for i := range cur.Points {
		p := &cur.Points[i]
		o, ok := base[key{p.Kernel, p.N, p.Cores}]
		if !ok {
			c.NewOnly++
			continue
		}
		d := Delta{
			Kernel:   p.Kernel,
			N:        p.N,
			Cores:    p.Cores,
			OldIdle:  o.IdleSkipNsPerCycle,
			NewIdle:  p.IdleSkipNsPerCycle,
			OldDense: o.DenseNsPerCycle,
			NewDense: p.DenseNsPerCycle,
			OldPar:   o.ParallelNsPerCycle,
			NewPar:   p.ParallelNsPerCycle,
		}
		if d.OldIdle > 0 {
			d.Change = d.NewIdle/d.OldIdle - 1
			d.Regressed = d.Change > tolerance
		} else {
			c.Invalid++
		}
		if d.OldPar > 0 && d.NewPar > 0 {
			d.ChangePar = d.NewPar/d.OldPar - 1
			d.RegressedPar = d.ChangePar > tolerance
		}
		c.Deltas = append(c.Deltas, d)
	}
	return c
}

// Regressions returns the deltas regressed on either judged leg.
func (c *Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regressed || d.RegressedPar {
			out = append(out, d)
		}
	}
	return out
}

// Err returns a regression error naming the offending points, or nil. A
// baseline point that cannot be judged (non-positive ns/cycle) is an error
// too, so a corrupt baseline cannot make the guard pass vacuously.
func (c *Comparison) Err() error {
	if c.Invalid > 0 {
		return fmt.Errorf("bench: baseline has %d point(s) with non-positive idle-skip ns/cycle — malformed baseline, nothing to judge against", c.Invalid)
	}
	regs := c.Regressions()
	if len(regs) == 0 {
		return nil
	}
	var names []string
	for _, d := range regs {
		switch {
		case d.Regressed && d.RegressedPar:
			names = append(names, fmt.Sprintf("%s n=%d c%d (idle +%.0f%%, parallel +%.0f%%)",
				d.Kernel, d.N, d.Cores, 100*d.Change, 100*d.ChangePar))
		case d.RegressedPar:
			names = append(names, fmt.Sprintf("%s n=%d c%d (parallel +%.0f%%)",
				d.Kernel, d.N, d.Cores, 100*d.ChangePar))
		default:
			names = append(names, fmt.Sprintf("%s n=%d c%d (+%.0f%%)",
				d.Kernel, d.N, d.Cores, 100*d.Change))
		}
	}
	return fmt.Errorf("bench: ns/cycle regressed beyond %.0f%% on %d point(s): %s",
		100*c.Tolerance, len(regs), strings.Join(names, ", "))
}

// Table renders the comparison benchstat-style: one row per matched point
// with old and new ns/cycle and the relative delta, idle-skip first (the
// always-judged scheduler), then the parallel leg (judged when measured on
// both sides, "-" otherwise), dense for context.
func (c *Comparison) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %5s %6s %12s %12s %8s %11s %11s %8s %12s %12s\n",
		"benchmark", "n", "cores", "old-idle/c", "new-idle/c", "delta",
		"old-par/c", "new-par/c", "pardelta", "old-dense/c", "new-dense/c")
	for _, d := range c.Deltas {
		name := d.Kernel
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		mark := ""
		switch {
		case d.Regressed && d.RegressedPar:
			mark = "  REGRESSED (idle, parallel)"
		case d.Regressed:
			mark = "  REGRESSED"
		case d.RegressedPar:
			mark = "  REGRESSED (parallel)"
		}
		parDelta := "-"
		if d.OldPar > 0 && d.NewPar > 0 {
			parDelta = fmt.Sprintf("%+.1f%%", 100*d.ChangePar)
		}
		// A leg a report did not run is 0 in the Delta; render it as "-" so
		// a big-N row (no dense leg) reads as absent, not as free.
		cell := func(v float64) string {
			if v <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f", v)
		}
		fmt.Fprintf(&b, "%-28s %5d %6d %12.1f %12.1f %+7.1f%% %11s %11s %8s %12s %12s%s\n",
			name, d.N, d.Cores, d.OldIdle, d.NewIdle, 100*d.Change,
			cell(d.OldPar), cell(d.NewPar), parDelta, cell(d.OldDense), cell(d.NewDense), mark)
	}
	if c.NewOnly > 0 {
		fmt.Fprintf(&b, "(%d measured point(s) had no baseline counterpart)\n", c.NewOnly)
	}
	return b.String()
}
