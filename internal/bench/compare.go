package bench

import (
	"fmt"
	"strings"
)

// DefaultTolerance is the relative idle-skip ns/cycle growth Compare accepts
// before declaring a regression.
const DefaultTolerance = 0.20

// Delta is one matched point of a Compare: the old and new ns-per-cycle
// figures of both schedulers and the relative idle-skip change.
type Delta struct {
	Kernel string
	N      int
	Cores  int
	// OldIdle/NewIdle (and the dense pair) are ns per simulated cycle.
	OldIdle, NewIdle   float64
	OldDense, NewDense float64
	// Change is NewIdle/OldIdle - 1: negative is faster, positive slower.
	Change float64
	// Regressed marks points whose idle-skip ns/cycle grew past the
	// tolerance.
	Regressed bool
}

// Comparison is the outcome of matching a fresh report against a baseline.
type Comparison struct {
	Deltas []Delta
	// NewOnly counts measured points with no baseline counterpart (reported,
	// never a failure — grids may grow).
	NewOnly int
	// Invalid counts matched points whose baseline ns/cycle is not positive
	// (a hand-edited or schema-drifted file). They cannot be judged, so
	// Err() fails on them — a guard that cannot fire must not pass silently.
	Invalid int
	// Tolerance is the relative growth accepted before a point regresses.
	Tolerance float64
}

// Compare matches cur's points to old's by (kernel, n, cores) and computes
// per-point ns-per-cycle deltas. The comparison judges the idle-skip
// scheduler — the default path every sweep and serve simulation runs on;
// the dense oracle's figures are carried along for context only. A
// tolerance of 0 is honoured (any growth fails); negative selects
// DefaultTolerance.
func Compare(old, cur *Report, tolerance float64) *Comparison {
	if tolerance < 0 {
		tolerance = DefaultTolerance
	}
	type key struct {
		kernel string
		n      int
		cores  int
	}
	base := make(map[key]*Point, len(old.Points))
	for i := range old.Points {
		p := &old.Points[i]
		base[key{p.Kernel, p.N, p.Cores}] = p
	}
	c := &Comparison{Tolerance: tolerance}
	for i := range cur.Points {
		p := &cur.Points[i]
		o, ok := base[key{p.Kernel, p.N, p.Cores}]
		if !ok {
			c.NewOnly++
			continue
		}
		d := Delta{
			Kernel:   p.Kernel,
			N:        p.N,
			Cores:    p.Cores,
			OldIdle:  o.IdleSkipNsPerCycle,
			NewIdle:  p.IdleSkipNsPerCycle,
			OldDense: o.DenseNsPerCycle,
			NewDense: p.DenseNsPerCycle,
		}
		if d.OldIdle > 0 {
			d.Change = d.NewIdle/d.OldIdle - 1
			d.Regressed = d.Change > tolerance
		} else {
			c.Invalid++
		}
		c.Deltas = append(c.Deltas, d)
	}
	return c
}

// Regressions returns the regressed deltas.
func (c *Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// Err returns a regression error naming the offending points, or nil. A
// baseline point that cannot be judged (non-positive ns/cycle) is an error
// too, so a corrupt baseline cannot make the guard pass vacuously.
func (c *Comparison) Err() error {
	if c.Invalid > 0 {
		return fmt.Errorf("bench: baseline has %d point(s) with non-positive idle-skip ns/cycle — malformed baseline, nothing to judge against", c.Invalid)
	}
	regs := c.Regressions()
	if len(regs) == 0 {
		return nil
	}
	var names []string
	for _, d := range regs {
		names = append(names, fmt.Sprintf("%s n=%d c%d (+%.0f%%)", d.Kernel, d.N, d.Cores, 100*d.Change))
	}
	return fmt.Errorf("bench: idle-skip ns/cycle regressed beyond %.0f%% on %d point(s): %s",
		100*c.Tolerance, len(regs), strings.Join(names, ", "))
}

// Table renders the comparison benchstat-style: one row per matched point
// with old and new ns/cycle and the relative delta, idle-skip first (the
// judged scheduler), dense for context.
func (c *Comparison) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %5s %6s %12s %12s %8s %12s %12s\n",
		"benchmark", "n", "cores", "old-idle/c", "new-idle/c", "delta", "old-dense/c", "new-dense/c")
	for _, d := range c.Deltas {
		name := d.Kernel
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		mark := ""
		if d.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Fprintf(&b, "%-28s %5d %6d %12.1f %12.1f %+7.1f%% %12.1f %12.1f%s\n",
			name, d.N, d.Cores, d.OldIdle, d.NewIdle, 100*d.Change, d.OldDense, d.NewDense, mark)
	}
	if c.NewOnly > 0 {
		fmt.Fprintf(&b, "(%d measured point(s) had no baseline counterpart)\n", c.NewOnly)
	}
	return b.String()
}
