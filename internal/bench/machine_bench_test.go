package bench

import (
	"fmt"
	"testing"

	"repro/internal/backend"
	"repro/internal/machine"
	"repro/internal/minic"
	"repro/internal/pbbs"
)

// BenchmarkMachineRun times one full machine simulation per iteration, so
// `go test -bench MachineRun ./internal/bench` measures the simulator hot
// path without the custom bench-sim rig. ns/op divided by the reported
// cycles/op metric is the same ns-per-cycle figure BENCH_machine.json tracks.
func BenchmarkMachineRun(b *testing.B) {
	for _, tc := range []struct {
		kernel string
		cores  int
	}{
		{"quicksort", 1},
		{"quicksort", 16},
		{"quicksort", 64},
		{"duplicates", 64},
	} {
		k, err := pbbs.Find(tc.kernel)
		if err != nil {
			b.Fatal(err)
		}
		n := k.ClampN(64)
		prog, err := k.Build(n, minic.ModeFork)
		if err != nil {
			b.Fatal(err)
		}
		in := k.Gen(n, 1)
		b.Run(fmt.Sprintf("%s/c%d", tc.kernel, tc.cores), func(b *testing.B) {
			b.ReportAllocs()
			var cycles int64
			for i := 0; i < b.N; i++ {
				mb := backend.NewMachine(tc.cores)
				res, err := mb.Run(prog, in, false)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles/op")
		})
	}
}

// BenchmarkMachineRunSteady times warmed re-runs on one reused machine
// (machine.Reset between iterations): the steady-state serving shape, where
// arenas are grown and the hot path allocates nothing. The gap between this
// and BenchmarkMachineRun is the per-simulation construction and GC cost.
func BenchmarkMachineRunSteady(b *testing.B) {
	k, err := pbbs.Find("quicksort")
	if err != nil {
		b.Fatal(err)
	}
	n := k.ClampN(64)
	prog, err := k.Build(n, minic.ModeFork)
	if err != nil {
		b.Fatal(err)
	}
	in := k.Gen(n, 1)
	for _, cores := range []int{1, 64} {
		b.Run(fmt.Sprintf("c%d", cores), func(b *testing.B) {
			m, err := machine.New(prog, machine.DefaultConfig(cores))
			if err != nil {
				b.Fatal(err)
			}
			seed := func() {
				for sym, words := range in {
					addr, _ := prog.DataAddr(sym)
					for i, w := range words {
						m.DMH().WriteU64(addr+uint64(8*i), w)
					}
				}
			}
			seed()
			if _, err := m.Run(); err != nil { // warm the arenas
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var cycles int64
			for i := 0; i < b.N; i++ {
				m.Reset()
				seed()
				res, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles/op")
		})
	}
}
