package pbbs

// Shared deterministic input generators for the graph kernels. Graphs are
// random multigraphs: m independently drawn (u, v) pairs over n vertices.
// Self-loops and parallel edges are kept; every kernel's mini-C code and Go
// reference handle them identically, so the cross-check stays exact.

// graphDegree is the edge-to-vertex ratio of the generated graphs
// (m = graphDegree·n), matching the sparse inputs PBBS uses.
const graphDegree = 3

// randEdges draws m endpoint pairs over n vertices.
func randEdges(n, m int, r *rng) (eu, ev []uint64) {
	eu = make([]uint64, m)
	ev = make([]uint64, m)
	for i := 0; i < m; i++ {
		eu[i] = r.uintn(uint64(n))
		ev[i] = r.uintn(uint64(n))
	}
	return eu, ev
}

// csrFromEdges builds the undirected CSR adjacency of the edge list: off has
// n+1 entries and adj has 2m entries (each edge contributes both directions;
// a self-loop contributes its endpoint twice).
func csrFromEdges(n int, eu, ev []uint64) (off, adj []uint64) {
	deg := make([]uint64, n)
	for i := range eu {
		deg[eu[i]]++
		deg[ev[i]]++
	}
	off = make([]uint64, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	adj = make([]uint64, 2*len(eu))
	cur := make([]uint64, n)
	copy(cur, off[:n])
	for i := range eu {
		u, v := eu[i], ev[i]
		adj[cur[u]] = v
		cur[u]++
		adj[cur[v]] = u
		cur[v]++
	}
	return off, adj
}

// genCSRGraph returns CSR inputs {off, adj} for an n-vertex random graph.
func genCSRGraph(n int, seed uint64) Inputs {
	r := newRNG(seed)
	eu, ev := randEdges(n, graphDegree*n, r)
	off, adj := csrFromEdges(n, eu, ev)
	return Inputs{"off": off, "adj": adj}
}

// mix is the checksum accumulator every kernel uses; it must match the
// mini-C expression `s = s * 31 + v` exactly (64-bit wrapping).
func mix(s, v uint64) uint64 { return s*31 + v }

// hashTableSize returns the open-addressing table geometry the hashing
// kernels share for n keys: a power-of-two size keeping the load factor
// <= 1/4, and the matching Fibonacci-hash downshift.
func hashTableSize(n int) (size, shift int) {
	size = nextPow2(4 * n)
	return size, 64 - log2(size)
}

// nextPow2 returns the smallest power of two >= x (and >= 2).
func nextPow2(x int) int {
	p := 2
	for p < x {
		p *= 2
	}
	return p
}

// log2 returns the base-2 logarithm of the power of two p.
func log2(p int) int {
	k := 0
	for 1<<k < p {
		k++
	}
	return k
}
