package pbbs

import "fmt"

// Benchmark 3 — convexHull/quickHull.
//
// Recursive quickhull over random integer points: for each oriented segment
// (a, b), the farthest point strictly to its left becomes a hull vertex and
// splits the segment. The full point set is rescanned at each call (an
// O(n·h) variant); the recursion order is deterministic, and the Go
// reference mirrors it exactly, including the order-sensitive checksum.

func quickhullSource(n int) string {
	return fmt.Sprintf(`
long px[%d];
long py[%d];
unsigned long hsum = 0;
unsigned long hcnt = 0;
void findhull(long ax, long ay, long bx, long by) {
    long best = 0 - 1;
    long bestd = 0;
    for (long i = 0; i < %d; i = i + 1) {
        long d = (bx - ax) * (py[i] - ay) - (by - ay) * (px[i] - ax);
        if (d > bestd) { bestd = d; best = i; }
    }
    if (best < 0) return;
    hsum = hsum * 31 + px[best] * 7 + py[best];
    hcnt = hcnt + 1;
    findhull(ax, ay, px[best], py[best]);
    findhull(px[best], py[best], bx, by);
}
unsigned long main(void) {
    long lo = 0;
    long hi = 0;
    for (long i = 1; i < %d; i = i + 1) {
        if (px[i] < px[lo] || (px[i] == px[lo] && py[i] < py[lo])) lo = i;
        if (px[i] > px[hi] || (px[i] == px[hi] && py[i] > py[hi])) hi = i;
    }
    findhull(px[lo], py[lo], px[hi], py[hi]);
    findhull(px[hi], py[hi], px[lo], py[lo]);
    return hsum * 1000003 + hcnt * 31 + lo * 7 + hi;
}`, n, n, n, n)
}

func quickhullGen(n int, seed uint64) Inputs {
	r := newRNG(seed + 3*0x9e3779b9)
	px := make([]uint64, n)
	py := make([]uint64, n)
	for i := 0; i < n; i++ {
		px[i] = r.uintn(1 << 16)
		py[i] = r.uintn(1 << 16)
	}
	return Inputs{"px": px, "py": py}
}

func quickhullRef(n int, in Inputs) uint64 {
	px, py := in["px"], in["py"]
	x := func(i int) int64 { return int64(px[i]) }
	y := func(i int) int64 { return int64(py[i]) }
	var hsum, hcnt uint64
	var findhull func(ax, ay, bx, by int64)
	findhull = func(ax, ay, bx, by int64) {
		best := -1
		var bestd int64
		for i := 0; i < n; i++ {
			d := (bx-ax)*(y(i)-ay) - (by-ay)*(x(i)-ax)
			if d > bestd {
				bestd = d
				best = i
			}
		}
		if best < 0 {
			return
		}
		hsum = hsum*31 + uint64(x(best)*7+y(best))
		hcnt++
		findhull(ax, ay, x(best), y(best))
		findhull(x(best), y(best), bx, by)
	}
	lo, hi := 0, 0
	for i := 1; i < n; i++ {
		if x(i) < x(lo) || (x(i) == x(lo) && y(i) < y(lo)) {
			lo = i
		}
		if x(i) > x(hi) || (x(i) == x(hi) && y(i) > y(hi)) {
			hi = i
		}
	}
	findhull(x(lo), y(lo), x(hi), y(hi))
	findhull(x(hi), y(hi), x(lo), y(lo))
	return hsum*1000003 + hcnt*31 + uint64(lo)*7 + uint64(hi)
}

func init() {
	Register(&Kernel{
		ID:     3,
		Name:   "convexHull/quickHull",
		MinN:   2,
		Source: staticSource(quickhullSource),
		Gen:    quickhullGen,
		Ref:    staticRef(quickhullRef),
	})
}
