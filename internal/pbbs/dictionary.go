package pbbs

import "fmt"

// Benchmark 4 — dictionary/deterministicHash.
//
// Open-addressing hash table (Fibonacci hashing, linear probing) at load
// factor <= 1/4: insert n keys with duplicates, then probe n queries (half
// drawn from the inserted keys, half random). The checksum folds the final
// probe slot of every hit and a sentinel for every miss, so it pins down the
// exact probe sequences. The Go reference mirrors the table byte for byte.

func dictionarySource(n int) string {
	t, shift := hashTableSize(n)
	return fmt.Sprintf(`
unsigned long keys[%d];
unsigned long qrys[%d];
unsigned long tab[%d];
unsigned long main(void) {
    unsigned long n = %d;
    for (unsigned long i = 0; i < n; i = i + 1) {
        unsigned long k = keys[i] + 1;
        unsigned long h = k * 0x9e3779b97f4a7c15 >> %d;
        while (tab[h] != 0 && tab[h] != k) h = (h + 1) & %d;
        tab[h] = k;
    }
    unsigned long s = 0;
    for (unsigned long i = 0; i < n; i = i + 1) {
        unsigned long k = qrys[i] + 1;
        unsigned long h = k * 0x9e3779b97f4a7c15 >> %d;
        while (tab[h] != 0 && tab[h] != k) h = (h + 1) & %d;
        if (tab[h] == k) s = s * 31 + h;
        else s = s * 31 + 0xdeadbeef;
    }
    return s;
}`, n, n, t, n, shift, t-1, shift, t-1)
}

func dictionaryGen(n int, seed uint64) Inputs {
	r := newRNG(seed + 4*0x9e3779b9)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = r.uintn(1 << 30)
	}
	qrys := make([]uint64, n)
	for i := range qrys {
		if i%2 == 0 {
			qrys[i] = keys[r.uintn(uint64(n))]
		} else {
			qrys[i] = r.uintn(1 << 30)
		}
	}
	return Inputs{"keys": keys, "qrys": qrys}
}

func dictionaryRef(n int, in Inputs) uint64 {
	keys, qrys := in["keys"], in["qrys"]
	t, sh := hashTableSize(n)
	shift := uint(sh)
	mask := uint64(t - 1)
	tab := make([]uint64, t)
	probe := func(k uint64) uint64 {
		h := k * 0x9e3779b97f4a7c15 >> shift
		for tab[h] != 0 && tab[h] != k {
			h = (h + 1) & mask
		}
		return h
	}
	for i := 0; i < n; i++ {
		k := keys[i] + 1
		tab[probe(k)] = k
	}
	var s uint64
	for i := 0; i < n; i++ {
		k := qrys[i] + 1
		h := probe(k)
		if tab[h] == k {
			s = mix(s, h)
		} else {
			s = mix(s, 0xdeadbeef)
		}
	}
	return s
}

func init() {
	Register(&Kernel{
		ID:     4,
		Name:   "dictionary/deterministicHash",
		MinN:   2,
		Source: staticSource(dictionarySource),
		Gen:    dictionaryGen,
		Ref:    staticRef(dictionaryRef),
	})
}
