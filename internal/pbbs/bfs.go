package pbbs

import "fmt"

// Benchmark 1 — breadthFirstSearch/deterministicBFS.
//
// Single-source BFS from vertex 0 over a random undirected CSR graph, with
// an explicit FIFO queue; the checksum folds every vertex's hop distance
// (unreached vertices keep the "infinity" sentinel).

func bfsSource(n int) string {
	m := graphDegree * n
	return fmt.Sprintf(`
unsigned long off[%d];
unsigned long adj[%d];
unsigned long dist[%d];
unsigned long fifo[%d];
unsigned long main(void) {
    unsigned long n = %d;
    unsigned long none = 0xffffffffffffffff;
    for (unsigned long i = 0; i < n; i = i + 1) dist[i] = none;
    dist[0] = 0;
    fifo[0] = 0;
    unsigned long head = 0;
    unsigned long tail = 1;
    while (head < tail) {
        unsigned long u = fifo[head];
        head = head + 1;
        for (unsigned long e = off[u]; e < off[u + 1]; e = e + 1) {
            unsigned long v = adj[e];
            if (dist[v] == none) {
                dist[v] = dist[u] + 1;
                fifo[tail] = v;
                tail = tail + 1;
            }
        }
    }
    unsigned long s = 0;
    for (unsigned long i = 0; i < n; i = i + 1) s = s * 31 + dist[i];
    return s;
}`, n+1, 2*m, n, n, n)
}

func bfsRef(n int, in Inputs) uint64 {
	off, adj := in["off"], in["adj"]
	const none = ^uint64(0)
	dist := make([]uint64, n)
	for i := range dist {
		dist[i] = none
	}
	fifo := make([]uint64, 0, n)
	dist[0] = 0
	fifo = append(fifo, 0)
	for head := 0; head < len(fifo); head++ {
		u := fifo[head]
		for e := off[u]; e < off[u+1]; e++ {
			v := adj[e]
			if dist[v] == none {
				dist[v] = dist[u] + 1
				fifo = append(fifo, v)
			}
		}
	}
	var s uint64
	for i := 0; i < n; i++ {
		s = mix(s, dist[i])
	}
	return s
}

func init() {
	Register(&Kernel{
		ID:     1,
		Name:   "breadthFirstSearch/deterministicBFS",
		MinN:   2,
		Source: staticSource(bfsSource),
		Gen:    func(n int, seed uint64) Inputs { return genCSRGraph(n, seed+1*0x9e3779b9) },
		Ref:    staticRef(bfsRef),
	})
}
