package pbbs

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/minic"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden mini-C files under testdata/golden")

// goldenName is the golden file for one kernel at one dataset size. Two
// kernels share the "deterministicHash" short name; the ID prefix keeps the
// files distinct.
func goldenName(k *Kernel, n int) string {
	short := k.Name
	if i := strings.IndexByte(short, '/'); i >= 0 {
		short = short[i+1:]
	}
	return filepath.Join("testdata", "golden", fmt.Sprintf("%02d-%s-n%d.c", k.ID, short, n))
}

// canonical returns the canonical (minic.Format) rendering of the kernel's
// source at n. Hand-written templates are free-form mini-C, so they are
// normalised through Parse∘Format; lowered kernels emit canonical text
// directly, which the fixpoint check below pins.
func canonical(t *testing.T, k *Kernel, n int) string {
	t.Helper()
	src, err := k.Source(n)
	if err != nil {
		t.Fatalf("%s: Source(%d): %v", k.Name, n, err)
	}
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("%s: parsing Source(%d): %v", k.Name, n, err)
	}
	canon := minic.Format(prog)
	if k.Lang == LangGo && canon != src {
		t.Errorf("%s: lowered source at n=%d is not Format-canonical", k.Name, n)
	}
	return canon
}

// TestGoldenSources pins every registered kernel's generated mini-C, in
// canonical form, at n=MinN and n=64. The files were generated from the
// hand-written templates before the quickSort/dedup/radixSort migration to
// annotated Go, so a diff here means the compiled program changed — which
// would silently re-key the sweep cache and detach BENCH_machine.json
// baselines. Run with -update to rewrite them deliberately.
func TestGoldenSources(t *testing.T) {
	for _, k := range Kernels() {
		for _, n := range []int{k.MinN, 64} {
			path := goldenName(k, n)
			got := canonical(t, k, n)
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatalf("writing %s: %v", path, err)
				}
				continue
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%s: %v (run with -update to create)", k.Name, err)
			}
			if got != string(want) {
				t.Errorf("%s at n=%d: generated mini-C drifted from %s\n--- golden\n%s\n--- generated\n%s",
					k.Name, n, path, want, got)
			}
		}
	}
}
