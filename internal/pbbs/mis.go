package pbbs

import "fmt"

// Benchmark 6 — maximalIndependentSet/ndMIS.
//
// Greedy maximal independent set in vertex order over a random undirected
// CSR graph: a vertex joins the set when no lower-numbered neighbour already
// did. The vertex numbering plays the role of the random priorities of the
// PBBS non-deterministic MIS (the numbering itself is randomly generated).

func misSource(n int) string {
	m := graphDegree * n
	return fmt.Sprintf(`
unsigned long off[%d];
unsigned long adj[%d];
unsigned long flag[%d];
unsigned long main(void) {
    unsigned long n = %d;
    for (unsigned long v = 0; v < n; v = v + 1) {
        unsigned long ok = 1;
        for (unsigned long e = off[v]; e < off[v + 1]; e = e + 1) {
            unsigned long u = adj[e];
            if (u < v && flag[u]) ok = 0;
        }
        flag[v] = ok;
    }
    unsigned long s = 0;
    for (unsigned long v = 0; v < n; v = v + 1) s = s * 31 + flag[v] * (v + 1);
    return s;
}`, n+1, 2*m, n, n)
}

func misRef(n int, in Inputs) uint64 {
	off, adj := in["off"], in["adj"]
	flag := make([]uint64, n)
	for v := uint64(0); v < uint64(n); v++ {
		ok := uint64(1)
		for e := off[v]; e < off[v+1]; e++ {
			if u := adj[e]; u < v && flag[u] != 0 {
				ok = 0
			}
		}
		flag[v] = ok
	}
	var s uint64
	for v := uint64(0); v < uint64(n); v++ {
		s = mix(s, flag[v]*(v+1))
	}
	return s
}

func init() {
	Register(&Kernel{
		ID:     6,
		Name:   "maximalIndependentSet/ndMIS",
		MinN:   2,
		Source: staticSource(misSource),
		Gen:    func(n int, seed uint64) Inputs { return genCSRGraph(n, seed+6*0x9e3779b9) },
		Ref:    staticRef(misRef),
	})
}
