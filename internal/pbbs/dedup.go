package pbbs

import "fmt"

// Benchmark 10 — removeDuplicates/deterministicHash.
//
// Hash-based duplicate removal over keys drawn from a small range (so
// duplicates are plentiful): the first occurrence of each value claims a
// table slot. The checksum folds the distinct count and the sum of distinct
// values, both order-independent, so the Go reference uses a map.

func dedupSource(n int) string {
	t, shift := hashTableSize(n)
	return fmt.Sprintf(`
unsigned long a[%d];
unsigned long tab[%d];
unsigned long main(void) {
    unsigned long n = %d;
    unsigned long cnt = 0;
    unsigned long sum = 0;
    for (unsigned long i = 0; i < n; i = i + 1) {
        unsigned long k = a[i] + 1;
        unsigned long h = k * 0x9e3779b97f4a7c15 >> %d;
        while (tab[h] != 0 && tab[h] != k) h = (h + 1) & %d;
        if (tab[h] == 0) {
            tab[h] = k;
            cnt = cnt + 1;
            sum = sum + a[i];
        }
    }
    return cnt * 0x9e3779b97f4a7c15 + sum;
}`, n, t, n, shift, t-1)
}

func dedupGen(n int, seed uint64) Inputs {
	r := newRNG(seed + 10*0x9e3779b9)
	a := make([]uint64, n)
	for i := range a {
		a[i] = r.uintn(uint64(n))
	}
	return Inputs{"a": a}
}

func dedupRef(n int, in Inputs) uint64 {
	seen := make(map[uint64]bool)
	var cnt, sum uint64
	for _, v := range in["a"] {
		if !seen[v] {
			seen[v] = true
			cnt++
			sum += v
		}
	}
	return cnt*0x9e3779b97f4a7c15 + sum
}

func init() {
	Register(&Kernel{
		ID:     10,
		Name:   "removeDuplicates/deterministicHash",
		MinN:   2,
		Source: dedupSource,
		Gen:    dedupGen,
		Ref:    dedupRef,
	})
}
