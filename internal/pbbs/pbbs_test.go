package pbbs

import (
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/minic"
)

func TestRegistryCompleteness(t *testing.T) {
	ks := Kernels()
	if len(ks) != 11 {
		t.Fatalf("registry has %d kernels, want 11 (the paper's ten plus histogram)", len(ks))
	}
	for i, k := range ks {
		if k.ID != i+1 {
			t.Errorf("kernel %d has ID %d, want %d (paper order)", i, k.ID, i+1)
		}
		if !strings.Contains(k.Name, "/") {
			t.Errorf("kernel %d name %q is not suite/implementation", k.ID, k.Name)
		}
		switch k.Lang {
		case LangMiniC, LangGo:
		default:
			t.Errorf("kernel %d has unknown Lang %q", k.ID, k.Lang)
		}
	}
	// The annotated-Go path covers the migrated kernels and histogram.
	for _, id := range []int{2, 5, 10, 11} {
		if k, err := ByID(id); err != nil || k.Lang != LangGo {
			t.Errorf("ByID(%d): lang %q, err %v; want an annotated-Go kernel", id, k.Lang, err)
		}
	}
	if _, err := ByID(3); err != nil {
		t.Error(err)
	}
	if _, err := ByID(12); err == nil {
		t.Error("ByID(12) should fail")
	}
}

// TestAllKernelsOnEmulator is the core Fig. 7 prerequisite: every kernel
// compiles in both modes, runs on the emulator, and matches its pure-Go
// reference checksum at several sizes and seeds.
func TestAllKernelsOnEmulator(t *testing.T) {
	for _, k := range Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			for _, n := range []int{k.MinN, 16, 48, 96} {
				for _, seed := range []uint64{1, 42} {
					res, err := k.Run(n, seed, false)
					if err != nil {
						t.Fatalf("n=%d seed=%d: %v", n, seed, err)
					}
					if res.Checksum != res.Expected {
						t.Fatalf("n=%d seed=%d: checksum %d != %d", n, seed, res.Checksum, res.Expected)
					}
					if res.Steps <= 0 {
						t.Errorf("n=%d: no instructions executed", n)
					}
				}
			}
			// Fork mode must also compile (the machine's convention).
			if _, err := k.Build(16, minic.ModeFork); err != nil {
				t.Errorf("fork-mode build: %v", err)
			}
		})
	}
}

// TestKernelsCrossValidateOnMachine runs a representative subset (recursive,
// loop-heavy, and hash-probing kernels) on the cycle-level many-core machine
// and checks rax and full data-segment agreement with the emulator.
func TestKernelsCrossValidateOnMachine(t *testing.T) {
	cases := []struct {
		id    int
		n     int
		cores int
	}{
		{2, 12, 8}, // quickSort: deep fork recursion, many sections
		{3, 10, 4}, // quickHull: recursive with global accumulator
		{5, 8, 2},  // blockRadixSort: single long section, heavy memory renaming
		{10, 8, 2}, // removeDuplicates: data-dependent probe loops
	}
	for _, c := range cases {
		k, err := ByID(c.id)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := k.CrossValidate(c.n, 7, c.cores)
		if err != nil {
			t.Errorf("%s: %v", k.Name, err)
			continue
		}
		if rm.Cycles <= 0 || rm.Instructions <= 0 {
			t.Errorf("%s: empty machine result %+v", k.Name, rm)
		}
	}
}

func TestMeasureILPSanity(t *testing.T) {
	k, err := ByID(1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.MeasureILP(48, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instructions <= 0 {
		t.Fatal("empty trace")
	}
	if p.SeqILP <= 0 || p.ParILP <= 0 {
		t.Fatalf("non-positive ILP: %+v", p)
	}
	// The parallel model drops strictly more dependences than the
	// sequential one, so its ILP can never be lower.
	if p.ParILP < p.SeqILP {
		t.Errorf("parallel ILP %.2f < sequential ILP %.2f", p.ParILP, p.SeqILP)
	}
}

func TestMeasureAllWorkerPool(t *testing.T) {
	ks := Kernels()
	sizes := []int{16, 32}
	points, err := MeasureAll(ks, sizes, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(ks)*len(sizes) {
		t.Fatalf("%d points, want %d", len(points), len(ks)*len(sizes))
	}
	// Sorted by (ID, N) and complete.
	for i := 1; i < len(points); i++ {
		a, b := points[i-1], points[i]
		if a.Kernel.ID > b.Kernel.ID || (a.Kernel.ID == b.Kernel.ID && a.N >= b.N) {
			t.Errorf("points not sorted at %d: (%d,%d) then (%d,%d)", i, a.Kernel.ID, a.N, b.Kernel.ID, b.N)
		}
	}
	tbl := Fig7Table(points)
	for _, k := range ks {
		if !strings.Contains(tbl, k.Name) {
			t.Errorf("Fig7 table missing %s", k.Name)
		}
	}
}

// TestDeterministicInputs: the same (n, seed) must generate identical inputs
// so measurements are reproducible.
func TestDeterministicInputs(t *testing.T) {
	for _, k := range Kernels() {
		a := k.Gen(32, 9)
		b := k.Gen(32, 9)
		if len(a) == 0 {
			t.Errorf("%s: no inputs", k.Name)
		}
		for sym, wa := range a {
			wb, ok := b[sym]
			if !ok || len(wa) != len(wb) {
				t.Fatalf("%s: inputs differ in symbol %q", k.Name, sym)
			}
			for i := range wa {
				if wa[i] != wb[i] {
					t.Fatalf("%s: %s[%d] differs between identical generations", k.Name, sym, i)
				}
			}
		}
	}
}

// TestSeedChangesChecksum: different seeds must change the workload (and so
// the checksum) — guards against generators ignoring the seed.
func TestSeedChangesChecksum(t *testing.T) {
	for _, k := range Kernels() {
		r1, err := k.Run(32, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := k.Run(32, 2, false)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Checksum == r2.Checksum {
			t.Errorf("%s: checksum identical across seeds (%d)", k.Name, r1.Checksum)
		}
	}
}

func TestClampToMinN(t *testing.T) {
	k, err := ByID(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := k.Run(0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != k.MinN {
		t.Errorf("n clamped to %d, want %d", res.N, k.MinN)
	}
}

func TestRunOnReportsBackend(t *testing.T) {
	k, err := ByID(10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := k.RunOn(backend.NewEmulator(), 16, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "emu" {
		t.Errorf("backend = %q", res.Backend)
	}
}

func TestFindSelectors(t *testing.T) {
	if k, err := Find("2"); err != nil || k.ID != 2 {
		t.Errorf("Find(\"2\") = %v, %v", k, err)
	}
	if k, err := Find("quicksort"); err != nil || k.ID != 2 {
		t.Errorf("Find(\"quicksort\") = %v, %v", k, err)
	}
	if _, err := Find("deterministicHash"); err == nil {
		t.Error("Find did not flag an ambiguous selector")
	}
	if _, err := Find("nosuchkernel"); err == nil {
		t.Error("Find accepted an unknown selector")
	}
	all, err := FindAll("all")
	if err != nil || len(all) != len(Kernels()) {
		t.Errorf("FindAll(\"all\") = %d kernels, %v", len(all), err)
	}
	two, err := FindAll("quicksort,bfs")
	if err != nil || len(two) != 2 || two[0].ID != 1 || two[1].ID != 2 {
		t.Errorf("FindAll(\"quicksort,bfs\") = %v, %v", two, err)
	}
	if dup, err := FindAll("2,quicksort"); err != nil || len(dup) != 1 {
		t.Errorf("FindAll did not dedup: %v, %v", dup, err)
	}
}
