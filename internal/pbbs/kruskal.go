package pbbs

import (
	"fmt"
	"sort"
)

// Benchmark 8 — minSpanningForest/parallelKruskal.
//
// Kruskal's minimum spanning forest: quicksort the edge list by weight, then
// scan it with a union-find (path halving). The checksum folds the total
// forest weight and the number of tree edges — both are invariant across any
// tie-breaking of equal weights (the matroid exchange property), so the Go
// reference may sort its own way.

func kruskalSource(n int) string {
	m := graphDegree * n
	return fmt.Sprintf(`
unsigned long eu[%d];
unsigned long ev[%d];
unsigned long ew[%d];
unsigned long parent[%d];
unsigned long find(unsigned long x) {
    while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    return x;
}
void qs(long lo, long hi) {
    if (lo >= hi) return;
    unsigned long p = ew[hi];
    long i = lo;
    for (long j = lo; j < hi; j = j + 1) {
        if (ew[j] < p) {
            unsigned long t = ew[i]; ew[i] = ew[j]; ew[j] = t;
            t = eu[i]; eu[i] = eu[j]; eu[j] = t;
            t = ev[i]; ev[i] = ev[j]; ev[j] = t;
            i = i + 1;
        }
    }
    unsigned long t = ew[i]; ew[i] = ew[hi]; ew[hi] = t;
    t = eu[i]; eu[i] = eu[hi]; eu[hi] = t;
    t = ev[i]; ev[i] = ev[hi]; ev[hi] = t;
    qs(lo, i - 1);
    qs(i + 1, hi);
}
unsigned long main(void) {
    unsigned long n = %d;
    unsigned long m = %d;
    for (unsigned long v = 0; v < n; v = v + 1) parent[v] = v;
    qs(0, %d);
    unsigned long w = 0;
    unsigned long taken = 0;
    for (unsigned long e = 0; e < m; e = e + 1) {
        unsigned long ru = find(eu[e]);
        unsigned long rv = find(ev[e]);
        if (ru != rv) {
            parent[ru] = rv;
            w = w + ew[e];
            taken = taken + 1;
        }
    }
    return w * 0x9e3779b97f4a7c15 + taken;
}`, m, m, m, n, n, m, m-1)
}

func kruskalGen(n int, seed uint64) Inputs {
	r := newRNG(seed + 8*0x9e3779b9)
	m := graphDegree * n
	eu, ev := randEdges(n, m, r)
	ew := make([]uint64, m)
	for i := range ew {
		ew[i] = r.uintn(1 << 40)
	}
	return Inputs{"eu": eu, "ev": ev, "ew": ew}
}

func kruskalRef(n int, in Inputs) uint64 {
	eu, ev, ew := in["eu"], in["ev"], in["ew"]
	order := make([]int, len(ew))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ew[order[a]] < ew[order[b]] })
	parent := make([]uint64, n)
	for v := range parent {
		parent[v] = uint64(v)
	}
	find := func(x uint64) uint64 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var w, taken uint64
	for _, e := range order {
		ru, rv := find(eu[e]), find(ev[e])
		if ru != rv {
			parent[ru] = rv
			w += ew[e]
			taken++
		}
	}
	return w*0x9e3779b97f4a7c15 + taken
}

func init() {
	Register(&Kernel{
		ID:     8,
		Name:   "minSpanningForest/parallelKruskal",
		MinN:   2,
		Source: staticSource(kruskalSource),
		Gen:    kruskalGen,
		Ref:    staticRef(kruskalRef),
	})
}
