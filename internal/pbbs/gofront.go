package pbbs

import (
	"embed"
	"fmt"
	"io/fs"
	"path"
	"sort"

	"repro/internal/gofront"
)

// Annotated-Go kernels live in kernels/*.go: build-tagged out of the binary,
// embedded here, and scanned by internal/gofront at package init. Dropping a
// new annotated file into the directory is the whole registration — the
// embed glob and the scan below pick it up with no registry edits.
//
//go:embed kernels/*.go
var kernelFS embed.FS

func init() {
	entries, err := fs.ReadDir(kernelFS, "kernels")
	if err != nil {
		panic(fmt.Sprintf("pbbs: reading embedded kernels: %v", err))
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && path.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		src, err := fs.ReadFile(kernelFS, path.Join("kernels", name))
		if err != nil {
			panic(fmt.Sprintf("pbbs: reading embedded kernel %s: %v", name, err))
		}
		gk, err := gofront.Scan(name, src)
		if err != nil {
			panic(fmt.Sprintf("pbbs: %v", err))
		}
		RegisterGo(gk)
	}
}

// RegisterGo adds a gofront-scanned annotated-Go kernel to the suite: the
// mini-C source is the gofront lowering, the reference checksum is the
// gofront interpreter over the same AST, and the input arrays come from the
// //repro:array annotations. Like Register, it panics on malformed or
// duplicate registrations.
func RegisterGo(gk *gofront.Kernel) {
	Register(&Kernel{
		ID:     gk.ID,
		Name:   gk.Name,
		MinN:   gk.MinN,
		Lang:   LangGo,
		Source: gk.Source,
		Gen:    goGen(gk),
		Ref: func(n int, in Inputs) (uint64, error) {
			return gk.Ref(n, in)
		},
	})
}

// goGen derives a kernel's input generator from its //repro:array
// annotations: one deterministic stream per kernel (seeded exactly like the
// hand-written generators, so migrated kernels keep their inputs
// bit-identical), drawn into the gen-annotated arrays in declaration order.
func goGen(gk *gofront.Kernel) func(n int, seed uint64) Inputs {
	return func(n int, seed uint64) Inputs {
		r := newRNG(seed + uint64(gk.ID)*0x9e3779b9)
		in := make(Inputs)
		for _, a := range gk.Arrays {
			if a.Gen == gofront.GenNone {
				continue
			}
			ln, err := a.Len.Eval(n)
			if err != nil || ln < 1 {
				// Unreachable in practice: Build evaluates the same
				// expressions first and fails there; Gen keeps the
				// infallible signature shared with the legacy kernels.
				panic(fmt.Sprintf("pbbs: %s: array %s length at n=%d: %v", gk.Name, a.Name, n, err))
			}
			words := make([]uint64, ln)
			switch a.Gen {
			case gofront.GenU32:
				for i := range words {
					words[i] = r.uintn(1 << 32)
				}
			case gofront.GenModN:
				for i := range words {
					words[i] = r.uintn(uint64(n))
				}
			}
			in[a.Name] = words
		}
		return in
	}
}
