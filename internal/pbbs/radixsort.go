package pbbs

import (
	"fmt"
	"slices"
)

// Benchmark 5 — integerSort/blockRadixSort.
//
// LSD radix sort of 32-bit keys in four 8-bit-digit passes: histogram,
// exclusive prefix sum, stable scatter, copy back.

func radixsortSource(n int) string {
	return fmt.Sprintf(`
unsigned long a[%d];
unsigned long b[%d];
unsigned long cnt[256];
unsigned long main(void) {
    unsigned long n = %d;
    for (long pass = 0; pass < 4; pass = pass + 1) {
        unsigned long sh = pass * 8;
        for (long d = 0; d < 256; d = d + 1) cnt[d] = 0;
        for (unsigned long i = 0; i < n; i = i + 1) {
            unsigned long d = a[i] >> sh & 255;
            cnt[d] = cnt[d] + 1;
        }
        unsigned long run = 0;
        for (long d = 0; d < 256; d = d + 1) {
            unsigned long c = cnt[d];
            cnt[d] = run;
            run = run + c;
        }
        for (unsigned long i = 0; i < n; i = i + 1) {
            unsigned long d = a[i] >> sh & 255;
            b[cnt[d]] = a[i];
            cnt[d] = cnt[d] + 1;
        }
        for (unsigned long i = 0; i < n; i = i + 1) a[i] = b[i];
    }
    unsigned long s = 0;
    for (unsigned long i = 0; i < n; i = i + 1) s = s * 31 + a[i];
    return s;
}`, n, n, n)
}

func radixsortGen(n int, seed uint64) Inputs {
	r := newRNG(seed + 5*0x9e3779b9)
	a := make([]uint64, n)
	for i := range a {
		a[i] = r.uintn(1 << 32)
	}
	return Inputs{"a": a}
}

func radixsortRef(n int, in Inputs) uint64 {
	a := slices.Clone(in["a"])
	slices.Sort(a)
	var s uint64
	for _, v := range a {
		s = mix(s, v)
	}
	return s
}

func init() {
	Register(&Kernel{
		ID:     5,
		Name:   "integerSort/blockRadixSort",
		MinN:   2,
		Source: radixsortSource,
		Gen:    radixsortGen,
		Ref:    radixsortRef,
	})
}
