package pbbs

import "fmt"

// Benchmark 7 — maximalMatching/ndMatching.
//
// Greedy maximal matching in edge order over a random edge list: an edge is
// taken when both endpoints are still free. The checksum folds both the
// accepted edge indices and the final mate array.

func matchingSource(n int) string {
	m := graphDegree * n
	return fmt.Sprintf(`
unsigned long eu[%d];
unsigned long ev[%d];
unsigned long mate[%d];
unsigned long main(void) {
    unsigned long m = %d;
    unsigned long n = %d;
    unsigned long s = 0;
    for (unsigned long e = 0; e < m; e = e + 1) {
        unsigned long u = eu[e];
        unsigned long v = ev[e];
        if (u != v && mate[u] == 0 && mate[v] == 0) {
            mate[u] = v + 1;
            mate[v] = u + 1;
            s = s * 31 + e;
        }
    }
    for (unsigned long v = 0; v < n; v = v + 1) s = s * 31 + mate[v];
    return s;
}`, m, m, n, m, n)
}

func matchingGen(n int, seed uint64) Inputs {
	r := newRNG(seed + 7*0x9e3779b9)
	eu, ev := randEdges(n, graphDegree*n, r)
	return Inputs{"eu": eu, "ev": ev}
}

func matchingRef(n int, in Inputs) uint64 {
	eu, ev := in["eu"], in["ev"]
	mate := make([]uint64, n)
	var s uint64
	for e := range eu {
		u, v := eu[e], ev[e]
		if u != v && mate[u] == 0 && mate[v] == 0 {
			mate[u] = v + 1
			mate[v] = u + 1
			s = mix(s, uint64(e))
		}
	}
	for v := 0; v < n; v++ {
		s = mix(s, mate[v])
	}
	return s
}

func init() {
	Register(&Kernel{
		ID:     7,
		Name:   "maximalMatching/ndMatching",
		MinN:   2,
		Source: staticSource(matchingSource),
		Gen:    matchingGen,
		Ref:    staticRef(matchingRef),
	})
}
