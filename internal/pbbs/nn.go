package pbbs

import (
	"fmt"
	"math"
)

// Benchmark 9 — nearestNeighbors/allNearestNeighbors.
//
// All-pairs nearest neighbour over random integer points (exact quadratic
// scan; PBBS uses a quadtree — see DESIGN.md). Ties resolve to the lowest
// index; the checksum folds every point's neighbour index.

func nnSource(n int) string {
	return fmt.Sprintf(`
long px[%d];
long py[%d];
unsigned long main(void) {
    unsigned long s = 0;
    for (long i = 0; i < %d; i = i + 1) {
        long best = 0 - 1;
        long bd = 0x7fffffffffffffff;
        for (long j = 0; j < %d; j = j + 1) {
            if (j != i) {
                long dx = px[i] - px[j];
                long dy = py[i] - py[j];
                long d = dx * dx + dy * dy;
                if (d < bd) { bd = d; best = j; }
            }
        }
        s = s * 31 + best;
    }
    return s;
}`, n, n, n, n)
}

func nnGen(n int, seed uint64) Inputs {
	r := newRNG(seed + 9*0x9e3779b9)
	px := make([]uint64, n)
	py := make([]uint64, n)
	for i := 0; i < n; i++ {
		px[i] = r.uintn(1 << 20)
		py[i] = r.uintn(1 << 20)
	}
	return Inputs{"px": px, "py": py}
}

func nnRef(n int, in Inputs) uint64 {
	px, py := in["px"], in["py"]
	var s uint64
	for i := 0; i < n; i++ {
		best := int64(-1)
		bd := int64(math.MaxInt64)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dx := int64(px[i]) - int64(px[j])
			dy := int64(py[i]) - int64(py[j])
			if d := dx*dx + dy*dy; d < bd {
				bd = d
				best = int64(j)
			}
		}
		s = mix(s, uint64(best))
	}
	return s
}

func init() {
	Register(&Kernel{
		ID:     9,
		Name:   "nearestNeighbors/allNearestNeighbors",
		MinN:   2,
		Source: staticSource(nnSource),
		Gen:    nnGen,
		Ref:    staticRef(nnRef),
	})
}
