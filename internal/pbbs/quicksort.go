package pbbs

import (
	"fmt"
	"slices"
)

// Benchmark 2 — comparisonSort/quickSort.
//
// Recursive quicksort with Lomuto last-element partitioning over random
// 32-bit keys. The sorted array is unique, so the Go reference just sorts.

func quicksortSource(n int) string {
	return fmt.Sprintf(`
unsigned long a[%d];
void qs(long lo, long hi) {
    if (lo >= hi) return;
    unsigned long p = a[hi];
    long i = lo;
    for (long j = lo; j < hi; j = j + 1) {
        if (a[j] < p) {
            unsigned long t = a[i]; a[i] = a[j]; a[j] = t;
            i = i + 1;
        }
    }
    unsigned long t = a[i]; a[i] = a[hi]; a[hi] = t;
    qs(lo, i - 1);
    qs(i + 1, hi);
}
unsigned long main(void) {
    qs(0, %d);
    unsigned long s = 0;
    for (long i = 0; i < %d; i = i + 1) s = s * 31 + a[i];
    return s;
}`, n, n-1, n)
}

func quicksortGen(n int, seed uint64) Inputs {
	r := newRNG(seed + 2*0x9e3779b9)
	a := make([]uint64, n)
	for i := range a {
		a[i] = r.uintn(1 << 32)
	}
	return Inputs{"a": a}
}

func quicksortRef(n int, in Inputs) uint64 {
	a := slices.Clone(in["a"])
	slices.Sort(a)
	var s uint64
	for _, v := range a {
		s = mix(s, v)
	}
	return s
}

func init() {
	Register(&Kernel{
		ID:     2,
		Name:   "comparisonSort/quickSort",
		MinN:   2,
		Source: quicksortSource,
		Gen:    quicksortGen,
		Ref:    quicksortRef,
	})
}
