package pbbs

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Batch harness: measure many (kernel, dataset size) points concurrently and
// aggregate them into the paper's Fig. 7 report. Each point compiles, runs
// and analyses independently, so a plain worker pool scales it.

// measureJob is one (kernel, size) point of the Fig. 7 sweep.
type measureJob struct {
	k *Kernel
	n int
}

// MeasureAll measures every kernel at every dataset size with a pool of
// workers (workers <= 0 uses GOMAXPROCS). The points come back sorted by
// (benchmark ID, size). Per-point failures are collected and joined; the
// successfully measured points are still returned.
func MeasureAll(kernels []*Kernel, sizes []int, seed uint64, workers int) ([]*ILPPoint, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobs := make(chan measureJob)
	var mu sync.Mutex
	var points []*ILPPoint
	var errs []error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				p, err := j.k.MeasureILP(j.n, seed)
				mu.Lock()
				if err != nil {
					errs = append(errs, err)
				} else {
					points = append(points, p)
				}
				mu.Unlock()
			}
		}()
	}
	for _, k := range kernels {
		// Sizes below the kernel's minimum clamp to the same point; dedup so
		// the sweep measures each (kernel, effective size) once.
		seen := make(map[int]bool, len(sizes))
		for _, n := range sizes {
			n = k.ClampN(n)
			if seen[n] {
				continue
			}
			seen[n] = true
			jobs <- measureJob{k: k, n: n}
		}
	}
	close(jobs)
	wg.Wait()
	sort.Slice(points, func(i, j int) bool {
		if points[i].Kernel.ID != points[j].Kernel.ID {
			return points[i].Kernel.ID < points[j].Kernel.ID
		}
		return points[i].N < points[j].N
	})
	return points, errors.Join(errs...)
}

// Fig7Table renders measured points as the paper's Fig. 7 (Table 1) style
// report: one row per (benchmark, size) with the trace length and the ILP
// under the sequential and parallel dependence models.
func Fig7Table(points []*ILPPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-40s %8s %10s %9s %9s %9s\n",
		"#", "benchmark", "n", "instr", "seq-ILP", "par-ILP", "par/seq")
	last := 0
	for _, p := range points {
		id := ""
		if p.Kernel.ID != last {
			id = fmt.Sprintf("%d", p.Kernel.ID)
			last = p.Kernel.ID
		}
		fmt.Fprintf(&b, "%-3s %-40s %8d %10d %9.1f %9.1f %9.1f\n",
			id, p.Kernel.Name, p.N, p.Instructions, p.SeqILP, p.ParILP, p.Speedup())
	}
	return b.String()
}
