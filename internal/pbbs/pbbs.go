// Package pbbs implements the reproduction's stand-in for the Problem Based
// Benchmark Suite used by the paper's Fig. 7 (Table 1): the same ten
// algorithms, written in mini-C, compiled to the reproduction ISA, run on
// the functional emulator with trace capture, and analysed with the
// internal/ilp dependence models.
//
// The paper traces the original C++ PBBS programs with gcc-generated x86;
// that substrate is not available here, so each kernel is re-implemented in
// mini-C over the same algorithm (see DESIGN.md's substitution table). The
// quantity Fig. 7 plots — trace-dataflow ILP under the sequential and
// parallel dependence models — depends only on the dynamic dependence
// structure of the algorithm, which these kernels preserve.
//
// Every kernel's mini-C main returns a checksum that the harness validates
// against a pure-Go reference implementation, so the compiler, emulator and
// workload generators are cross-checked on every run.
package pbbs

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/ilp"
	"repro/internal/isa"
	"repro/internal/minic"
	"repro/internal/trace"
)

// rng is a small deterministic xorshift64* generator so that workloads are
// reproducible across runs and platforms.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// uintn returns a value in [0, n).
func (r *rng) uintn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// Inputs maps data-segment symbols to the 64-bit words to inject before the
// run.
type Inputs map[string][]uint64

// Kernel is one benchmark of Table 1.
type Kernel struct {
	// ID is the paper's benchmark number (1..10).
	ID int
	// Name is the paper's "suite/implementation" label.
	Name string
	// Source generates the mini-C program for a dataset of n elements.
	Source func(n int) string
	// Gen generates the input arrays for a dataset of n elements.
	Gen func(n int, seed uint64) Inputs
	// Ref computes the expected checksum from the inputs.
	Ref func(n int, in Inputs) uint64
}

// Build compiles the kernel for a dataset size.
func (k *Kernel) Build(n int) (*isa.Program, error) {
	return minic.Compile(k.Source(n), minic.ModeCall)
}

// inject writes the inputs into the CPU's memory at their symbol addresses.
func inject(prog *isa.Program, cpu *emu.CPU, in Inputs) error {
	for sym, words := range in {
		addr, ok := prog.DataAddr(sym)
		if !ok {
			return fmt.Errorf("pbbs: program has no data symbol %q", sym)
		}
		for i, w := range words {
			cpu.Mem.WriteU64(addr+uint64(8*i), w)
		}
	}
	return nil
}

// RunResult is the outcome of one kernel execution.
type RunResult struct {
	Kernel   *Kernel
	N        int
	Checksum uint64
	Expected uint64
	Steps    int64
	Trace    *trace.Trace // nil unless traced
}

// Run executes the kernel on the emulator, optionally capturing the trace,
// and validates the checksum against the Go reference.
func (k *Kernel) Run(n int, seed uint64, traced bool) (*RunResult, error) {
	prog, err := k.Build(n)
	if err != nil {
		return nil, fmt.Errorf("pbbs: %s (n=%d): %w", k.Name, n, err)
	}
	in := k.Gen(n, seed)
	cpu := emu.New(prog)
	cpu.MaxSteps = 1 << 31
	var tr *trace.Trace
	if traced {
		tr = &trace.Trace{}
		cpu.TraceHook = func(r *trace.Record) { tr.Append(*r) }
	}
	if err := inject(prog, cpu, in); err != nil {
		return nil, err
	}
	if _, err := cpu.Run(); err != nil {
		return nil, fmt.Errorf("pbbs: %s (n=%d): %w", k.Name, n, err)
	}
	res := &RunResult{
		Kernel:   k,
		N:        n,
		Checksum: cpu.Result(),
		Expected: k.Ref(n, in),
		Steps:    cpu.Steps,
		Trace:    tr,
	}
	if res.Checksum != res.Expected {
		return res, fmt.Errorf("pbbs: %s (n=%d): checksum %d, reference %d",
			k.Name, n, res.Checksum, res.Expected)
	}
	return res, nil
}

// ILPPoint is one bar of Fig. 7: a kernel at a dataset size under both
// dependence models.
type ILPPoint struct {
	Kernel       *Kernel
	N            int
	Instructions int
	SeqILP       float64
	ParILP       float64
}

// MeasureILP runs the kernel traced and analyses the trace under the
// paper's sequential and parallel models.
func (k *Kernel) MeasureILP(n int, seed uint64) (*ILPPoint, error) {
	res, err := k.Run(n, seed, true)
	if err != nil {
		return nil, err
	}
	seq := ilp.Analyze(res.Trace, ilp.Sequential())
	par := ilp.Analyze(res.Trace, ilp.Parallel())
	return &ILPPoint{
		Kernel:       k,
		N:            n,
		Instructions: res.Trace.Len(),
		SeqILP:       seq.ILP,
		ParILP:       par.ILP,
	}, nil
}

// Kernels returns the ten benchmarks of Table 1 in the paper's order.
func Kernels() []*Kernel {
	return []*Kernel{
		BFS(),
		QuickSort(),
		QuickHull(),
		Dictionary(),
		RadixSort(),
		MIS(),
		Matching(),
		Kruskal(),
		NearestNeighbors(),
		RemoveDuplicates(),
	}
}

// ByID returns the kernel with the paper's benchmark number.
func ByID(id int) (*Kernel, error) {
	for _, k := range Kernels() {
		if k.ID == id {
			return k, nil
		}
	}
	return nil, fmt.Errorf("pbbs: no benchmark %d", id)
}
