// Package pbbs implements the reproduction's stand-in for the Problem Based
// Benchmark Suite used by the paper's Fig. 7 (Table 1): the same ten
// algorithms, written in mini-C, compiled to the reproduction ISA, run on
// the functional emulator with trace capture, and analysed with the
// internal/ilp dependence models.
//
// The paper traces the original C++ PBBS programs with gcc-generated x86;
// that substrate is not available here, so each kernel is re-implemented in
// mini-C over the same algorithm (see DESIGN.md's substitution table). The
// quantity Fig. 7 plots — trace-dataflow ILP under the sequential and
// parallel dependence models — depends only on the dynamic dependence
// structure of the algorithm, which these kernels preserve.
//
// Every kernel's mini-C main returns a checksum that the harness validates
// against a pure-Go reference implementation, so the compiler, emulator and
// workload generators are cross-checked on every run.
//
// Kernels self-register at package init (Register), so adding a workload is
// a one-file drop-in: define Source/Gen/Ref, call Register, and the batch
// harness, the CLI and the cross-validation tests pick it up.
package pbbs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/backend"
	"repro/internal/ilp"
	"repro/internal/isa"
	"repro/internal/minic"
	"repro/internal/trace"
)

// rng is a small deterministic xorshift64* generator so that workloads are
// reproducible across runs and platforms.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// uintn returns a value in [0, n).
func (r *rng) uintn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// Inputs maps data-segment symbols to the 64-bit words to inject before the
// run.
type Inputs = backend.Inputs

// Source languages a kernel can be defined in.
const (
	// LangMiniC marks a hand-written mini-C kernel (a Go template
	// producing mini-C source directly).
	LangMiniC = "minic"
	// LangGo marks a kernel defined as annotated Go and lowered to mini-C
	// by internal/gofront.
	LangGo = "go"
)

// Kernel is one benchmark of Table 1.
type Kernel struct {
	// ID is the paper's benchmark number (1..10; later additions count on).
	ID int
	// Name is the paper's "suite/implementation" label.
	Name string
	// MinN is the smallest dataset size the kernel supports.
	MinN int
	// Lang is the source language the kernel is defined in (LangMiniC for
	// hand-written mini-C, LangGo for gofront-lowered annotated Go).
	Lang string
	// Source generates the mini-C program for a dataset of n elements.
	// Hand-written kernels cannot fail; lowered kernels can (an annotation
	// expression may not evaluate at this n).
	Source func(n int) (string, error)
	// Gen generates the input arrays for a dataset of n elements.
	Gen func(n int, seed uint64) Inputs
	// Ref computes the expected checksum from the inputs.
	Ref func(n int, in Inputs) (uint64, error)
}

// staticSource adapts an infallible mini-C source template to the Kernel
// Source signature.
func staticSource(f func(n int) string) func(int) (string, error) {
	return func(n int) (string, error) { return f(n), nil }
}

// staticRef adapts an infallible reference checksum to the Kernel Ref
// signature.
func staticRef(f func(n int, in Inputs) uint64) func(int, Inputs) (uint64, error) {
	return func(n int, in Inputs) (uint64, error) { return f(n, in), nil }
}

// registry holds the self-registered kernels, keyed by benchmark number.
var registry = make(map[int]*Kernel)

// Register adds a kernel to the suite. It is called from package init
// functions (one per kernel file) and panics on malformed or duplicate
// registrations, since either is a programming error.
func Register(k *Kernel) {
	switch {
	case k == nil:
		panic("pbbs: Register(nil)")
	case k.ID <= 0:
		panic(fmt.Sprintf("pbbs: kernel %q has non-positive ID %d", k.Name, k.ID))
	case k.Name == "":
		panic(fmt.Sprintf("pbbs: kernel %d has no name", k.ID))
	case k.Source == nil || k.Gen == nil || k.Ref == nil:
		panic(fmt.Sprintf("pbbs: kernel %d (%s) is missing Source/Gen/Ref", k.ID, k.Name))
	}
	if prev, dup := registry[k.ID]; dup {
		panic(fmt.Sprintf("pbbs: duplicate benchmark ID %d (%s and %s)", k.ID, prev.Name, k.Name))
	}
	if k.MinN <= 0 {
		k.MinN = 4
	}
	if k.Lang == "" {
		k.Lang = LangMiniC
	}
	registry[k.ID] = k
}

// Kernels returns the registered benchmarks in the paper's (ID) order.
func Kernels() []*Kernel {
	ks := make([]*Kernel, 0, len(registry))
	for _, k := range registry {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].ID < ks[j].ID })
	return ks
}

// Info is the exported catalog metadata of one kernel: what a serving layer
// or UI needs to list the Table 1 suite without holding the Kernel itself.
type Info struct {
	// ID is the paper's benchmark number (1..10).
	ID int `json:"id"`
	// Name is the paper's "suite/implementation" label.
	Name string `json:"name"`
	// MinN is the smallest dataset size the kernel supports; requested
	// sizes below it are clamped up to it.
	MinN int `json:"minN"`
	// Lang is the language the kernel is defined in ("minic" for
	// hand-written mini-C, "go" for gofront-lowered annotated Go).
	Lang string `json:"lang"`
}

// Catalog returns the registered benchmarks' metadata in the paper's (ID)
// order. The job server serves it at /v1/kernels.
func Catalog() []Info {
	ks := Kernels()
	infos := make([]Info, len(ks))
	for i, k := range ks {
		infos[i] = Info{ID: k.ID, Name: k.Name, MinN: k.MinN, Lang: k.Lang}
	}
	return infos
}

// ByID returns the kernel with the paper's benchmark number.
func ByID(id int) (*Kernel, error) {
	if k, ok := registry[id]; ok {
		return k, nil
	}
	return nil, fmt.Errorf("pbbs: no benchmark %d", id)
}

// Find resolves a kernel selector: a benchmark number ("2") or a
// case-insensitive substring of the kernel name ("quicksort"). A selector
// matching several kernels is an error listing the candidates.
func Find(sel string) (*Kernel, error) {
	sel = strings.TrimSpace(sel)
	if id, err := strconv.Atoi(sel); err == nil {
		return ByID(id)
	}
	var hits []*Kernel
	low := strings.ToLower(sel)
	for _, k := range Kernels() {
		if strings.Contains(strings.ToLower(k.Name), low) {
			hits = append(hits, k)
		}
	}
	switch len(hits) {
	case 1:
		return hits[0], nil
	case 0:
		return nil, fmt.Errorf("pbbs: no benchmark matches %q", sel)
	}
	names := make([]string, len(hits))
	for i, k := range hits {
		names[i] = k.Name
	}
	return nil, fmt.Errorf("pbbs: %q is ambiguous: %s", sel, strings.Join(names, ", "))
}

// FindAll resolves a comma-separated kernel selector list ("quicksort,bfs",
// "1,2,5"). The empty string and "all" select every registered kernel.
func FindAll(sels string) ([]*Kernel, error) {
	sels = strings.TrimSpace(sels)
	if sels == "" || sels == "all" {
		return Kernels(), nil
	}
	var ks []*Kernel
	seen := make(map[int]bool)
	for _, sel := range strings.Split(sels, ",") {
		k, err := Find(sel)
		if err != nil {
			return nil, err
		}
		if !seen[k.ID] {
			seen[k.ID] = true
			ks = append(ks, k)
		}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].ID < ks[j].ID })
	return ks, nil
}

// ClampN returns the dataset size the kernel actually runs at for a
// requested n: n itself, or MinN when n is below the kernel's minimum.
func (k *Kernel) ClampN(n int) int {
	if n < k.MinN {
		return k.MinN
	}
	return n
}

// Build compiles the kernel for a dataset size in the given calling
// convention (ModeCall for the emulator, ModeFork for the machine).
func (k *Kernel) Build(n int, mode minic.Mode) (*isa.Program, error) {
	src, err := k.Source(k.ClampN(n))
	if err != nil {
		return nil, fmt.Errorf("pbbs: %s: %w", k.Name, err)
	}
	return minic.Compile(src, mode)
}

// RunResult is the outcome of one kernel execution.
type RunResult struct {
	Kernel   *Kernel      // the benchmark that ran
	N        int          // effective (clamped) dataset size
	Backend  string       // substrate that produced the result
	Checksum uint64       // the mini-C program's result (rax)
	Expected uint64       // the pure-Go reference checksum
	Steps    int64        // dynamic instructions
	Cycles   int64        // simulated cycles (== Steps on the emulator)
	Trace    *trace.Trace // nil unless traced
}

// RunOn compiles the kernel in the backend's calling convention, executes it
// there, and validates the checksum against the Go reference.
func (k *Kernel) RunOn(b backend.Backend, n int, seed uint64, traced bool) (*RunResult, error) {
	if traced && !b.SupportsTrace() {
		return nil, fmt.Errorf("pbbs: %s: backend %s cannot capture traces", k.Name, b.Name())
	}
	n = k.ClampN(n)
	prog, err := k.Build(n, b.Mode())
	if err != nil {
		return nil, fmt.Errorf("pbbs: %s (n=%d): %w", k.Name, n, err)
	}
	in := k.Gen(n, seed)
	r, err := b.Run(prog, in, traced)
	if err != nil {
		return nil, fmt.Errorf("pbbs: %s (n=%d) on %s: %w", k.Name, n, b.Name(), err)
	}
	want, err := k.Ref(n, in)
	if err != nil {
		return nil, fmt.Errorf("pbbs: %s (n=%d): reference: %w", k.Name, n, err)
	}
	res := &RunResult{
		Kernel:   k,
		N:        n,
		Backend:  b.Name(),
		Checksum: r.RAX,
		Expected: want,
		Steps:    r.Instructions,
		Cycles:   r.Cycles,
		Trace:    r.Trace,
	}
	if res.Checksum != res.Expected {
		return res, fmt.Errorf("pbbs: %s (n=%d) on %s: checksum %d, reference %d",
			k.Name, n, b.Name(), res.Checksum, res.Expected)
	}
	return res, nil
}

// Run executes the kernel on the sequential emulator, optionally capturing
// the trace, and validates the checksum against the Go reference.
func (k *Kernel) Run(n int, seed uint64, traced bool) (*RunResult, error) {
	return k.RunOn(backend.NewEmulator(), n, seed, traced)
}

// CrossValidate compiles the kernel in fork mode and runs it with identical
// inputs on the sequential emulator and on the many-core machine, checking
// that both agree on the final rax and the full data segment, and that the
// result matches the Go reference checksum. It returns the machine result.
func (k *Kernel) CrossValidate(n int, seed uint64, cores int) (*backend.Result, error) {
	return k.CrossValidateOn(backend.NewMachine(cores), n, seed)
}

// CrossValidateOn is CrossValidate with a caller-configured machine backend
// (scheduler, topology, placement knobs).
func (k *Kernel) CrossValidateOn(mb *backend.Machine, n int, seed uint64) (*backend.Result, error) {
	n = k.ClampN(n)
	prog, err := k.Build(n, mb.Mode())
	if err != nil {
		return nil, fmt.Errorf("pbbs: %s (n=%d): %w", k.Name, n, err)
	}
	in := k.Gen(n, seed)
	_, rm, err := backend.CrossValidate(prog, in, backend.NewEmulator(), mb)
	if err != nil {
		return rm, fmt.Errorf("pbbs: %s (n=%d): %w", k.Name, n, err)
	}
	want, err := k.Ref(n, in)
	if err != nil {
		return rm, fmt.Errorf("pbbs: %s (n=%d): reference: %w", k.Name, n, err)
	}
	if rm.RAX != want {
		return rm, fmt.Errorf("pbbs: %s (n=%d): machine checksum %d, reference %d",
			k.Name, n, rm.RAX, want)
	}
	return rm, nil
}

// ILPPoint is one bar of Fig. 7: a kernel at a dataset size under both
// dependence models.
type ILPPoint struct {
	Kernel       *Kernel
	N            int
	Instructions int
	SeqILP       float64
	ParILP       float64
}

// Speedup returns the parallel-over-sequential ILP ratio the paper
// highlights ("the potential of the parallel model").
func (p *ILPPoint) Speedup() float64 {
	if p.SeqILP == 0 {
		return 0
	}
	return p.ParILP / p.SeqILP
}

// MeasureILP runs the kernel traced on the emulator and analyses the trace
// under the paper's sequential and parallel models.
func (k *Kernel) MeasureILP(n int, seed uint64) (*ILPPoint, error) {
	res, err := k.Run(n, seed, true)
	if err != nil {
		return nil, err
	}
	seq := ilp.Analyze(res.Trace, ilp.Sequential())
	par := ilp.Analyze(res.Trace, ilp.Parallel())
	return &ILPPoint{
		Kernel:       k,
		N:            res.N,
		Instructions: res.Trace.Len(),
		SeqILP:       seq.ILP,
		ParILP:       par.ILP,
	}, nil
}
