package pbbs

import (
	"bytes"
	"fmt"
	"reflect"
	"slices"
	"testing"

	"repro/internal/minic"
)

// This file retains, verbatim, the hand-written artifacts of the three
// kernels migrated to annotated Go (internal/pbbs/kernels/): the mini-C
// fmt.Sprintf templates, the input generators, and the pure-Go reference
// checksums they shipped with through PR 7. The tests pin the migration
// four ways at every probed n:
//
//  1. the gofront lowering renders byte-identically to the canonicalised
//     legacy template (so the canonical surface is provably unchanged),
//  2. the compiled programs are byte-identical (prog.Encode is what the
//     sweep-v2 cache key and the BENCH_machine.json baselines hash, so
//     cache keys cannot have moved),
//  3. the derived generators reproduce the legacy inputs bit for bit, and
//  4. the interpreter-derived checksum equals the independent legacy
//     reference (sort/map-based — an algorithmically different witness).

func legacyQuicksortSource(n int) string {
	return fmt.Sprintf(`
unsigned long a[%d];
void qs(long lo, long hi) {
    if (lo >= hi) return;
    unsigned long p = a[hi];
    long i = lo;
    for (long j = lo; j < hi; j = j + 1) {
        if (a[j] < p) {
            unsigned long t = a[i]; a[i] = a[j]; a[j] = t;
            i = i + 1;
        }
    }
    unsigned long t = a[i]; a[i] = a[hi]; a[hi] = t;
    qs(lo, i - 1);
    qs(i + 1, hi);
}
unsigned long main(void) {
    qs(0, %d);
    unsigned long s = 0;
    for (long i = 0; i < %d; i = i + 1) s = s * 31 + a[i];
    return s;
}`, n, n-1, n)
}

func legacyQuicksortGen(n int, seed uint64) Inputs {
	r := newRNG(seed + 2*0x9e3779b9)
	a := make([]uint64, n)
	for i := range a {
		a[i] = r.uintn(1 << 32)
	}
	return Inputs{"a": a}
}

func legacyQuicksortRef(n int, in Inputs) uint64 {
	a := slices.Clone(in["a"])
	slices.Sort(a)
	var s uint64
	for _, v := range a {
		s = mix(s, v)
	}
	return s
}

func legacyRadixsortSource(n int) string {
	return fmt.Sprintf(`
unsigned long a[%d];
unsigned long b[%d];
unsigned long cnt[256];
unsigned long main(void) {
    unsigned long n = %d;
    for (long pass = 0; pass < 4; pass = pass + 1) {
        unsigned long sh = pass * 8;
        for (long d = 0; d < 256; d = d + 1) cnt[d] = 0;
        for (unsigned long i = 0; i < n; i = i + 1) {
            unsigned long d = a[i] >> sh & 255;
            cnt[d] = cnt[d] + 1;
        }
        unsigned long run = 0;
        for (long d = 0; d < 256; d = d + 1) {
            unsigned long c = cnt[d];
            cnt[d] = run;
            run = run + c;
        }
        for (unsigned long i = 0; i < n; i = i + 1) {
            unsigned long d = a[i] >> sh & 255;
            b[cnt[d]] = a[i];
            cnt[d] = cnt[d] + 1;
        }
        for (unsigned long i = 0; i < n; i = i + 1) a[i] = b[i];
    }
    unsigned long s = 0;
    for (unsigned long i = 0; i < n; i = i + 1) s = s * 31 + a[i];
    return s;
}`, n, n, n)
}

func legacyRadixsortGen(n int, seed uint64) Inputs {
	r := newRNG(seed + 5*0x9e3779b9)
	a := make([]uint64, n)
	for i := range a {
		a[i] = r.uintn(1 << 32)
	}
	return Inputs{"a": a}
}

func legacyRadixsortRef(n int, in Inputs) uint64 {
	a := slices.Clone(in["a"])
	slices.Sort(a)
	var s uint64
	for _, v := range a {
		s = mix(s, v)
	}
	return s
}

func legacyDedupSource(n int) string {
	t, shift := hashTableSize(n)
	return fmt.Sprintf(`
unsigned long a[%d];
unsigned long tab[%d];
unsigned long main(void) {
    unsigned long n = %d;
    unsigned long cnt = 0;
    unsigned long sum = 0;
    for (unsigned long i = 0; i < n; i = i + 1) {
        unsigned long k = a[i] + 1;
        unsigned long h = k * 0x9e3779b97f4a7c15 >> %d;
        while (tab[h] != 0 && tab[h] != k) h = (h + 1) & %d;
        if (tab[h] == 0) {
            tab[h] = k;
            cnt = cnt + 1;
            sum = sum + a[i];
        }
    }
    return cnt * 0x9e3779b97f4a7c15 + sum;
}`, n, t, n, shift, t-1)
}

func legacyDedupGen(n int, seed uint64) Inputs {
	r := newRNG(seed + 10*0x9e3779b9)
	a := make([]uint64, n)
	for i := range a {
		a[i] = r.uintn(uint64(n))
	}
	return Inputs{"a": a}
}

func legacyDedupRef(n int, in Inputs) uint64 {
	seen := make(map[uint64]bool)
	var cnt, sum uint64
	for _, v := range in["a"] {
		if !seen[v] {
			seen[v] = true
			cnt++
			sum += v
		}
	}
	return cnt*0x9e3779b97f4a7c15 + sum
}

var migrated = []struct {
	id     int
	source func(int) string
	gen    func(int, uint64) Inputs
	ref    func(int, Inputs) uint64
}{
	{2, legacyQuicksortSource, legacyQuicksortGen, legacyQuicksortRef},
	{5, legacyRadixsortSource, legacyRadixsortGen, legacyRadixsortRef},
	{10, legacyDedupSource, legacyDedupGen, legacyDedupRef},
}

var migrationSizes = []int{2, 3, 5, 8, 17, 33, 64, 100}

func TestMigratedKernelsMatchLegacySources(t *testing.T) {
	for _, m := range migrated {
		k, err := ByID(m.id)
		if err != nil {
			t.Fatal(err)
		}
		if k.Lang != LangGo {
			t.Errorf("%s: Lang = %q, want %q", k.Name, k.Lang, LangGo)
		}
		for _, n := range migrationSizes {
			legacy := m.source(n)
			lprog, err := minic.Parse(legacy)
			if err != nil {
				t.Fatalf("%s: parsing legacy source at n=%d: %v", k.Name, n, err)
			}
			want := minic.Format(lprog)
			got, err := k.Source(n)
			if err != nil {
				t.Fatalf("%s: Source(%d): %v", k.Name, n, err)
			}
			if got != want {
				t.Errorf("%s at n=%d: lowered source differs from canonicalised legacy template\n--- legacy\n%s\n--- lowered\n%s",
					k.Name, n, want, got)
			}
			for _, mode := range []minic.Mode{minic.ModeCall, minic.ModeFork} {
				lp, err := minic.Compile(legacy, mode)
				if err != nil {
					t.Fatalf("%s: compiling legacy at n=%d: %v", k.Name, n, err)
				}
				np, err := k.Build(n, mode)
				if err != nil {
					t.Fatalf("%s: Build(%d): %v", k.Name, n, err)
				}
				if !bytes.Equal(lp.Encode(), np.Encode()) {
					t.Errorf("%s at n=%d mode=%v: compiled program changed (sweep cache keys would move)", k.Name, n, mode)
				}
			}
		}
	}
}

func TestMigratedKernelsMatchLegacyGenAndRef(t *testing.T) {
	const seed = 12345
	for _, m := range migrated {
		k, err := ByID(m.id)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range migrationSizes {
			legacyIn := m.gen(n, seed)
			in := k.Gen(n, seed)
			if !reflect.DeepEqual(in, legacyIn) {
				t.Errorf("%s at n=%d: derived generator diverges from the legacy inputs", k.Name, n)
				continue
			}
			want := m.ref(n, legacyIn)
			got, err := k.Ref(n, in)
			if err != nil {
				t.Fatalf("%s: Ref(%d): %v", k.Name, n, err)
			}
			if got != want {
				t.Errorf("%s at n=%d: interpreted checksum %d, legacy reference %d", k.Name, n, got, want)
			}
		}
	}
}
