//go:build ignore

// Benchmark 2 — comparisonSort/quickSort.
//
// Recursive quicksort with Lomuto last-element partitioning over random
// 32-bit keys. This file is not compiled into the binary: it is embedded and
// lowered to mini-C by internal/gofront, and the same lowered AST is
// interpreted in pure Go for the reference checksum.
package kernels

//repro:array len=n gen=u32
var a []uint64

func qs(lo int64, hi int64) {
	if lo >= hi {
		return
	}
	p := a[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if a[j] < p {
			t := a[i]
			a[i] = a[j]
			a[j] = t
			i++
		}
	}
	t := a[i]
	a[i] = a[hi]
	a[hi] = t
	qs(lo, i-1)
	qs(i+1, hi)
}

//repro:kernel id=2 name=comparisonSort/quickSort minn=2
func quickSort() uint64 {
	qs(0, N-1)
	s := uint64(0)
	for i := 0; i < N; i++ {
		s = s*31 + a[i]
	}
	return s
}
