//go:build ignore

// Benchmark 11 — histogram/counting.
//
// 256-bucket histogram of the top byte of random 32-bit keys, checksummed
// with the suite's rolling mix. The eleventh kernel, and the first defined
// only as annotated Go: no hand-written mini-C, no generator wiring, no
// registry edits — internal/gofront derives the machine program, the input
// arrays and the reference checksum from this one file.
package kernels

//repro:array len=n gen=u32
var a []uint64

//repro:array len=256
var h []uint64

//repro:kernel id=11 name=histogram/counting minn=2
func histogram() uint64 {
	n := uint64(N)
	for b := 0; b < 256; b++ {
		h[b] = 0
	}
	for i := uint64(0); i < n; i++ {
		h[(a[i]>>24)&255] = h[(a[i]>>24)&255] + 1
	}
	s := uint64(0)
	for b := 0; b < 256; b++ {
		s = s*31 + h[b]
	}
	return s
}
