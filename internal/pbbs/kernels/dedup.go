//go:build ignore

// Benchmark 10 — removeDuplicates/deterministicHash.
//
// Hash-based duplicate removal over keys drawn from a small range (so
// duplicates are plentiful): the first occurrence of each value claims a
// table slot. The checksum folds the distinct count and the sum of distinct
// values, both order-independent. Embedded and lowered by internal/gofront;
// not compiled into the binary.
package kernels

//repro:array len=n gen=modn
var a []uint64

//repro:array len=pow2(4*n)
var tab []uint64

//repro:kernel id=10 name=removeDuplicates/deterministicHash minn=2
//repro:const Tab = pow2(4*n)
//repro:const Shift = 64 - log2(pow2(4*n))
func dedup() uint64 {
	n := uint64(N)
	cnt := uint64(0)
	sum := uint64(0)
	for i := uint64(0); i < n; i++ {
		k := a[i] + 1
		h := (k * 0x9e3779b97f4a7c15) >> Shift
		for tab[h] != 0 && tab[h] != k {
			h = (h + 1) & (Tab - 1)
		}
		if tab[h] == 0 {
			tab[h] = k
			cnt = cnt + 1
			sum = sum + a[i]
		}
	}
	return cnt*0x9e3779b97f4a7c15 + sum
}
