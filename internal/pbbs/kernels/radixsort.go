//go:build ignore

// Benchmark 5 — integerSort/blockRadixSort.
//
// LSD radix sort of 32-bit keys in four 8-bit-digit passes: histogram,
// exclusive prefix sum, stable scatter, copy back. Embedded and lowered by
// internal/gofront; not compiled into the binary.
package kernels

//repro:array len=n gen=u32
var a []uint64

//repro:array len=n
var b []uint64

//repro:array len=256
var cnt []uint64

//repro:kernel id=5 name=integerSort/blockRadixSort minn=2
func radixSort() uint64 {
	n := uint64(N)
	for pass := 0; pass < 4; pass++ {
		sh := uint64(pass * 8)
		for d := 0; d < 256; d++ {
			cnt[d] = 0
		}
		for i := uint64(0); i < n; i++ {
			d := (a[i] >> sh) & 255
			cnt[d] = cnt[d] + 1
		}
		run := uint64(0)
		for d := 0; d < 256; d++ {
			c := cnt[d]
			cnt[d] = run
			run = run + c
		}
		for i := uint64(0); i < n; i++ {
			d := (a[i] >> sh) & 255
			b[cnt[d]] = a[i]
			cnt[d] = cnt[d] + 1
		}
		for i := uint64(0); i < n; i++ {
			a[i] = b[i]
		}
	}
	s := uint64(0)
	for i := uint64(0); i < n; i++ {
		s = s*31 + a[i]
	}
	return s
}
