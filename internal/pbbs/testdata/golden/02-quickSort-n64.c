unsigned long a[64];

void qs(long lo, long hi) {
    if (lo >= hi) {
        return;
    }
    unsigned long p = a[hi];
    long i = lo;
    for (long j = lo; j < hi; j = (j + 1)) {
        if (a[j] < p) {
            unsigned long t = a[i];
            a[i] = a[j];
            a[j] = t;
            i = (i + 1);
        }
    }
    unsigned long t = a[i];
    a[i] = a[hi];
    a[hi] = t;
    qs(lo, i - 1);
    qs(i + 1, hi);
}

unsigned long main(void) {
    qs(0, 63);
    unsigned long s = 0;
    for (long i = 0; i < 64; i = (i + 1)) {
        s = ((s * 31) + a[i]);
    }
    return s;
}
