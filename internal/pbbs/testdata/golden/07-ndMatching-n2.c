unsigned long eu[6];
unsigned long ev[6];
unsigned long mate[2];

unsigned long main(void) {
    unsigned long m = 6;
    unsigned long n = 2;
    unsigned long s = 0;
    for (unsigned long e = 0; e < m; e = (e + 1)) {
        unsigned long u = eu[e];
        unsigned long v = ev[e];
        if (((u != v) && (mate[u] == 0)) && (mate[v] == 0)) {
            mate[u] = (v + 1);
            mate[v] = (u + 1);
            s = ((s * 31) + e);
        }
    }
    for (unsigned long v = 0; v < n; v = (v + 1)) {
        s = ((s * 31) + mate[v]);
    }
    return s;
}
