unsigned long off[65];
unsigned long adj[384];
unsigned long flag[64];

unsigned long main(void) {
    unsigned long n = 64;
    for (unsigned long v = 0; v < n; v = (v + 1)) {
        unsigned long ok = 1;
        for (unsigned long e = off[v]; e < off[v + 1]; e = (e + 1)) {
            unsigned long u = adj[e];
            if ((u < v) && flag[u]) {
                ok = 0;
            }
        }
        flag[v] = ok;
    }
    unsigned long s = 0;
    for (unsigned long v = 0; v < n; v = (v + 1)) {
        s = ((s * 31) + (flag[v] * (v + 1)));
    }
    return s;
}
