long px[64];
long py[64];

unsigned long hsum;
unsigned long hcnt;

void findhull(long ax, long ay, long bx, long by) {
    long best = 0 - 1;
    long bestd = 0;
    for (long i = 0; i < 64; i = (i + 1)) {
        long d = ((bx - ax) * (py[i] - ay)) - ((by - ay) * (px[i] - ax));
        if (d > bestd) {
            bestd = d;
            best = i;
        }
    }
    if (best < 0) {
        return;
    }
    hsum = (((hsum * 31) + (px[best] * 7)) + py[best]);
    hcnt = (hcnt + 1);
    findhull(ax, ay, px[best], py[best]);
    findhull(px[best], py[best], bx, by);
}

unsigned long main(void) {
    long lo = 0;
    long hi = 0;
    for (long i = 1; i < 64; i = (i + 1)) {
        if ((px[i] < px[lo]) || ((px[i] == px[lo]) && (py[i] < py[lo]))) {
            lo = i;
        }
        if ((px[i] > px[hi]) || ((px[i] == px[hi]) && (py[i] > py[hi]))) {
            hi = i;
        }
    }
    findhull(px[lo], py[lo], px[hi], py[hi]);
    findhull(px[hi], py[hi], px[lo], py[lo]);
    return (((hsum * 1000003) + (hcnt * 31)) + (lo * 7)) + hi;
}
