unsigned long a[2];
unsigned long tab[8];

unsigned long main(void) {
    unsigned long n = 2;
    unsigned long cnt = 0;
    unsigned long sum = 0;
    for (unsigned long i = 0; i < n; i = (i + 1)) {
        unsigned long k = a[i] + 1;
        unsigned long h = (k * 11400714819323198485) >> 61;
        while ((tab[h] != 0) && (tab[h] != k)) {
            h = ((h + 1) & 7);
        }
        if (tab[h] == 0) {
            tab[h] = k;
            cnt = (cnt + 1);
            sum = (sum + a[i]);
        }
    }
    return (cnt * 11400714819323198485) + sum;
}
