unsigned long a[2];
unsigned long h[256];

unsigned long main(void) {
    unsigned long n = 2;
    for (long b = 0; b < 256; b = (b + 1)) {
        h[b] = 0;
    }
    for (unsigned long i = 0; i < n; i = (i + 1)) {
        h[(a[i] >> 24) & 255] = (h[(a[i] >> 24) & 255] + 1);
    }
    unsigned long s = 0;
    for (long b = 0; b < 256; b = (b + 1)) {
        s = ((s * 31) + h[b]);
    }
    return s;
}
