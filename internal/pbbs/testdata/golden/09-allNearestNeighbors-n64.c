long px[64];
long py[64];

unsigned long main(void) {
    unsigned long s = 0;
    for (long i = 0; i < 64; i = (i + 1)) {
        long best = 0 - 1;
        long bd = 9223372036854775807;
        for (long j = 0; j < 64; j = (j + 1)) {
            if (j != i) {
                long dx = px[i] - px[j];
                long dy = py[i] - py[j];
                long d = (dx * dx) + (dy * dy);
                if (d < bd) {
                    bd = d;
                    best = j;
                }
            }
        }
        s = ((s * 31) + best);
    }
    return s;
}
