unsigned long eu[192];
unsigned long ev[192];
unsigned long ew[192];
unsigned long parent[64];

unsigned long find(unsigned long x) {
    while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    return x;
}

void qs(long lo, long hi) {
    if (lo >= hi) {
        return;
    }
    unsigned long p = ew[hi];
    long i = lo;
    for (long j = lo; j < hi; j = (j + 1)) {
        if (ew[j] < p) {
            unsigned long t = ew[i];
            ew[i] = ew[j];
            ew[j] = t;
            t = eu[i];
            eu[i] = eu[j];
            eu[j] = t;
            t = ev[i];
            ev[i] = ev[j];
            ev[j] = t;
            i = (i + 1);
        }
    }
    unsigned long t = ew[i];
    ew[i] = ew[hi];
    ew[hi] = t;
    t = eu[i];
    eu[i] = eu[hi];
    eu[hi] = t;
    t = ev[i];
    ev[i] = ev[hi];
    ev[hi] = t;
    qs(lo, i - 1);
    qs(i + 1, hi);
}

unsigned long main(void) {
    unsigned long n = 64;
    unsigned long m = 192;
    for (unsigned long v = 0; v < n; v = (v + 1)) {
        parent[v] = v;
    }
    qs(0, 191);
    unsigned long w = 0;
    unsigned long taken = 0;
    for (unsigned long e = 0; e < m; e = (e + 1)) {
        unsigned long ru = find(eu[e]);
        unsigned long rv = find(ev[e]);
        if (ru != rv) {
            parent[ru] = rv;
            w = (w + ew[e]);
            taken = (taken + 1);
        }
    }
    return (w * 11400714819323198485) + taken;
}
