unsigned long off[3];
unsigned long adj[12];
unsigned long dist[2];
unsigned long fifo[2];

unsigned long main(void) {
    unsigned long n = 2;
    unsigned long none = 18446744073709551615;
    for (unsigned long i = 0; i < n; i = (i + 1)) {
        dist[i] = none;
    }
    dist[0] = 0;
    fifo[0] = 0;
    unsigned long head = 0;
    unsigned long tail = 1;
    while (head < tail) {
        unsigned long u = fifo[head];
        head = (head + 1);
        for (unsigned long e = off[u]; e < off[u + 1]; e = (e + 1)) {
            unsigned long v = adj[e];
            if (dist[v] == none) {
                dist[v] = (dist[u] + 1);
                fifo[tail] = v;
                tail = (tail + 1);
            }
        }
    }
    unsigned long s = 0;
    for (unsigned long i = 0; i < n; i = (i + 1)) {
        s = ((s * 31) + dist[i]);
    }
    return s;
}
