unsigned long keys[64];
unsigned long qrys[64];
unsigned long tab[256];

unsigned long main(void) {
    unsigned long n = 64;
    for (unsigned long i = 0; i < n; i = (i + 1)) {
        unsigned long k = keys[i] + 1;
        unsigned long h = (k * 11400714819323198485) >> 56;
        while ((tab[h] != 0) && (tab[h] != k)) {
            h = ((h + 1) & 255);
        }
        tab[h] = k;
    }
    unsigned long s = 0;
    for (unsigned long i = 0; i < n; i = (i + 1)) {
        unsigned long k = qrys[i] + 1;
        unsigned long h = (k * 11400714819323198485) >> 56;
        while ((tab[h] != 0) && (tab[h] != k)) {
            h = ((h + 1) & 255);
        }
        if (tab[h] == k) {
            s = ((s * 31) + h);
        } else {
            s = ((s * 31) + 3735928559);
        }
    }
    return s;
}
