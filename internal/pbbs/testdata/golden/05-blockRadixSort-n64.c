unsigned long a[64];
unsigned long b[64];
unsigned long cnt[256];

unsigned long main(void) {
    unsigned long n = 64;
    for (long pass = 0; pass < 4; pass = (pass + 1)) {
        unsigned long sh = pass * 8;
        for (long d = 0; d < 256; d = (d + 1)) {
            cnt[d] = 0;
        }
        for (unsigned long i = 0; i < n; i = (i + 1)) {
            unsigned long d = (a[i] >> sh) & 255;
            cnt[d] = (cnt[d] + 1);
        }
        unsigned long run = 0;
        for (long d = 0; d < 256; d = (d + 1)) {
            unsigned long c = cnt[d];
            cnt[d] = run;
            run = (run + c);
        }
        for (unsigned long i = 0; i < n; i = (i + 1)) {
            unsigned long d = (a[i] >> sh) & 255;
            b[cnt[d]] = a[i];
            cnt[d] = (cnt[d] + 1);
        }
        for (unsigned long i = 0; i < n; i = (i + 1)) {
            a[i] = b[i];
        }
    }
    unsigned long s = 0;
    for (unsigned long i = 0; i < n; i = (i + 1)) {
        s = ((s * 31) + a[i]);
    }
    return s;
}
