unsigned long keys[2];
unsigned long qrys[2];
unsigned long tab[8];

unsigned long main(void) {
    unsigned long n = 2;
    for (unsigned long i = 0; i < n; i = (i + 1)) {
        unsigned long k = keys[i] + 1;
        unsigned long h = (k * 11400714819323198485) >> 61;
        while ((tab[h] != 0) && (tab[h] != k)) {
            h = ((h + 1) & 7);
        }
        tab[h] = k;
    }
    unsigned long s = 0;
    for (unsigned long i = 0; i < n; i = (i + 1)) {
        unsigned long k = qrys[i] + 1;
        unsigned long h = (k * 11400714819323198485) >> 61;
        while ((tab[h] != 0) && (tab[h] != k)) {
            h = ((h + 1) & 7);
        }
        if (tab[h] == k) {
            s = ((s * 31) + h);
        } else {
            s = ((s * 31) + 3735928559);
        }
    }
    return s;
}
