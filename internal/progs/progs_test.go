package progs

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
)

// TestProgramTableIntegrity: every builder assembles a well-formed program —
// non-empty text, a valid entry point, a terminating hlt, and (for the
// vector workloads) the t/tlen data symbols carrying the input.
func TestProgramTableIntegrity(t *testing.T) {
	vec := Vector(5)
	builders := map[string]func() (*isa.Program, error){
		"sum-call": func() (*isa.Program, error) { return BuildSumCall(vec) },
		"sum-fork": func() (*isa.Program, error) { return BuildSumFork(vec) },
		"fib-call": func() (*isa.Program, error) { return BuildFibCall(7) },
		"fib-fork": func() (*isa.Program, error) { return BuildFibFork(7) },
		"max-fork": func() (*isa.Program, error) { return BuildMaxFork(vec) },
	}
	for name, build := range builders {
		p, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(p.Text) == 0 {
			t.Errorf("%s: empty text", name)
		}
		if p.Entry < 0 || p.Entry >= int64(len(p.Text)) {
			t.Errorf("%s: entry %d out of text (%d instructions)", name, p.Entry, len(p.Text))
		}
		hlt := false
		for i := range p.Text {
			if p.Text[i].Op == isa.HLT {
				hlt = true
			}
		}
		if !hlt {
			t.Errorf("%s: no hlt", name)
		}
	}
	// The vector data segment: t holds the input words, tlen its length.
	p, err := BuildSumFork(vec)
	if err != nil {
		t.Fatal(err)
	}
	tAddr, ok := p.DataAddr("t")
	if !ok {
		t.Fatal("sum-fork: no data symbol t")
	}
	cpu := emu.New(p)
	for i, want := range vec {
		if got := cpu.Mem.ReadU64(tAddr + uint64(8*i)); got != want {
			t.Errorf("t[%d] = %d, want %d", i, got, want)
		}
	}
	lenAddr, ok := p.DataAddr("tlen")
	if !ok {
		t.Fatal("sum-fork: no data symbol tlen")
	}
	if got := cpu.Mem.ReadU64(lenAddr); got != uint64(len(vec)) {
		t.Errorf("tlen = %d, want %d", got, len(vec))
	}
}

// TestSumBuildersAgree: the Fig. 2 (call) and Fig. 5 (fork) listings compute
// the same sums on the emulator, matching the closed form.
func TestSumBuildersAgree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 10, 40} {
		vec := Vector(n)
		want := VectorSum(n)
		for name, build := range map[string]func([]uint64) (*isa.Program, error){
			"call": BuildSumCall, "fork": BuildSumFork,
		} {
			p, err := build(vec)
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			cpu, err := emu.RunProgram(p)
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if got := cpu.Result(); got != want {
				t.Errorf("%s sum(Vector(%d)) = %d, want %d", name, n, got, want)
			}
		}
	}
}

// TestSumInstructionsClosedForm: the fork listing's dynamic instruction count
// over 5·2ⁿ elements matches the paper's Section 5 closed form (plus the
// 4-instruction driver).
func TestSumInstructionsClosedForm(t *testing.T) {
	for n := 0; n <= 4; n++ {
		p, err := BuildSumFork(Vector(5 << uint(n)))
		if err != nil {
			t.Fatal(err)
		}
		cpu, err := emu.RunProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := SumInstructions(n) + 4; cpu.Steps != want {
			t.Errorf("n=%d: %d instructions, want %d", n, cpu.Steps, want)
		}
	}
}

func TestFibBuilders(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 10} {
		want := Fib(n)
		for name, build := range map[string]func(int) (*isa.Program, error){
			"call": BuildFibCall, "fork": BuildFibFork,
		} {
			p, err := build(n)
			if err != nil {
				t.Fatalf("%s fib(%d): %v", name, n, err)
			}
			cpu, err := emu.RunProgram(p)
			if err != nil {
				t.Fatalf("%s fib(%d): %v", name, n, err)
			}
			if got := cpu.Result(); got != want {
				t.Errorf("%s fib(%d) = %d, want %d", name, n, got, want)
			}
		}
	}
}

func TestMaxBuilder(t *testing.T) {
	vecs := [][]uint64{{3}, {3, 9}, {9, 3}, {4, 8, 1, 9, 2, 7}}
	for _, v := range vecs {
		p, err := BuildMaxFork(v)
		if err != nil {
			t.Fatal(err)
		}
		cpu, err := emu.RunProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(0)
		for _, x := range v {
			if x > want {
				want = x
			}
		}
		if got := cpu.Result(); got != want {
			t.Errorf("vmax(%v) = %d, want %d", v, got, want)
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	if got := Vector(4); len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Errorf("Vector(4) = %v", got)
	}
	if got := VectorSum(10); got != 55 {
		t.Errorf("VectorSum(10) = %d", got)
	}
	if got := Fib(10); got != 55 {
		t.Errorf("Fib(10) = %d", got)
	}
}
