// Package progs holds the paper's reference listings and builders for the
// reproduction's standard workloads.
//
// SumCallBody is the paper's Fig. 2 (the gcc-style x86 translation of the C
// sum reduction, using call/ret) and SumForkBody is the paper's Fig. 5 (the
// same function with call/ret replaced by fork/endfork). Both assemble
// verbatim with internal/asm. Builders wrap the bodies with a driver and a
// data segment for a given input vector.
package progs

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
)

// SumCallBody is the paper's Fig. 2: the sum function in x86, call/ret
// version. Line comments match the paper.
const SumCallBody = `
sum:    cmpq $2, %rsi           # n>2
        ja .L2                  # if (n>2) goto .L2
        movq (%rdi), %rax       # rax=t[0]
        jne .L1                 # if (n!=2) goto .L1
        addq 8(%rdi), %rax      # rax+=t[1]
.L1:    ret                     # return (rax)
.L2:    pushq %rbx              # save rbx
        pushq %rdi              # save t
        pushq %rsi              # save n
        shrq %rsi               # rsi=n/2
        call sum                # sum(t,n/2)
        popq %rbx               # rbx=n
        pushq %rbx              # save n
        subq $8, %rsp           # allocate temp
        movq %rax, 0(%rsp)      # temp=sum(t,n/2)
        leaq (%rdi,%rsi,8), %rdi # rdi=&t[n/2]
        subq %rsi, %rbx         # rbx=n-n/2
        movq %rbx, %rsi         # rsi=n-n/2
        call sum                # sum(&t[n/2],n-n/2)
        addq 0(%rsp), %rax      # rax+=temp
        addq $8, %rsp           # free temp
        popq %rsi               # restore rsi (n)
        popq %rdi               # restore rdi (t)
        popq %rbx               # restore rbx
        ret                     # return rax
`

// SumForkBody is the paper's Fig. 5: the sum function modified by fork
// instructions. Line comments match the paper.
const SumForkBody = `
sum:    cmpq $2, %rsi           # n>2
        ja .L2                  # if (n>2) goto .L2
        movq (%rdi), %rax       # rax=t[0]
        jne .L1                 # if (n!=2) goto .L1
        addq 8(%rdi), %rax      # rax+=t[1]
.L1:    endfork                 # return (rax)
.L2:    movq %rsi, %rbx         # rbx=n
        shrq %rsi               # rsi=n/2
        fork sum                # sum(t,n/2)
        subq $8, %rsp           # allocate temp
        movq %rax, 0(%rsp)      # temp=sum(t,n/2)
        leaq (%rdi,%rsi,8), %rdi # rdi=&t[n/2]
        subq %rsi, %rbx         # rbx=n-n/2
        movq %rbx, %rsi         # rsi=n-n/2
        fork sum                # sum(&t[n/2],n-n/2)
        addq 0(%rsp), %rax      # rax+=temp
        addq $8, %rsp           # free temp
        endfork                 # return rax
`

// dataSegment renders a .data section defining t as the given vector and
// tlen as its length.
func dataSegment(t []uint64) string {
	var b strings.Builder
	b.WriteString(".data\n")
	b.WriteString("t: .quad ")
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	fmt.Fprintf(&b, "\ntlen: .quad %d\n", len(t))
	return b.String()
}

// BuildSumCall assembles the Fig. 2 program with a driver calling sum(t, len(t)).
func BuildSumCall(t []uint64) (*isa.Program, error) {
	src := fmt.Sprintf(`
_start: movq $t, %%rdi
        movq $%d, %%rsi
        call sum
        hlt
%s
%s`, len(t), SumCallBody, dataSegment(t))
	return asm.Assemble(src)
}

// BuildSumFork assembles the Fig. 5 program with a driver forking sum(t, len(t)).
// The driver's continuation (after the whole sum call tree) is the final hlt.
func BuildSumFork(t []uint64) (*isa.Program, error) {
	src := fmt.Sprintf(`
_start: movq $t, %%rdi
        movq $%d, %%rsi
        fork sum
        hlt
%s
%s`, len(t), SumForkBody, dataSegment(t))
	return asm.Assemble(src)
}

// Vector returns the test vector [1, 2, ..., n], whose sum is n(n+1)/2.
func Vector(n int) []uint64 {
	t := make([]uint64, n)
	for i := range t {
		t[i] = uint64(i + 1)
	}
	return t
}

// VectorSum returns the expected reduction result for Vector(n).
func VectorSum(n int) uint64 { return uint64(n) * uint64(n+1) / 2 }

// SumInstructions is the paper's Section 5 closed form: the number of
// instructions in the fork run of sum over a 5·2ⁿ-element array is
// 45·2ⁿ + 14·(2ⁿ − 1).
func SumInstructions(n int) int64 {
	p := int64(1) << uint(n)
	return 45*p + 14*(p-1)
}

// FibForkBody is a second fork workload: the naive doubly-recursive
// Fibonacci, restructured with fork/endfork in the style of Fig. 5.
// fib(n) with n in rsi, result in rax; r12 holds n across the first fork
// (non-volatile, copied by fork).
const FibForkBody = `
fib:    cmpq $2, %rsi           # n >= 2 ?
        jae .F2
        movq %rsi, %rax         # fib(0)=0, fib(1)=1
        endfork
.F2:    movq %rsi, %r12         # r12 = n
        decq %rsi               # rsi = n-1
        fork fib                # fib(n-1)
        subq $8, %rsp           # allocate temp
        movq %rax, 0(%rsp)      # temp = fib(n-1)
        leaq -2(%r12), %rsi     # rsi = n-2
        fork fib                # fib(n-2)
        addq 0(%rsp), %rax      # rax += temp
        addq $8, %rsp           # free temp
        endfork
`

// FibCallBody is the call/ret version of FibForkBody, for ILP comparison.
const FibCallBody = `
fib:    cmpq $2, %rsi
        jae .F2
        movq %rsi, %rax
        ret
.F2:    pushq %r12
        movq %rsi, %r12
        decq %rsi
        call fib
        subq $8, %rsp
        movq %rax, 0(%rsp)
        leaq -2(%r12), %rsi
        call fib
        addq 0(%rsp), %rax
        addq $8, %rsp
        popq %r12
        ret
`

// BuildFibFork assembles the fork Fibonacci with a driver for fib(n).
func BuildFibFork(n int) (*isa.Program, error) {
	src := fmt.Sprintf(`
_start: movq $%d, %%rsi
        fork fib
        hlt
%s`, n, FibForkBody)
	return asm.Assemble(src)
}

// BuildFibCall assembles the call Fibonacci with a driver for fib(n).
func BuildFibCall(n int) (*isa.Program, error) {
	src := fmt.Sprintf(`
_start: movq $%d, %%rsi
        call fib
        hlt
%s`, n, FibCallBody)
	return asm.Assemble(src)
}

// Fib returns the expected Fibonacci value (fib(0)=0, fib(1)=1).
func Fib(n int) uint64 {
	a, b := uint64(0), uint64(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

// MaxForkBody is a third fork workload: divide-and-conquer maximum of a
// vector, exercising data-dependent conditional moves across sections.
const MaxForkBody = `
vmax:   cmpq $2, %rsi
        ja .M2
        movq (%rdi), %rax       # rax = t[0]
        jne .M1                 # n==1 ?
        cmpq 8(%rdi), %rax
        jae .M1
        movq 8(%rdi), %rax      # rax = t[1] if larger
.M1:    endfork
.M2:    movq %rsi, %rbx         # rbx = n
        shrq %rsi               # rsi = n/2
        fork vmax               # vmax(t, n/2)
        subq $8, %rsp
        movq %rax, 0(%rsp)      # temp = left max
        leaq (%rdi,%rsi,8), %rdi
        subq %rsi, %rbx
        movq %rbx, %rsi
        fork vmax               # vmax(&t[n/2], n-n/2)
        cmpq 0(%rsp), %rax
        jae .M3
        movq 0(%rsp), %rax      # rax = max(left, right)
.M3:    addq $8, %rsp
        endfork
`

// BuildMaxFork assembles the fork vector-max with a driver over t.
func BuildMaxFork(t []uint64) (*isa.Program, error) {
	src := fmt.Sprintf(`
_start: movq $t, %%rdi
        movq $%d, %%rsi
        fork vmax
        hlt
%s
%s`, len(t), MaxForkBody, dataSegment(t))
	return asm.Assemble(src)
}
