// Package server is the simulation-as-a-service layer: a long-running HTTP
// job server over the sweep engine and its content-keyed result cache, so
// the reproduction's measurements (the scaling studies behind the paper's
// Figs. 8–10 and Section 5) can be driven by many concurrent clients
// instead of one-shot CLI invocations.
//
// It reproduces no paper material itself — it is serving infrastructure,
// the step from "a laboratory you run" to "a laboratory you query":
//
//   - POST /v1/sweeps submits a whole grid (the same cross-product
//     `repro sweep` runs) and POST /v1/runs submits a single machine point;
//     both return immediately with a job ID.
//   - GET /v1/sweeps/{id} and GET /v1/runs/{id} poll the job lifecycle
//     (submitted → running → done | failed).
//   - GET /v1/sweeps/{id}/results streams the records as JSONL in
//     deterministic grid order, incrementally while the job still runs —
//     byte-identical to the file `repro sweep -o` writes for the same grid
//     over the same cache.
//   - GET /v1/kernels and GET /v1/topologies serve the catalogs
//     (pbbs.Catalog, noc.Catalog); GET /v1/jobs lists the bounded job
//     history; GET /healthz reports liveness and engine counters.
//
// Jobs execute on the shared sweep.Engine, so every submission benefits
// from the persistent cache and from request coalescing: concurrent
// measurements of the same content key are deduplicated by the engine's
// singleflight (N identical simultaneous submissions simulate each grid
// point exactly once). The job history is bounded (finished jobs beyond the
// limit are evicted oldest-first), requests are logged structurally
// (log/slog), and Drain supports graceful shutdown.
package server
