package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pbbs"
	"repro/internal/sweep"
)

func quietLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newTestServer serves the API over the given engine with a generous job
// concurrency so tests can overlap submissions.
func newTestServer(t *testing.T, eng *sweep.Engine) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(Config{Engine: eng, Log: quietLog(), MaxConcurrentJobs: 16}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// getJSON fetches path and decodes the response into v, returning the
// status code.
func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

// postJSON posts body to path and decodes the response into v, returning
// the status code.
func postJSON(t *testing.T, ts *httptest.Server, path, body string, v any) int {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

// waitDone polls the job's status endpoint until it reaches a terminal
// state.
func waitDone(t *testing.T, ts *httptest.Server, path string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st Status
		if code := getJSON(t, ts, path, &st); code != http.StatusOK {
			t.Fatalf("GET %s = %d", path, code)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", path, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCatalogEndpoints(t *testing.T) {
	ts := newTestServer(t, &sweep.Engine{})

	var ks struct{ Kernels []pbbs.Info }
	if code := getJSON(t, ts, "/v1/kernels", &ks); code != http.StatusOK {
		t.Fatalf("GET /v1/kernels = %d", code)
	}
	if len(ks.Kernels) != len(pbbs.Kernels()) {
		t.Errorf("kernels catalog has %d entries, want %d", len(ks.Kernels), len(pbbs.Kernels()))
	}
	found := false
	for _, k := range ks.Kernels {
		if strings.Contains(k.Name, "quickSort") {
			found = true
		}
		if k.ID <= 0 || k.MinN <= 0 {
			t.Errorf("catalog entry missing metadata: %+v", k)
		}
	}
	if !found {
		t.Errorf("kernels catalog lacks quickSort: %+v", ks.Kernels)
	}

	var topos struct {
		Topologies []struct{ Name, Description string }
	}
	if code := getJSON(t, ts, "/v1/topologies", &topos); code != http.StatusOK {
		t.Fatalf("GET /v1/topologies = %d", code)
	}
	if len(topos.Topologies) != len(sweep.Topologies) {
		t.Errorf("topology catalog has %d entries, want %d", len(topos.Topologies), len(sweep.Topologies))
	}
	for _, tp := range topos.Topologies {
		if tp.Name == "" || tp.Description == "" {
			t.Errorf("topology entry missing metadata: %+v", tp)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, &sweep.Engine{})
	var h struct{ Status string }
	if code := getJSON(t, ts, "/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("GET /healthz = %d %+v", code, h)
	}
}

func TestSweepJobLifecycle(t *testing.T) {
	ts := newTestServer(t, &sweep.Engine{Workers: 4})

	var st Status
	code := postJSON(t, ts, "/v1/sweeps", `{"kernels":["10"],"sizes":[8],"cores":[1,2]}`, &st)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d", code)
	}
	if st.ID == "" || st.Kind != KindSweep || st.Points != 2 || st.Results == "" {
		t.Fatalf("submission status = %+v", st)
	}

	final := waitDone(t, ts, "/v1/sweeps/"+st.ID)
	if final.State != StateDone || final.Done != 2 || final.Started == nil || final.Finished == nil {
		t.Fatalf("final status = %+v", final)
	}

	resp, err := http.Get(ts.URL + final.Results)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("results Content-Type = %q", ct)
	}
	recs, err := sweep.ReadJSONL(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Cores != 1 || recs[1].Cores != 2 {
		t.Fatalf("results = %+v, want the 2 grid points in order", recs)
	}

	var jobs struct{ Jobs []Status }
	if code := getJSON(t, ts, "/v1/jobs", &jobs); code != http.StatusOK || len(jobs.Jobs) != 1 || jobs.Jobs[0].ID != st.ID {
		t.Errorf("GET /v1/jobs = %d %+v", code, jobs)
	}
}

func TestRunJobLifecycle(t *testing.T) {
	ts := newTestServer(t, &sweep.Engine{})

	var st Status
	code := postJSON(t, ts, "/v1/runs", `{"kernel":10,"n":8,"cores":2}`, &st)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs = %d", code)
	}
	if st.Kind != KindRun || st.Points != 1 {
		t.Fatalf("submission status = %+v", st)
	}
	final := waitDone(t, ts, "/v1/runs/"+st.ID)
	if final.State != StateDone || final.Record == nil {
		t.Fatalf("final status = %+v", final)
	}
	if final.Record.Cycles == 0 || final.Record.Cores != 2 || final.Record.N != 8 {
		t.Errorf("run record = %+v", final.Record)
	}
	if final.Record.RequestedN != 0 {
		t.Errorf("in-range run carries RequestedN = %d", final.Record.RequestedN)
	}

	// A request below the kernel's minimum flows through to the engine,
	// which clamps it and keeps the original size in the record.
	if code := postJSON(t, ts, "/v1/runs", `{"kernel":10,"n":1}`, &st); code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs = %d", code)
	}
	final = waitDone(t, ts, "/v1/runs/"+st.ID)
	if final.State != StateDone || final.Record == nil {
		t.Fatalf("final status = %+v", final)
	}
	if final.Record.N != 2 || final.Record.RequestedN != 1 {
		t.Errorf("clamped run record n=%d requestedN=%d, want 2 and 1", final.Record.N, final.Record.RequestedN)
	}
}

func TestNotFound(t *testing.T) {
	ts := newTestServer(t, &sweep.Engine{})
	for _, path := range []string{
		"/v1/sweeps/nope",
		"/v1/sweeps/nope/results",
		"/v1/runs/nope",
		"/v1/nonexistent",
	} {
		if code := getJSON(t, ts, path, nil); code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, code)
		}
	}

	// A run job is not addressable as a sweep (and vice versa).
	var st Status
	if code := postJSON(t, ts, "/v1/runs", `{"kernel":"10","n":8}`, &st); code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs = %d", code)
	}
	if code := getJSON(t, ts, "/v1/sweeps/"+st.ID, nil); code != http.StatusNotFound {
		t.Errorf("GET /v1/sweeps/%s (a run job) = %d, want 404", st.ID, code)
	}
	waitDone(t, ts, "/v1/runs/"+st.ID)
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t, &sweep.Engine{})
	cases := []struct{ path, body string }{
		{"/v1/sweeps", `{`},                                // malformed JSON
		{"/v1/sweeps", `{"kernals":[1]}`},                  // misspelled field
		{"/v1/sweeps", `{"kernels":["zzz"]}`},              // unknown kernel
		{"/v1/sweeps", `{"topologies":["torus"]}`},         // unknown topology
		{"/v1/sweeps", `{"sizes":[0]}`},                    // invalid axis value
		{"/v1/sweeps", `{"kernels":[true]}`},               // wrong selector type
		{"/v1/runs", `{`},                                  // malformed JSON
		{"/v1/runs", `{}`},                                 // missing kernel
		{"/v1/runs", `{"kernel":"sort"}`},                  // ambiguous selector
		{"/v1/runs", `{"kernel":"10","topology":"torus"}`}, // unknown topology
		{"/v1/runs", `{"kernel":"10","cores":-1}`},         // bad core count
		{"/v1/runs", `{"kernel":"10","maxSections":-1}`},   // bad cap
	}
	for _, c := range cases {
		var e struct{ Error string }
		if code := postJSON(t, ts, c.path, c.body, &e); code != http.StatusBadRequest || e.Error == "" {
			t.Errorf("POST %s %s = %d (error %q), want 400 with a message", c.path, c.body, code, e.Error)
		}
	}
	// Collection endpoints only accept their registered method.
	if code := getJSON(t, ts, "/v1/sweeps", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sweeps = %d, want 405", code)
	}
	if code := postJSON(t, ts, "/v1/kernels", `{}`, nil); code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/kernels = %d, want 405", code)
	}
}

// TestResultsMatchCLIByteForByte is the acceptance criterion: a sweep
// submitted over HTTP streams JSONL byte-identical to the file the CLI path
// (Engine.Run + JSONLWriter, what `repro sweep -o` does) writes for the
// same grid over the same cache.
func TestResultsMatchCLIByteForByte(t *testing.T) {
	cache, err := sweep.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := &sweep.Engine{Cache: cache, Workers: 4}

	spec := &sweep.Spec{Kernels: []int{2, 10}, Sizes: []int{8}, Cores: []int{1, 2}, Seed: 1}
	var cli bytes.Buffer
	jw := sweep.NewJSONLWriter(&cli)
	if _, err := eng.Run(spec, func(r sweep.Record) {
		if err := jw.Write(r); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}

	ts := newTestServer(t, eng)
	var st Status
	if code := postJSON(t, ts, "/v1/sweeps", `{"kernels":[2,10],"sizes":[8],"cores":[1,2],"seed":1}`, &st); code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d", code)
	}
	// The results stream follows the job to completion, so no status
	// polling is needed before fetching.
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	httpBytes, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(httpBytes, cli.Bytes()) {
		t.Errorf("HTTP results differ from CLI JSONL:\nHTTP:\n%s\nCLI:\n%s", httpBytes, cli.Bytes())
	}
}

// TestConcurrentIdenticalSweepsSimulateOnce is the coalescing acceptance
// criterion: K identical simultaneous submissions simulate each grid point
// exactly once — in-flight duplicates coalesce on the engine's singleflight
// and stragglers hit the cache — and every client receives identical bytes.
func TestConcurrentIdenticalSweepsSimulateOnce(t *testing.T) {
	cache, err := sweep.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := &sweep.Engine{Cache: cache, Workers: 4}
	ts := newTestServer(t, eng)

	const K = 6
	const body = `{"kernels":["10"],"sizes":[8],"cores":[1,2]}`
	ids := make([]string, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var st Status
			if code := postJSON(t, ts, "/v1/sweeps", body, &st); code != http.StatusAccepted {
				t.Errorf("POST %d = %d", i, code)
				return
			}
			ids[i] = st.ID
		}()
	}
	wg.Wait()

	var results [][]byte
	for _, id := range ids {
		if id == "" {
			t.Fatal("a submission failed")
		}
		st := waitDone(t, ts, "/v1/sweeps/"+id)
		if st.State != StateDone {
			t.Fatalf("job %s failed: %s", id, st.Error)
		}
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/results")
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, b)
	}

	if s := eng.Stats(); s.Simulated != 2 {
		t.Errorf("stats = %+v, want exactly 2 simulations (one per grid point) for %d identical submissions", s, K)
	}
	for i := 1; i < K; i++ {
		if !bytes.Equal(results[i], results[0]) {
			t.Errorf("job %s results differ from job %s", ids[i], ids[0])
		}
	}
}

func TestResultsStreamWhileRunning(t *testing.T) {
	// A single-job server: the second submission queues behind the first,
	// and its results connection must open immediately and deliver once the
	// job runs.
	eng := &sweep.Engine{Workers: 2}
	ts := httptest.NewServer(New(Config{Engine: eng, Log: quietLog(), MaxConcurrentJobs: 1}).Handler())
	defer ts.Close()

	var first, second Status
	if code := postJSON(t, ts, "/v1/sweeps", `{"kernels":["10"],"sizes":[8,10],"cores":[1,2]}`, &first); code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	if code := postJSON(t, ts, "/v1/sweeps", `{"kernels":["10"],"sizes":[8],"cores":[1]}`, &second); code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + second.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	recs, err := sweep.ReadJSONL(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Err != "" {
		t.Fatalf("streamed results = %+v", recs)
	}
}

func TestHistoryEviction(t *testing.T) {
	m := NewManager(&sweep.Engine{}, quietLog(), 2, 1)
	var jobs []*Job
	// Submit sequentially, waiting each job out, so the eviction order
	// (oldest finished first) is deterministic.
	for i := 0; i < 3; i++ {
		j := m.SubmitRun(sweep.Point{Kernel: 10, N: 8, Cores: 1, Topology: sweep.TopoCrossbar, Shortcut: true, Seed: 1})
		jobs = append(jobs, j)
		deadline := time.Now().Add(30 * time.Second)
		for !j.terminal() {
			if time.Now().After(deadline) {
				t.Fatal("job did not finish")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if got := len(m.Jobs()); got != 2 {
		t.Errorf("history holds %d jobs, want bound of 2", got)
	}
	if _, ok := m.Get(jobs[0].ID); ok {
		t.Errorf("oldest finished job %s not evicted", jobs[0].ID)
	}
	if _, ok := m.Get(jobs[2].ID); !ok {
		t.Errorf("newest job %s evicted", jobs[2].ID)
	}
}

// TestRunClampLogged pins the server-side half of the clamp surfacing: a run
// whose requested N is below the kernel's minimum completes (the engine
// clamps), and the manager says so in its log instead of silently serving a
// different point.
func TestRunClampLogged(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	log := slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil))
	m := NewManager(&sweep.Engine{}, log, 8, 1)
	j := m.SubmitRun(sweep.Point{Kernel: 2, N: 1, Cores: 1, Topology: sweep.TopoCrossbar, Shortcut: true, Seed: 1})
	deadline := time.Now().Add(30 * time.Second)
	for !j.terminal() {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := j.status()
	if st.State != StateDone || st.Record == nil {
		t.Fatalf("job = %+v", st)
	}
	if st.Record.RequestedN != 1 || st.Record.N != 2 {
		t.Errorf("record requestedN=%d n=%d, want 1 and 2", st.Record.RequestedN, st.Record.N)
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if !strings.Contains(logged, "dataset size clamped") ||
		!strings.Contains(logged, "requestedN=1") || !strings.Contains(logged, "effectiveN=2") {
		t.Errorf("clamp not logged:\n%s", logged)
	}
}

// lockedWriter serialises the slog handler's writes so the test can read the
// buffer while the manager's goroutine may still be logging.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestKernelSelUnmarshal(t *testing.T) {
	var req SweepRequest
	if err := json.Unmarshal([]byte(`{"kernels":[2,"bfs"]}`), &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Kernels) != 2 || req.Kernels[0] != "2" || req.Kernels[1] != "bfs" {
		t.Errorf("kernels = %+v", req.Kernels)
	}
	spec, err := req.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Kernels) != 2 || spec.Kernels[0] != 2 {
		t.Errorf("resolved kernels = %+v", spec.Kernels)
	}
}

func TestRunRequestDefaults(t *testing.T) {
	req := RunRequest{Kernel: "quicksort"}
	p, err := req.Point()
	if err != nil {
		t.Fatal(err)
	}
	want := sweep.Point{Kernel: 2, Name: p.Name, N: 64, Cores: 1, Topology: sweep.TopoCrossbar, Shortcut: true, Seed: 1}
	if p != want {
		t.Errorf("defaulted point = %+v, want %+v", p, want)
	}
	off := false
	req = RunRequest{Kernel: "2", N: 8, Cores: 4, Topology: "mesh", Shortcut: &off, MaxSections: 3, Seed: 9}
	if p, err = req.Point(); err != nil {
		t.Fatal(err)
	}
	if p.Shortcut || p.Topology != "mesh" || p.MaxSections != 3 || p.Seed != 9 {
		t.Errorf("explicit point = %+v", p)
	}
}

func TestDrain(t *testing.T) {
	m := NewManager(&sweep.Engine{}, quietLog(), 8, 2)
	for i := 0; i < 3; i++ {
		m.SubmitRun(sweep.Point{Kernel: 10, N: 8, Cores: 1, Topology: sweep.TopoCrossbar, Shortcut: true, Seed: 1})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Jobs that were executing when Drain fired run to completion; jobs
	// still queued fail fast so the drain stays bounded. Either way every
	// job must be terminal.
	for _, st := range m.Jobs() {
		switch {
		case st.State == StateDone:
		case st.State == StateFailed && strings.Contains(st.Error, "shutting down"):
		default:
			t.Errorf("job %s is %s (%q) after Drain", st.ID, st.State, st.Error)
		}
	}
}
