package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/noc"
	"repro/internal/pbbs"
	"repro/internal/sweep"
)

// Config configures New.
type Config struct {
	// Engine is the shared sweep engine (cache, worker pool, scheduler
	// choice). Required.
	Engine *sweep.Engine
	// Runner, when non-nil, executes sweep grids instead of Engine.Run —
	// the hook the fabric coordinator uses to shard sweeps across
	// registered workers (single-point runs stay on the engine). It must
	// honour the engine's Run contract: deterministic grid-order emit and
	// identical records, so streamed JSONL stays byte-identical.
	Runner Runner
	// Log receives request and job-lifecycle records; slog.Default when nil.
	Log *slog.Logger
	// MaxHistory bounds the finished jobs kept before the oldest are
	// evicted (default 256).
	MaxHistory int
	// MaxConcurrentJobs bounds the jobs executing at once; submissions
	// beyond it queue in StateSubmitted (default 2).
	MaxConcurrentJobs int
}

// Server routes the HTTP API over a job manager.
type Server struct {
	mgr *Manager
	log *slog.Logger
	mux *http.ServeMux
}

// New wires the routes. Serve the result of Handler.
func New(cfg Config) *Server {
	log := cfg.Log
	if log == nil {
		log = slog.Default()
	}
	s := &Server{
		mgr: NewManager(cfg.Engine, log, cfg.MaxHistory, cfg.MaxConcurrentJobs),
		log: log,
		mux: http.NewServeMux(),
	}
	if cfg.Runner != nil {
		s.mgr.runner = cfg.Runner
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	s.mux.HandleFunc("GET /v1/topologies", s.handleTopologies)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus(KindSweep))
	s.mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus(KindRun))
	return s
}

// Handler returns the routed handler wrapped in structured request logging.
func (s *Server) Handler() http.Handler { return s.logged(s.mux) }

// Drain waits for submitted jobs to finish, for graceful shutdown after the
// HTTP listener has stopped.
func (s *Server) Drain(ctx context.Context) error { return s.mgr.Drain(ctx) }

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Warn("response write failed", "error", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	s.writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decode parses a JSON request body strictly: unknown fields are an error
// (they are always a misspelled axis), bodies are capped at 1 MiB.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"jobs":   s.mgr.Count(),
		"engine": s.mgr.eng.Stats(),
	})
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"kernels": pbbs.Catalog()})
}

func (s *Server) handleTopologies(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"topologies": noc.Catalog()})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.Jobs()})
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	spec, err := req.Spec()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := s.mgr.SubmitSweep(spec)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decode(r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	p, err := req.Point()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, s.mgr.SubmitRun(p).status())
}

// handleStatus serves GET /v1/sweeps/{id} and GET /v1/runs/{id}. A job is
// only addressable under its own kind's collection.
func (s *Server) handleStatus(kind Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		j, ok := s.mgr.Get(id)
		if !ok || j.Kind != kind {
			s.writeError(w, http.StatusNotFound, "no %s job %q", kind, id)
			return
		}
		s.writeJSON(w, http.StatusOK, j.status())
	}
}

// handleResults streams a sweep's records as JSONL in deterministic grid
// order, flushing per record. If the job is still running the stream
// follows it until completion, so a plain `curl` yields exactly the file
// `repro sweep -o` would have written for the same grid over the same
// cache.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.mgr.Get(id)
	if !ok || j.Kind != KindSweep {
		s.writeError(w, http.StatusNotFound, "no sweep job %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	n := 0
	for {
		recs, finished, wake := j.watch(n)
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				return
			}
			n++
		}
		_ = rc.Flush()
		if finished {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// statusWriter captures the response code and size for the request log.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += n
	return n, err
}

// Unwrap lets http.NewResponseController reach Flush on the wrapped writer.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// logged is the structured request-logging middleware.
func (s *Server) logged(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		s.log.Info("request",
			"method", r.Method, "path", r.URL.Path,
			"status", sw.code, "bytes", sw.bytes,
			"dur", time.Since(start).Round(time.Microsecond))
	})
}
