package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/sweep"
)

// Kind distinguishes the two job shapes the server accepts.
type Kind string

const (
	// KindSweep is a whole grid (POST /v1/sweeps).
	KindSweep Kind = "sweep"
	// KindRun is a single machine point (POST /v1/runs).
	KindRun Kind = "run"
)

// State is the job lifecycle: submitted → running → done | failed.
type State string

const (
	StateSubmitted State = "submitted" // accepted, waiting for a job slot
	StateRunning   State = "running"   // executing on the engine
	StateDone      State = "done"      // every point measured successfully
	StateFailed    State = "failed"    // the job (or at least one point) errored
)

// Job is one submitted unit of work. Records accumulate as the engine emits
// them — in deterministic grid order — so results can stream while the job
// still runs.
type Job struct {
	// ID addresses the job in the API; IDs are unique per server process.
	ID string
	// Kind is sweep or run.
	Kind Kind
	// Created is the submission time.
	Created time.Time

	spec  *sweep.Spec  // the normalised grid (sweep jobs)
	point *sweep.Point // the single point (run jobs)
	grid  int          // points in the grid (1 for runs)

	mu       sync.Mutex
	state    State
	errMsg   string
	started  time.Time
	finished time.Time
	recs     []sweep.Record
	wake     chan struct{} // closed and replaced on every state/record change
}

func newJob(id string, kind Kind, spec *sweep.Spec, point *sweep.Point, grid int) *Job {
	return &Job{
		ID: id, Kind: kind, Created: time.Now(),
		spec: spec, point: point, grid: grid,
		state: StateSubmitted, wake: make(chan struct{}),
	}
}

// signal wakes every watcher. Callers hold j.mu.
func (j *Job) signal() {
	close(j.wake)
	j.wake = make(chan struct{})
}

func (j *Job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = time.Now()
	j.signal()
}

func (j *Job) append(r sweep.Record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.recs = append(j.recs, r)
	j.signal()
}

// finish moves the job to done or failed. err carries whole-job failures; a
// sweep whose points individually failed arrives here with the engine's
// joined per-point error.
func (j *Job) finish(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	if err != nil {
		j.state, j.errMsg = StateFailed, err.Error()
	} else {
		j.state = StateDone
	}
	j.signal()
}

// terminal reports whether the job has finished (done or failed).
func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == StateDone || j.state == StateFailed
}

// watch returns the records past from, whether the job has finished, and a
// channel that closes on the next change — the streaming primitive behind
// GET /v1/sweeps/{id}/results. The returned slice aliases the job's records,
// which are append-only, so reading it without the lock is safe.
func (j *Job) watch(from int) (news []sweep.Record, finished bool, wake <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.recs) {
		news = j.recs[from:]
	}
	return news, j.state == StateDone || j.state == StateFailed, j.wake
}

// Status is the wire form of a job, returned by the status and list
// endpoints.
type Status struct {
	ID       string     `json:"id"`
	Kind     Kind       `json:"kind"`
	State    State      `json:"state"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Points is the grid size; Done is how many records exist so far.
	Points int    `json:"points"`
	Done   int    `json:"done"`
	Error  string `json:"error,omitempty"`
	// Results is the JSONL endpoint for sweep jobs.
	Results string `json:"results,omitempty"`
	// Record is the measured point of a run job, once available.
	Record *sweep.Record `json:"record,omitempty"`
}

func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.ID, Kind: j.Kind, State: j.state, Created: j.Created,
		Points: j.grid, Done: len(j.recs), Error: j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.Kind == KindSweep {
		st.Results = "/v1/sweeps/" + j.ID + "/results"
	} else if len(j.recs) > 0 {
		r := j.recs[0]
		st.Record = &r
	}
	return st
}

// Runner executes sweep grids for the manager: sweep.Engine.Run's exact
// contract (deterministic grid-order emit, records in grid order, joined
// per-point errors). The engine itself is the default; the fabric
// coordinator substitutes the distributed path, sharding grids across
// registered workers and falling back to the engine with zero workers.
type Runner interface {
	Run(spec *sweep.Spec, emit func(sweep.Record)) ([]sweep.Record, error)
}

// Manager owns the job store and executes jobs on the shared sweep engine.
// At most maxJobs execute concurrently (the rest queue in StateSubmitted),
// and the history is bounded: once the store exceeds maxHistory jobs, the
// oldest finished jobs are evicted and their IDs return 404.
type Manager struct {
	eng        *sweep.Engine
	runner     Runner
	log        *slog.Logger
	maxHistory int
	sem        chan struct{}

	// closing is closed by Drain: queued jobs that have not started yet
	// fast-fail instead of running, so shutdown is bounded by the jobs
	// already in flight.
	closing   chan struct{}
	closeOnce sync.Once

	mu       sync.Mutex
	seq      int
	jobs     map[string]*Job
	order    []string      // submission order, for listing and eviction
	inflight int           // exec goroutines not yet finished
	draining bool          // Drain has begun: new submissions fail fast
	idle     chan struct{} // created by Drain, closed when inflight hits 0
}

// NewManager wires a manager over the engine. maxHistory and maxJobs
// default to 256 and 2 when non-positive.
func NewManager(eng *sweep.Engine, log *slog.Logger, maxHistory, maxJobs int) *Manager {
	if maxHistory < 1 {
		maxHistory = 256
	}
	if maxJobs < 1 {
		maxJobs = 2
	}
	if log == nil {
		log = slog.Default()
	}
	return &Manager{
		eng: eng, runner: eng, log: log, maxHistory: maxHistory,
		sem: make(chan struct{}, maxJobs), jobs: make(map[string]*Job),
		closing: make(chan struct{}),
	}
}

// SubmitSweep queues a grid job for a spec (normalised here if the caller
// has not already).
func (m *Manager) SubmitSweep(spec *sweep.Spec) (*Job, error) {
	pts, err := spec.Points()
	if err != nil {
		return nil, err
	}
	return m.submit(KindSweep, spec, nil, len(pts)), nil
}

// SubmitRun queues a single-point job.
func (m *Manager) SubmitRun(p sweep.Point) *Job {
	return m.submit(KindRun, nil, &p, 1)
}

func (m *Manager) submit(kind Kind, spec *sweep.Spec, point *sweep.Point, grid int) *Job {
	m.mu.Lock()
	m.seq++
	id := fmt.Sprintf("%s-%d", kind, m.seq)
	j := newJob(id, kind, spec, point, grid)
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.evictLocked()
	if m.draining {
		// Submission raced the drain: fail the job without spawning exec.
		// (The old sync.WaitGroup bookkeeping could Add after Drain's Wait
		// had started on a zero counter, which is a documented WaitGroup
		// misuse; the inflight counter is checked under the same lock that
		// sets draining, so the race is gone.)
		m.mu.Unlock()
		j.finish(errors.New("server shutting down before the job started"))
		m.log.Info("job rejected at shutdown", "id", id, "kind", kind)
		return j
	}
	m.inflight++
	m.mu.Unlock()
	m.log.Info("job submitted", "id", id, "kind", kind, "points", grid)
	go m.exec(j)
	return j
}

// jobDone retires one exec goroutine and wakes the drain once the last one
// leaves.
func (m *Manager) jobDone() {
	m.mu.Lock()
	m.inflight--
	if m.draining && m.inflight == 0 && m.idle != nil {
		close(m.idle)
		m.idle = nil
	}
	m.mu.Unlock()
}

// evictLocked drops the oldest finished jobs beyond the history bound.
// Unfinished jobs are never evicted, so the store can transiently exceed the
// bound while that many jobs are in flight.
func (m *Manager) evictLocked() {
	excess := len(m.order) - m.maxHistory
	if excess <= 0 {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		if excess > 0 && m.jobs[id].terminal() {
			delete(m.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

func (m *Manager) exec(j *Job) {
	defer m.jobDone()
	select {
	case m.sem <- struct{}{}:
	case <-m.closing:
		// Queued at shutdown: fail fast rather than hold the drain hostage
		// to work that never started.
		j.finish(errors.New("server shutting down before the job started"))
		return
	}
	defer func() { <-m.sem }()
	j.setRunning()
	var err error
	if j.Kind == KindRun {
		rec := m.eng.Measure(*j.point)
		if rec.RequestedN != 0 {
			// The engine clamped the dataset size up to the kernel's
			// minimum; say so instead of silently serving a different point.
			m.log.Info("dataset size clamped", "id", j.ID,
				"kernel", rec.Name, "requestedN", rec.RequestedN, "effectiveN", rec.N)
		}
		j.append(rec)
		if rec.Err != "" {
			err = errors.New(rec.Err)
		}
	} else {
		_, err = m.runner.Run(j.spec, j.append)
	}
	j.finish(err)
	st := j.status()
	m.log.Info("job finished", "id", j.ID, "state", st.State, "points", st.Points, "error", st.Error)
	m.mu.Lock()
	m.evictLocked()
	m.mu.Unlock()
}

// Get returns the stored job, if it exists and has not been evicted.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns the stored jobs' statuses, newest first.
func (m *Manager) Jobs() []Status {
	m.mu.Lock()
	order := append([]string(nil), m.order...)
	jobs := make([]*Job, len(order))
	for i, id := range order {
		jobs[i] = m.jobs[id]
	}
	m.mu.Unlock()
	sts := make([]Status, 0, len(jobs))
	for i := len(jobs) - 1; i >= 0; i-- {
		sts = append(sts, jobs[i].status())
	}
	return sts
}

// Count returns the number of stored jobs without snapshotting them.
func (m *Manager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.order)
}

// Drain blocks until every submitted job has finished or the context
// expires — the graceful-shutdown hook, called after the HTTP listener has
// stopped accepting submissions. Jobs already executing run to completion;
// jobs still queued fail fast, so the drain is bounded by the in-flight
// work.
func (m *Manager) Drain(ctx context.Context) error {
	m.closeOnce.Do(func() { close(m.closing) })
	m.mu.Lock()
	m.draining = true
	if m.inflight == 0 {
		m.mu.Unlock()
		return nil
	}
	if m.idle == nil {
		m.idle = make(chan struct{})
	}
	idle := m.idle
	m.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
