package server

import (
	"cmp"
	"encoding/json"
	"fmt"

	"repro/internal/pbbs"
	"repro/internal/sweep"
)

// KernelSel selects a kernel in a request body: a benchmark number (2 or
// "2") or a case-insensitive name substring ("quicksort") — anything
// pbbs.Find accepts. Both JSON numbers and JSON strings are accepted.
type KernelSel string

// UnmarshalJSON implements json.Unmarshaler.
func (k *KernelSel) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		*k = KernelSel(s)
		return nil
	}
	var n json.Number
	if err := json.Unmarshal(b, &n); err == nil {
		*k = KernelSel(n.String())
		return nil
	}
	return fmt.Errorf("kernel selector must be a number or a string, got %s", b)
}

// SweepRequest is the body of POST /v1/sweeps. Every axis is optional and
// defaults exactly like `repro sweep`'s flags: all kernels, size 64, 1
// core, crossbar, shortcut on, no placement cap, seed 1.
type SweepRequest struct {
	Kernels     []KernelSel `json:"kernels"`
	Sizes       []int       `json:"sizes"`
	Cores       []int       `json:"cores"`
	Topologies  []string    `json:"topologies"`
	Shortcut    []bool      `json:"shortcut"`
	MaxSections []int       `json:"maxSections"`
	Seed        uint64      `json:"seed"`
}

// Spec resolves the request into a validated, normalised sweep grid.
func (r *SweepRequest) Spec() (*sweep.Spec, error) {
	spec := &sweep.Spec{
		Sizes: r.Sizes, Cores: r.Cores, Topologies: r.Topologies,
		Shortcut: r.Shortcut, MaxSections: r.MaxSections, Seed: r.Seed,
	}
	for _, sel := range r.Kernels {
		k, err := pbbs.Find(string(sel))
		if err != nil {
			return nil, err
		}
		spec.Kernels = append(spec.Kernels, k.ID)
	}
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	return spec, nil
}

// RunRequest is the body of POST /v1/runs: one machine point. Kernel is
// required; the rest default to 64 elements on 1 crossbar core with the
// call-level shortcut on, seed 1.
type RunRequest struct {
	Kernel      KernelSel `json:"kernel"`
	N           int       `json:"n"`
	Cores       int       `json:"cores"`
	Topology    string    `json:"topology"`
	Shortcut    *bool     `json:"shortcut"`
	MaxSections int       `json:"maxSections"`
	Seed        uint64    `json:"seed"`
}

// Point resolves the request into a validated sweep point (dataset sizes
// below the kernel's minimum are clamped by the engine).
func (r *RunRequest) Point() (sweep.Point, error) {
	var p sweep.Point
	if r.Kernel == "" {
		return p, fmt.Errorf("kernel is required")
	}
	k, err := pbbs.Find(string(r.Kernel))
	if err != nil {
		return p, err
	}
	p.Kernel, p.Name = k.ID, k.Name
	if r.N < 0 {
		return p, fmt.Errorf("bad dataset size %d", r.N)
	}
	// Keep the requested size: the engine clamps to the kernel's minimum
	// and surfaces the original in the record's RequestedN, which an eager
	// clamp here would erase.
	p.N = cmp.Or(r.N, 64)
	p.Cores = cmp.Or(r.Cores, 1)
	if p.Cores < 1 {
		return p, fmt.Errorf("bad core count %d", p.Cores)
	}
	p.Topology = cmp.Or(r.Topology, sweep.TopoCrossbar)
	if _, err := sweep.MakeNet(p.Topology, p.Cores); err != nil {
		return p, err
	}
	p.Shortcut = r.Shortcut == nil || *r.Shortcut
	if r.MaxSections < 0 {
		return p, fmt.Errorf("bad max-sections cap %d", r.MaxSections)
	}
	p.MaxSections = r.MaxSections
	p.Seed = cmp.Or(r.Seed, 1)
	return p, nil
}
