package server

// Concurrency stress on the job manager — submissions, pollers and eviction
// racing a drain — plus the Runner seam the fabric coordinator plugs into.
// The stress test exists to keep the manager honest under -race: an earlier
// revision used a sync.WaitGroup whose Add could race Drain's Wait on a zero
// counter (documented WaitGroup misuse); the inflight-counter rewrite is
// pinned here.

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sweep"
)

func TestManagerStressSubmitPollEvictDrain(t *testing.T) {
	cache, err := sweep.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng := &sweep.Engine{Cache: cache}
	const history = 8
	m := NewManager(eng, quietLog(), history, 4)

	// One normalised point, submitted over and over: the cache makes the
	// jobs cheap, so the test exercises scheduling, not simulation.
	spec := &sweep.Spec{Kernels: []int{2}, Sizes: []int{8}, Cores: []int{1}, Seed: 1}
	pts, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]

	// Pollers hammer the read surface while submissions run, checking the
	// one ordering invariant Jobs() promises: newest first, i.e. strictly
	// decreasing submission sequence.
	stop := make(chan struct{})
	var pollers sync.WaitGroup
	for i := 0; i < 4; i++ {
		pollers.Add(1)
		go func() {
			defer pollers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				last := math.MaxInt
				for _, st := range m.Jobs() {
					seq, err := strconv.Atoi(strings.TrimPrefix(st.ID, "run-"))
					if err != nil {
						t.Errorf("unparseable job ID %q", st.ID)
						return
					}
					if seq >= last {
						t.Errorf("Jobs() not newest-first: seq %d after %d", seq, last)
						return
					}
					last = seq
					if j, ok := m.Get(st.ID); ok {
						_ = j.status()
					}
				}
				_ = m.Count()
			}
		}()
	}

	const submitters, perSubmitter = 4, 10
	var subs sync.WaitGroup
	for i := 0; i < submitters; i++ {
		subs.Add(1)
		go func() {
			defer subs.Done()
			for k := 0; k < perSubmitter; k++ {
				m.SubmitRun(p)
			}
		}()
	}
	subs.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	pollers.Wait()

	// Every job has finished, so eviction has settled to the history bound
	// and everything left is terminal: done, or fast-failed because it was
	// still queued when the drain began.
	if n := m.Count(); n > history {
		t.Errorf("history holds %d jobs after drain, want at most %d", n, history)
	}
	for _, st := range m.Jobs() {
		switch {
		case st.State == StateDone:
		case st.State == StateFailed && strings.Contains(st.Error, "shutting down"):
		default:
			t.Errorf("job %s is %s (%q) after drain", st.ID, st.State, st.Error)
		}
	}

	// A submission losing the race against Drain fails fast instead of
	// executing (or corrupting the drained manager's bookkeeping).
	late := m.SubmitRun(p)
	if st := late.status(); st.State != StateFailed || !strings.Contains(st.Error, "shutting down") {
		t.Errorf("post-drain submission = %+v, want fast shutdown failure", st)
	}
}

// stubRunner stands in for the fabric coordinator: canned metrics, no
// simulation.
type stubRunner struct {
	mu    sync.Mutex
	calls int
}

func (s *stubRunner) Run(spec *sweep.Spec, emit func(sweep.Record)) ([]sweep.Record, error) {
	pts, err := spec.Points()
	if err != nil {
		return nil, err
	}
	recs := make([]sweep.Record, len(pts))
	for i, p := range pts {
		recs[i].Point = p
		recs[i].Cycles = 4242
		if emit != nil {
			emit(recs[i])
		}
	}
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	return recs, nil
}

func (s *stubRunner) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func TestConfigRunnerRoutesSweepsOnly(t *testing.T) {
	eng := &sweep.Engine{}
	stub := &stubRunner{}
	ts := httptest.NewServer(New(Config{Engine: eng, Runner: stub, Log: quietLog(), MaxConcurrentJobs: 4}).Handler())
	t.Cleanup(ts.Close)

	// Sweeps go through the injected Runner: the engine never measures.
	var st Status
	if code := postJSON(t, ts, "/v1/sweeps", `{"kernels":[2],"sizes":[8],"cores":[1,2]}`, &st); code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps = %d", code)
	}
	final := waitDone(t, ts, "/v1/sweeps/"+st.ID)
	if final.State != StateDone || final.Done != 2 {
		t.Fatalf("final status = %+v", final)
	}
	if got := stub.count(); got != 1 {
		t.Errorf("runner ran %d times, want 1", got)
	}
	if st := eng.Stats(); st.Points != 0 {
		t.Errorf("engine measured %d points although a Runner is configured", st.Points)
	}
	resp, err := http.Get(ts.URL + final.Results)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := sweep.ReadJSONL(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Cycles != 4242 {
			t.Errorf("streamed record cycles = %d, want the runner's canned 4242", r.Cycles)
		}
	}

	// Single runs stay on the engine — the Runner seam is sweep-only.
	if code := postJSON(t, ts, "/v1/runs", `{"kernel":2,"n":8}`, &st); code != http.StatusAccepted {
		t.Fatalf("POST /v1/runs = %d", code)
	}
	if final := waitDone(t, ts, "/v1/runs/"+st.ID); final.State != StateDone {
		t.Fatalf("run status = %+v", final)
	}
	if got := stub.count(); got != 1 {
		t.Errorf("runner ran %d times after a single run, want still 1", got)
	}
	if st := eng.Stats(); st.Points != 1 {
		t.Errorf("engine measured %d points, want exactly the single run", st.Points)
	}
}
