// Package emu implements the functional (sequential) emulator for the ISA.
//
// It serves three roles in the reproduction:
//
//  1. Reference semantics: every program — mini-C output, hand-written
//     listings, PBBS kernels — is validated here before any ILP analysis or
//     machine simulation.
//  2. Trace capture: a hook records the dynamic trace (register and memory
//     read/write sets per instruction) consumed by the internal/ilp models
//     that regenerate the paper's Fig. 7.
//  3. Sequential execution of fork programs: fork/endfork are executed with
//     their *sequential-trace* semantics (the section total order of §2),
//     which makes the emulator the functional oracle for the many-core
//     machine simulator. A fork behaves as "continue into the callee now,
//     resume the continuation at endfork with the non-volatile registers
//     copied at the fork" — exactly the register-transfer the paper's
//     section-creation message performs.
package emu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/trace"
)

// NonVolatile is the set of registers a fork copies to the created section
// (the paper's §4.1: "the stack pointer and the set of non volatile
// registers"; the paper's own example also copies rdi and rsi, so the
// reproduction includes them).
var NonVolatile = []isa.Reg{isa.RBX, isa.RBP, isa.RSP, isa.RSI, isa.RDI, isa.R12, isa.R13, isa.R14, isa.R15}

// IsNonVolatile reports whether r is in the fork-copied register set.
func IsNonVolatile(r isa.Reg) bool {
	for _, nv := range NonVolatile {
		if nv == r {
			return true
		}
	}
	return false
}

const pageBits = 12
const pageSize = 1 << pageBits

// Memory is a sparse, paged, byte-addressed 64-bit memory.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	pn := addr >> pageBits
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// Reset zeroes every mapped page, returning the memory to its empty state
// while keeping the pages allocated. A memory image that is rebuilt after
// Reset (program data, injected inputs, the same deterministic run) touches
// only pages mapped before, so a warmed machine re-runs without page
// allocations — part of machine.Reset's no-steady-state-allocation contract.
func (m *Memory) Reset() {
	for _, p := range m.pages {
		clear(p[:])
	}
}

// ReadU64 reads the 8-byte little-endian word at addr. Unmapped bytes read
// as zero.
func (m *Memory) ReadU64(addr uint64) uint64 {
	if off := addr & (pageSize - 1); off <= pageSize-8 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		var v uint64
		for i := uint64(0); i < 8; i++ {
			v |= uint64(p[off+i]) << (8 * i)
		}
		return v
	}
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(m.LoadByte(addr+i)) << (8 * i)
	}
	return v
}

// WriteU64 writes the 8-byte little-endian word v at addr.
func (m *Memory) WriteU64(addr uint64, v uint64) {
	if off := addr & (pageSize - 1); off <= pageSize-8 {
		p := m.page(addr, true)
		for i := uint64(0); i < 8; i++ {
			p[off+i] = byte(v >> (8 * i))
		}
		return
	}
	for i := uint64(0); i < 8; i++ {
		m.StoreByte(addr+i, byte(v>>(8*i)))
	}
}

// LoadByte reads one byte; unmapped bytes read as zero.
func (m *Memory) LoadByte(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.page(addr, true)[addr&(pageSize-1)] = b
}

// CopyIn writes buf at addr.
func (m *Memory) CopyIn(addr uint64, buf []byte) {
	for i, b := range buf {
		m.StoreByte(addr+uint64(i), b)
	}
}

// Fault describes an emulation error with its dynamic context.
type Fault struct {
	IP   int64
	Seq  int64
	Msg  string
	Inst string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("emu: fault at ip=%d seq=%d (%s): %s", f.IP, f.Seq, f.Inst, f.Msg)
}

// forkFrame is the sequential-execution continuation saved by FORK.
type forkFrame struct {
	resumeIP int64
	saved    [16]uint64 // snapshot of the non-volatile registers
	level    int32
	isCall   bool // true when the frame models CALL/RET, false for FORK/ENDFORK
}

// CPU is the emulator state.
type CPU struct {
	Prog  *isa.Program
	Regs  [isa.NumRegs]uint64
	IP    int64
	Mem   *Memory
	Steps int64

	// TraceHook, when set, receives every retired instruction's record.
	TraceHook func(*trace.Record)

	// MaxSteps bounds the run; 0 means the default (256M).
	MaxSteps int64

	level     int32
	forkStack []forkFrame
	halted    bool

	regReadBuf  []isa.Reg
	regWriteBuf []isa.Reg
}

// New prepares a CPU to run prog from its entry point, with the data segment
// loaded and the stack pointer initialised.
func New(prog *isa.Program) *CPU {
	c := &CPU{Prog: prog, Mem: NewMemory()}
	c.Mem.CopyIn(isa.DataBase, prog.Data)
	c.Regs[isa.RSP] = isa.StackTop
	c.IP = prog.Entry
	return c
}

// Halted reports whether the program has finished.
func (c *CPU) Halted() bool { return c.halted }

// Result returns the conventional program result (rax at halt).
func (c *CPU) Result() uint64 { return c.Regs[isa.RAX] }

// Run executes until HLT or the step bound. It returns the step count.
func (c *CPU) Run() (int64, error) {
	max := c.MaxSteps
	if max == 0 {
		max = 256 << 20
	}
	for !c.halted {
		if c.Steps >= max {
			return c.Steps, &Fault{IP: c.IP, Seq: c.Steps, Msg: fmt.Sprintf("step limit %d exceeded", max)}
		}
		if err := c.Step(); err != nil {
			return c.Steps, err
		}
	}
	return c.Steps, nil
}

func (c *CPU) fault(in *isa.Instruction, msg string) error {
	return &Fault{IP: c.IP, Seq: c.Steps, Msg: msg, Inst: in.String()}
}

// effAddr computes the effective address of a memory operand.
func (c *CPU) effAddr(o *isa.Operand) uint64 {
	a := uint64(o.Imm)
	if o.Base != isa.NoReg {
		a += c.Regs[o.Base]
	}
	if o.Index != isa.NoReg {
		a += c.Regs[o.Index] * uint64(o.Scale)
	}
	return a
}

// Step executes one instruction.
func (c *CPU) Step() error {
	if c.halted {
		return nil
	}
	if c.IP < 0 || c.IP >= int64(len(c.Prog.Text)) {
		return &Fault{IP: c.IP, Seq: c.Steps, Msg: "instruction fetch out of text segment"}
	}
	in := &c.Prog.Text[c.IP]

	var rec *trace.Record
	if c.TraceHook != nil {
		rec = &trace.Record{Seq: c.Steps, IP: c.IP, Op: in.Op, CallLevel: c.level}
		c.regReadBuf = in.RegReads(c.regReadBuf[:0])
		c.regWriteBuf = in.RegWrites(c.regWriteBuf[:0])
		if len(c.regReadBuf) > 0 {
			rec.RegReads = append([]isa.Reg(nil), c.regReadBuf...)
		}
		if len(c.regWriteBuf) > 0 {
			rec.RegWrites = append([]isa.Reg(nil), c.regWriteBuf...)
		}
		if mo, ok := in.MemRead(); ok {
			a := c.effAddr(&mo)
			if in.Op == isa.POP || in.Op == isa.RET {
				a = c.Regs[isa.RSP]
			}
			rec.MemReads = []trace.MemRef{{Addr: a}}
		}
		if mo, ok := in.MemWrite(); ok {
			a := c.effAddr(&mo)
			rec.MemWrites = []trace.MemRef{{Addr: a}}
		}
	}

	next := c.IP + 1
	taken := false

	readSrc := func(o *isa.Operand) uint64 {
		switch o.Kind {
		case isa.KindReg:
			return c.Regs[o.Reg]
		case isa.KindImm:
			return uint64(o.Imm)
		case isa.KindMem:
			return c.Mem.ReadU64(c.effAddr(o))
		}
		return 0
	}
	readDst := func(o *isa.Operand) uint64 {
		switch o.Kind {
		case isa.KindReg:
			return c.Regs[o.Reg]
		case isa.KindMem:
			return c.Mem.ReadU64(c.effAddr(o))
		}
		return 0
	}
	writeDst := func(o *isa.Operand, v uint64) {
		switch o.Kind {
		case isa.KindReg:
			c.Regs[o.Reg] = v
		case isa.KindMem:
			c.Mem.WriteU64(c.effAddr(o), v)
		}
	}

	switch in.Op {
	case isa.NOP:

	case isa.MOV:
		writeDst(&in.Dst, readSrc(&in.Src))

	case isa.LEA:
		if in.Src.Kind != isa.KindMem || in.Dst.Kind != isa.KindReg {
			return c.fault(in, "leaq needs mem source and reg destination")
		}
		c.Regs[in.Dst.Reg] = c.effAddr(&in.Src)

	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.IMUL, isa.SHL, isa.SHR, isa.SAR:
		a := readDst(&in.Dst)
		b := readSrc(&in.Src)
		var r uint64
		switch in.Op {
		case isa.ADD:
			r = a + b
			c.setFlagsAdd(a, b, r)
		case isa.SUB:
			r = a - b
			c.setFlagsSub(a, b, r)
		case isa.AND:
			r = a & b
			c.setFlagsLogic(r)
		case isa.OR:
			r = a | b
			c.setFlagsLogic(r)
		case isa.XOR:
			r = a ^ b
			c.setFlagsLogic(r)
		case isa.IMUL:
			r = uint64(int64(a) * int64(b))
		case isa.SHL:
			r = a << (b & 63)
			c.setFlagsLogic(r)
		case isa.SHR:
			r = a >> (b & 63)
			c.setFlagsLogic(r)
		case isa.SAR:
			r = uint64(int64(a) >> (b & 63))
			c.setFlagsLogic(r)
		}
		writeDst(&in.Dst, r)

	case isa.NEG:
		v := readDst(&in.Dst)
		r := -v
		c.setFlagsSub(0, v, r)
		writeDst(&in.Dst, r)
	case isa.NOT:
		writeDst(&in.Dst, ^readDst(&in.Dst))
	case isa.INC:
		v := readDst(&in.Dst)
		r := v + 1
		c.setFlagsAdd(v, 1, r)
		writeDst(&in.Dst, r)
	case isa.DEC:
		v := readDst(&in.Dst)
		r := v - 1
		c.setFlagsSub(v, 1, r)
		writeDst(&in.Dst, r)

	case isa.CQTO:
		c.Regs[isa.RDX] = uint64(int64(c.Regs[isa.RAX]) >> 63)

	case isa.DIV:
		d := readDst(&in.Dst)
		if d == 0 {
			return c.fault(in, "division by zero")
		}
		if c.Regs[isa.RDX] != 0 {
			// 128-bit dividends are out of scope for the reproduction's
			// workloads; mini-C always clears rdx first.
			return c.fault(in, "divq with non-zero rdx (128-bit dividend unsupported)")
		}
		q := c.Regs[isa.RAX] / d
		r := c.Regs[isa.RAX] % d
		c.Regs[isa.RAX], c.Regs[isa.RDX] = q, r

	case isa.IDIV:
		d := int64(readDst(&in.Dst))
		if d == 0 {
			return c.fault(in, "division by zero")
		}
		num := int64(c.Regs[isa.RAX])
		if int64(c.Regs[isa.RDX]) != num>>63 {
			return c.fault(in, "idivq with rdx not the sign extension of rax")
		}
		c.Regs[isa.RAX] = uint64(num / d)
		c.Regs[isa.RDX] = uint64(num % d)

	case isa.CMP:
		a := readDst(&in.Dst)
		b := readSrc(&in.Src)
		c.setFlagsSub(a, b, a-b)
	case isa.TEST:
		c.setFlagsLogic(readDst(&in.Dst) & readSrc(&in.Src))

	case isa.SETcc:
		v := uint64(0)
		if in.Cond.Eval(isa.FlagsVal(c.Regs[isa.Flags])) {
			v = 1
		}
		writeDst(&in.Dst, v)

	case isa.PUSH:
		v := readSrc(&in.Src)
		c.Regs[isa.RSP] -= 8
		c.Mem.WriteU64(c.Regs[isa.RSP], v)
		if rec != nil {
			rec.MemWrites = []trace.MemRef{{Addr: c.Regs[isa.RSP]}}
		}
	case isa.POP:
		v := c.Mem.ReadU64(c.Regs[isa.RSP])
		c.Regs[isa.RSP] += 8
		writeDst(&in.Dst, v)

	case isa.JMP:
		next = in.Target
		taken = true
	case isa.Jcc:
		if in.Cond.Eval(isa.FlagsVal(c.Regs[isa.Flags])) {
			next = in.Target
			taken = true
		}
	case isa.CALL:
		c.Regs[isa.RSP] -= 8
		c.Mem.WriteU64(c.Regs[isa.RSP], uint64(c.IP+1))
		if rec != nil {
			rec.MemWrites = []trace.MemRef{{Addr: c.Regs[isa.RSP]}}
		}
		next = in.Target
		taken = true
		c.level++
	case isa.RET:
		ra := c.Mem.ReadU64(c.Regs[isa.RSP])
		c.Regs[isa.RSP] += 8
		next = int64(ra)
		taken = true
		if c.level > 0 {
			c.level--
		}

	case isa.FORK:
		var f forkFrame
		f.resumeIP = c.IP + 1
		f.level = c.level
		for _, r := range NonVolatile {
			f.saved[r] = c.Regs[r]
		}
		c.forkStack = append(c.forkStack, f)
		next = in.Target
		taken = true
		c.level++
	case isa.ENDFORK:
		if len(c.forkStack) == 0 {
			c.halted = true
			taken = true
			break
		}
		f := c.forkStack[len(c.forkStack)-1]
		c.forkStack = c.forkStack[:len(c.forkStack)-1]
		for _, r := range NonVolatile {
			c.Regs[r] = f.saved[r]
		}
		next = f.resumeIP
		c.level = f.level
		taken = true

	case isa.HLT:
		c.halted = true

	default:
		return c.fault(in, "unimplemented opcode")
	}

	if rec != nil {
		rec.Taken = taken
		c.TraceHook(rec)
	}
	c.Steps++
	if !c.halted {
		c.IP = next
	}
	return nil
}

func (c *CPU) setFlagsSub(a, b, r uint64) {
	c.Regs[isa.Flags] = uint64(isa.FlagsSub(a, b, r))
}

func (c *CPU) setFlagsAdd(a, b, r uint64) {
	c.Regs[isa.Flags] = uint64(isa.FlagsAdd(a, b, r))
}

func (c *CPU) setFlagsLogic(r uint64) {
	c.Regs[isa.Flags] = uint64(isa.FlagsLogic(r))
}

// RunTraced runs prog to completion with trace capture and returns the trace
// and the final CPU (for result/memory inspection).
func RunTraced(prog *isa.Program) (*trace.Trace, *CPU, error) {
	c := New(prog)
	t := &trace.Trace{}
	c.TraceHook = func(r *trace.Record) { t.Append(*r) }
	_, err := c.Run()
	return t, c, err
}

// RunProgram runs prog to completion without tracing and returns the final CPU.
func RunProgram(prog *isa.Program) (*CPU, error) {
	c := New(prog)
	_, err := c.Run()
	return c, err
}
