package emu

import (
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/progs"
	"repro/internal/trace"
)

func run(t *testing.T, src string) *CPU {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMovAndALU(t *testing.T) {
	c := run(t, `
main:   movq $10, %rax
        movq $3, %rbx
        addq %rbx, %rax     # 13
        subq $1, %rax       # 12
        imulq %rbx, %rax    # 36
        shlq $2, %rax       # 144
        shrq %rax           # 72
        hlt
`)
	if got := c.Result(); got != 72 {
		t.Errorf("result = %d, want 72", got)
	}
}

func TestMemoryOps(t *testing.T) {
	c := run(t, `
main:   movq $t, %rdi
        movq (%rdi), %rax
        addq 8(%rdi), %rax
        movq %rax, 16(%rdi)
        movq $2, %rcx
        movq t(,%rcx,8), %rbx
        hlt
.data
t:      .quad 100, 23, 0
`)
	if got := c.Result(); got != 123 {
		t.Errorf("rax = %d, want 123", got)
	}
	if got := c.Regs[isa.RBX]; got != 123 {
		t.Errorf("rbx (read back via indexed addressing) = %d, want 123", got)
	}
}

func TestPushPop(t *testing.T) {
	c := run(t, `
main:   movq $7, %rax
        pushq %rax
        movq $0, %rax
        popq %rbx
        hlt
`)
	if c.Regs[isa.RBX] != 7 {
		t.Errorf("rbx = %d, want 7", c.Regs[isa.RBX])
	}
	if c.Regs[isa.RSP] != isa.StackTop {
		t.Errorf("rsp = %#x, want %#x", c.Regs[isa.RSP], isa.StackTop)
	}
}

func TestCallRet(t *testing.T) {
	c := run(t, `
_start: movq $5, %rdi
        call double
        hlt
double: movq %rdi, %rax
        addq %rdi, %rax
        ret
`)
	if c.Result() != 10 {
		t.Errorf("result = %d, want 10", c.Result())
	}
}

func TestConditionals(t *testing.T) {
	// Unsigned and signed comparisons through all jcc forms.
	c := run(t, `
main:   movq $0, %rax
        movq $-1, %rbx       # unsigned max
        cmpq $1, %rbx
        ja .ok1              # unsigned: -1 > 1
        hlt
.ok1:   addq $1, %rax
        cmpq $1, %rbx
        jl .ok2              # signed: -1 < 1
        hlt
.ok2:   addq $1, %rax
        movq $5, %rcx
        cmpq $5, %rcx
        je .ok3
        hlt
.ok3:   addq $1, %rax
        cmpq $6, %rcx
        jne .ok4
        hlt
.ok4:   addq $1, %rax
        hlt
`)
	if c.Result() != 4 {
		t.Errorf("result = %d, want 4", c.Result())
	}
}

func TestSetcc(t *testing.T) {
	c := run(t, `
main:   movq $3, %rax
        cmpq $5, %rax
        setb %rbx           # 3 < 5 unsigned -> 1
        setg %rcx           # 3 > 5 signed -> 0
        hlt
`)
	if c.Regs[isa.RBX] != 1 || c.Regs[isa.RCX] != 0 {
		t.Errorf("setb=%d setg=%d, want 1 0", c.Regs[isa.RBX], c.Regs[isa.RCX])
	}
}

func TestDivMod(t *testing.T) {
	c := run(t, `
main:   movq $17, %rax
        movq $0, %rdx
        movq $5, %rcx
        divq %rcx
        hlt
`)
	if c.Regs[isa.RAX] != 3 || c.Regs[isa.RDX] != 2 {
		t.Errorf("17/5: q=%d r=%d, want 3 2", c.Regs[isa.RAX], c.Regs[isa.RDX])
	}
}

func TestIdiv(t *testing.T) {
	c := run(t, `
main:   movq $-17, %rax
        cqto
        movq $5, %rcx
        idivq %rcx
        hlt
`)
	if int64(c.Regs[isa.RAX]) != -3 || int64(c.Regs[isa.RDX]) != -2 {
		t.Errorf("-17/5: q=%d r=%d, want -3 -2", int64(c.Regs[isa.RAX]), int64(c.Regs[isa.RDX]))
	}
}

func TestDivByZeroFaults(t *testing.T) {
	p, err := asm.Assemble(`
main:   movq $1, %rax
        movq $0, %rdx
        movq $0, %rcx
        divq %rcx
        hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunProgram(p); err == nil {
		t.Error("division by zero did not fault")
	}
}

func TestStepLimit(t *testing.T) {
	p, err := asm.Assemble("main: jmp main\n")
	if err != nil {
		t.Fatal(err)
	}
	c := New(p)
	c.MaxSteps = 1000
	if _, err := c.Run(); err == nil {
		t.Error("infinite loop did not hit step limit")
	}
}

func TestFetchOutOfText(t *testing.T) {
	p, err := asm.Assemble("main: nop\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunProgram(p); err == nil {
		t.Error("running off the end of text did not fault")
	}
}

// TestSumCall reproduces the paper's Fig. 3: the sequential run of sum(t,5)
// executes exactly 59 instructions inside sum.
func TestSumCall(t *testing.T) {
	vec := progs.Vector(5)
	p, err := progs.BuildSumCall(vec)
	if err != nil {
		t.Fatal(err)
	}
	tr, c, err := RunTraced(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Result() != progs.VectorSum(5) {
		t.Errorf("sum = %d, want %d", c.Result(), progs.VectorSum(5))
	}
	sumStart := p.Labels["sum"]
	sumEnd := sumStart + 25
	body := 0
	for i := range tr.Records {
		if ip := tr.Records[i].IP; ip >= sumStart && ip < sumEnd {
			body++
		}
	}
	if body != 59 {
		t.Errorf("sum body trace = %d instructions, want 59 (paper Fig. 3)", body)
	}
}

// TestSumFork reproduces the paper's Fig. 6: the fork run of sum(t,5)
// executes exactly 45 instructions inside sum, and computes the same result.
func TestSumFork(t *testing.T) {
	vec := progs.Vector(5)
	p, err := progs.BuildSumFork(vec)
	if err != nil {
		t.Fatal(err)
	}
	tr, c, err := RunTraced(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Result() != progs.VectorSum(5) {
		t.Errorf("sum = %d, want %d", c.Result(), progs.VectorSum(5))
	}
	sumStart := p.Labels["sum"]
	sumEnd := sumStart + 19
	body := 0
	for i := range tr.Records {
		if ip := tr.Records[i].IP; ip >= sumStart && ip < sumEnd {
			body++
		}
	}
	if body != 45 {
		t.Errorf("sum body trace = %d instructions, want 45 (paper Fig. 6)", body)
	}
}

// TestSumForkInstructionFormula checks the paper's Section 5 closed form:
// the fork run of sum over 5·2ⁿ elements is 45·2ⁿ + 14·(2ⁿ−1) instructions.
func TestSumForkInstructionFormula(t *testing.T) {
	for n := 0; n <= 6; n++ {
		size := 5 << uint(n)
		vec := progs.Vector(size)
		p, err := progs.BuildSumFork(vec)
		if err != nil {
			t.Fatal(err)
		}
		tr, c, err := RunTraced(p)
		if err != nil {
			t.Fatal(err)
		}
		if c.Result() != progs.VectorSum(size) {
			t.Errorf("n=%d: sum = %d, want %d", n, c.Result(), progs.VectorSum(size))
		}
		sumStart := p.Labels["sum"]
		body := 0
		for i := range tr.Records {
			if ip := tr.Records[i].IP; ip >= sumStart && ip < sumStart+19 {
				body++
			}
		}
		if want := progs.SumInstructions(n); int64(body) != want {
			t.Errorf("n=%d (%d elements): %d instructions, want %d", n, size, body, want)
		}
	}
}

// TestCallForkEquivalence: the call and fork versions compute identical
// results for many sizes, including non-powers-of-two.
func TestCallForkEquivalence(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 13, 17, 31, 64, 100, 127} {
		vec := progs.Vector(size)
		pc, err := progs.BuildSumCall(vec)
		if err != nil {
			t.Fatal(err)
		}
		cc, err := RunProgram(pc)
		if err != nil {
			t.Fatalf("size %d call: %v", size, err)
		}
		pf, err := progs.BuildSumFork(vec)
		if err != nil {
			t.Fatal(err)
		}
		cf, err := RunProgram(pf)
		if err != nil {
			t.Fatalf("size %d fork: %v", size, err)
		}
		want := progs.VectorSum(size)
		if cc.Result() != want {
			t.Errorf("size %d: call result %d, want %d", size, cc.Result(), want)
		}
		if cf.Result() != want {
			t.Errorf("size %d: fork result %d, want %d", size, cf.Result(), want)
		}
	}
}

func TestFibForkAndCall(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 10, 15} {
		pf, err := progs.BuildFibFork(n)
		if err != nil {
			t.Fatal(err)
		}
		cf, err := RunProgram(pf)
		if err != nil {
			t.Fatalf("fib fork %d: %v", n, err)
		}
		if cf.Result() != progs.Fib(n) {
			t.Errorf("fib fork(%d) = %d, want %d", n, cf.Result(), progs.Fib(n))
		}
		pc, err := progs.BuildFibCall(n)
		if err != nil {
			t.Fatal(err)
		}
		cc, err := RunProgram(pc)
		if err != nil {
			t.Fatalf("fib call %d: %v", n, err)
		}
		if cc.Result() != progs.Fib(n) {
			t.Errorf("fib call(%d) = %d, want %d", n, cc.Result(), progs.Fib(n))
		}
	}
}

func TestMaxFork(t *testing.T) {
	vecs := [][]uint64{
		{5},
		{5, 9},
		{9, 5},
		{1, 2, 3, 4, 5},
		{5, 4, 3, 2, 1},
		{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3},
	}
	for _, v := range vecs {
		p, err := progs.BuildMaxFork(v)
		if err != nil {
			t.Fatal(err)
		}
		c, err := RunProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(0)
		for _, x := range v {
			if x > want {
				want = x
			}
		}
		if c.Result() != want {
			t.Errorf("max(%v) = %d, want %d", v, c.Result(), want)
		}
	}
}

// TestForkRestoresNonVolatiles: the continuation after a fork subtree sees
// the non-volatile registers as they were at the fork, while volatile rax
// carries the callee's result.
func TestForkRestoresNonVolatiles(t *testing.T) {
	c := run(t, `
_start: movq $111, %rbx
        movq $222, %r12
        fork clobber
        # continuation: rbx/r12 restored, rax from callee
        movq %rbx, %rcx
        hlt
clobber: movq $999, %rbx
        movq $888, %r12
        movq $42, %rax
        endfork
`)
	if c.Regs[isa.RAX] != 42 {
		t.Errorf("rax = %d, want 42 (callee result)", c.Regs[isa.RAX])
	}
	if c.Regs[isa.RCX] != 111 {
		t.Errorf("rbx seen by continuation = %d, want 111", c.Regs[isa.RCX])
	}
	if c.Regs[isa.R12] != 222 {
		t.Errorf("r12 = %d, want 222", c.Regs[isa.R12])
	}
}

func TestTraceCapture(t *testing.T) {
	p, err := asm.Assemble(`
main:   movq $t, %rdi
        movq (%rdi), %rax
        pushq %rax
        popq %rbx
        cmpq $1, %rbx
        je .done
        nop
.done:  hlt
.data
t:      .quad 1
`)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := RunTraced(p)
	if err != nil {
		t.Fatal(err)
	}
	// movq $t,%rdi ; movq (%rdi),%rax ; pushq ; popq ; cmpq ; je ; hlt = 7
	if tr.Len() != 7 {
		t.Fatalf("trace length = %d, want 7", tr.Len())
	}
	// Load record has a memory read at t.
	ld := tr.Records[1]
	if len(ld.MemReads) != 1 || ld.MemReads[0].Addr != isa.DataBase {
		t.Errorf("load memreads = %v", ld.MemReads)
	}
	// Push writes below the stack top.
	ps := tr.Records[2]
	if len(ps.MemWrites) != 1 || ps.MemWrites[0].Addr != isa.StackTop-8 {
		t.Errorf("push memwrites = %v", ps.MemWrites)
	}
	// Pop reads the same slot.
	pp := tr.Records[3]
	if len(pp.MemReads) != 1 || pp.MemReads[0].Addr != isa.StackTop-8 {
		t.Errorf("pop memreads = %v", pp.MemReads)
	}
	// je taken.
	if !tr.Records[5].Taken {
		t.Error("je should be taken")
	}
	stats := tr.ComputeStats()
	if stats.Instructions != 7 || stats.Loads != 2 || stats.Stores != 1 || stats.Branches != 1 || stats.Taken != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestTraceCallLevel(t *testing.T) {
	p, err := asm.Assemble(`
_start: call f
        hlt
f:      call g
        ret
g:      ret
`)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := RunTraced(p)
	if err != nil {
		t.Fatal(err)
	}
	// call f (0), call g (1), ret (2), ret (1), hlt (0)
	wantLevels := []int32{0, 1, 2, 1, 0}
	if tr.Len() != len(wantLevels) {
		t.Fatalf("trace length = %d, want %d", tr.Len(), len(wantLevels))
	}
	for i, w := range wantLevels {
		if tr.Records[i].CallLevel != w {
			t.Errorf("record %d level = %d, want %d", i, tr.Records[i].CallLevel, w)
		}
	}
}

// TestMemoryQuick: paged memory behaves like a flat map for word accesses,
// including page-crossing unaligned addresses.
func TestMemoryQuick(t *testing.T) {
	f := func(addrs []uint64, vals []uint64) bool {
		m := NewMemory()
		ref := make(map[uint64]byte)
		n := len(addrs)
		if len(vals) < n {
			n = len(vals)
		}
		for i := 0; i < n; i++ {
			a := addrs[i] % (1 << 20)
			m.WriteU64(a, vals[i])
			for j := uint64(0); j < 8; j++ {
				ref[a+j] = byte(vals[i] >> (8 * j))
			}
		}
		for i := 0; i < n; i++ {
			a := addrs[i] % (1 << 20)
			var want uint64
			for j := uint64(0); j < 8; j++ {
				want |= uint64(ref[a+j]) << (8 * j)
			}
			if m.ReadU64(a) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTraceEncodeDecode round-trips a real trace through the binary format.
func TestTraceEncodeDecode(t *testing.T) {
	p, err := progs.BuildSumCall(progs.Vector(9))
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := RunTraced(p)
	if err != nil {
		t.Fatal(err)
	}
	enc := tr.Encode()
	back, err := trace.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("decoded length %d, want %d", back.Len(), tr.Len())
	}
	for i := range tr.Records {
		a, b := &tr.Records[i], &back.Records[i]
		if a.IP != b.IP || a.Op != b.Op || a.Taken != b.Taken || a.CallLevel != b.CallLevel {
			t.Fatalf("record %d header mismatch: %+v vs %+v", i, a, b)
		}
		if len(a.RegReads) != len(b.RegReads) || len(a.RegWrites) != len(b.RegWrites) ||
			len(a.MemReads) != len(b.MemReads) || len(a.MemWrites) != len(b.MemWrites) {
			t.Fatalf("record %d set sizes mismatch", i)
		}
		for j := range a.RegReads {
			if a.RegReads[j] != b.RegReads[j] {
				t.Fatalf("record %d regread %d mismatch", i, j)
			}
		}
		for j := range a.MemReads {
			if a.MemReads[j] != b.MemReads[j] {
				t.Fatalf("record %d memread %d mismatch", i, j)
			}
		}
	}
}
