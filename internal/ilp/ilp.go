// Package ilp implements the trace-level instruction-level-parallelism limit
// analyses used by the paper's Section 3 (Fig. 7) and by the related-work
// models it cites (Tjaden–Flynn windows, Wall's "good"/"perfect" machines).
//
// A dependence Model selects which dynamic dependences constrain execution.
// Given a trace, Analyze schedules every instruction at the cycle after its
// last constraining producer (unit latency, unlimited functional units unless
// a window/issue limit is configured) and reports ILP = instructions/cycles.
//
// The two models the paper plots in Fig. 7:
//
//   - Sequential(): "all the dependencies excluding the register false ones
//     (WAR and WAW), assuming an unlimited register renaming capacity, and
//     excluding the control flow ones, assuming perfect branch prediction"
//     — i.e. register RAW + all memory dependences (true and false) +
//     stack-pointer dependences.
//   - Parallel(): "the trace is available when the run starts (no fetch
//     delay) and in the same time all the destinations (including memory)
//     are renamed. The stack pointer dependencies are not considered."
//     — i.e. register RAW + memory RAW only, no rsp dependences.
package ilp

import (
	"fmt"
	"math/bits"

	"repro/internal/isa"
	"repro/internal/trace"
)

// Model selects the dependences and resources of an ILP limit study.
type Model struct {
	Name string

	// RenameRegisters drops register WAR/WAW dependences (infinite renaming).
	RenameRegisters bool
	// RenameMemory drops memory WAR/WAW dependences (the paper's run-time
	// single-assignment form).
	RenameMemory bool
	// IgnoreStackPointer drops every dependence carried through rsp
	// (the paper's parallel model; see also Postiff et al. and
	// Goossens–Parello 2013 on stack-induced parasitic dependences).
	IgnoreStackPointer bool
	// PerfectBranchPrediction drops control dependences entirely. When
	// false, every instruction additionally depends on the closest
	// preceding conditional branch (control is resolved before younger
	// instructions execute).
	PerfectBranchPrediction bool

	// WindowSize, when non-zero, bounds the in-flight instructions: an
	// instruction may only issue when fewer than WindowSize older
	// instructions are incomplete (ROB-style in-order window advance).
	WindowSize int
	// IssueWidth, when non-zero, bounds instructions issued per cycle.
	IssueWidth int
}

// Sequential returns the paper's sequential-run model (Fig. 7 "seq11" bar):
// the ultimate performance of an out-of-order speculative processor.
func Sequential() Model {
	return Model{
		Name:                    "sequential",
		RenameRegisters:         true,
		RenameMemory:            false,
		IgnoreStackPointer:      false,
		PerfectBranchPrediction: true,
	}
}

// Parallel returns the paper's parallel-run model (Fig. 7 numbered bars):
// the ultimate performance of the proposed distributed execution model.
func Parallel() Model {
	return Model{
		Name:                    "parallel",
		RenameRegisters:         true,
		RenameMemory:            true,
		IgnoreStackPointer:      true,
		PerfectBranchPrediction: true,
	}
}

// TjadenFlynn returns the 1970 Tjaden–Flynn model: a 10-instruction window
// with no register renaming and unresolved control flow.
func TjadenFlynn() Model {
	return Model{
		Name:       "tjaden-flynn-10",
		WindowSize: 10,
	}
}

// WallGood approximates Wall's 1991 "good" model: a 2K-instruction window,
// 64-wide issue, register renaming and (here) perfect branch prediction and
// perfect alias detection.
func WallGood() Model {
	return Model{
		Name:                    "wall-good",
		RenameRegisters:         true,
		RenameMemory:            false,
		PerfectBranchPrediction: true,
		WindowSize:              2048,
		IssueWidth:              64,
	}
}

// WallPerfect approximates Wall's "perfect" model: infinite window and
// issue, infinite renaming, perfect prediction (memory false dependences
// still honoured, as in the original study's perfect-alias configuration).
func WallPerfect() Model {
	return Model{
		Name:                    "wall-perfect",
		RenameRegisters:         true,
		RenameMemory:            false,
		PerfectBranchPrediction: true,
	}
}

// DistanceBuckets is the number of log2 buckets in the dependence distance
// histogram (bucket k counts critical dependences of distance [2^k, 2^(k+1))).
const DistanceBuckets = 32

// Result reports one analysis.
type Result struct {
	Model        Model
	Instructions int
	Cycles       int64
	ILP          float64
	// MaxParallelism is the largest number of instructions scheduled in
	// any single cycle.
	MaxParallelism int64
	// DistanceHist[k] counts instructions whose *critical* (latest)
	// producer is 2^k..2^(k+1)-1 dynamic instructions away. Instructions
	// with no producer are not counted.
	DistanceHist [DistanceBuckets]int64
}

// String formats the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("%s: %d instructions, %d cycles, ILP %.1f",
		r.Model.Name, r.Instructions, r.Cycles, r.ILP)
}

// MeanCriticalDistance returns the average distance (in dynamic
// instructions) of each instruction's critical producer.
func (r Result) MeanCriticalDistance() float64 {
	var n, sum float64
	for k, c := range r.DistanceHist {
		// Bucket midpoint approximation.
		mid := float64(uint64(1)<<uint(k)) * 1.5
		if k == 0 {
			mid = 1
		}
		n += float64(c)
		sum += float64(c) * mid
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// Analyze schedules the trace under the model and returns the result.
func Analyze(t *trace.Trace, m Model) Result {
	if m.WindowSize > 0 || m.IssueWidth > 0 {
		return analyzeWindowed(t, m)
	}
	return analyzeUnbounded(t, m)
}

// depState tracks last writers and readers per location.
type depState struct {
	regWrite   [isa.NumRegs]int64 // cycle the last write's value is ready
	regWriteIx [isa.NumRegs]int64 // trace index of last writer, -1 if none
	regRead    [isa.NumRegs]int64 // max cycle of reads since last write
	memWrite   map[uint64]int64
	memWriteIx map[uint64]int64
	memRead    map[uint64]int64
}

func newDepState() *depState {
	s := &depState{
		memWrite:   make(map[uint64]int64),
		memWriteIx: make(map[uint64]int64),
		memRead:    make(map[uint64]int64),
	}
	for i := range s.regWriteIx {
		s.regWriteIx[i] = -1
	}
	return s
}

// analyzeUnbounded is the infinite-window dataflow limit: each instruction
// executes at the cycle after its last constraining producer.
func analyzeUnbounded(t *trace.Trace, m Model) Result {
	res := Result{Model: m, Instructions: t.Len()}
	if t.Len() == 0 {
		return res
	}
	s := newDepState()
	var lastBranchCycle int64 // completion cycle of the last control instr
	var maxCycle int64
	counts := make(map[int64]int64) // cycle -> instructions scheduled

	for i := range t.Records {
		r := &t.Records[i]
		idx := int64(i)
		ready := int64(0) // executes at ready+1
		criticalProducer := int64(-1)

		consider := func(cycle, producerIdx int64) {
			if cycle > ready {
				ready = cycle
				criticalProducer = producerIdx
			}
		}

		for _, reg := range r.RegReads {
			if m.IgnoreStackPointer && reg == isa.RSP {
				continue
			}
			if ix := s.regWriteIx[reg]; ix >= 0 {
				consider(s.regWrite[reg], ix)
			}
		}
		for _, mr := range r.MemReads {
			if w, ok := s.memWrite[mr.Addr]; ok {
				consider(w, s.memWriteIx[mr.Addr])
			}
		}
		if !m.RenameRegisters {
			for _, reg := range r.RegWrites {
				if m.IgnoreStackPointer && reg == isa.RSP {
					continue
				}
				if ix := s.regWriteIx[reg]; ix >= 0 {
					consider(s.regWrite[reg], ix) // WAW
				}
				if rr := s.regRead[reg]; rr > 0 {
					consider(rr, -1) // WAR (producer index untracked)
				}
			}
		}
		if !m.RenameMemory {
			for _, mw := range r.MemWrites {
				if w, ok := s.memWrite[mw.Addr]; ok {
					consider(w, s.memWriteIx[mw.Addr]) // WAW
				}
				if rr, ok := s.memRead[mw.Addr]; ok {
					consider(rr, -1) // WAR
				}
			}
		}
		if !m.PerfectBranchPrediction && lastBranchCycle > 0 {
			consider(lastBranchCycle, -1)
		}

		cycle := ready + 1
		counts[cycle]++
		if cycle > maxCycle {
			maxCycle = cycle
		}
		if criticalProducer >= 0 {
			d := idx - criticalProducer
			b := bits.Len64(uint64(d)) - 1
			if b < 0 {
				b = 0
			}
			if b >= DistanceBuckets {
				b = DistanceBuckets - 1
			}
			res.DistanceHist[b]++
		}

		// Update producer state.
		for _, reg := range r.RegReads {
			if cycle > s.regRead[reg] {
				s.regRead[reg] = cycle
			}
		}
		for _, reg := range r.RegWrites {
			s.regWrite[reg] = cycle
			s.regWriteIx[reg] = idx
			s.regRead[reg] = 0
		}
		for _, mr := range r.MemReads {
			if cycle > s.memRead[mr.Addr] {
				s.memRead[mr.Addr] = cycle
			}
		}
		for _, mw := range r.MemWrites {
			s.memWrite[mw.Addr] = cycle
			s.memWriteIx[mw.Addr] = idx
			delete(s.memRead, mw.Addr)
		}
		if r.IsControl() {
			lastBranchCycle = cycle
		}
	}
	res.Cycles = maxCycle
	res.ILP = float64(res.Instructions) / float64(maxCycle)
	for _, c := range counts {
		if c > res.MaxParallelism {
			res.MaxParallelism = c
		}
	}
	return res
}

// analyzeWindowed simulates a finite window and/or issue width. Instructions
// enter a ROB-like window in trace order; each cycle, up to IssueWidth ready
// instructions execute (oldest first); the window head advances over
// completed instructions.
func analyzeWindowed(t *trace.Trace, m Model) Result {
	res := Result{Model: m, Instructions: t.Len()}
	n := t.Len()
	if n == 0 {
		return res
	}
	w := m.WindowSize
	if w <= 0 {
		w = n
	}
	iw := m.IssueWidth
	if iw <= 0 {
		iw = n
	}

	// Pre-compute each instruction's ready constraint as a set of producer
	// indices (we keep only the per-location last producers, as above, but
	// store indices so the scheduler can test completion).
	deps := make([][]int32, n)
	s := newDepState() // reuse maps for indices; cycles unused here
	var lastBranch int64 = -1
	regReadIx := [isa.NumRegs][]int32{}
	memReadIx := make(map[uint64][]int32)

	for i := range t.Records {
		r := &t.Records[i]
		var d []int32
		add := func(ix int64) {
			if ix >= 0 {
				d = append(d, int32(ix))
			}
		}
		for _, reg := range r.RegReads {
			if m.IgnoreStackPointer && reg == isa.RSP {
				continue
			}
			add(s.regWriteIx[reg])
		}
		for _, mr := range r.MemReads {
			if ix, ok := s.memWriteIx[mr.Addr]; ok {
				add(ix)
			}
		}
		if !m.RenameRegisters {
			for _, reg := range r.RegWrites {
				if m.IgnoreStackPointer && reg == isa.RSP {
					continue
				}
				add(s.regWriteIx[reg])
				d = append(d, regReadIx[reg]...)
			}
		}
		if !m.RenameMemory {
			for _, mw := range r.MemWrites {
				if ix, ok := s.memWriteIx[mw.Addr]; ok {
					add(ix)
				}
				d = append(d, memReadIx[mw.Addr]...)
			}
		}
		if !m.PerfectBranchPrediction {
			add(lastBranch)
		}
		deps[i] = d

		for _, reg := range r.RegReads {
			regReadIx[reg] = append(regReadIx[reg], int32(i))
		}
		for _, reg := range r.RegWrites {
			s.regWriteIx[reg] = int64(i)
			regReadIx[reg] = regReadIx[reg][:0]
		}
		for _, mr := range r.MemReads {
			memReadIx[mr.Addr] = append(memReadIx[mr.Addr], int32(i))
		}
		for _, mw := range r.MemWrites {
			s.memWriteIx[mw.Addr] = int64(i)
			delete(memReadIx, mw.Addr)
		}
		if r.IsControl() {
			lastBranch = int64(i)
		}
	}

	// Cycle-stepped schedule.
	done := make([]int64, n) // completion cycle, 0 = not done
	head := 0                // oldest instruction not yet completed-and-retired
	tail := 0                // first instruction not yet in window
	var cycle int64
	var maxPar int64
	remaining := n
	for remaining > 0 {
		cycle++
		// Admit instructions into the window.
		for tail < n && tail-head < w {
			tail++
		}
		issued := int64(0)
		for i := head; i < tail && issued < int64(iw); i++ {
			if done[i] != 0 {
				continue
			}
			ok := true
			for _, p := range deps[i] {
				if done[p] == 0 || done[p] >= cycle {
					ok = false
					break
				}
			}
			if ok {
				done[i] = cycle
				issued++
				remaining--
			}
		}
		if issued > maxPar {
			maxPar = issued
		}
		// Advance the head over completed instructions.
		for head < n && done[head] != 0 && done[head] <= cycle {
			head++
		}
		if issued == 0 && head == n {
			break
		}
	}
	res.Cycles = cycle
	res.ILP = float64(n) / float64(cycle)
	res.MaxParallelism = maxPar
	return res
}
