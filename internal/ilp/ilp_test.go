package ilp

import (
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/progs"
	"repro/internal/trace"
)

func traceOf(t *testing.T, src string) *trace.Trace {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := emu.RunTraced(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSerialChainILPIsOne(t *testing.T) {
	tr := traceOf(t, `
main:   movq $0, %rax
        addq $1, %rax
        addq $1, %rax
        addq $1, %rax
        addq $1, %rax
        addq $1, %rax
        addq $1, %rax
        addq $1, %rax
        hlt
`)
	r := Analyze(tr, Parallel())
	// movq;addq*7 form a chain of 8; hlt is independent.
	if r.Cycles != 8 {
		t.Errorf("cycles = %d, want 8", r.Cycles)
	}
	if r.ILP > 1.2 {
		t.Errorf("ILP = %.2f, want ~1", r.ILP)
	}
}

func TestIndependentInstructionsFullyParallel(t *testing.T) {
	tr := traceOf(t, `
main:   movq $1, %rax
        movq $2, %rbx
        movq $3, %rcx
        movq $4, %rdx
        movq $5, %rsi
        movq $6, %rdi
        movq $7, %r8
        movq $8, %r9
        hlt
`)
	r := Analyze(tr, Parallel())
	if r.Cycles != 1 {
		t.Errorf("cycles = %d, want 1 (all independent)", r.Cycles)
	}
	if r.MaxParallelism != 9 {
		t.Errorf("max parallelism = %d, want 9", r.MaxParallelism)
	}
}

func TestRegisterFalseDependences(t *testing.T) {
	// Four writes to rax with no RAW chain: with renaming they all issue in
	// cycle 1; without renaming WAW serialises them.
	tr := traceOf(t, `
main:   movq $1, %rax
        movq $2, %rax
        movq $3, %rax
        movq $4, %rax
        hlt
`)
	withRen := Analyze(tr, Parallel())
	noRen := Parallel()
	noRen.RenameRegisters = false
	without := Analyze(tr, noRen)
	if withRen.Cycles != 1 {
		t.Errorf("renamed cycles = %d, want 1", withRen.Cycles)
	}
	if without.Cycles != 4 {
		t.Errorf("unrenamed cycles = %d, want 4 (WAW chain)", without.Cycles)
	}
}

func TestMemoryFalseDependences(t *testing.T) {
	// Two independent store/load pairs reusing one memory word. The
	// sequential model (no memory renaming) serialises pair 2 after pair 1;
	// the parallel model overlaps them.
	src := `
main:   movq $1, %rax
        movq %rax, buf
        movq buf, %rbx
        movq $2, %rcx
        movq %rcx, buf
        movq buf, %rdx
        hlt
.data
buf:    .quad 0
`
	tr := traceOf(t, src)
	seq := Analyze(tr, Sequential())
	par := Analyze(tr, Parallel())
	if par.Cycles >= seq.Cycles {
		t.Errorf("parallel cycles %d not < sequential cycles %d", par.Cycles, seq.Cycles)
	}
	// Parallel: both chains are mov->store->load = 3 cycles.
	if par.Cycles != 3 {
		t.Errorf("parallel cycles = %d, want 3", par.Cycles)
	}
	// Sequential: second store must wait for first load (WAR) -> 5 deep.
	if seq.Cycles != 5 {
		t.Errorf("sequential cycles = %d, want 5", seq.Cycles)
	}
}

func TestStackPointerElision(t *testing.T) {
	// Pushes of independent values: the rsp chain serialises them unless
	// the model ignores stack-pointer dependences (and renames memory).
	tr := traceOf(t, `
main:   movq $1, %rax
        movq $2, %rbx
        pushq %rax
        pushq %rbx
        pushq %rax
        pushq %rbx
        hlt
`)
	withSP := Parallel()
	withSP.IgnoreStackPointer = false
	sp := Analyze(tr, withSP)
	nosp := Analyze(tr, Parallel())
	if nosp.Cycles >= sp.Cycles {
		t.Errorf("rsp-elided cycles %d not < rsp-honoured cycles %d", nosp.Cycles, sp.Cycles)
	}
	// With rsp elision all four pushes only depend on their data: 2 cycles.
	if nosp.Cycles != 2 {
		t.Errorf("rsp-elided cycles = %d, want 2", nosp.Cycles)
	}
}

func TestControlDependences(t *testing.T) {
	src := `
main:   movq $0, %rax
        movq $4, %rcx
loop:   addq $1, %rax
        decq %rcx
        jne loop
        hlt
`
	tr := traceOf(t, src)
	perfect := Analyze(tr, Parallel())
	imperfect := Parallel()
	imperfect.PerfectBranchPrediction = false
	ctl := Analyze(tr, imperfect)
	if ctl.Cycles <= perfect.Cycles {
		t.Errorf("control-constrained cycles %d not > perfect cycles %d", ctl.Cycles, perfect.Cycles)
	}
}

func TestWindowLimit(t *testing.T) {
	// 32 independent movs. With a 10-instruction window the schedule needs
	// ceil(32/10) ≈ 4 cycles; unbounded needs 1.
	var src string
	src = "main:\n"
	for i := 0; i < 32; i++ {
		src += "        movq $1, %rax\n" // independent under renaming
	}
	src += "        hlt\n"
	tr := traceOf(t, src)
	m := Model{Name: "w10", RenameRegisters: true, RenameMemory: true, PerfectBranchPrediction: true, WindowSize: 10}
	r := Analyze(tr, m)
	if r.Cycles < 4 {
		t.Errorf("windowed cycles = %d, want >= 4", r.Cycles)
	}
	un := Analyze(tr, Parallel())
	if un.Cycles != 1 {
		t.Errorf("unbounded cycles = %d, want 1", un.Cycles)
	}
}

func TestIssueWidthLimit(t *testing.T) {
	var src string
	src = "main:\n"
	for i := 0; i < 16; i++ {
		src += "        movq $1, %rax\n"
	}
	src += "        hlt\n"
	tr := traceOf(t, src)
	m := Model{Name: "iw4", RenameRegisters: true, RenameMemory: true, PerfectBranchPrediction: true, IssueWidth: 4}
	r := Analyze(tr, m)
	// 17 instructions at 4 per cycle = 5 cycles.
	if r.Cycles != 5 {
		t.Errorf("cycles = %d, want 5", r.Cycles)
	}
	if r.MaxParallelism != 4 {
		t.Errorf("max parallelism = %d, want 4", r.MaxParallelism)
	}
}

func TestWindowedMatchesUnboundedWhenHuge(t *testing.T) {
	// A window larger than the trace must reproduce the unbounded result.
	p, err := progs.BuildSumCall(progs.Vector(20))
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := emu.RunTraced(p)
	if err != nil {
		t.Fatal(err)
	}
	un := Analyze(tr, Sequential())
	m := Sequential()
	m.WindowSize = tr.Len() + 1
	win := Analyze(tr, m)
	if un.Cycles != win.Cycles {
		t.Errorf("unbounded %d cycles != windowed %d cycles", un.Cycles, win.Cycles)
	}
}

// TestSumParallelBeatsSequential reproduces the Fig. 7 shape on the paper's
// own running example: the parallel model's ILP exceeds the sequential
// model's, and grows with the dataset.
func TestSumParallelBeatsSequential(t *testing.T) {
	var prevParILP float64
	for _, n := range []int{20, 80, 320, 1280} {
		p, err := progs.BuildSumCall(progs.Vector(n))
		if err != nil {
			t.Fatal(err)
		}
		tr, _, err := emu.RunTraced(p)
		if err != nil {
			t.Fatal(err)
		}
		seq := Analyze(tr, Sequential())
		par := Analyze(tr, Parallel())
		if par.ILP <= seq.ILP {
			t.Errorf("n=%d: parallel ILP %.1f <= sequential ILP %.1f", n, par.ILP, seq.ILP)
		}
		if par.ILP <= prevParILP {
			t.Errorf("n=%d: parallel ILP %.1f did not grow (prev %.1f)", n, par.ILP, prevParILP)
		}
		prevParILP = par.ILP
	}
}

// TestSequentialILPIsLow: the sequential model on the call-version sum stays
// in the single digits regardless of dataset (the paper reports 3.2–5.6 for
// PBBS), because the stack serialises the recursion.
func TestSequentialILPIsLow(t *testing.T) {
	for _, n := range []int{40, 160, 640} {
		p, err := progs.BuildSumCall(progs.Vector(n))
		if err != nil {
			t.Fatal(err)
		}
		tr, _, err := emu.RunTraced(p)
		if err != nil {
			t.Fatal(err)
		}
		seq := Analyze(tr, Sequential())
		if seq.ILP > 10 {
			t.Errorf("n=%d: sequential ILP %.1f, want < 10", n, seq.ILP)
		}
	}
}

// TestDistantILP reproduces the Austin–Sohi observation the paper cites:
// under the parallel model a sizeable share of critical dependences are
// distant (> 64 dynamic instructions) for a recursive reduction.
func TestDistantILP(t *testing.T) {
	p, err := progs.BuildSumCall(progs.Vector(640))
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := emu.RunTraced(p)
	if err != nil {
		t.Fatal(err)
	}
	par := Analyze(tr, Parallel())
	var near, far int64
	for k, c := range par.DistanceHist {
		if k <= 6 {
			near += c
		} else {
			far += c
		}
	}
	if far == 0 {
		t.Error("no distant dependences found; expected distant ILP")
	}
	if par.MeanCriticalDistance() <= 1 {
		t.Errorf("mean critical distance = %.1f, want > 1", par.MeanCriticalDistance())
	}
	_ = near
}

func TestEmptyTrace(t *testing.T) {
	r := Analyze(&trace.Trace{}, Parallel())
	if r.Cycles != 0 || r.Instructions != 0 {
		t.Errorf("empty trace result = %+v", r)
	}
	r = Analyze(&trace.Trace{}, TjadenFlynn())
	if r.Cycles != 0 {
		t.Errorf("empty windowed trace result = %+v", r)
	}
}

// TestModelOrderingQuick: for random sum sizes, the four standard models are
// ordered: TjadenFlynn <= WallGood <= Sequential(=WallPerfect-ish) <= Parallel.
func TestModelOrderingQuick(t *testing.T) {
	f := func(seed uint8) bool {
		n := 5 + int(seed)%60
		p, err := progs.BuildSumCall(progs.Vector(n))
		if err != nil {
			return false
		}
		tr, _, err := emu.RunTraced(p)
		if err != nil {
			return false
		}
		tf := Analyze(tr, TjadenFlynn())
		wg := Analyze(tr, WallGood())
		seq := Analyze(tr, Sequential())
		par := Analyze(tr, Parallel())
		const eps = 1e-9
		return tf.ILP <= wg.ILP+eps && wg.ILP <= seq.ILP+eps && seq.ILP <= par.ILP+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestRSPDependenceIdentification: rsp reads/writes are the only thing
// distinguishing Parallel from Parallel-with-SP on a pure push/pop program.
func TestRSPDependenceIdentification(t *testing.T) {
	tr := traceOf(t, `
main:   pushq %rax
        popq %rbx
        hlt
`)
	// Sanity: the records do reference rsp.
	foundRSP := false
	for _, r := range tr.Records {
		for _, reg := range r.RegReads {
			if reg == isa.RSP {
				foundRSP = true
			}
		}
	}
	if !foundRSP {
		t.Fatal("trace does not reference rsp")
	}
}

// TestWindowOneSerializes: a 1-instruction window forces a fully serial
// schedule regardless of dependences.
func TestWindowOneSerializes(t *testing.T) {
	var src string
	src = "main:\n"
	for i := 0; i < 12; i++ {
		src += "        movq $1, %rax\n" // independent under renaming
	}
	src += "        hlt\n"
	tr := traceOf(t, src)
	m := Model{Name: "w1", RenameRegisters: true, RenameMemory: true, PerfectBranchPrediction: true, WindowSize: 1}
	r := Analyze(tr, m)
	if r.Cycles != int64(tr.Len()) {
		t.Errorf("cycles = %d, want %d (one per instruction)", r.Cycles, tr.Len())
	}
	if r.MaxParallelism != 1 {
		t.Errorf("max parallelism = %d, want 1", r.MaxParallelism)
	}
}

// TestWindowAndIssueCombine: with both limits configured the schedule obeys
// the tighter of the two each cycle.
func TestWindowAndIssueCombine(t *testing.T) {
	var src string
	src = "main:\n"
	for i := 0; i < 24; i++ {
		src += "        movq $1, %rax\n"
	}
	src += "        hlt\n"
	tr := traceOf(t, src) // 25 instructions, all independent
	m := Model{Name: "w8iw2", RenameRegisters: true, RenameMemory: true, PerfectBranchPrediction: true, WindowSize: 8, IssueWidth: 2}
	r := Analyze(tr, m)
	// Issue width 2 dominates the 8-wide window: ceil(25/2) = 13 cycles.
	if r.Cycles != 13 {
		t.Errorf("cycles = %d, want 13", r.Cycles)
	}
	if r.MaxParallelism > 2 {
		t.Errorf("max parallelism = %d, exceeds the issue width", r.MaxParallelism)
	}
}

// TestWindowStallsOnChainHead: an in-order window cannot slide past an
// incomplete head, so a dependence chain at the front gates independent work
// behind it.
func TestWindowStallsOnChainHead(t *testing.T) {
	src := `
main:   movq $0, %rax
        addq $1, %rax
        addq $1, %rax
        addq $1, %rax
        movq $1, %rbx
        movq $2, %rcx
        movq $3, %rdx
        hlt
`
	tr := traceOf(t, src)
	narrow := Model{Name: "w2", RenameRegisters: true, RenameMemory: true, PerfectBranchPrediction: true, WindowSize: 2}
	wide := Model{Name: "w64", RenameRegisters: true, RenameMemory: true, PerfectBranchPrediction: true, WindowSize: 64}
	rn, rw := Analyze(tr, narrow), Analyze(tr, wide)
	if rn.Cycles <= rw.Cycles {
		t.Errorf("2-wide window (%d cycles) not slower than 64-wide (%d cycles)", rn.Cycles, rw.Cycles)
	}
	// The chain is 4 long; the wide window hides everything else behind it.
	if rw.Cycles != 4 {
		t.Errorf("wide-window cycles = %d, want 4 (the chain length)", rw.Cycles)
	}
}

// TestTjadenFlynnBelowWall: the related-work model hierarchy on a real
// workload: the 10-instruction Tjaden–Flynn window cannot beat Wall's good
// machine, which cannot beat Wall's perfect machine.
func TestTjadenFlynnBelowWall(t *testing.T) {
	p, err := progs.BuildSumCall(progs.Vector(40))
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := emu.RunTraced(p)
	if err != nil {
		t.Fatal(err)
	}
	tf := Analyze(tr, TjadenFlynn())
	good := Analyze(tr, WallGood())
	perfect := Analyze(tr, WallPerfect())
	if tf.ILP > good.ILP {
		t.Errorf("Tjaden–Flynn ILP %.2f exceeds Wall-good %.2f", tf.ILP, good.ILP)
	}
	if good.ILP > perfect.ILP {
		t.Errorf("Wall-good ILP %.2f exceeds Wall-perfect %.2f", good.ILP, perfect.ILP)
	}
	if good.MaxParallelism > 64 {
		t.Errorf("Wall-good issued %d in one cycle, exceeds its 64-wide issue", good.MaxParallelism)
	}
}

// TestIssueWidthMonotone: widening issue never slows the schedule down.
func TestIssueWidthMonotone(t *testing.T) {
	p, err := progs.BuildSumCall(progs.Vector(20))
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := emu.RunTraced(p)
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(1 << 62)
	for _, iw := range []int{1, 2, 4, 8, 16} {
		m := Parallel()
		m.IssueWidth = iw
		r := Analyze(tr, m)
		if r.Cycles > prev {
			t.Errorf("issue width %d: %d cycles, slower than narrower issue (%d)", iw, r.Cycles, prev)
		}
		if int64(r.MaxParallelism) > int64(iw) {
			t.Errorf("issue width %d: max parallelism %d exceeds it", iw, r.MaxParallelism)
		}
		prev = r.Cycles
	}
}
