package analytic_test

// The closed forms of Section 5 are checked against the cycle-level machine:
// these tests pin the exact small-n agreement and the scaling shape so the
// future surrogate planner (ROADMAP) has a measured oracle for the analytic
// model's domain of validity.

import (
	"testing"

	"repro/internal/analytic"
	"repro/internal/machine"
	"repro/internal/progs"
)

// measure runs the Fig. 5 fork sum for doubling step n (a 5·2ⁿ-element
// array) on the cycle-level machine with one core per section plus one for
// the driver — the ample-parallelism regime the Section 5 model idealizes.
func measure(t *testing.T, n int) *machine.Result {
	t.Helper()
	p, err := progs.BuildSumFork(progs.Vector(int(analytic.Elements(n))))
	if err != nil {
		t.Fatalf("build n=%d: %v", n, err)
	}
	r, err := machine.RunProgram(p, int(analytic.Sections(n))+1)
	if err != nil {
		t.Fatalf("run n=%d: %v", n, err)
	}
	return r
}

// TestMachineMatchesClosedFormCounts pins the exact small-n points: the
// measured dynamic instruction count and section count equal the closed
// forms plus the constant driver overhead, and the reduction checksum is
// correct.
func TestMachineMatchesClosedFormCounts(t *testing.T) {
	for n := 0; n <= 3; n++ {
		r := measure(t, n)
		// +4: the driver (movq, movq, fork, hlt) is outside the paper's count.
		if got, want := r.Instructions, analytic.Instructions(n)+4; got != want {
			t.Errorf("n=%d instructions = %d, closed form + driver = %d", n, got, want)
		}
		// +1: the driver's continuation after hlt occupies one extra section.
		if got, want := int64(len(r.Sections)), analytic.Sections(n)+1; got != want {
			t.Errorf("n=%d sections = %d, closed form + driver = %d", n, got, want)
		}
		if got, want := r.RAX, progs.VectorSum(int(analytic.Elements(n))); got != want {
			t.Errorf("n=%d checksum = %d, want %d", n, got, want)
		}
	}
}

// TestMachineFetchScalingTracksModel checks the model's central claim: fetch
// time is affine in the doubling step n while instructions grow as 2ⁿ. The
// measured per-level increment must be constant and close to the model's
// 12-cycle slope, so measured fetch IPC grows monotonically like the model's.
func TestMachineFetchScalingTracksModel(t *testing.T) {
	const maxN = 4
	var fetch [maxN + 1]int64
	var ipc [maxN + 1]float64
	for n := 0; n <= maxN; n++ {
		r := measure(t, n)
		fetch[n], ipc[n] = r.FetchDone, r.FetchIPC()
	}
	inc := fetch[1] - fetch[0]
	if slope := analytic.FetchTime(1) - analytic.FetchTime(0); inc < slope || inc > slope+4 {
		t.Errorf("fetch per-level increment = %d, want within [%d, %d] of the model slope",
			inc, slope, slope+4)
	}
	for n := 1; n <= maxN; n++ {
		if d := fetch[n] - fetch[n-1]; d != inc {
			t.Errorf("fetch increment at n=%d is %d, not constant %d (fetch times %v)",
				n, d, inc, fetch)
		}
		if ipc[n] <= ipc[n-1] {
			t.Errorf("fetch IPC not increasing at n=%d: %.2f -> %.2f", n, ipc[n-1], ipc[n])
		}
	}
	// The constant driver prologue keeps measured fetch a small fixed offset
	// above the model's 30-cycle base.
	if off := fetch[0] - analytic.FetchTime(0); off < 0 || off > 8 {
		t.Errorf("fetch base offset = %d, want within [0, 8] of the model's %d",
			off, analytic.FetchTime(0))
	}
}

// TestMachineRetireScalingTracksModel checks the retire-side shape: the
// model's RetireTime is the idealized lower bound, measured retirement is
// monotone in n, always after the last fetch, and retire IPC still grows
// with the doubling step (the paper's ~92 instructions/cycle trend).
func TestMachineRetireScalingTracksModel(t *testing.T) {
	const maxN = 4
	var retire, fetch [maxN + 1]int64
	var ipc [maxN + 1]float64
	for n := 0; n <= maxN; n++ {
		r := measure(t, n)
		retire[n], fetch[n], ipc[n] = r.RetireDone, r.FetchDone, r.RetireIPC()
	}
	for n := 0; n <= maxN; n++ {
		if retire[n] < analytic.RetireTime(n) {
			t.Errorf("n=%d retire = %d cycles, below the model lower bound %d",
				n, retire[n], analytic.RetireTime(n))
		}
		if retire[n] <= fetch[n] {
			t.Errorf("n=%d retire = %d not after last fetch %d", n, retire[n], fetch[n])
		}
		if n > 0 {
			if retire[n] <= retire[n-1] {
				t.Errorf("retire time not increasing at n=%d: %d -> %d",
					n, retire[n-1], retire[n])
			}
			if ipc[n] <= ipc[n-1] {
				t.Errorf("retire IPC not increasing at n=%d: %.2f -> %.2f",
					n, ipc[n-1], ipc[n])
			}
		}
	}
}
