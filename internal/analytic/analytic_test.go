package analytic

import (
	"math"
	"testing"
)

// TestPaperCalibrationPoints checks every number Section 5 states explicitly.
func TestPaperCalibrationPoints(t *testing.T) {
	// "i.e. 45 for sum(t,5), 104 for sum(t,10)"
	if got := Instructions(0); got != 45 {
		t.Errorf("Instructions(0) = %d, want 45", got)
	}
	if got := Instructions(1); got != 104 {
		t.Errorf("Instructions(1) = %d, want 104", got)
	}
	// "For 1280 elements, 15090 instructions"
	if got := Elements(8); got != 1280 {
		t.Errorf("Elements(8) = %d, want 1280", got)
	}
	if got := Instructions(8); got != 15090 {
		t.Errorf("Instructions(8) = %d, want 15090", got)
	}
	// "The fetch time is 30 + 12n (i.e. 30 for sum(t,5), 42 for sum(t,10))"
	if got := FetchTime(0); got != 30 {
		t.Errorf("FetchTime(0) = %d, want 30", got)
	}
	if got := FetchTime(1); got != 42 {
		t.Errorf("FetchTime(1) = %d, want 42", got)
	}
	// "...are fetched in 126 cycles, i.e. 120 instructions per cycle"
	if got := FetchTime(8); got != 126 {
		t.Errorf("FetchTime(8) = %d, want 126", got)
	}
	if got := FetchIPC(8); math.Abs(got-119.76) > 0.5 {
		t.Errorf("FetchIPC(8) = %.2f, want ~120", got)
	}
	// "The retirement time is 43 + 15n. For 1280 elements, the 15090
	// instructions are retired in 163 cycles, i.e. 92 instructions/cycle"
	if got := RetireTime(0); got != 43 {
		t.Errorf("RetireTime(0) = %d, want 43", got)
	}
	if got := RetireTime(8); got != 163 {
		t.Errorf("RetireTime(8) = %d, want 163", got)
	}
	if got := RetireIPC(8); math.Abs(got-92.58) > 0.7 {
		t.Errorf("RetireIPC(8) = %.2f, want ~92", got)
	}
	// "If the data size is doubled, the fetch time is 42 cycles (104
	// instructions fetched, i.e. 2.5 instructions per cycle)"
	if got := FetchIPC(1); math.Abs(got-104.0/42.0) > 1e-9 {
		t.Errorf("FetchIPC(1) = %.2f, want %.2f", got, 104.0/42.0)
	}
}

func TestSections(t *testing.T) {
	// sum(t,5) runs as 5 sections (Fig. 4).
	if got := Sections(0); got != 5 {
		t.Errorf("Sections(0) = %d, want 5", got)
	}
	// Doubling the data size roughly doubles the sections: each internal
	// node contributes two forks.
	if got := Sections(1); got != 11 {
		t.Errorf("Sections(1) = %d, want 11", got)
	}
	if got := Sections(2); got != 23 {
		t.Errorf("Sections(2) = %d, want 23", got)
	}
}

func TestTableMonotonicity(t *testing.T) {
	rows := Table(10)
	if len(rows) != 11 {
		t.Fatalf("table has %d rows, want 11", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		prev, cur := rows[i-1], rows[i]
		if cur.Instructions <= prev.Instructions {
			t.Errorf("row %d: instructions did not grow", i)
		}
		if cur.FetchTime-prev.FetchTime != 12 {
			t.Errorf("row %d: fetch time step = %d, want 12", i, cur.FetchTime-prev.FetchTime)
		}
		if cur.RetireTime-prev.RetireTime != 15 {
			t.Errorf("row %d: retire time step = %d, want 15", i, cur.RetireTime-prev.RetireTime)
		}
		if cur.FetchIPC <= prev.FetchIPC {
			t.Errorf("row %d: fetch IPC did not grow", i)
		}
		if cur.RetireIPC <= prev.RetireIPC {
			t.Errorf("row %d: retire IPC did not grow", i)
		}
	}
	// Fetch always completes before retirement.
	for _, r := range rows {
		if r.FetchTime >= r.RetireTime {
			t.Errorf("n=%d: fetch %d not < retire %d", r.N, r.FetchTime, r.RetireTime)
		}
	}
}

// TestInstructionFormulaRecurrence: the closed form satisfies the tree
// recurrence I(n) = 2·I(n−1) + 14 (an internal node adds 14 instructions and
// two half-size subtrees).
func TestInstructionFormulaRecurrence(t *testing.T) {
	for n := 1; n <= 20; n++ {
		if Instructions(n) != 2*Instructions(n-1)+14 {
			t.Errorf("recurrence fails at n=%d", n)
		}
	}
}
