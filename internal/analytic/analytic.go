// Package analytic implements the closed-form performance model of the
// paper's Section 5 for the sum reduction of a 5·2ⁿ-element array on the
// proposed many-core:
//
//   - Instructions(n) = 45·2ⁿ + 14·(2ⁿ − 1)
//   - FetchTime(n)    = 30 + 12·n cycles
//   - RetireTime(n)   = 43 + 15·n cycles
//
// The paper's calibration points: sum(t,5) (n=0) fetches 45 instructions in
// 30 cycles and retires in 43; sum over 1280 elements (n=8) fetches 15090
// instructions in 126 cycles (~120 instructions/cycle) and retires in 163
// (~92 instructions/cycle).
package analytic

// Instructions returns the dynamic instruction count of the fork-version sum
// over a 5·2ⁿ-element array (Section 5: "45·2ⁿ + 14·(2ⁿ−1)").
func Instructions(n int) int64 {
	p := int64(1) << uint(n)
	return 45*p + 14*(p-1)
}

// Elements returns the array size for doubling step n.
func Elements(n int) int64 { return 5 << uint(n) }

// FetchTime returns the paper's fetch completion time in cycles
// (Section 5: "30 + 12·n").
func FetchTime(n int) int64 { return 30 + 12*int64(n) }

// RetireTime returns the paper's retirement completion time in cycles
// (Section 5: "43 + 15·n"; footnote 7 derives the 15-cycle per-level cost as
// 5 cycles fetching instructions 2,3,8–10, 2 cycles of section creation,
// 5 cycles fetching instructions 11–16 and 3 cycles retiring 17–19).
func RetireTime(n int) int64 { return 43 + 15*int64(n) }

// FetchIPC returns instructions fetched per cycle at doubling step n.
func FetchIPC(n int) float64 {
	return float64(Instructions(n)) / float64(FetchTime(n))
}

// RetireIPC returns instructions retired per cycle at doubling step n.
func RetireIPC(n int) float64 {
	return float64(Instructions(n)) / float64(RetireTime(n))
}

// Sections returns the number of sections the fork run creates: the initial
// section plus one per fork. Each internal node of the call tree executes
// two forks; for 5·2ⁿ elements the internal node count satisfies
// I(n) = 2·I(n−1)+1 with I(0)=2 (the 5-element tree of Fig. 4), so
// I(n) = 3·2ⁿ−1 and Sections(n) = 2·I(n)+1 = 6·2ⁿ−1. Fig. 4's five sections
// are the n=0 case.
func Sections(n int) int64 {
	return 6*(int64(1)<<uint(n)) - 1
}

// Row is one line of the Section 5 scaling table.
type Row struct {
	N            int     // doubling step
	Elements     int64   // array size 5·2ⁿ
	Instructions int64   // dynamic instructions
	FetchTime    int64   // cycles to fetch everything
	RetireTime   int64   // cycles to retire everything
	FetchIPC     float64 // fetch throughput
	RetireIPC    float64 // retire throughput
	Sections     int64   // sections created
}

// Table returns the scaling table for n = 0..maxN.
func Table(maxN int) []Row {
	rows := make([]Row, 0, maxN+1)
	for n := 0; n <= maxN; n++ {
		rows = append(rows, Row{
			N:            n,
			Elements:     Elements(n),
			Instructions: Instructions(n),
			FetchTime:    FetchTime(n),
			RetireTime:   RetireTime(n),
			FetchIPC:     FetchIPC(n),
			RetireIPC:    RetireIPC(n),
			Sections:     Sections(n),
		})
	}
	return rows
}
