package fabric

// The full production stack in one process: internal/server with the
// coordinator injected as its sweep Runner, the fabric protocol mounted
// beside the API exactly as `repro serve` mounts it, and a worker goroutine
// doing all the measuring. A sweep submitted over the HTTP API must stream
// the same bytes as a single-process `repro sweep` over the merged cache,
// with the server's own engine never simulating a point.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/sweep"
)

func TestServerShardsSweepsAcrossFabric(t *testing.T) {
	coordDir := t.TempDir()
	coordEng := &sweep.Engine{Cache: newCache(t, coordDir)}
	c := &Coordinator{
		Eng: coordEng, Cache: coordEng.Cache,
		LeaseTTL: 5 * time.Second, Batch: 2, Log: quietLog(),
	}
	srv := server.New(server.Config{
		Engine: coordEng, Runner: c, Log: quietLog(), MaxConcurrentJobs: 2,
	})
	// The same mux layout as cmd/repro serve: fabric beside the API.
	mux := http.NewServeMux()
	mux.Handle("/fabric/v1/", c.Handler())
	mux.Handle("/", srv.Handler())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	w := startWorker(t, ts.URL, "w1", &sweep.Engine{Cache: newCache(t, t.TempDir())}, nil)
	waitWorkers(t, c, 1)

	// Submit the quick grid over the public API.
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"kernels":[2,10],"sizes":[8,12],"cores":[1,2],"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("POST /v1/sweeps = %d, status %+v", resp.StatusCode, st)
	}

	// Poll to completion, then stream the JSONL results.
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if st.State == server.StateDone {
			break
		}
		if st.State == server.StateFailed {
			t.Fatalf("sweep failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep still %s after 30s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	r, err := http.Get(ts.URL + st.Results)
	if err != nil {
		t.Fatal(err)
	}
	gotJSONL, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	wantJSONL, oracle := sequentialOracle(t, coordDir)
	if !bytes.Equal(gotJSONL, wantJSONL) {
		t.Errorf("API-streamed JSONL differs from single-process sweep:\n got: %s\nwant: %s", gotJSONL, wantJSONL)
	}
	if st := oracle.Stats(); st.Simulated != 0 || st.Hits != gridSize {
		t.Errorf("oracle stats %+v, want the whole grid from the merged cache", st)
	}
	if st := coordEng.Stats(); st.Points != 0 {
		t.Errorf("server engine measured %d points, want 0 (the fleet measures)", st.Points)
	}
	if sim := w.eng.Stats().Simulated; sim != gridSize {
		t.Errorf("worker simulated %d points, want %d", sim, gridSize)
	}
	if cs := c.Stats(); cs.Accepted != gridSize || cs.LocalRuns != 0 {
		t.Errorf("coordinator stats %+v, want %d accepted and no local runs", cs, gridSize)
	}
}
