package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/sweep"
)

// Worker is the client side of the fabric: it registers with a coordinator,
// leases point batches, measures them on its local engine and reports the
// records back. Create one per process and call Run.
type Worker struct {
	// Coordinator is the coordinator's base URL (scheme://host:port).
	Coordinator string
	// Eng measures leased points; its cache/pool/singleflight make repeated
	// and concurrent points cheap exactly as in a local sweep. Required.
	Eng *sweep.Engine
	// Name labels this worker in coordinator logs and status.
	Name string
	// Client overrides the HTTP client (tests inject fault transports).
	Client *http.Client
	// Log receives worker events; slog.Default when nil.
	Log *slog.Logger
	// Poll overrides the coordinator-suggested idle poll interval.
	Poll time.Duration
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

func (w *Worker) logger() *slog.Logger {
	if w.Log != nil {
		return w.Log
	}
	return slog.Default()
}

// Run serves the coordinator until ctx is cancelled (the only way it
// returns). Transport errors back off and retry; an unknown-worker reply
// re-registers (surviving coordinator restarts); leased batches are
// measured with the engine's concurrency and reported with retry — if every
// report attempt fails the batch is simply dropped and the lease expiry
// re-queues the points elsewhere.
func (w *Worker) Run(ctx context.Context) error {
	for {
		reg, err := w.register(ctx)
		if err != nil {
			return err
		}
		if err := w.serve(ctx, reg); err != nil {
			if isUnknownWorker(err) {
				w.logger().Info("fabric worker re-registering", "worker", reg.Worker)
				continue
			}
			return err
		}
	}
}

// register announces the worker, retrying with backoff until the
// coordinator answers or ctx ends.
func (w *Worker) register(ctx context.Context) (RegisterResponse, error) {
	backoff := 100 * time.Millisecond
	for {
		var reg RegisterResponse
		err := w.post(ctx, PathRegister, RegisterRequest{Name: w.Name}, &reg)
		if err == nil {
			w.logger().Info("fabric worker registered",
				"worker", reg.Worker, "coordinator", w.Coordinator,
				"batch", reg.Batch, "leaseMs", reg.LeaseMS)
			return reg, nil
		}
		if ctx.Err() != nil {
			return RegisterResponse{}, ctx.Err()
		}
		w.logger().Warn("fabric register failed, retrying", "error", err)
		if err := sleep(ctx, backoff); err != nil {
			return RegisterResponse{}, err
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// serve is the lease/measure/report loop for one registration. It returns
// an unknown-worker error to trigger re-registration, or ctx's error.
func (w *Worker) serve(ctx context.Context, reg RegisterResponse) error {
	poll := w.Poll
	if poll <= 0 {
		poll = time.Duration(reg.PollMS) * time.Millisecond
	}
	if poll <= 0 {
		poll = time.Second
	}
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var grant LeaseResponse
		err := w.post(ctx, PathLease, LeaseRequest{Worker: reg.Worker}, &grant)
		switch {
		case err != nil && isUnknownWorker(err):
			return err
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.logger().Warn("fabric lease failed", "error", err)
			fallthrough
		case len(grant.Points) == 0:
			if err := sleep(ctx, poll); err != nil {
				return err
			}
			continue
		}
		results := w.measure(grant.Points)
		if err := w.report(ctx, reg.Worker, grant.Lease, results, poll); err != nil {
			if isUnknownWorker(err) || ctx.Err() != nil {
				return err
			}
			// Dropped batch: the lease expires and the points re-queue.
			w.logger().Warn("fabric report dropped", "lease", grant.Lease, "error", err)
		}
	}
}

// measure runs a leased batch through the local engine, as concurrently as
// the engine's worker budget allows.
func (w *Worker) measure(pts []LeasePoint) []ReportResult {
	res := make([]ReportResult, len(pts))
	par := w.Eng.Workers
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(pts) {
		par = len(pts)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for g := 0; g < par; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res[i] = ReportResult{
					Task:   pts[i].Task,
					Record: w.Eng.Measure(pts[i].Point),
				}
			}
		}()
	}
	for i := range pts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return res
}

// report delivers results, retrying transport failures a few times — the
// work is already done, losing the report costs a whole re-measure
// somewhere else (or a cache hit, when the fleet shares the store).
func (w *Worker) report(ctx context.Context, worker, lease string, results []ReportResult, poll time.Duration) error {
	req := ReportRequest{Worker: worker, Lease: lease, Results: results}
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			if serr := sleep(ctx, poll/2+1); serr != nil {
				return serr
			}
		}
		var resp ReportResponse
		if err = w.post(ctx, PathReport, req, &resp); err == nil {
			if resp.Duplicates > 0 {
				w.logger().Info("fabric report had duplicates",
					"lease", lease, "accepted", resp.Accepted, "duplicates", resp.Duplicates)
			}
			return nil
		}
		if isUnknownWorker(err) || ctx.Err() != nil {
			return err
		}
	}
	return err
}

// post round-trips one protocol call. Non-2xx replies come back as
// *statusError carrying the coordinator's error message.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		if json.Unmarshal(msg, &apiErr) == nil && apiErr.Error != "" {
			return &statusError{code: resp.StatusCode, msg: apiErr.Error}
		}
		return &statusError{code: resp.StatusCode, msg: string(msg)}
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(out)
}

// sleep waits d or until ctx ends.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
