package fabric

// Protocol unit tests on an injected clock: lease expiry and re-grant order,
// first-write-wins completion, duplicate counting, unknown-worker rejection
// and point-mismatch rejection — no real timers, no HTTP, no sleeps beyond
// polling for the asynchronous Run to enqueue its grid.

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/sweep"
)

// fakeClock is a mutable clock handed to Coordinator.now. Advance moves
// every deadline decision deterministically; the watchdog's real-time ticker
// (LeaseTTL/4 = 15s with the minute-long TTL used here) never fires within a
// test, so the injected clock is the only time source that matters.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// newProtocolRig builds a coordinator on a fake clock with one registered
// worker and a background Run over the quick grid, returning everything a
// protocol test needs. LeaseTTL is one minute: expiry happens only when the
// test advances the clock.
func newProtocolRig(t *testing.T) (*Coordinator, *fakeClock, *sweep.Engine, string, *runHandle) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	eng := &sweep.Engine{Cache: newCache(t, t.TempDir())}
	c := &Coordinator{
		Eng: eng, Cache: eng.Cache,
		LeaseTTL: time.Minute, Batch: 4,
		Log: quietLog(), now: clk.Now,
	}
	w := c.Register("prot").Worker
	h := startRun(c.Run, grid())
	return c, clk, eng, w, h
}

// awaitLease polls until the asynchronous Run has queued points and a lease
// is granted.
func awaitLease(t *testing.T, c *Coordinator, worker string) LeaseResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := c.Lease(worker)
		if err != nil {
			t.Fatalf("lease: %v", err)
		}
		if len(resp.Points) > 0 {
			return resp
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("no lease granted within 10s")
	return LeaseResponse{}
}

// measureReport measures a granted lease on eng and builds the report.
func measureReport(eng *sweep.Engine, worker string, l LeaseResponse) ReportRequest {
	req := ReportRequest{Worker: worker, Lease: l.Lease}
	for _, lp := range l.Points {
		req.Results = append(req.Results, ReportResult{Task: lp.Task, Record: eng.Measure(lp.Point)})
	}
	return req
}

// drainRun lease-measure-reports until the queue is empty and the run
// resolves.
func drainRun(t *testing.T, c *Coordinator, eng *sweep.Engine, worker string, h *runHandle) []sweep.Record {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := c.Lease(worker)
		if err != nil {
			t.Fatalf("lease: %v", err)
		}
		if len(resp.Points) == 0 {
			select {
			case res := <-h.ch:
				mustOK(t, res.recs, res.err)
				return res.recs
			case <-time.After(10 * time.Millisecond):
				continue
			}
		}
		if _, err := c.Report(measureReport(eng, worker, resp)); err != nil {
			t.Fatalf("report: %v", err)
		}
	}
	t.Fatalf("run never drained")
	return nil
}

func taskIDs(l LeaseResponse) []string {
	ids := make([]string, len(l.Points))
	for i, p := range l.Points {
		ids[i] = p.Task
	}
	return ids
}

func TestExpiredLeaseReGrantsSameTasksInOrder(t *testing.T) {
	c, clk, eng, w, h := newProtocolRig(t)

	first := awaitLease(t, c, w)
	if len(first.Points) != 4 {
		t.Fatalf("first lease granted %d points, want the batch of 4", len(first.Points))
	}
	// Within the TTL the batch stays leased: a second poll gets the *other*
	// half of the 8-point grid, never the in-flight tasks.
	second := awaitLease(t, c, w)
	for _, id := range taskIDs(second) {
		for _, held := range taskIDs(first) {
			if id == held {
				t.Fatalf("task %s leased twice while its lease was live", id)
			}
		}
	}

	// Land the second batch now, so exactly one lease (the first) is
	// outstanding when the clock jumps: which of several simultaneously
	// expired leases re-queues first is unspecified (map order).
	if _, err := c.Report(measureReport(eng, w, second)); err != nil {
		t.Fatalf("report: %v", err)
	}

	// Past the TTL the first batch re-queues — at the front, in its original
	// order, with exactly one expiry counted.
	clk.Advance(time.Minute + time.Second)
	third, err := c.Lease(w)
	if err != nil {
		t.Fatalf("lease after expiry: %v", err)
	}
	got, want := taskIDs(third), taskIDs(first)
	if len(got) != len(want) {
		t.Fatalf("re-grant has %d tasks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("re-grant task[%d] = %s, want %s (stolen work must keep grid order)", i, got[i], want[i])
		}
	}
	if st := c.Stats(); st.Expired != 1 {
		t.Errorf("expired %d leases, want exactly the abandoned first one", st.Expired)
	}

	// Report the re-granted batch and let the run finish clean.
	if _, err := c.Report(measureReport(eng, w, third)); err != nil {
		t.Fatalf("report: %v", err)
	}
	drainRun(t, c, eng, w, h)
}

func TestLateReportAfterReLeaseIsFirstWriteWins(t *testing.T) {
	c, clk, eng, w, h := newProtocolRig(t)
	victim := awaitLease(t, c, w)
	victimReport := measureReport(eng, w, victim)

	// The victim's lease expires; a rescuer re-leases the same tasks and
	// reports first.
	clk.Advance(time.Minute + time.Second)
	rescuer := c.Register("rescue").Worker
	release, err := c.Lease(rescuer)
	if err != nil {
		t.Fatalf("re-lease: %v", err)
	}
	resp, err := c.Report(measureReport(eng, rescuer, release))
	if err != nil {
		t.Fatalf("rescuer report: %v", err)
	}
	if resp.Accepted != len(release.Points) || resp.Duplicates != 0 {
		t.Fatalf("rescuer report = %+v, want %d accepted", resp, len(release.Points))
	}

	// The victim limps back with its stale lease: every result is a
	// duplicate, nothing lands twice.
	late, err := c.Report(victimReport)
	if err != nil {
		t.Fatalf("late report: %v", err)
	}
	if late.Accepted != 0 || late.Duplicates != len(victimReport.Results) {
		t.Errorf("late report = %+v, want all %d duplicates", late, len(victimReport.Results))
	}
	// And re-sending the rescuer's own report is just as idempotent.
	again, err := c.Report(measureReport(eng, rescuer, release))
	if err != nil {
		t.Fatalf("replayed report: %v", err)
	}
	if again.Accepted != 0 || again.Duplicates != len(release.Points) {
		t.Errorf("replayed report = %+v, want all duplicates", again)
	}

	recs := drainRun(t, c, eng, w, h)
	if len(recs) != gridSize {
		t.Fatalf("run returned %d records, want %d", len(recs), gridSize)
	}
	if st := c.Stats(); st.Accepted != gridSize {
		t.Errorf("accepted %d results for an %d-point grid", st.Accepted, gridSize)
	}
}

func TestUnknownWorkerIsRejected(t *testing.T) {
	c := &Coordinator{Eng: &sweep.Engine{}, Log: quietLog()}
	if _, err := c.Lease("ghost"); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("lease from unregistered worker: err = %v, want ErrUnknownWorker", err)
	}
	if _, err := c.Report(ReportRequest{Worker: "ghost"}); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("report from unregistered worker: err = %v, want ErrUnknownWorker", err)
	}
	// A coordinator restart forgets the fleet: IDs from the previous
	// incarnation are unknown too, which is what pushes workers to
	// re-register.
	old := c.Register("pre-restart").Worker
	fresh := &Coordinator{Eng: &sweep.Engine{}, Log: quietLog()}
	if _, err := fresh.Lease(old); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("lease with pre-restart ID: err = %v, want ErrUnknownWorker", err)
	}
}

func TestMismatchedPointReportIsRejectedNotCompleted(t *testing.T) {
	c, _, eng, w, h := newProtocolRig(t)
	l := awaitLease(t, c, w)

	// A confused worker reports the right task ID carrying the wrong point:
	// the result must be dropped without completing the task.
	bogus := eng.Measure(l.Points[0].Point)
	bogus.Cores += 97
	resp, err := c.Report(ReportRequest{
		Worker: w, Lease: l.Lease,
		Results: []ReportResult{{Task: l.Points[0].Task, Record: bogus}},
	})
	if err != nil {
		t.Fatalf("mismatched report: %v", err)
	}
	if resp.Accepted != 0 || resp.Duplicates != 0 {
		t.Errorf("mismatched report = %+v, want neither accepted nor duplicate", resp)
	}

	// The task is still open: the correct record for it is accepted.
	good, err := c.Report(ReportRequest{
		Worker: w, Lease: l.Lease,
		Results: []ReportResult{{Task: l.Points[0].Task, Record: eng.Measure(l.Points[0].Point)}},
	})
	if err != nil {
		t.Fatalf("correct report: %v", err)
	}
	if good.Accepted != 1 {
		t.Errorf("correct report after mismatch = %+v, want 1 accepted", good)
	}
	// Finish the rest of the batch and the run.
	rest := measureReport(eng, w, l)
	rest.Results = rest.Results[1:]
	if _, err := c.Report(rest); err != nil {
		t.Fatalf("report: %v", err)
	}
	recs := drainRun(t, c, eng, w, h)
	for _, r := range recs {
		if r.Cores >= 97 {
			t.Fatalf("bogus record landed in the grid: %+v", r.Point)
		}
	}
}
