package fabric

// The in-process multi-node harness: a real coordinator behind an httptest
// listener, N workers as goroutines speaking real HTTP through an
// injectable fault layer (drop, delay, duplicate, kill-on-RPC). Every
// scenario in fabric_test.go runs on this and must stay green under -race.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sweep"
)

func quietLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newCache(t *testing.T, dir string) *sweep.Cache {
	t.Helper()
	c, err := sweep.NewCache(dir)
	if err != nil {
		t.Fatalf("cache %s: %v", dir, err)
	}
	return c
}

// grid is the quick test grid: 8 points, small enough that a whole scenario
// (including -race) stays well under a second of simulation. A fresh Spec
// per call because Points() normalises in place.
func grid() *sweep.Spec {
	return &sweep.Spec{
		Kernels: []int{2, 10},
		Sizes:   []int{8, 12},
		Cores:   []int{1, 2},
		Seed:    1,
	}
}

// gridSize is len(grid().Points()) — kept literal so assertions read.
const gridSize = 8

// newCoordinator serves c over a real HTTP listener.
func newCoordinator(t *testing.T, c *Coordinator) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// node is one in-process "worker machine".
type node struct {
	eng    *sweep.Engine
	cancel context.CancelFunc
	done   chan struct{}
}

// startWorker runs a worker goroutine against the coordinator URL, with an
// optional fault transport. The worker stops at test cleanup (or when the
// fault layer kills it).
func startWorker(t *testing.T, coordURL, name string, eng *sweep.Engine, rt http.RoundTripper) *node {
	t.Helper()
	if rt == nil {
		rt = http.DefaultTransport
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{
		Coordinator: coordURL,
		Eng:         eng,
		Name:        name,
		Client:      &http.Client{Transport: rt},
		Log:         quietLog(),
	}
	n := &node{eng: eng, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(n.done)
		_ = w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-n.done
	})
	return n
}

// runHandle is a sweep run in flight on its own goroutine, capturing the
// streamed JSONL exactly as `repro sweep -o` would write it.
type runHandle struct {
	buf bytes.Buffer
	ch  chan runResult
}

type runResult struct {
	recs []sweep.Record
	err  error
}

// startRun launches run(spec) in the background; scenarios that stage
// mid-sweep events (starting a rescuer worker after a kill) act between
// startRun and wait.
func startRun(run func(*sweep.Spec, func(sweep.Record)) ([]sweep.Record, error), spec *sweep.Spec) *runHandle {
	h := &runHandle{ch: make(chan runResult, 1)}
	jw := sweep.NewJSONLWriter(&h.buf)
	go func() {
		recs, err := run(spec, func(r sweep.Record) { _ = jw.Write(r) })
		h.ch <- runResult{recs, err}
	}()
	return h
}

// wait blocks for the run, with a generous deadline so a scheduling bug
// fails the suite instead of hanging it. The buffer is only touched by the
// run goroutine, which is done once the result arrives.
func (h *runHandle) wait(t *testing.T) ([]sweep.Record, []byte, error) {
	t.Helper()
	select {
	case res := <-h.ch:
		return res.recs, h.buf.Bytes(), res.err
	case <-time.After(60 * time.Second):
		t.Fatalf("sweep run did not finish within 60s")
		return nil, nil, nil
	}
}

// runJSONL drives a Run function to completion.
func runJSONL(t *testing.T, run func(*sweep.Spec, func(sweep.Record)) ([]sweep.Record, error), spec *sweep.Spec) ([]sweep.Record, []byte, error) {
	t.Helper()
	return startRun(run, spec).wait(t)
}

// waitWorkers blocks until n workers have registered — scenarios call it
// before launching a run so the zero-worker local fast path never races the
// fleet's (asynchronous) registration.
func waitWorkers(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().Workers >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("fleet never reached %d registered workers", n)
}

// mustOK fails on any per-point error.
func mustOK(t *testing.T, recs []sweep.Record, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("run error: %v", err)
	}
	for _, r := range recs {
		if r.Err != "" {
			t.Fatalf("point %s n=%d %s failed: %s", r.Name, r.N, r.Config(), r.Err)
		}
	}
}

// sequentialOracle runs the same grid on a fresh single-process engine over
// cacheDir and returns its JSONL bytes — the byte-identity reference. The
// engine is returned so callers can assert it served everything from cache.
func sequentialOracle(t *testing.T, cacheDir string) ([]byte, *sweep.Engine) {
	t.Helper()
	eng := &sweep.Engine{Cache: newCache(t, cacheDir), Workers: 4}
	recs, jsonl, err := runJSONL(t, eng.Run, grid())
	mustOK(t, recs, err)
	return jsonl, eng
}

// faultAction is what the fault layer does to one RPC.
type faultAction struct {
	drop  bool          // fail the RPC without delivering it
	dup   bool          // deliver it twice, returning the second response
	delay time.Duration // hold the RPC before delivering
	also  func()        // side effect (e.g. kill the worker), run after the decision
}

// faultTransport wraps a RoundTripper with a per-request fault decision.
// decide runs on the worker's goroutine; guard any shared counters.
type faultTransport struct {
	base   http.RoundTripper
	decide func(req *http.Request) faultAction
}

func (f *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	act := f.decide(req)
	if act.also != nil {
		defer act.also()
	}
	if act.delay > 0 {
		time.Sleep(act.delay)
	}
	if act.drop {
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, fmt.Errorf("fault: dropped %s", req.URL.Path)
	}
	base := f.base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || !act.dup {
		return resp, err
	}
	// Duplicate: the first delivery already happened; drain it and replay
	// the identical request, handing the worker the second response — the
	// wire-level "report arrived twice" scenario.
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	clone := req.Clone(req.Context())
	body, err := req.GetBody()
	if err != nil {
		return nil, err
	}
	clone.Body = body
	return base.RoundTrip(clone)
}

// pathIs matches a fabric RPC by its trailing path segment.
func pathIs(req *http.Request, path string) bool {
	return strings.HasSuffix(req.URL.Path, path)
}

// killSwitch wires a one-shot worker kill into a fault decision: trip()
// cancels the worker's context exactly once.
type killSwitch struct {
	once sync.Once
	ch   chan struct{}
}

func newKillSwitch() *killSwitch { return &killSwitch{ch: make(chan struct{})} }

func (k *killSwitch) trip() { k.once.Do(func() { close(k.ch) }) }

// arm makes the node die when the switch trips.
func (k *killSwitch) arm(n *node) {
	go func() {
		<-k.ch
		n.cancel()
	}()
}

// wait blocks until the switch has tripped.
func (k *killSwitch) wait(t *testing.T) {
	t.Helper()
	select {
	case <-k.ch:
	case <-time.After(60 * time.Second):
		t.Fatalf("kill switch never tripped within 60s")
	}
}

// killOnFirstReport is the canonical mid-batch kill: the worker's first
// report RPC is dropped on the wire and the worker dies at that exact
// moment — after measuring its leased batch, before the coordinator hears
// about any of it. From the trip on, every RPC from this worker drops, so
// it is network-dead deterministically even before the context cancel
// lands.
func killOnFirstReport(kill *killSwitch) *faultTransport {
	return &faultTransport{decide: func(req *http.Request) faultAction {
		select {
		case <-kill.ch:
			return faultAction{drop: true}
		default:
		}
		if pathIs(req, PathReport) {
			return faultAction{drop: true, also: kill.trip}
		}
		return faultAction{}
	}}
}
