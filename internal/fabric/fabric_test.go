package fabric

// The fault-injection scenarios. Each proves one of the fabric's
// invariants, deterministically (kills and duplicates are triggered by the
// fault layer at exact protocol events, not timers):
//
//   - distributed JSONL is byte-identical to a single-process sweep over
//     the same grid and cache;
//   - a worker killed mid-batch costs only its in-flight points;
//   - duplicated result reports are idempotent;
//   - with a shared worker cache every point simulates at most once
//     fleet-wide, kills included;
//   - a cold coordinator restart re-serves the whole grid from cache;
//   - zero registered workers fall back to the exact local path, and a
//     fleet that dies silently is drained by the watchdog.

import (
	"bytes"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/sweep"
)

func TestDistributedSweepByteIdenticalToSequential(t *testing.T) {
	coordDir := t.TempDir()
	coordEng := &sweep.Engine{Cache: newCache(t, coordDir), Workers: 2}
	c := &Coordinator{
		Eng: coordEng, Cache: coordEng.Cache,
		LeaseTTL: 5 * time.Second, Batch: 2, Log: quietLog(),
	}
	ts := newCoordinator(t, c)
	w1 := startWorker(t, ts.URL, "w1", &sweep.Engine{Cache: newCache(t, t.TempDir())}, nil)
	w2 := startWorker(t, ts.URL, "w2", &sweep.Engine{Cache: newCache(t, t.TempDir())}, nil)
	waitWorkers(t, c, 2)

	recs, gotJSONL, err := runJSONL(t, c.Run, grid())
	mustOK(t, recs, err)
	if len(recs) != gridSize {
		t.Fatalf("got %d records, want %d", len(recs), gridSize)
	}

	wantJSONL, oracle := sequentialOracle(t, coordDir)
	if !bytes.Equal(gotJSONL, wantJSONL) {
		t.Errorf("distributed JSONL differs from sequential oracle:\n got: %s\nwant: %s", gotJSONL, wantJSONL)
	}
	// The oracle must have served every point from the merged cache …
	if st := oracle.Stats(); st.Simulated != 0 || st.Hits != gridSize {
		t.Errorf("oracle stats %+v, want 0 simulated / %d hits (cache fully merged)", st, gridSize)
	}
	// … the coordinator's own engine must not have measured anything …
	if st := coordEng.Stats(); st.Points != 0 {
		t.Errorf("coordinator engine measured %d points locally, want 0", st.Points)
	}
	// … and the fleet must have simulated each point exactly once in total.
	sim := w1.eng.Stats().Simulated + w2.eng.Stats().Simulated
	if sim != gridSize {
		t.Errorf("fleet simulated %d points, want %d", sim, gridSize)
	}
	st := c.Stats()
	if st.Accepted != gridSize || st.LocalPoints != 0 || st.Duplicates != 0 {
		t.Errorf("coordinator stats %+v, want %d accepted, 0 local, 0 duplicates", st, gridSize)
	}
}

func TestZeroWorkersFallsBackToLocalRun(t *testing.T) {
	dir := t.TempDir()
	eng := &sweep.Engine{Cache: newCache(t, dir), Workers: 2}
	c := &Coordinator{Eng: eng, Cache: eng.Cache, Log: quietLog()}

	recs, gotJSONL, err := runJSONL(t, c.Run, grid())
	mustOK(t, recs, err)
	if st := c.Stats(); st.LocalRuns != 1 || st.Granted != 0 {
		t.Errorf("stats %+v, want exactly one local run and no leases", st)
	}
	if st := eng.Stats(); st.Simulated != gridSize {
		t.Errorf("local engine simulated %d, want %d", st.Simulated, gridSize)
	}
	// The local path is the single-process path: a sequential re-run over
	// the same cache reproduces the bytes.
	wantJSONL, _ := sequentialOracle(t, dir)
	if !bytes.Equal(gotJSONL, wantJSONL) {
		t.Errorf("local-fallback JSONL differs from sequential oracle")
	}
}

func TestDuplicateReportsAreIdempotent(t *testing.T) {
	coordDir := t.TempDir()
	coordEng := &sweep.Engine{Cache: newCache(t, coordDir)}
	c := &Coordinator{
		Eng: coordEng, Cache: coordEng.Cache,
		LeaseTTL: 5 * time.Second, Batch: 2, Log: quietLog(),
	}
	ts := newCoordinator(t, c)
	// Both workers share one cache; every report RPC is delivered twice.
	sharedDir := t.TempDir()
	dupAll := &faultTransport{decide: func(req *http.Request) faultAction {
		if pathIs(req, PathReport) {
			return faultAction{dup: true}
		}
		return faultAction{}
	}}
	w1 := startWorker(t, ts.URL, "w1", &sweep.Engine{Cache: newCache(t, sharedDir)}, dupAll)
	w2 := startWorker(t, ts.URL, "w2", &sweep.Engine{Cache: newCache(t, sharedDir)}, dupAll)
	waitWorkers(t, c, 2)

	recs, gotJSONL, err := runJSONL(t, c.Run, grid())
	mustOK(t, recs, err)

	st := c.Stats()
	if st.Accepted != gridSize {
		t.Errorf("accepted %d results, want %d", st.Accepted, gridSize)
	}
	if st.Duplicates == 0 {
		t.Errorf("no duplicates counted although every report was delivered twice")
	}
	sim := w1.eng.Stats().Simulated + w2.eng.Stats().Simulated
	if sim != gridSize {
		t.Errorf("fleet simulated %d points, want %d (duplicates must not re-measure)", sim, gridSize)
	}
	wantJSONL, _ := sequentialOracle(t, coordDir)
	if !bytes.Equal(gotJSONL, wantJSONL) {
		t.Errorf("JSONL under duplicated reports differs from sequential oracle")
	}
}

func TestKilledWorkerCostsOnlyItsInFlightPoints(t *testing.T) {
	coordDir := t.TempDir()
	coordEng := &sweep.Engine{Cache: newCache(t, coordDir)}
	const batch = 2
	c := &Coordinator{
		Eng: coordEng, Cache: coordEng.Cache,
		LeaseTTL: time.Second, Batch: batch, Log: quietLog(),
	}
	ts := newCoordinator(t, c)
	kill := newKillSwitch()
	// Private caches: a re-leased point really is re-simulated, so the
	// kill's cost is visible in the simulation counts. The victim runs
	// alone first so it deterministically holds a full batch when it dies;
	// the rescuer starts after the kill.
	w1 := startWorker(t, ts.URL, "w1", &sweep.Engine{Cache: newCache(t, t.TempDir())}, killOnFirstReport(kill))
	kill.arm(w1)
	waitWorkers(t, c, 1)
	h := startRun(c.Run, grid())
	kill.wait(t)
	w2 := startWorker(t, ts.URL, "w2", &sweep.Engine{Cache: newCache(t, t.TempDir())}, nil)

	recs, gotJSONL, err := h.wait(t)
	mustOK(t, recs, err)

	// w1 died with exactly one leased batch in flight; nothing it measured
	// was ever reported, so the survivor re-measures the whole grid and the
	// overhead of the kill is only w1's in-flight batch.
	if lost := w1.eng.Stats().Simulated; lost != batch {
		t.Errorf("killed worker simulated %d points, want its in-flight batch of %d", lost, batch)
	}
	if sim := w2.eng.Stats().Simulated; sim != gridSize {
		t.Errorf("surviving worker simulated %d points, want %d", sim, gridSize)
	}
	st := c.Stats()
	if st.Accepted != gridSize || st.Expired == 0 {
		t.Errorf("coordinator stats %+v, want %d accepted with at least one expired lease", st, gridSize)
	}
	if st.LocalPoints != 0 {
		t.Errorf("watchdog drained %d points locally although a worker survived", st.LocalPoints)
	}
	wantJSONL, _ := sequentialOracle(t, coordDir)
	if !bytes.Equal(gotJSONL, wantJSONL) {
		t.Errorf("JSONL after worker kill differs from sequential oracle")
	}
}

func TestSharedCacheSimulatesEveryPointAtMostOnceFleetWide(t *testing.T) {
	coordDir := t.TempDir()
	coordEng := &sweep.Engine{Cache: newCache(t, coordDir)}
	const batch = 2
	c := &Coordinator{
		Eng: coordEng, Cache: coordEng.Cache,
		LeaseTTL: time.Second, Batch: batch, Log: quietLog(),
	}
	ts := newCoordinator(t, c)
	kill := newKillSwitch()
	// One cache for the whole fleet: when the rescuer picks up the victim's
	// expired lease it must hit what the victim already simulated and
	// stored, so the kill costs zero extra simulations.
	sharedDir := t.TempDir()
	w1 := startWorker(t, ts.URL, "w1", &sweep.Engine{Cache: newCache(t, sharedDir)}, killOnFirstReport(kill))
	kill.arm(w1)
	waitWorkers(t, c, 1)
	h := startRun(c.Run, grid())
	kill.wait(t)
	w2 := startWorker(t, ts.URL, "w2", &sweep.Engine{Cache: newCache(t, sharedDir)}, nil)

	recs, gotJSONL, err := h.wait(t)
	mustOK(t, recs, err)

	sim := w1.eng.Stats().Simulated + w2.eng.Stats().Simulated
	if sim != gridSize {
		t.Errorf("fleet simulated %d points, want exactly %d (shared cache, kill included)", sim, gridSize)
	}
	if lost, hits := w1.eng.Stats().Simulated, w2.eng.Stats().Hits; lost != batch || hits < lost {
		t.Errorf("victim simulated %d (want %d) and survivor hit the cache %d times (want >= %d)",
			lost, batch, hits, lost)
	}
	wantJSONL, _ := sequentialOracle(t, coordDir)
	if !bytes.Equal(gotJSONL, wantJSONL) {
		t.Errorf("JSONL with shared fleet cache differs from sequential oracle")
	}
}

func TestDroppedAndDelayedRPCsStillConverge(t *testing.T) {
	coordDir := t.TempDir()
	coordEng := &sweep.Engine{Cache: newCache(t, coordDir)}
	c := &Coordinator{
		Eng: coordEng, Cache: coordEng.Cache,
		LeaseTTL: time.Second, Batch: 2, Log: quietLog(),
	}
	ts := newCoordinator(t, c)
	// A deterministic lossy network: every 5th RPC vanishes, every 3rd is
	// held 5ms. Registration, leases and reports all take hits.
	var mu sync.Mutex
	n := 0
	lossy := func() *faultTransport {
		return &faultTransport{decide: func(req *http.Request) faultAction {
			mu.Lock()
			n++
			k := n
			mu.Unlock()
			switch {
			case k%5 == 0:
				return faultAction{drop: true}
			case k%3 == 0:
				return faultAction{delay: 5 * time.Millisecond}
			}
			return faultAction{}
		}}
	}
	sharedDir := t.TempDir()
	w1 := startWorker(t, ts.URL, "w1", &sweep.Engine{Cache: newCache(t, sharedDir)}, lossy())
	w2 := startWorker(t, ts.URL, "w2", &sweep.Engine{Cache: newCache(t, sharedDir)}, lossy())
	_, _ = w1, w2
	waitWorkers(t, c, 2)

	recs, gotJSONL, err := runJSONL(t, c.Run, grid())
	mustOK(t, recs, err)
	if st := c.Stats(); st.Accepted != gridSize {
		t.Errorf("accepted %d, want %d", st.Accepted, gridSize)
	}
	wantJSONL, _ := sequentialOracle(t, coordDir)
	if !bytes.Equal(gotJSONL, wantJSONL) {
		t.Errorf("JSONL under drops and delays differs from sequential oracle")
	}
}

func TestColdCoordinatorRestartServesEverythingFromCache(t *testing.T) {
	coordDir := t.TempDir()
	coordEng := &sweep.Engine{Cache: newCache(t, coordDir)}
	c := &Coordinator{
		Eng: coordEng, Cache: coordEng.Cache,
		LeaseTTL: 5 * time.Second, Batch: 2, Log: quietLog(),
	}
	ts := newCoordinator(t, c)
	startWorker(t, ts.URL, "w1", &sweep.Engine{Cache: newCache(t, t.TempDir())}, nil)
	waitWorkers(t, c, 1)
	recs, firstJSONL, err := runJSONL(t, c.Run, grid())
	mustOK(t, recs, err)

	// "Restart": a brand-new coordinator process over the same cache
	// directory, no workers registered, no state carried over.
	coldEng := &sweep.Engine{Cache: newCache(t, coordDir), Workers: 2}
	cold := &Coordinator{Eng: coldEng, Cache: coldEng.Cache, Log: quietLog()}
	recs2, coldJSONL, err := runJSONL(t, cold.Run, grid())
	mustOK(t, recs2, err)

	if !bytes.Equal(firstJSONL, coldJSONL) {
		t.Errorf("cold-restart JSONL differs from the original distributed run")
	}
	if st := coldEng.Stats(); st.Simulated != 0 || st.Hits != gridSize {
		t.Errorf("cold restart stats %+v, want 0 simulated / %d cache hits", st, gridSize)
	}
}

func TestSilentFleetIsDrainedByWatchdog(t *testing.T) {
	dir := t.TempDir()
	eng := &sweep.Engine{Cache: newCache(t, dir), Workers: 2}
	c := &Coordinator{
		Eng: eng, Cache: eng.Cache,
		LeaseTTL: 100 * time.Millisecond, Batch: 4, Log: quietLog(),
	}
	// A worker registers and then never comes back — the fleet exists but
	// is silent, so the zero-worker fast path does not apply.
	c.Register("ghost")

	recs, _, err := runJSONL(t, c.Run, grid())
	mustOK(t, recs, err)
	st := c.Stats()
	if st.LocalPoints != gridSize {
		t.Errorf("watchdog drained %d points, want the whole grid (%d)", st.LocalPoints, gridSize)
	}
	if eng.Stats().Simulated != gridSize {
		t.Errorf("local engine simulated %d, want %d", eng.Stats().Simulated, gridSize)
	}
}
