// Package fabric distributes sweep grids across worker processes.
//
// A Coordinator owns the grid: sweeps submitted through Coordinator.Run are
// split into points, and registered workers lease batches of them over a
// small HTTP/JSON protocol (mounted under /fabric/v1/), measure each point
// with their local sweep.Engine (machine pool and singleflight intact), and
// report the records back. Work-stealing falls out of the lease discipline:
// a lease expires after Coordinator.LeaseTTL, its unfinished points re-queue
// at the front, and whichever worker polls next picks them up — so a worker
// killed mid-batch costs only its in-flight points.
//
// The protocol is deliberately idempotent. Results are matched by an opaque
// per-point task ID and completed first-write-wins: a late report for an
// already re-leased point, or a duplicated report RPC, is counted and
// discarded. Every accepted successful record is merged into the
// coordinator's content-keyed cache under the record's sweep cache key, so
// the streamed JSONL is byte-identical to a single-process `repro sweep`
// over the same grid against that cache, and a cold coordinator restart
// re-serves the whole grid from cache without simulating anything.
//
// With no workers registered a sweep runs on the coordinator's own engine
// (the exact single-process path), and if every worker disappears mid-sweep
// a watchdog drains the remaining points locally — the fabric degrades to
// PR 4's one-process server, never to a hang.
package fabric

import "repro/internal/sweep"

// Protocol paths, mounted by Handler. Version the wire format, not the
// package: a breaking DTO change bumps /fabric/v2/.
const (
	PathRegister = "/fabric/v1/register"
	PathLease    = "/fabric/v1/lease"
	PathReport   = "/fabric/v1/report"
	PathStatus   = "/fabric/v1/status"
)

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name is a human-readable worker label (host:pid by convention); it
	// only decorates logs and status, identity is the returned Worker ID.
	Name string `json:"name"`
}

// RegisterResponse assigns the worker its ID and the coordinator's tuning.
type RegisterResponse struct {
	// Worker is the coordinator-assigned worker ID, presented on every
	// subsequent lease and report.
	Worker string `json:"worker"`
	// LeaseMS is the lease TTL: a worker holding a batch longer than this
	// without reporting should expect the points to be re-leased elsewhere.
	LeaseMS int64 `json:"leaseMs"`
	// PollMS is the suggested idle poll interval (well under LeaseMS so an
	// idle worker stays visibly alive).
	PollMS int64 `json:"pollMs"`
	// Batch is the maximum number of points per lease.
	Batch int `json:"batch"`
}

// LeaseRequest asks for a batch of work.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeasePoint is one grid point of a lease: the opaque task ID the worker
// must echo in its report, and the point to measure.
type LeasePoint struct {
	Task  string      `json:"task"`
	Point sweep.Point `json:"point"`
}

// LeaseResponse grants a batch. An empty Points slice means no work is
// pending; the worker polls again after its poll interval.
type LeaseResponse struct {
	// Lease identifies the grant; empty when Points is empty.
	Lease  string       `json:"lease,omitempty"`
	Points []LeasePoint `json:"points,omitempty"`
}

// ReportResult is one measured point: the task ID it answers and the full
// sweep record (metrics, content key, error) the worker's engine produced.
type ReportResult struct {
	Task   string       `json:"task"`
	Record sweep.Record `json:"record"`
}

// ReportRequest delivers a batch of results.
type ReportRequest struct {
	Worker  string         `json:"worker"`
	Lease   string         `json:"lease,omitempty"`
	Results []ReportResult `json:"results"`
}

// ReportResponse acknowledges a report.
type ReportResponse struct {
	// Accepted counts results that completed a pending point.
	Accepted int `json:"accepted"`
	// Duplicates counts results for points already completed (late report
	// after a re-lease, or a duplicated report RPC) — discarded, harmlessly.
	Duplicates int `json:"duplicates"`
}

// Stats is the coordinator's counters, served at PathStatus.
type Stats struct {
	// Workers is how many workers have registered over the coordinator's
	// lifetime (the fleet size the scheduler believes in).
	Workers int `json:"workers"`
	// LiveWorkers is how many of them contacted the coordinator recently
	// (within the liveness window).
	LiveWorkers int `json:"liveWorkers"`
	// Pending is how many points are queued waiting for a lease right now.
	Pending int `json:"pending"`
	// Leased is how many points are out on unexpired leases right now.
	Leased int `json:"leased"`
	// Granted counts leases handed out.
	Granted int `json:"granted"`
	// Expired counts leases that timed out and had points re-queued.
	Expired int `json:"expired"`
	// Reports counts report RPCs received.
	Reports int `json:"reports"`
	// Accepted counts results that completed a point.
	Accepted int `json:"accepted"`
	// Duplicates counts discarded duplicate/stale results.
	Duplicates int `json:"duplicates"`
	// LocalRuns counts sweeps that ran entirely on the coordinator's engine
	// because no worker had registered.
	LocalRuns int `json:"localRuns"`
	// LocalPoints counts points the watchdog drained locally after the
	// fleet went quiet mid-sweep.
	LocalPoints int `json:"localPoints"`
}
