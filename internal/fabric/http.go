package fabric

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Handler serves the fabric protocol (PathRegister, PathLease, PathReport,
// PathStatus). Mount it next to the API handler on the coordinator's
// listener; paths carry the /fabric/v1/ prefix already.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathRegister, func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if err := decodeBody(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, c.Register(req.Name))
	})
	mux.HandleFunc("POST "+PathLease, func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if err := decodeBody(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		resp, err := c.Lease(req.Worker)
		if err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST "+PathReport, func(w http.ResponseWriter, r *http.Request) {
		var req ReportRequest
		if err := decodeBody(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		resp, err := c.Report(req)
		if err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET "+PathStatus, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Stats())
	})
	return mux
}

// decodeBody parses a JSON request body strictly, like the API server:
// unknown fields are an error. Report bodies carry whole record batches, so
// the cap is a generous 16 MiB.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// statusError is a non-2xx protocol reply seen by the worker client.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("fabric: coordinator replied %d: %s", e.code, e.msg)
}

// isUnknownWorker reports whether err is the coordinator refusing the
// worker's ID — the signal to register again (typically a coordinator
// restart).
func isUnknownWorker(err error) bool {
	var se *statusError
	return errors.As(err, &se) && se.code == http.StatusNotFound
}
