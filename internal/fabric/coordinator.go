package fabric

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/sweep"
)

// ErrUnknownWorker rejects leases and reports from workers the coordinator
// has never seen (or that outlived a coordinator restart). The worker's
// recovery is to register again.
var ErrUnknownWorker = errors.New("fabric: unknown worker")

// Coordinator owns sweep grids and hands their points to registered workers
// in leased batches. The zero value is not usable; populate Eng (and
// normally Cache) and share one Coordinator between the HTTP handler and
// every Run caller. All methods are safe for concurrent use.
type Coordinator struct {
	// Eng runs sweeps locally when no worker is registered and drains
	// leftover points when the fleet goes quiet mid-sweep. Required.
	Eng *sweep.Engine
	// Cache, when non-nil, receives every accepted successful record under
	// its content key. Point it at the same store Eng uses: that is what
	// makes a post-sweep single-process run — or a cold coordinator restart
	// — serve the whole grid from cache, byte-identical.
	Cache *sweep.Cache
	// LeaseTTL is how long a worker may sit on a leased batch without
	// reporting before the points re-queue (default 5s).
	LeaseTTL time.Duration
	// Batch is the maximum points per lease (default 8).
	Batch int
	// Log receives scheduler events; slog.Default when nil.
	Log *slog.Logger

	// now overrides the clock in tests.
	now func() time.Time

	mu      sync.Mutex
	seq     int
	workers map[string]*workerInfo
	tasks   map[string]*task
	pending []*task
	leases  map[string]*lease
	stats   Stats
}

type workerInfo struct {
	name     string
	lastSeen time.Time
}

// runState is one Run call in flight: records land at their grid index and
// each index's ready channel closes exactly once, so the emit loop streams
// deterministic grid order no matter which worker finishes what when.
type runState struct {
	pts       []sweep.Point
	recs      []sweep.Record
	done      []bool
	ready     []chan struct{}
	remaining int
}

// task is one grid point awaiting a result. Its ID is the idempotency key:
// it stays resolvable across lease expiries and re-grants, and is deleted
// the moment a result is accepted, so every later report of it is a
// duplicate by construction.
type task struct {
	id     string
	st     *runState
	idx    int
	queued bool // in pending (guards against double re-queue)
}

type lease struct {
	id       string
	worker   string
	tasks    []*task
	deadline time.Time
}

func (c *Coordinator) clock() time.Time {
	if c.now != nil {
		return c.now()
	}
	return time.Now()
}

func (c *Coordinator) leaseTTL() time.Duration {
	if c.LeaseTTL > 0 {
		return c.LeaseTTL
	}
	return 5 * time.Second
}

// pollInterval is the idle-poll suggestion sent to workers: well under the
// lease TTL so an idle worker keeps itself visibly live.
func (c *Coordinator) pollInterval() time.Duration {
	p := c.leaseTTL() / 5
	if p < 10*time.Millisecond {
		p = 10 * time.Millisecond
	}
	return p
}

// liveness is the window within which a worker's last RPC counts it alive.
// Longer than the poll interval by a wide margin, so only a genuinely gone
// fleet triggers the local drain.
func (c *Coordinator) liveness() time.Duration { return 2 * c.leaseTTL() }

func (c *Coordinator) batchSize() int {
	if c.Batch > 0 {
		return c.Batch
	}
	return 8
}

func (c *Coordinator) logger() *slog.Logger {
	if c.Log != nil {
		return c.Log
	}
	return slog.Default()
}

func (c *Coordinator) initLocked() {
	if c.workers == nil {
		c.workers = make(map[string]*workerInfo)
		c.tasks = make(map[string]*task)
		c.leases = make(map[string]*lease)
	}
}

// Register admits a worker and returns its ID plus the coordinator's lease
// and poll tuning.
func (c *Coordinator) Register(name string) RegisterResponse {
	now := c.clock()
	c.mu.Lock()
	c.initLocked()
	c.seq++
	id := fmt.Sprintf("w%d", c.seq)
	c.workers[id] = &workerInfo{name: name, lastSeen: now}
	n := len(c.workers)
	c.mu.Unlock()
	c.logger().Info("fabric worker registered", "worker", id, "name", name, "fleet", n)
	return RegisterResponse{
		Worker:  id,
		LeaseMS: c.leaseTTL().Milliseconds(),
		PollMS:  c.pollInterval().Milliseconds(),
		Batch:   c.batchSize(),
	}
}

// Lease grants the polling worker up to Batch pending points, or an empty
// response when nothing is queued.
func (c *Coordinator) Lease(workerID string) (LeaseResponse, error) {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.initLocked()
	w := c.workers[workerID]
	if w == nil {
		return LeaseResponse{}, ErrUnknownWorker
	}
	w.lastSeen = now
	c.expireLocked(now)
	batch := c.popLocked(c.batchSize())
	if len(batch) == 0 {
		return LeaseResponse{}, nil
	}
	c.seq++
	l := &lease{
		id:       fmt.Sprintf("l%d", c.seq),
		worker:   workerID,
		tasks:    batch,
		deadline: now.Add(c.leaseTTL()),
	}
	c.leases[l.id] = l
	c.stats.Granted++
	resp := LeaseResponse{Lease: l.id, Points: make([]LeasePoint, len(batch))}
	for i, t := range batch {
		resp.Points[i] = LeasePoint{Task: t.id, Point: t.st.pts[t.idx]}
	}
	return resp, nil
}

// Report accepts measured records. Completion is first-write-wins per task:
// results for already-completed (or unknown) tasks are counted as
// duplicates and discarded, which is what makes duplicated report RPCs and
// late reports after a re-lease idempotent. A result whose record does not
// carry the leased point is rejected outright (the point stays pending), so
// a confused worker cannot corrupt the grid. Accepted successful records
// are merged into the cache under their content key.
func (c *Coordinator) Report(req ReportRequest) (ReportResponse, error) {
	now := c.clock()
	c.mu.Lock()
	w := c.workers[req.Worker]
	if w == nil {
		c.mu.Unlock()
		return ReportResponse{}, ErrUnknownWorker
	}
	w.lastSeen = now
	c.stats.Reports++
	c.expireLocked(now)
	var resp ReportResponse
	var merge []sweep.Record
	for _, r := range req.Results {
		t := c.tasks[r.Task]
		if t == nil || t.st.done[t.idx] {
			resp.Duplicates++
			c.stats.Duplicates++
			continue
		}
		if r.Record.Point != t.st.pts[t.idx] {
			c.logger().Warn("fabric report point mismatch, dropped",
				"worker", req.Worker, "task", r.Task,
				"want", t.st.pts[t.idx], "got", r.Record.Point)
			continue
		}
		c.completeLocked(t, r.Record)
		resp.Accepted++
		c.stats.Accepted++
		if r.Record.Err == "" && r.Record.Key != "" {
			merge = append(merge, r.Record)
		}
	}
	if l := c.leases[req.Lease]; l != nil {
		c.pruneLeaseLocked(req.Lease, l)
	}
	c.mu.Unlock()
	// Cache merge is file IO; do it off the scheduler lock. Put is
	// content-keyed and atomic, so racing a worker writing the same key is
	// harmless.
	for _, rec := range merge {
		if err := c.Cache.Put(rec.Key, &rec.Metrics); err != nil {
			c.logger().Warn("fabric cache merge failed", "key", rec.Key, "error", err)
		}
	}
	return resp, nil
}

// completeLocked lands an accepted record and retires its task.
func (c *Coordinator) completeLocked(t *task, rec sweep.Record) {
	st := t.st
	st.recs[t.idx] = rec
	st.done[t.idx] = true
	close(st.ready[t.idx])
	st.remaining--
	delete(c.tasks, t.id)
	if st.remaining == 0 {
		// The run is over; drop any of its re-queued tasks still pending.
		keep := c.pending[:0]
		for _, p := range c.pending {
			if !p.st.done[p.idx] {
				keep = append(keep, p)
			}
		}
		c.pending = keep
	}
}

// popLocked takes up to max undone tasks off the front of the queue.
func (c *Coordinator) popLocked(max int) []*task {
	var out []*task
	i := 0
	for ; i < len(c.pending) && len(out) < max; i++ {
		t := c.pending[i]
		t.queued = false
		if t.st.done[t.idx] {
			continue
		}
		out = append(out, t)
	}
	c.pending = c.pending[i:]
	return out
}

// expireLocked re-queues the unfinished points of every lease past its
// deadline (at the front: stolen work is the oldest, emit order is waiting
// on it) and garbage-collects leases whose points all completed.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, l := range c.leases {
		undone := l.tasks[:0]
		for _, t := range l.tasks {
			if !t.st.done[t.idx] {
				undone = append(undone, t)
			}
		}
		l.tasks = undone
		if len(undone) == 0 {
			delete(c.leases, id)
			continue
		}
		if !now.After(l.deadline) {
			continue
		}
		requeue := make([]*task, 0, len(undone))
		for _, t := range undone {
			if !t.queued {
				t.queued = true
				requeue = append(requeue, t)
			}
		}
		c.pending = append(requeue, c.pending...)
		c.stats.Expired++
		delete(c.leases, id)
		c.logger().Info("fabric lease expired, points re-queued",
			"lease", id, "worker", l.worker, "points", len(requeue))
	}
}

// pruneLeaseLocked drops completed tasks from a lease, deleting it once
// empty so a fully-reported batch stops counting as leased.
func (c *Coordinator) pruneLeaseLocked(id string, l *lease) {
	undone := l.tasks[:0]
	for _, t := range l.tasks {
		if !t.st.done[t.idx] {
			undone = append(undone, t)
		}
	}
	l.tasks = undone
	if len(undone) == 0 {
		delete(c.leases, id)
	}
}

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Workers = len(c.workers)
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= c.liveness() {
			s.LiveWorkers++
		}
	}
	for _, t := range c.pending {
		if !t.st.done[t.idx] {
			s.Pending++
		}
	}
	for _, l := range c.leases {
		for _, t := range l.tasks {
			if !t.st.done[t.idx] {
				s.Leased++
			}
		}
	}
	return s
}

// Run measures every point of the grid, like sweep.Engine.Run and with the
// same contract: emit (when non-nil) is called from this goroutine in
// deterministic grid order as each prefix completes, the returned records
// are in grid order, and per-point failures are joined into the returned
// error. With no workers registered it delegates to the local engine — the
// exact single-process path. Otherwise points are queued for lease and a
// watchdog steals the remainder back for local measurement if the whole
// fleet goes quiet.
func (c *Coordinator) Run(spec *sweep.Spec, emit func(sweep.Record)) ([]sweep.Record, error) {
	pts, err := spec.Points()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.initLocked()
	if len(c.workers) == 0 || len(pts) == 0 {
		c.stats.LocalRuns++
		c.mu.Unlock()
		return c.Eng.Run(spec, emit)
	}
	st := &runState{
		pts:       pts,
		recs:      make([]sweep.Record, len(pts)),
		done:      make([]bool, len(pts)),
		ready:     make([]chan struct{}, len(pts)),
		remaining: len(pts),
	}
	queued := make([]*task, len(pts))
	for i := range pts {
		st.ready[i] = make(chan struct{})
		c.seq++
		t := &task{id: fmt.Sprintf("t%d", c.seq), st: st, idx: i, queued: true}
		c.tasks[t.id] = t
		queued[i] = t
	}
	c.pending = append(c.pending, queued...)
	c.mu.Unlock()

	stop := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		c.watch(st, stop)
	}()

	var errs []error
	for i := range pts {
		<-st.ready[i]
		r := st.recs[i]
		if emit != nil {
			emit(r)
		}
		if r.Err != "" {
			errs = append(errs, fmt.Errorf("%s n=%d %s: %s",
				r.Name, r.N, r.Config(), r.Err))
		}
	}
	close(stop)
	watch.Wait()
	return st.recs, errors.Join(errs...)
}

// watch keeps one Run live: it expires stale leases between worker polls
// and, when no worker has contacted the coordinator within the liveness
// window while points are still pending, measures batches on the local
// engine. Completion goes through the same first-write-wins path as worker
// reports, so a worker racing back to life stays harmless.
func (c *Coordinator) watch(st *runState, stop <-chan struct{}) {
	tick := c.leaseTTL() / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	tk := time.NewTicker(tick)
	defer tk.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tk.C:
		}
		now := c.clock()
		c.mu.Lock()
		if st.remaining == 0 {
			c.mu.Unlock()
			return
		}
		c.expireLocked(now)
		live := false
		for _, w := range c.workers {
			if now.Sub(w.lastSeen) <= c.liveness() {
				live = true
				break
			}
		}
		var batch []*task
		if !live {
			batch = c.popLocked(c.batchSize())
			c.stats.LocalPoints += len(batch)
		}
		c.mu.Unlock()
		if len(batch) == 0 {
			continue
		}
		c.logger().Info("fabric fleet quiet, draining locally", "points", len(batch))
		for _, t := range batch {
			rec := c.Eng.Measure(t.st.pts[t.idx])
			c.mu.Lock()
			if tt := c.tasks[t.id]; tt != nil && !tt.st.done[tt.idx] {
				c.completeLocked(tt, rec)
				c.stats.Accepted++
			} else {
				c.stats.Duplicates++
			}
			c.mu.Unlock()
			// Eng.Measure already stored the point when Cache is the
			// engine's own store; Put again covers a split configuration.
			if rec.Err == "" && rec.Key != "" {
				_ = c.Cache.Put(rec.Key, &rec.Metrics)
			}
		}
	}
}
