package noc

import "testing"

func TestCrossbarLatency(t *testing.T) {
	c := NewCrossbar(8, 1)
	if c.Cores() != 8 {
		t.Errorf("cores = %d", c.Cores())
	}
	for src := 0; src < 8; src++ {
		for dst := 0; dst < 8; dst++ {
			if got := c.Latency(src, dst); got != 1 {
				t.Errorf("Latency(%d,%d) = %d, want 1", src, dst, got)
			}
		}
	}
	c3 := NewCrossbar(4, 3)
	if got := c3.Latency(0, 2); got != 3 {
		t.Errorf("hop=3 crossbar latency = %d", got)
	}
	// hop < 1 clamps to 1.
	if got := NewCrossbar(4, 0).Latency(1, 2); got != 1 {
		t.Errorf("clamped crossbar latency = %d", got)
	}
}

func TestLatencySymmetry(t *testing.T) {
	nets := []Network{
		NewCrossbar(8, 2),
		NewRing(8, 1),
		NewRing(7, 3),
		NewMesh(4, 2, 1),
		NewMesh(3, 3, 2),
	}
	for _, n := range nets {
		for src := 0; src < n.Cores(); src++ {
			for dst := 0; dst < n.Cores(); dst++ {
				a, b := n.Latency(src, dst), n.Latency(dst, src)
				if a != b {
					t.Errorf("%s: Latency(%d,%d)=%d != Latency(%d,%d)=%d",
						n.Name(), src, dst, a, dst, src, b)
				}
				if a < 1 {
					t.Errorf("%s: Latency(%d,%d)=%d < 1", n.Name(), src, dst, a)
				}
			}
		}
	}
}

// TestRingShortestArc: the ring must route along the shorter direction.
func TestRingShortestArc(t *testing.T) {
	r := NewRing(8, 1)
	cases := []struct {
		src, dst int
		want     int64
	}{
		{0, 1, 1},
		{0, 4, 4}, // both arcs equal
		{0, 5, 3}, // wrap-around is shorter
		{0, 7, 1},
		{6, 1, 3},
		{2, 2, 1}, // local forwarding costs at least 1
	}
	for _, c := range cases {
		if got := r.Latency(c.src, c.dst); got != c.want {
			t.Errorf("ring Latency(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
	// Per-hop scaling.
	r3 := NewRing(8, 3)
	if got := r3.Latency(0, 5); got != 9 {
		t.Errorf("ring hop=3 Latency(0,5) = %d, want 9", got)
	}
	one := NewRing(1, 1)
	if got := one.Latency(0, 0); got != 1 {
		t.Errorf("1-core ring latency = %d", got)
	}
}

func TestMeshManhattan(t *testing.T) {
	m := NewMesh(4, 2, 1) // cores 0..3 top row, 4..7 bottom row
	cases := []struct {
		src, dst int
		want     int64
	}{
		{0, 3, 3}, // same row
		{0, 4, 1}, // same column
		{0, 7, 4}, // corner to corner: 3 + 1
		{1, 6, 2}, // (1,0) to (2,1)
		{5, 5, 1}, // local
	}
	for _, c := range cases {
		if got := m.Latency(c.src, c.dst); got != c.want {
			t.Errorf("mesh Latency(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
	if m.Cores() != 8 {
		t.Errorf("4x2 mesh cores = %d", m.Cores())
	}
}

// TestQueueOrdering: deliveries come out in (time, send order), ties broken
// by the send sequence, and nothing is delivered early.
func TestQueueOrdering(t *testing.T) {
	q := NewQueue()
	net := NewRing(4, 1)
	q.Send(net, 0, 2, 0, "far")    // deliver at 2
	q.Send(net, 0, 1, 0, "near-a") // deliver at 1
	q.Send(net, 0, 1, 0, "near-b") // deliver at 1, sent after near-a
	q.SendAt(3, 0, 1, "explicit")  // deliver at 1, sent last

	if got := q.Deliver(0); len(got) != 0 {
		t.Fatalf("delivered %d messages at t=0", len(got))
	}
	got := q.Deliver(1)
	want := []string{"near-a", "near-b", "explicit"}
	if len(got) != len(want) {
		t.Fatalf("t=1: delivered %d messages, want %d", len(got), len(want))
	}
	for i, m := range got {
		if m.Payload.(string) != want[i] {
			t.Errorf("t=1 delivery %d = %q, want %q", i, m.Payload, want[i])
		}
	}
	if q.Len() != 1 {
		t.Errorf("queue length = %d, want 1", q.Len())
	}
	rest := q.Deliver(10)
	if len(rest) != 1 || rest[0].Payload.(string) != "far" {
		t.Errorf("t=10 delivery = %v", rest)
	}
	if q.Len() != 0 {
		t.Errorf("queue not drained: %d", q.Len())
	}
}

// TestQueueNextDeliverAt: the earliest-delivery peek used by idle-skip
// schedulers tracks the head of the heap and reports emptiness.
func TestQueueNextDeliverAt(t *testing.T) {
	q := NewQueue()
	if _, ok := q.NextDeliverAt(); ok {
		t.Error("empty queue reports an in-flight message")
	}
	q.SendAt(0, 1, 7, "late")
	q.SendAt(0, 2, 3, "early")
	if at, ok := q.NextDeliverAt(); !ok || at != 3 {
		t.Errorf("NextDeliverAt = %d,%v, want 3,true", at, ok)
	}
	q.Deliver(3)
	if at, ok := q.NextDeliverAt(); !ok || at != 7 {
		t.Errorf("after draining t=3: NextDeliverAt = %d,%v, want 7,true", at, ok)
	}
	q.Deliver(7)
	if _, ok := q.NextDeliverAt(); ok {
		t.Error("drained queue still reports an in-flight message")
	}
}
