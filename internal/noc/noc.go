// Package noc models the Network-on-Chip connecting the cores (the paper's
// §4.2 assumes the cores are "connected by a Network-on-Chip" without fixing
// a topology). It provides latency models for an ideal crossbar, a
// bidirectional ring and a 2-D mesh, used by the machine simulator to charge
// message travel times, plus a deterministic delivery queue for standalone
// use and tests.
package noc

import (
	"container/heap"
	"fmt"
)

// Network computes message latencies between cores.
type Network interface {
	// Cores returns the number of endpoints.
	Cores() int
	// Latency returns the cycles a message needs from src to dst.
	// Latency(i, i) is the local forwarding cost (at least 1).
	Latency(src, dst int) int64
	// Name identifies the topology for reports.
	Name() string
}

// Crossbar is an ideal full crossbar: every pair of distinct cores is one
// hop apart. This is the calibration the paper's Fig. 10 uses ("counting 3
// cycles to reach the producer and return": 1 hop out, 1 cycle at the
// producer, 1 hop back).
type Crossbar struct {
	n   int
	hop int64
}

// NewCrossbar returns a crossbar over n cores with the given hop latency.
func NewCrossbar(n int, hop int64) *Crossbar {
	if hop < 1 {
		hop = 1
	}
	return &Crossbar{n: n, hop: hop}
}

// Cores implements Network.
func (c *Crossbar) Cores() int { return c.n }

// Latency implements Network.
func (c *Crossbar) Latency(src, dst int) int64 { return c.hop }

// Name implements Network.
func (c *Crossbar) Name() string { return fmt.Sprintf("crossbar(hop=%d)", c.hop) }

// Ring is a bidirectional ring: latency is the shorter arc distance times
// the per-hop latency.
type Ring struct {
	n   int
	hop int64
}

// NewRing returns a ring over n cores with the given per-hop latency.
func NewRing(n int, hop int64) *Ring {
	if hop < 1 {
		hop = 1
	}
	return &Ring{n: n, hop: hop}
}

// Cores implements Network.
func (r *Ring) Cores() int { return r.n }

// Latency implements Network.
func (r *Ring) Latency(src, dst int) int64 {
	if r.n <= 1 {
		return r.hop
	}
	d := src - dst
	if d < 0 {
		d = -d
	}
	if alt := r.n - d; alt < d {
		d = alt
	}
	if d == 0 {
		d = 1
	}
	return int64(d) * r.hop
}

// Name implements Network.
func (r *Ring) Name() string { return fmt.Sprintf("ring(%d,hop=%d)", r.n, r.hop) }

// Mesh is a 2-D mesh with X-Y routing: latency is the Manhattan distance
// times the per-hop latency. Cores are numbered row-major over width×height.
type Mesh struct {
	w, h int
	hop  int64
}

// NewMesh returns a w×h mesh with the given per-hop latency.
func NewMesh(w, h int, hop int64) *Mesh {
	if hop < 1 {
		hop = 1
	}
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return &Mesh{w: w, h: h, hop: hop}
}

// Cores implements Network.
func (m *Mesh) Cores() int { return m.w * m.h }

// Latency implements Network.
func (m *Mesh) Latency(src, dst int) int64 {
	sx, sy := src%m.w, src/m.w
	dx, dy := dst%m.w, dst/m.w
	d := abs(sx-dx) + abs(sy-dy)
	if d == 0 {
		d = 1
	}
	return int64(d) * m.hop
}

// Name implements Network.
func (m *Mesh) Name() string { return fmt.Sprintf("mesh(%dx%d,hop=%d)", m.w, m.h, m.hop) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Message is one in-flight payload for the delivery queue.
type Message struct {
	Src, Dst  int
	DeliverAt int64
	Seq       int64 // FIFO tiebreak for equal delivery times
	Payload   any
}

// Queue is a deterministic time-ordered delivery queue.
type Queue struct {
	h   msgHeap
	seq int64
}

// NewQueue returns an empty queue.
func NewQueue() *Queue { return &Queue{} }

// Send enqueues a message from src to dst at time now; it becomes available
// at now + net.Latency(src, dst).
func (q *Queue) Send(net Network, src, dst int, now int64, payload any) {
	m := Message{Src: src, Dst: dst, DeliverAt: now + net.Latency(src, dst), Seq: q.seq, Payload: payload}
	q.seq++
	heap.Push(&q.h, m)
}

// SendAt enqueues a message with an explicit delivery time.
func (q *Queue) SendAt(src, dst int, deliverAt int64, payload any) {
	m := Message{Src: src, Dst: dst, DeliverAt: deliverAt, Seq: q.seq, Payload: payload}
	q.seq++
	heap.Push(&q.h, m)
}

// Deliver pops every message whose delivery time is <= now, in
// (time, send order).
func (q *Queue) Deliver(now int64) []Message {
	var out []Message
	for q.h.Len() > 0 && q.h[0].DeliverAt <= now {
		out = append(out, heap.Pop(&q.h).(Message))
	}
	return out
}

// Len returns the number of undelivered messages.
func (q *Queue) Len() int { return q.h.Len() }

// NextDeliverAt returns the earliest delivery time among the undelivered
// messages, and whether any message is in flight. It lets an idle-skip
// scheduler built on Queue jump its clock straight to the next network
// event instead of polling every cycle. (The machine simulator tracks its
// in-flight messages in per-core FIFOs and request records rather than a
// Queue, so its nextWake reads those directly; this is the standalone-queue
// counterpart.)
func (q *Queue) NextDeliverAt() (int64, bool) {
	if q.h.Len() == 0 {
		return 0, false
	}
	return q.h[0].DeliverAt, true
}

type msgHeap []Message

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].DeliverAt != h[j].DeliverAt {
		return h[i].DeliverAt < h[j].DeliverAt
	}
	return h[i].Seq < h[j].Seq
}
func (h msgHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x any)   { *h = append(*h, x.(Message)) }
func (h *msgHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	*h = old[:n-1]
	return m
}

// Info is the catalog metadata of one supported topology: what a serving
// layer or CLI needs to enumerate the §4.2 design space without
// constructing networks.
type Info struct {
	// Name is the topology identifier constructors and sweep specs accept.
	Name string `json:"name"`
	// Description summarises the latency model.
	Description string `json:"description"`
}

// Catalog lists the supported topologies in presentation order. It is the
// single source of truth for topology names: internal/sweep derives its
// axis vocabulary from it and the job server serves it at /v1/topologies.
func Catalog() []Info {
	return []Info{
		{Name: "crossbar", Description: "ideal full crossbar: every pair of distinct cores is one hop apart (the paper's Fig. 10 calibration)"},
		{Name: "ring", Description: "bidirectional ring: latency is the shorter arc distance times the hop cost"},
		{Name: "mesh", Description: "2-D mesh with X-Y routing: latency is the Manhattan distance times the hop cost (cores factorised into the most square w×h grid)"},
	}
}
