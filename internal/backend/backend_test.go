package backend

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/minic"
)

// sumSrc sums an injected array; the expected result depends entirely on the
// injected values, which exercises the inject path on both backends.
const sumSrc = `
unsigned long t[16];
unsigned long n = 16;
unsigned long sum(unsigned long *p, unsigned long k) {
    if (k == 1) return p[0];
    if (k == 2) return p[0] + p[1];
    return sum(p, k/2) + sum(&p[k/2], k - k/2);
}
unsigned long main(void) { return sum(t, n); }
`

func sumInputs() (Inputs, uint64) {
	words := make([]uint64, 16)
	var want uint64
	for i := range words {
		words[i] = uint64(i*i + 3)
		want += words[i]
	}
	return Inputs{"t": words}, want
}

func TestEmulatorRunWithInputs(t *testing.T) {
	prog, err := minic.Compile(sumSrc, minic.ModeCall)
	if err != nil {
		t.Fatal(err)
	}
	in, want := sumInputs()
	e := NewEmulator()
	r, err := e.Run(prog, in, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.RAX != want {
		t.Errorf("rax = %d, want %d", r.RAX, want)
	}
	if r.Trace == nil || r.Trace.Len() == 0 {
		t.Error("no trace captured")
	}
	if int64(r.Trace.Len()) != r.Instructions {
		t.Errorf("trace length %d != instructions %d", r.Trace.Len(), r.Instructions)
	}
	if r.Cycles != r.Instructions {
		t.Errorf("emulator cycles %d != instructions %d", r.Cycles, r.Instructions)
	}
}

func TestMachineRunWithInputs(t *testing.T) {
	prog, err := minic.Compile(sumSrc, minic.ModeFork)
	if err != nil {
		t.Fatal(err)
	}
	in, want := sumInputs()
	m := NewMachine(4)
	r, err := m.Run(prog, in, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.RAX != want {
		t.Errorf("rax = %d, want %d", r.RAX, want)
	}
	if r.Machine == nil {
		t.Error("machine result missing")
	}
	if r.Cycles <= 0 {
		t.Errorf("cycles = %d", r.Cycles)
	}
}

func TestCrossValidateAgrees(t *testing.T) {
	prog, err := minic.Compile(sumSrc, minic.ModeFork)
	if err != nil {
		t.Fatal(err)
	}
	in, _ := sumInputs()
	ra, rb, err := CrossValidate(prog, in, NewEmulator(), NewMachine(3))
	if err != nil {
		t.Fatal(err)
	}
	if ra.RAX != rb.RAX {
		t.Errorf("rax disagree: %d vs %d", ra.RAX, rb.RAX)
	}
}

// TestCrossValidateDetectsMemoryDivergence uses a program that stores into
// its data segment, so the memory sweep has something real to compare.
func TestCrossValidateMemorySweep(t *testing.T) {
	src := `
unsigned long out[8];
unsigned long main(void) {
    for (unsigned long i = 0; i < 8; i = i + 1) out[i] = i * 7 + 1;
    return out[7];
}
`
	prog, err := minic.Compile(src, minic.ModeFork)
	if err != nil {
		t.Fatal(err)
	}
	ra, _, err := CrossValidate(prog, nil, NewEmulator(), NewMachine(2))
	if err != nil {
		t.Fatal(err)
	}
	addr, ok := prog.DataAddr("out")
	if !ok {
		t.Fatal("no out symbol")
	}
	for i := uint64(0); i < 8; i++ {
		if got := ra.Mem.ReadU64(addr + 8*i); got != i*7+1 {
			t.Errorf("out[%d] = %d, want %d", i, got, i*7+1)
		}
	}
}

func TestInjectUnknownSymbol(t *testing.T) {
	prog, err := minic.Compile(`long main(void) { return 0; }`, minic.ModeCall)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewEmulator().Run(prog, Inputs{"nosuch": {1}}, false)
	if err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("expected unknown-symbol error, got %v", err)
	}
}

func TestBackendMetadata(t *testing.T) {
	e := NewEmulator()
	m := NewMachine(8)
	if e.Mode() != minic.ModeCall || m.Mode() != minic.ModeFork {
		t.Error("wrong backend modes")
	}
	if !e.SupportsTrace() || m.SupportsTrace() {
		t.Error("wrong trace support")
	}
	if e.Name() == "" || m.Name() == "" {
		t.Error("empty backend names")
	}
}

// TestMachineRejectsCallMode: a call-mode program must be refused by the
// machine backend, mirroring the simulator's fork-only contract.
func TestMachineRejectsCallMode(t *testing.T) {
	prog, err := minic.Compile(`long f(void) { return 1; } long main(void) { return f(); }`, minic.ModeCall)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachine(2).Run(prog, nil, false); err == nil {
		t.Error("machine backend accepted a call/ret program")
	}
}

// TestDataSegmentConstant sanity-checks the layout assumption CrossValidate
// relies on: global arrays live inside [DataBase, DataBase+len(Data)).
func TestDataSegmentCoversGlobals(t *testing.T) {
	prog, err := minic.Compile(sumSrc, minic.ModeCall)
	if err != nil {
		t.Fatal(err)
	}
	addr, ok := prog.DataAddr("t")
	if !ok {
		t.Fatal("no t symbol")
	}
	if addr < isa.DataBase || addr+16*8 > isa.DataBase+uint64(len(prog.Data)) {
		t.Errorf("t at %#x not inside data segment [%#x, %#x)", addr, isa.DataBase, isa.DataBase+uint64(len(prog.Data)))
	}
}
