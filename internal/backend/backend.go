// Package backend abstracts the two execution substrates of the
// reproduction behind one interface, so that any workload — a PBBS kernel, a
// hand-written listing, a future suite — can be compiled once per calling
// convention, injected with its inputs, executed, optionally traced, and
// cross-validated between substrates:
//
//   - Emulator: the functional sequential emulator (internal/emu). It runs
//     both call-mode and fork-mode programs, captures dynamic traces for the
//     internal/ilp dependence models, and serves as the oracle.
//   - Machine: the cycle-level many-core simulator (internal/machine). It
//     runs fork-mode programs only and reports cycles and per-stage timing in
//     addition to the architectural result.
//
// The pipeline a backend implements is the paper's measurement path —
// compile (caller) → inject inputs → run → optional trace capture → result
// — behind both the Section 3 trace study (Fig. 7, via the emulator) and
// the Section 4/5 machine evaluation; CrossValidate is the oracle check
// that keeps the two substrates in agreement.
package backend

import (
	"fmt"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/minic"
	"repro/internal/trace"
)

// Inputs maps data-segment symbols to the 64-bit words written into memory
// before the run starts.
type Inputs map[string][]uint64

// MemReader is the part of a memory the caller may inspect after a run.
type MemReader interface {
	ReadU64(addr uint64) uint64
}

// Result is the outcome of one backend execution.
type Result struct {
	// Backend names the substrate that produced this result.
	Backend string
	// RAX is the conventional program result (rax at halt).
	RAX uint64
	// Instructions is the dynamic instruction count.
	Instructions int64
	// Cycles is the simulated time: equal to Instructions on the sequential
	// emulator, the simulated clock on the machine.
	Cycles int64
	// Trace is the captured dynamic trace; nil unless requested and
	// supported.
	Trace *trace.Trace
	// Mem exposes the final memory state (the emulator's memory or the
	// machine's committed data memory hierarchy).
	Mem MemReader
	// Machine holds the full machine result when the machine backend ran;
	// nil otherwise.
	Machine *machine.Result
}

// Backend executes programs.
type Backend interface {
	// Name identifies the backend for reports.
	Name() string
	// Mode is the calling convention programs must be compiled in to run
	// here. The emulator accepts both modes; the machine requires ModeFork.
	Mode() minic.Mode
	// SupportsTrace reports whether Run can capture a dynamic trace.
	SupportsTrace() bool
	// Run injects the inputs into a fresh memory image, executes prog to
	// completion and returns the result. When captureTrace is set and the
	// backend supports it, Result.Trace holds the dynamic trace.
	Run(prog *isa.Program, in Inputs, captureTrace bool) (*Result, error)
}

// Writer is the injection target: both emu.Memory and the machine DMH
// implement it.
type Writer interface {
	WriteU64(addr, v uint64)
}

// Inject writes the inputs at their symbol addresses. It is exported for
// callers that manage machine lifetimes themselves — the warm-machine pool in
// internal/sweep re-injects inputs after Machine.Reset exactly as a fresh
// construction would.
func Inject(prog *isa.Program, mem Writer, in Inputs) error {
	return inject(prog, mem, in)
}

// inject writes the inputs at their symbol addresses.
func inject(prog *isa.Program, mem Writer, in Inputs) error {
	for sym, words := range in {
		addr, ok := prog.DataAddr(sym)
		if !ok {
			return fmt.Errorf("backend: program has no data symbol %q", sym)
		}
		for i, w := range words {
			mem.WriteU64(addr+uint64(8*i), w)
		}
	}
	return nil
}

// Emulator is the sequential functional backend.
type Emulator struct {
	// MaxSteps bounds the run; 0 uses the emulator default.
	MaxSteps int64
}

// NewEmulator returns an emulator backend with a generous step bound.
func NewEmulator() *Emulator { return &Emulator{MaxSteps: 1 << 31} }

// Name implements Backend.
func (e *Emulator) Name() string { return "emu" }

// Mode implements Backend. Call mode is the canonical convention here; the
// emulator also runs fork-mode programs with their sequential-trace
// semantics.
func (e *Emulator) Mode() minic.Mode { return minic.ModeCall }

// SupportsTrace implements Backend.
func (e *Emulator) SupportsTrace() bool { return true }

// Run implements Backend.
func (e *Emulator) Run(prog *isa.Program, in Inputs, captureTrace bool) (*Result, error) {
	cpu := emu.New(prog)
	cpu.MaxSteps = e.MaxSteps
	var tr *trace.Trace
	if captureTrace {
		tr = &trace.Trace{}
		cpu.TraceHook = func(r *trace.Record) { tr.Append(*r) }
	}
	if err := inject(prog, cpu.Mem, in); err != nil {
		return nil, err
	}
	if _, err := cpu.Run(); err != nil {
		return nil, err
	}
	return &Result{
		Backend:      e.Name(),
		RAX:          cpu.Result(),
		Instructions: cpu.Steps,
		Cycles:       cpu.Steps,
		Trace:        tr,
		Mem:          cpu.Mem,
	}, nil
}

// Machine is the cycle-level many-core backend.
type Machine struct {
	// Cfg parameterises the simulated chip. Cfg.Cores must be >= 1.
	Cfg machine.Config
}

// NewMachine returns a machine backend with the paper-calibrated default
// configuration over the given core count.
func NewMachine(cores int) *Machine {
	return &Machine{Cfg: machine.DefaultConfig(cores)}
}

// Name implements Backend.
func (m *Machine) Name() string { return fmt.Sprintf("machine(%d cores)", m.Cfg.Cores) }

// Mode implements Backend: the machine executes fork programs only.
func (m *Machine) Mode() minic.Mode { return minic.ModeFork }

// SupportsTrace implements Backend: the machine reports stage timings, not
// dependence traces.
func (m *Machine) SupportsTrace() bool { return false }

// Run implements Backend.
func (m *Machine) Run(prog *isa.Program, in Inputs, captureTrace bool) (*Result, error) {
	sim, err := machine.New(prog, m.Cfg)
	if err != nil {
		return nil, err
	}
	if err := inject(prog, sim.DMH(), in); err != nil {
		return nil, err
	}
	r, err := sim.Run()
	if err != nil {
		return nil, err
	}
	return &Result{
		Backend:      m.Name(),
		RAX:          r.RAX,
		Instructions: r.Instructions,
		Cycles:       r.Cycles,
		Mem:          sim.DMH(),
		Machine:      r,
	}, nil
}

// CrossValidate runs prog with the same inputs on both backends and checks
// that they agree on the final rax and on every word of the data segment
// (which holds all global arrays of mini-C programs). It returns the two
// results for further inspection.
func CrossValidate(prog *isa.Program, in Inputs, a, b Backend) (*Result, *Result, error) {
	ra, err := a.Run(prog, in, false)
	if err != nil {
		return nil, nil, fmt.Errorf("backend %s: %w", a.Name(), err)
	}
	rb, err := b.Run(prog, in, false)
	if err != nil {
		return ra, nil, fmt.Errorf("backend %s: %w", b.Name(), err)
	}
	if ra.RAX != rb.RAX {
		return ra, rb, fmt.Errorf("backend mismatch: %s rax=%d, %s rax=%d",
			a.Name(), ra.RAX, b.Name(), rb.RAX)
	}
	for off := uint64(0); off < uint64(len(prog.Data)); off += 8 {
		addr := isa.DataBase + off
		va, vb := ra.Mem.ReadU64(addr), rb.Mem.ReadU64(addr)
		if va != vb {
			return ra, rb, fmt.Errorf("backend mismatch at data[%#x]: %s=%d, %s=%d",
				addr, a.Name(), va, b.Name(), vb)
		}
	}
	return ra, rb, nil
}
